file(REMOVE_RECURSE
  "CMakeFiles/trust_bazaar.dir/trust_bazaar.cpp.o"
  "CMakeFiles/trust_bazaar.dir/trust_bazaar.cpp.o.d"
  "trust_bazaar"
  "trust_bazaar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_bazaar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
