# Empty compiler generated dependencies file for trust_bazaar.
# This may be replaced when dependencies are built.
