# Empty dependencies file for isp_marketplace.
# This may be replaced when dependencies are built.
