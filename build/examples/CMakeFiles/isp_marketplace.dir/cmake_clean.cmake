file(REMOVE_RECURSE
  "CMakeFiles/isp_marketplace.dir/isp_marketplace.cpp.o"
  "CMakeFiles/isp_marketplace.dir/isp_marketplace.cpp.o.d"
  "isp_marketplace"
  "isp_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
