file(REMOVE_RECURSE
  "CMakeFiles/negotiated_firewall.dir/negotiated_firewall.cpp.o"
  "CMakeFiles/negotiated_firewall.dir/negotiated_firewall.cpp.o.d"
  "negotiated_firewall"
  "negotiated_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negotiated_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
