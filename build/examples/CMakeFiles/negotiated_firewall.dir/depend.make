# Empty dependencies file for negotiated_firewall.
# This may be replaced when dependencies are built.
