# Empty compiler generated dependencies file for route_around.
# This may be replaced when dependencies are built.
