file(REMOVE_RECURSE
  "CMakeFiles/route_around.dir/route_around.cpp.o"
  "CMakeFiles/route_around.dir/route_around.cpp.o.d"
  "route_around"
  "route_around.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_around.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
