# Empty compiler generated dependencies file for apps_p2p_voip_test.
# This may be replaced when dependencies are built.
