file(REMOVE_RECURSE
  "CMakeFiles/apps_p2p_voip_test.dir/apps_p2p_voip_test.cpp.o"
  "CMakeFiles/apps_p2p_voip_test.dir/apps_p2p_voip_test.cpp.o.d"
  "apps_p2p_voip_test"
  "apps_p2p_voip_test.pdb"
  "apps_p2p_voip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_p2p_voip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
