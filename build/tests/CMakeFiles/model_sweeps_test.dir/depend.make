# Empty dependencies file for model_sweeps_test.
# This may be replaced when dependencies are built.
