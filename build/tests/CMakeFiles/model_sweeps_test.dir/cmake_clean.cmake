file(REMOVE_RECURSE
  "CMakeFiles/model_sweeps_test.dir/model_sweeps_test.cpp.o"
  "CMakeFiles/model_sweeps_test.dir/model_sweeps_test.cpp.o.d"
  "model_sweeps_test"
  "model_sweeps_test.pdb"
  "model_sweeps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_sweeps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
