# Empty compiler generated dependencies file for net_flow_stats_test.
# This may be replaced when dependencies are built.
