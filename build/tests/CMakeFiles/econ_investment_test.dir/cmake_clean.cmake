file(REMOVE_RECURSE
  "CMakeFiles/econ_investment_test.dir/econ_investment_test.cpp.o"
  "CMakeFiles/econ_investment_test.dir/econ_investment_test.cpp.o.d"
  "econ_investment_test"
  "econ_investment_test.pdb"
  "econ_investment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/econ_investment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
