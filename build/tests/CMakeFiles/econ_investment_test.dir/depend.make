# Empty dependencies file for econ_investment_test.
# This may be replaced when dependencies are built.
