# Empty dependencies file for policy_adapter_test.
# This may be replaced when dependencies are built.
