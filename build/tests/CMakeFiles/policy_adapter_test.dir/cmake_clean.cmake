file(REMOVE_RECURSE
  "CMakeFiles/policy_adapter_test.dir/policy_adapter_test.cpp.o"
  "CMakeFiles/policy_adapter_test.dir/policy_adapter_test.cpp.o.d"
  "policy_adapter_test"
  "policy_adapter_test.pdb"
  "policy_adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
