file(REMOVE_RECURSE
  "CMakeFiles/trust_identity_test.dir/trust_identity_test.cpp.o"
  "CMakeFiles/trust_identity_test.dir/trust_identity_test.cpp.o.d"
  "trust_identity_test"
  "trust_identity_test.pdb"
  "trust_identity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
