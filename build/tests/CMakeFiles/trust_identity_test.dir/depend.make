# Empty dependencies file for trust_identity_test.
# This may be replaced when dependencies are built.
