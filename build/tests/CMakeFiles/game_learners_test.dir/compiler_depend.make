# Empty compiler generated dependencies file for game_learners_test.
# This may be replaced when dependencies are built.
