file(REMOVE_RECURSE
  "CMakeFiles/game_learners_test.dir/game_learners_test.cpp.o"
  "CMakeFiles/game_learners_test.dir/game_learners_test.cpp.o.d"
  "game_learners_test"
  "game_learners_test.pdb"
  "game_learners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_learners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
