# Empty dependencies file for routing_path_vector_test.
# This may be replaced when dependencies are built.
