file(REMOVE_RECURSE
  "CMakeFiles/routing_path_vector_test.dir/routing_path_vector_test.cpp.o"
  "CMakeFiles/routing_path_vector_test.dir/routing_path_vector_test.cpp.o.d"
  "routing_path_vector_test"
  "routing_path_vector_test.pdb"
  "routing_path_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_path_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
