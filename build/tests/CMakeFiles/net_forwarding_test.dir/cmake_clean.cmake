file(REMOVE_RECURSE
  "CMakeFiles/net_forwarding_test.dir/net_forwarding_test.cpp.o"
  "CMakeFiles/net_forwarding_test.dir/net_forwarding_test.cpp.o.d"
  "net_forwarding_test"
  "net_forwarding_test.pdb"
  "net_forwarding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_forwarding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
