# Empty dependencies file for routing_source_route_test.
# This may be replaced when dependencies are built.
