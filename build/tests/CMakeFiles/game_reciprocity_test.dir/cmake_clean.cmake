file(REMOVE_RECURSE
  "CMakeFiles/game_reciprocity_test.dir/game_reciprocity_test.cpp.o"
  "CMakeFiles/game_reciprocity_test.dir/game_reciprocity_test.cpp.o.d"
  "game_reciprocity_test"
  "game_reciprocity_test.pdb"
  "game_reciprocity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_reciprocity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
