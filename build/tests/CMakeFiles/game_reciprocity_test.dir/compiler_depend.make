# Empty compiler generated dependencies file for game_reciprocity_test.
# This may be replaced when dependencies are built.
