file(REMOVE_RECURSE
  "CMakeFiles/econ_pricing_lockin_test.dir/econ_pricing_lockin_test.cpp.o"
  "CMakeFiles/econ_pricing_lockin_test.dir/econ_pricing_lockin_test.cpp.o.d"
  "econ_pricing_lockin_test"
  "econ_pricing_lockin_test.pdb"
  "econ_pricing_lockin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/econ_pricing_lockin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
