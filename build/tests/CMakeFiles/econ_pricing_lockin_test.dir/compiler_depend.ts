# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for econ_pricing_lockin_test.
