# Empty compiler generated dependencies file for econ_pricing_lockin_test.
# This may be replaced when dependencies are built.
