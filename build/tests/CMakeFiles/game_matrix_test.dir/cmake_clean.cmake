file(REMOVE_RECURSE
  "CMakeFiles/game_matrix_test.dir/game_matrix_test.cpp.o"
  "CMakeFiles/game_matrix_test.dir/game_matrix_test.cpp.o.d"
  "game_matrix_test"
  "game_matrix_test.pdb"
  "game_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
