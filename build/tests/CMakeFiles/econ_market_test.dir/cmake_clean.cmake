file(REMOVE_RECURSE
  "CMakeFiles/econ_market_test.dir/econ_market_test.cpp.o"
  "CMakeFiles/econ_market_test.dir/econ_market_test.cpp.o.d"
  "econ_market_test"
  "econ_market_test.pdb"
  "econ_market_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/econ_market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
