file(REMOVE_RECURSE
  "CMakeFiles/game_auction_test.dir/game_auction_test.cpp.o"
  "CMakeFiles/game_auction_test.dir/game_auction_test.cpp.o.d"
  "game_auction_test"
  "game_auction_test.pdb"
  "game_auction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_auction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
