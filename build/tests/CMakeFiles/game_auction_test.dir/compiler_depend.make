# Empty compiler generated dependencies file for game_auction_test.
# This may be replaced when dependencies are built.
