# Empty compiler generated dependencies file for trust_firewall_test.
# This may be replaced when dependencies are built.
