file(REMOVE_RECURSE
  "CMakeFiles/trust_firewall_test.dir/trust_firewall_test.cpp.o"
  "CMakeFiles/trust_firewall_test.dir/trust_firewall_test.cpp.o.d"
  "trust_firewall_test"
  "trust_firewall_test.pdb"
  "trust_firewall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_firewall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
