file(REMOVE_RECURSE
  "CMakeFiles/routing_inter_domain_test.dir/routing_inter_domain_test.cpp.o"
  "CMakeFiles/routing_inter_domain_test.dir/routing_inter_domain_test.cpp.o.d"
  "routing_inter_domain_test"
  "routing_inter_domain_test.pdb"
  "routing_inter_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_inter_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
