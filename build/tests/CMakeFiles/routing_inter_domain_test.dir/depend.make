# Empty dependencies file for routing_inter_domain_test.
# This may be replaced when dependencies are built.
