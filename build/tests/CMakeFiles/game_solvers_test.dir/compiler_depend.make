# Empty compiler generated dependencies file for game_solvers_test.
# This may be replaced when dependencies are built.
