file(REMOVE_RECURSE
  "CMakeFiles/game_solvers_test.dir/game_solvers_test.cpp.o"
  "CMakeFiles/game_solvers_test.dir/game_solvers_test.cpp.o.d"
  "game_solvers_test"
  "game_solvers_test.pdb"
  "game_solvers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_solvers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
