file(REMOVE_RECURSE
  "CMakeFiles/econ_value_flow_test.dir/econ_value_flow_test.cpp.o"
  "CMakeFiles/econ_value_flow_test.dir/econ_value_flow_test.cpp.o.d"
  "econ_value_flow_test"
  "econ_value_flow_test.pdb"
  "econ_value_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/econ_value_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
