# Empty compiler generated dependencies file for econ_value_flow_test.
# This may be replaced when dependencies are built.
