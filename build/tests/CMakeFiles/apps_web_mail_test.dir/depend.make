# Empty dependencies file for apps_web_mail_test.
# This may be replaced when dependencies are built.
