file(REMOVE_RECURSE
  "CMakeFiles/apps_web_mail_test.dir/apps_web_mail_test.cpp.o"
  "CMakeFiles/apps_web_mail_test.dir/apps_web_mail_test.cpp.o.d"
  "apps_web_mail_test"
  "apps_web_mail_test.pdb"
  "apps_web_mail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_web_mail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
