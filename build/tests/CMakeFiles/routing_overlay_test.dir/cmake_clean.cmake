file(REMOVE_RECURSE
  "CMakeFiles/routing_overlay_test.dir/routing_overlay_test.cpp.o"
  "CMakeFiles/routing_overlay_test.dir/routing_overlay_test.cpp.o.d"
  "routing_overlay_test"
  "routing_overlay_test.pdb"
  "routing_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
