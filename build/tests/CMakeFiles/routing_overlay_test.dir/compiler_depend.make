# Empty compiler generated dependencies file for routing_overlay_test.
# This may be replaced when dependencies are built.
