# Empty dependencies file for routing_link_state_test.
# This may be replaced when dependencies are built.
