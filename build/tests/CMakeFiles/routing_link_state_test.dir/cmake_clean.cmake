file(REMOVE_RECURSE
  "CMakeFiles/routing_link_state_test.dir/routing_link_state_test.cpp.o"
  "CMakeFiles/routing_link_state_test.dir/routing_link_state_test.cpp.o.d"
  "routing_link_state_test"
  "routing_link_state_test.pdb"
  "routing_link_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_link_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
