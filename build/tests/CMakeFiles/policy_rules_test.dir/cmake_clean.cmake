file(REMOVE_RECURSE
  "CMakeFiles/policy_rules_test.dir/policy_rules_test.cpp.o"
  "CMakeFiles/policy_rules_test.dir/policy_rules_test.cpp.o.d"
  "policy_rules_test"
  "policy_rules_test.pdb"
  "policy_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
