# Empty dependencies file for policy_rules_test.
# This may be replaced when dependencies are built.
