file(REMOVE_RECURSE
  "CMakeFiles/routing_as_graph_test.dir/routing_as_graph_test.cpp.o"
  "CMakeFiles/routing_as_graph_test.dir/routing_as_graph_test.cpp.o.d"
  "routing_as_graph_test"
  "routing_as_graph_test.pdb"
  "routing_as_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_as_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
