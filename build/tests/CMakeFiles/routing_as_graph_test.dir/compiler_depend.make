# Empty compiler generated dependencies file for routing_as_graph_test.
# This may be replaced when dependencies are built.
