file(REMOVE_RECURSE
  "CMakeFiles/apps_congestion_test.dir/apps_congestion_test.cpp.o"
  "CMakeFiles/apps_congestion_test.dir/apps_congestion_test.cpp.o.d"
  "apps_congestion_test"
  "apps_congestion_test.pdb"
  "apps_congestion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_congestion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
