# Empty dependencies file for policy_expr_test.
# This may be replaced when dependencies are built.
