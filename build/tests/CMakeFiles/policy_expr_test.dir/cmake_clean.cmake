file(REMOVE_RECURSE
  "CMakeFiles/policy_expr_test.dir/policy_expr_test.cpp.o"
  "CMakeFiles/policy_expr_test.dir/policy_expr_test.cpp.o.d"
  "policy_expr_test"
  "policy_expr_test.pdb"
  "policy_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
