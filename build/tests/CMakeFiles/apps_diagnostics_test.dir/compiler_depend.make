# Empty compiler generated dependencies file for apps_diagnostics_test.
# This may be replaced when dependencies are built.
