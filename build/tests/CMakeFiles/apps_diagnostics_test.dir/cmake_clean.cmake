file(REMOVE_RECURSE
  "CMakeFiles/apps_diagnostics_test.dir/apps_diagnostics_test.cpp.o"
  "CMakeFiles/apps_diagnostics_test.dir/apps_diagnostics_test.cpp.o.d"
  "apps_diagnostics_test"
  "apps_diagnostics_test.pdb"
  "apps_diagnostics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_diagnostics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
