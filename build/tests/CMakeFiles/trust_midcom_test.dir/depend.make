# Empty dependencies file for trust_midcom_test.
# This may be replaced when dependencies are built.
