file(REMOVE_RECURSE
  "CMakeFiles/trust_midcom_test.dir/trust_midcom_test.cpp.o"
  "CMakeFiles/trust_midcom_test.dir/trust_midcom_test.cpp.o.d"
  "trust_midcom_test"
  "trust_midcom_test.pdb"
  "trust_midcom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_midcom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
