file(REMOVE_RECURSE
  "CMakeFiles/trust_reputation_mediator_test.dir/trust_reputation_mediator_test.cpp.o"
  "CMakeFiles/trust_reputation_mediator_test.dir/trust_reputation_mediator_test.cpp.o.d"
  "trust_reputation_mediator_test"
  "trust_reputation_mediator_test.pdb"
  "trust_reputation_mediator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_reputation_mediator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
