# Empty compiler generated dependencies file for trust_reputation_mediator_test.
# This may be replaced when dependencies are built.
