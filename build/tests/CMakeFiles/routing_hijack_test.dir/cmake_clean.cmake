file(REMOVE_RECURSE
  "CMakeFiles/routing_hijack_test.dir/routing_hijack_test.cpp.o"
  "CMakeFiles/routing_hijack_test.dir/routing_hijack_test.cpp.o.d"
  "routing_hijack_test"
  "routing_hijack_test.pdb"
  "routing_hijack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_hijack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
