# Empty dependencies file for routing_multicast_test.
# This may be replaced when dependencies are built.
