file(REMOVE_RECURSE
  "CMakeFiles/routing_multicast_test.dir/routing_multicast_test.cpp.o"
  "CMakeFiles/routing_multicast_test.dir/routing_multicast_test.cpp.o.d"
  "routing_multicast_test"
  "routing_multicast_test.pdb"
  "routing_multicast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_multicast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
