# Empty compiler generated dependencies file for net_wiretap_test.
# This may be replaced when dependencies are built.
