file(REMOVE_RECURSE
  "CMakeFiles/net_wiretap_test.dir/net_wiretap_test.cpp.o"
  "CMakeFiles/net_wiretap_test.dir/net_wiretap_test.cpp.o.d"
  "net_wiretap_test"
  "net_wiretap_test.pdb"
  "net_wiretap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_wiretap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
