file(REMOVE_RECURSE
  "CMakeFiles/apps_transport_test.dir/apps_transport_test.cpp.o"
  "CMakeFiles/apps_transport_test.dir/apps_transport_test.cpp.o.d"
  "apps_transport_test"
  "apps_transport_test.pdb"
  "apps_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
