file(REMOVE_RECURSE
  "CMakeFiles/apps_stego_test.dir/apps_stego_test.cpp.o"
  "CMakeFiles/apps_stego_test.dir/apps_stego_test.cpp.o.d"
  "apps_stego_test"
  "apps_stego_test.pdb"
  "apps_stego_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_stego_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
