# Empty compiler generated dependencies file for apps_stego_test.
# This may be replaced when dependencies are built.
