file(REMOVE_RECURSE
  "CMakeFiles/core_choice_scenario_test.dir/core_choice_scenario_test.cpp.o"
  "CMakeFiles/core_choice_scenario_test.dir/core_choice_scenario_test.cpp.o.d"
  "core_choice_scenario_test"
  "core_choice_scenario_test.pdb"
  "core_choice_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_choice_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
