# Empty dependencies file for core_choice_scenario_test.
# This may be replaced when dependencies are built.
