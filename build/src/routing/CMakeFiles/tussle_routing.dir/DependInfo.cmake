
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/as_graph.cpp" "src/routing/CMakeFiles/tussle_routing.dir/as_graph.cpp.o" "gcc" "src/routing/CMakeFiles/tussle_routing.dir/as_graph.cpp.o.d"
  "/root/repo/src/routing/inter_domain.cpp" "src/routing/CMakeFiles/tussle_routing.dir/inter_domain.cpp.o" "gcc" "src/routing/CMakeFiles/tussle_routing.dir/inter_domain.cpp.o.d"
  "/root/repo/src/routing/link_state.cpp" "src/routing/CMakeFiles/tussle_routing.dir/link_state.cpp.o" "gcc" "src/routing/CMakeFiles/tussle_routing.dir/link_state.cpp.o.d"
  "/root/repo/src/routing/multicast.cpp" "src/routing/CMakeFiles/tussle_routing.dir/multicast.cpp.o" "gcc" "src/routing/CMakeFiles/tussle_routing.dir/multicast.cpp.o.d"
  "/root/repo/src/routing/overlay.cpp" "src/routing/CMakeFiles/tussle_routing.dir/overlay.cpp.o" "gcc" "src/routing/CMakeFiles/tussle_routing.dir/overlay.cpp.o.d"
  "/root/repo/src/routing/path_vector.cpp" "src/routing/CMakeFiles/tussle_routing.dir/path_vector.cpp.o" "gcc" "src/routing/CMakeFiles/tussle_routing.dir/path_vector.cpp.o.d"
  "/root/repo/src/routing/source_route.cpp" "src/routing/CMakeFiles/tussle_routing.dir/source_route.cpp.o" "gcc" "src/routing/CMakeFiles/tussle_routing.dir/source_route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tussle_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
