file(REMOVE_RECURSE
  "CMakeFiles/tussle_routing.dir/as_graph.cpp.o"
  "CMakeFiles/tussle_routing.dir/as_graph.cpp.o.d"
  "CMakeFiles/tussle_routing.dir/inter_domain.cpp.o"
  "CMakeFiles/tussle_routing.dir/inter_domain.cpp.o.d"
  "CMakeFiles/tussle_routing.dir/link_state.cpp.o"
  "CMakeFiles/tussle_routing.dir/link_state.cpp.o.d"
  "CMakeFiles/tussle_routing.dir/multicast.cpp.o"
  "CMakeFiles/tussle_routing.dir/multicast.cpp.o.d"
  "CMakeFiles/tussle_routing.dir/overlay.cpp.o"
  "CMakeFiles/tussle_routing.dir/overlay.cpp.o.d"
  "CMakeFiles/tussle_routing.dir/path_vector.cpp.o"
  "CMakeFiles/tussle_routing.dir/path_vector.cpp.o.d"
  "CMakeFiles/tussle_routing.dir/source_route.cpp.o"
  "CMakeFiles/tussle_routing.dir/source_route.cpp.o.d"
  "libtussle_routing.a"
  "libtussle_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
