file(REMOVE_RECURSE
  "libtussle_routing.a"
)
