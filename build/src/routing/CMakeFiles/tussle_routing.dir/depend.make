# Empty dependencies file for tussle_routing.
# This may be replaced when dependencies are built.
