file(REMOVE_RECURSE
  "CMakeFiles/tussle_econ.dir/investment.cpp.o"
  "CMakeFiles/tussle_econ.dir/investment.cpp.o.d"
  "CMakeFiles/tussle_econ.dir/lock_in.cpp.o"
  "CMakeFiles/tussle_econ.dir/lock_in.cpp.o.d"
  "CMakeFiles/tussle_econ.dir/market.cpp.o"
  "CMakeFiles/tussle_econ.dir/market.cpp.o.d"
  "CMakeFiles/tussle_econ.dir/open_access.cpp.o"
  "CMakeFiles/tussle_econ.dir/open_access.cpp.o.d"
  "CMakeFiles/tussle_econ.dir/value_flow.cpp.o"
  "CMakeFiles/tussle_econ.dir/value_flow.cpp.o.d"
  "libtussle_econ.a"
  "libtussle_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
