
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/econ/investment.cpp" "src/econ/CMakeFiles/tussle_econ.dir/investment.cpp.o" "gcc" "src/econ/CMakeFiles/tussle_econ.dir/investment.cpp.o.d"
  "/root/repo/src/econ/lock_in.cpp" "src/econ/CMakeFiles/tussle_econ.dir/lock_in.cpp.o" "gcc" "src/econ/CMakeFiles/tussle_econ.dir/lock_in.cpp.o.d"
  "/root/repo/src/econ/market.cpp" "src/econ/CMakeFiles/tussle_econ.dir/market.cpp.o" "gcc" "src/econ/CMakeFiles/tussle_econ.dir/market.cpp.o.d"
  "/root/repo/src/econ/open_access.cpp" "src/econ/CMakeFiles/tussle_econ.dir/open_access.cpp.o" "gcc" "src/econ/CMakeFiles/tussle_econ.dir/open_access.cpp.o.d"
  "/root/repo/src/econ/value_flow.cpp" "src/econ/CMakeFiles/tussle_econ.dir/value_flow.cpp.o" "gcc" "src/econ/CMakeFiles/tussle_econ.dir/value_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/tussle_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tussle_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
