# Empty dependencies file for tussle_econ.
# This may be replaced when dependencies are built.
