file(REMOVE_RECURSE
  "libtussle_econ.a"
)
