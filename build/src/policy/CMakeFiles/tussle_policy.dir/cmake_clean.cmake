file(REMOVE_RECURSE
  "CMakeFiles/tussle_policy.dir/expr.cpp.o"
  "CMakeFiles/tussle_policy.dir/expr.cpp.o.d"
  "CMakeFiles/tussle_policy.dir/packet_adapter.cpp.o"
  "CMakeFiles/tussle_policy.dir/packet_adapter.cpp.o.d"
  "CMakeFiles/tussle_policy.dir/rules.cpp.o"
  "CMakeFiles/tussle_policy.dir/rules.cpp.o.d"
  "CMakeFiles/tussle_policy.dir/value.cpp.o"
  "CMakeFiles/tussle_policy.dir/value.cpp.o.d"
  "libtussle_policy.a"
  "libtussle_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
