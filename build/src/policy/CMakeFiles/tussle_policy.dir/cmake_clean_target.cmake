file(REMOVE_RECURSE
  "libtussle_policy.a"
)
