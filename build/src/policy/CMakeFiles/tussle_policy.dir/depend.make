# Empty dependencies file for tussle_policy.
# This may be replaced when dependencies are built.
