
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/expr.cpp" "src/policy/CMakeFiles/tussle_policy.dir/expr.cpp.o" "gcc" "src/policy/CMakeFiles/tussle_policy.dir/expr.cpp.o.d"
  "/root/repo/src/policy/packet_adapter.cpp" "src/policy/CMakeFiles/tussle_policy.dir/packet_adapter.cpp.o" "gcc" "src/policy/CMakeFiles/tussle_policy.dir/packet_adapter.cpp.o.d"
  "/root/repo/src/policy/rules.cpp" "src/policy/CMakeFiles/tussle_policy.dir/rules.cpp.o" "gcc" "src/policy/CMakeFiles/tussle_policy.dir/rules.cpp.o.d"
  "/root/repo/src/policy/value.cpp" "src/policy/CMakeFiles/tussle_policy.dir/value.cpp.o" "gcc" "src/policy/CMakeFiles/tussle_policy.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tussle_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
