file(REMOVE_RECURSE
  "CMakeFiles/tussle_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tussle_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tussle_sim.dir/random.cpp.o"
  "CMakeFiles/tussle_sim.dir/random.cpp.o.d"
  "CMakeFiles/tussle_sim.dir/simulator.cpp.o"
  "CMakeFiles/tussle_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/tussle_sim.dir/stats.cpp.o"
  "CMakeFiles/tussle_sim.dir/stats.cpp.o.d"
  "CMakeFiles/tussle_sim.dir/time.cpp.o"
  "CMakeFiles/tussle_sim.dir/time.cpp.o.d"
  "CMakeFiles/tussle_sim.dir/trace.cpp.o"
  "CMakeFiles/tussle_sim.dir/trace.cpp.o.d"
  "libtussle_sim.a"
  "libtussle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
