# Empty compiler generated dependencies file for tussle_sim.
# This may be replaced when dependencies are built.
