file(REMOVE_RECURSE
  "libtussle_sim.a"
)
