file(REMOVE_RECURSE
  "libtussle_apps.a"
)
