file(REMOVE_RECURSE
  "CMakeFiles/tussle_apps.dir/attack.cpp.o"
  "CMakeFiles/tussle_apps.dir/attack.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/congestion.cpp.o"
  "CMakeFiles/tussle_apps.dir/congestion.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/diagnostics.cpp.o"
  "CMakeFiles/tussle_apps.dir/diagnostics.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/mail.cpp.o"
  "CMakeFiles/tussle_apps.dir/mail.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/mux.cpp.o"
  "CMakeFiles/tussle_apps.dir/mux.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/p2p.cpp.o"
  "CMakeFiles/tussle_apps.dir/p2p.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/stego.cpp.o"
  "CMakeFiles/tussle_apps.dir/stego.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/transport.cpp.o"
  "CMakeFiles/tussle_apps.dir/transport.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/voip.cpp.o"
  "CMakeFiles/tussle_apps.dir/voip.cpp.o.d"
  "CMakeFiles/tussle_apps.dir/web.cpp.o"
  "CMakeFiles/tussle_apps.dir/web.cpp.o.d"
  "libtussle_apps.a"
  "libtussle_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
