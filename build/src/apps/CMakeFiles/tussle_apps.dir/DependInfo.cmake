
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/attack.cpp" "src/apps/CMakeFiles/tussle_apps.dir/attack.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/attack.cpp.o.d"
  "/root/repo/src/apps/congestion.cpp" "src/apps/CMakeFiles/tussle_apps.dir/congestion.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/congestion.cpp.o.d"
  "/root/repo/src/apps/diagnostics.cpp" "src/apps/CMakeFiles/tussle_apps.dir/diagnostics.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/diagnostics.cpp.o.d"
  "/root/repo/src/apps/mail.cpp" "src/apps/CMakeFiles/tussle_apps.dir/mail.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/mail.cpp.o.d"
  "/root/repo/src/apps/mux.cpp" "src/apps/CMakeFiles/tussle_apps.dir/mux.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/mux.cpp.o.d"
  "/root/repo/src/apps/p2p.cpp" "src/apps/CMakeFiles/tussle_apps.dir/p2p.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/p2p.cpp.o.d"
  "/root/repo/src/apps/stego.cpp" "src/apps/CMakeFiles/tussle_apps.dir/stego.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/stego.cpp.o.d"
  "/root/repo/src/apps/transport.cpp" "src/apps/CMakeFiles/tussle_apps.dir/transport.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/transport.cpp.o.d"
  "/root/repo/src/apps/voip.cpp" "src/apps/CMakeFiles/tussle_apps.dir/voip.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/voip.cpp.o.d"
  "/root/repo/src/apps/web.cpp" "src/apps/CMakeFiles/tussle_apps.dir/web.cpp.o" "gcc" "src/apps/CMakeFiles/tussle_apps.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tussle_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
