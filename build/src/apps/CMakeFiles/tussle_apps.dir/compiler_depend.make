# Empty compiler generated dependencies file for tussle_apps.
# This may be replaced when dependencies are built.
