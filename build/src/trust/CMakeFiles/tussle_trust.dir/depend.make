# Empty dependencies file for tussle_trust.
# This may be replaced when dependencies are built.
