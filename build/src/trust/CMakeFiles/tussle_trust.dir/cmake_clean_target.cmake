file(REMOVE_RECURSE
  "libtussle_trust.a"
)
