
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trust/certificates.cpp" "src/trust/CMakeFiles/tussle_trust.dir/certificates.cpp.o" "gcc" "src/trust/CMakeFiles/tussle_trust.dir/certificates.cpp.o.d"
  "/root/repo/src/trust/firewall.cpp" "src/trust/CMakeFiles/tussle_trust.dir/firewall.cpp.o" "gcc" "src/trust/CMakeFiles/tussle_trust.dir/firewall.cpp.o.d"
  "/root/repo/src/trust/identity.cpp" "src/trust/CMakeFiles/tussle_trust.dir/identity.cpp.o" "gcc" "src/trust/CMakeFiles/tussle_trust.dir/identity.cpp.o.d"
  "/root/repo/src/trust/mediator.cpp" "src/trust/CMakeFiles/tussle_trust.dir/mediator.cpp.o" "gcc" "src/trust/CMakeFiles/tussle_trust.dir/mediator.cpp.o.d"
  "/root/repo/src/trust/midcom.cpp" "src/trust/CMakeFiles/tussle_trust.dir/midcom.cpp.o" "gcc" "src/trust/CMakeFiles/tussle_trust.dir/midcom.cpp.o.d"
  "/root/repo/src/trust/reputation.cpp" "src/trust/CMakeFiles/tussle_trust.dir/reputation.cpp.o" "gcc" "src/trust/CMakeFiles/tussle_trust.dir/reputation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tussle_net.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/tussle_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/tussle_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
