file(REMOVE_RECURSE
  "CMakeFiles/tussle_trust.dir/certificates.cpp.o"
  "CMakeFiles/tussle_trust.dir/certificates.cpp.o.d"
  "CMakeFiles/tussle_trust.dir/firewall.cpp.o"
  "CMakeFiles/tussle_trust.dir/firewall.cpp.o.d"
  "CMakeFiles/tussle_trust.dir/identity.cpp.o"
  "CMakeFiles/tussle_trust.dir/identity.cpp.o.d"
  "CMakeFiles/tussle_trust.dir/mediator.cpp.o"
  "CMakeFiles/tussle_trust.dir/mediator.cpp.o.d"
  "CMakeFiles/tussle_trust.dir/midcom.cpp.o"
  "CMakeFiles/tussle_trust.dir/midcom.cpp.o.d"
  "CMakeFiles/tussle_trust.dir/reputation.cpp.o"
  "CMakeFiles/tussle_trust.dir/reputation.cpp.o.d"
  "libtussle_trust.a"
  "libtussle_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
