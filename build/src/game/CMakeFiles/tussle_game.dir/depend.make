# Empty dependencies file for tussle_game.
# This may be replaced when dependencies are built.
