file(REMOVE_RECURSE
  "CMakeFiles/tussle_game.dir/auction.cpp.o"
  "CMakeFiles/tussle_game.dir/auction.cpp.o.d"
  "CMakeFiles/tussle_game.dir/canonical.cpp.o"
  "CMakeFiles/tussle_game.dir/canonical.cpp.o.d"
  "CMakeFiles/tussle_game.dir/learners.cpp.o"
  "CMakeFiles/tussle_game.dir/learners.cpp.o.d"
  "CMakeFiles/tussle_game.dir/matrix_game.cpp.o"
  "CMakeFiles/tussle_game.dir/matrix_game.cpp.o.d"
  "CMakeFiles/tussle_game.dir/solvers.cpp.o"
  "CMakeFiles/tussle_game.dir/solvers.cpp.o.d"
  "libtussle_game.a"
  "libtussle_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
