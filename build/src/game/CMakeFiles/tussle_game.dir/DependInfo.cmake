
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/auction.cpp" "src/game/CMakeFiles/tussle_game.dir/auction.cpp.o" "gcc" "src/game/CMakeFiles/tussle_game.dir/auction.cpp.o.d"
  "/root/repo/src/game/canonical.cpp" "src/game/CMakeFiles/tussle_game.dir/canonical.cpp.o" "gcc" "src/game/CMakeFiles/tussle_game.dir/canonical.cpp.o.d"
  "/root/repo/src/game/learners.cpp" "src/game/CMakeFiles/tussle_game.dir/learners.cpp.o" "gcc" "src/game/CMakeFiles/tussle_game.dir/learners.cpp.o.d"
  "/root/repo/src/game/matrix_game.cpp" "src/game/CMakeFiles/tussle_game.dir/matrix_game.cpp.o" "gcc" "src/game/CMakeFiles/tussle_game.dir/matrix_game.cpp.o.d"
  "/root/repo/src/game/solvers.cpp" "src/game/CMakeFiles/tussle_game.dir/solvers.cpp.o" "gcc" "src/game/CMakeFiles/tussle_game.dir/solvers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
