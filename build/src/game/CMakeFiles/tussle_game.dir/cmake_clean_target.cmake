file(REMOVE_RECURSE
  "libtussle_game.a"
)
