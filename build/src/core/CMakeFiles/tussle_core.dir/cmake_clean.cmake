file(REMOVE_RECURSE
  "CMakeFiles/tussle_core.dir/actor.cpp.o"
  "CMakeFiles/tussle_core.dir/actor.cpp.o.d"
  "CMakeFiles/tussle_core.dir/choice.cpp.o"
  "CMakeFiles/tussle_core.dir/choice.cpp.o.d"
  "CMakeFiles/tussle_core.dir/report.cpp.o"
  "CMakeFiles/tussle_core.dir/report.cpp.o.d"
  "CMakeFiles/tussle_core.dir/scenario.cpp.o"
  "CMakeFiles/tussle_core.dir/scenario.cpp.o.d"
  "CMakeFiles/tussle_core.dir/tussle_space.cpp.o"
  "CMakeFiles/tussle_core.dir/tussle_space.cpp.o.d"
  "libtussle_core.a"
  "libtussle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
