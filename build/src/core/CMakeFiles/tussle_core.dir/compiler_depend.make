# Empty compiler generated dependencies file for tussle_core.
# This may be replaced when dependencies are built.
