file(REMOVE_RECURSE
  "libtussle_core.a"
)
