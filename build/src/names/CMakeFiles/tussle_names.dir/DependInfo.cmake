
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/names/name_system.cpp" "src/names/CMakeFiles/tussle_names.dir/name_system.cpp.o" "gcc" "src/names/CMakeFiles/tussle_names.dir/name_system.cpp.o.d"
  "/root/repo/src/names/workload.cpp" "src/names/CMakeFiles/tussle_names.dir/workload.cpp.o" "gcc" "src/names/CMakeFiles/tussle_names.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tussle_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
