# Empty compiler generated dependencies file for tussle_names.
# This may be replaced when dependencies are built.
