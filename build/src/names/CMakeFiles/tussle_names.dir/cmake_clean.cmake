file(REMOVE_RECURSE
  "CMakeFiles/tussle_names.dir/name_system.cpp.o"
  "CMakeFiles/tussle_names.dir/name_system.cpp.o.d"
  "CMakeFiles/tussle_names.dir/workload.cpp.o"
  "CMakeFiles/tussle_names.dir/workload.cpp.o.d"
  "libtussle_names.a"
  "libtussle_names.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
