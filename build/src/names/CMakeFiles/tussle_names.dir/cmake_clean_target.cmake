file(REMOVE_RECURSE
  "libtussle_names.a"
)
