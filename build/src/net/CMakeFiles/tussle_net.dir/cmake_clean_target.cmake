file(REMOVE_RECURSE
  "libtussle_net.a"
)
