# Empty dependencies file for tussle_net.
# This may be replaced when dependencies are built.
