file(REMOVE_RECURSE
  "CMakeFiles/tussle_net.dir/address.cpp.o"
  "CMakeFiles/tussle_net.dir/address.cpp.o.d"
  "CMakeFiles/tussle_net.dir/flow_stats.cpp.o"
  "CMakeFiles/tussle_net.dir/flow_stats.cpp.o.d"
  "CMakeFiles/tussle_net.dir/forwarding.cpp.o"
  "CMakeFiles/tussle_net.dir/forwarding.cpp.o.d"
  "CMakeFiles/tussle_net.dir/network.cpp.o"
  "CMakeFiles/tussle_net.dir/network.cpp.o.d"
  "CMakeFiles/tussle_net.dir/node.cpp.o"
  "CMakeFiles/tussle_net.dir/node.cpp.o.d"
  "CMakeFiles/tussle_net.dir/packet.cpp.o"
  "CMakeFiles/tussle_net.dir/packet.cpp.o.d"
  "CMakeFiles/tussle_net.dir/queue.cpp.o"
  "CMakeFiles/tussle_net.dir/queue.cpp.o.d"
  "CMakeFiles/tussle_net.dir/topology.cpp.o"
  "CMakeFiles/tussle_net.dir/topology.cpp.o.d"
  "libtussle_net.a"
  "libtussle_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tussle_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
