
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/net/CMakeFiles/tussle_net.dir/address.cpp.o" "gcc" "src/net/CMakeFiles/tussle_net.dir/address.cpp.o.d"
  "/root/repo/src/net/flow_stats.cpp" "src/net/CMakeFiles/tussle_net.dir/flow_stats.cpp.o" "gcc" "src/net/CMakeFiles/tussle_net.dir/flow_stats.cpp.o.d"
  "/root/repo/src/net/forwarding.cpp" "src/net/CMakeFiles/tussle_net.dir/forwarding.cpp.o" "gcc" "src/net/CMakeFiles/tussle_net.dir/forwarding.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/tussle_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/tussle_net.dir/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/tussle_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/tussle_net.dir/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/tussle_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/tussle_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/net/CMakeFiles/tussle_net.dir/queue.cpp.o" "gcc" "src/net/CMakeFiles/tussle_net.dir/queue.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/tussle_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/tussle_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
