file(REMOVE_RECURSE
  "CMakeFiles/bench_encryption.dir/bench_encryption.cpp.o"
  "CMakeFiles/bench_encryption.dir/bench_encryption.cpp.o.d"
  "bench_encryption"
  "bench_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
