# Empty compiler generated dependencies file for bench_encryption.
# This may be replaced when dependencies are built.
