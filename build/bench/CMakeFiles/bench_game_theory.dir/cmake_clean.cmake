file(REMOVE_RECURSE
  "CMakeFiles/bench_game_theory.dir/bench_game_theory.cpp.o"
  "CMakeFiles/bench_game_theory.dir/bench_game_theory.cpp.o.d"
  "bench_game_theory"
  "bench_game_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_game_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
