file(REMOVE_RECURSE
  "CMakeFiles/bench_tussle_isolation.dir/bench_tussle_isolation.cpp.o"
  "CMakeFiles/bench_tussle_isolation.dir/bench_tussle_isolation.cpp.o.d"
  "bench_tussle_isolation"
  "bench_tussle_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tussle_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
