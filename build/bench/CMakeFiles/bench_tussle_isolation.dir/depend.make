# Empty dependencies file for bench_tussle_isolation.
# This may be replaced when dependencies are built.
