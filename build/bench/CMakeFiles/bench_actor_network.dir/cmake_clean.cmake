file(REMOVE_RECURSE
  "CMakeFiles/bench_actor_network.dir/bench_actor_network.cpp.o"
  "CMakeFiles/bench_actor_network.dir/bench_actor_network.cpp.o.d"
  "bench_actor_network"
  "bench_actor_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_actor_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
