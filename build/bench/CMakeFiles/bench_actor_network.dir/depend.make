# Empty dependencies file for bench_actor_network.
# This may be replaced when dependencies are built.
