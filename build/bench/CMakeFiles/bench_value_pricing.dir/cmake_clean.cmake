file(REMOVE_RECURSE
  "CMakeFiles/bench_value_pricing.dir/bench_value_pricing.cpp.o"
  "CMakeFiles/bench_value_pricing.dir/bench_value_pricing.cpp.o.d"
  "bench_value_pricing"
  "bench_value_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
