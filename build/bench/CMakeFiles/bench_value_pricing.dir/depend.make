# Empty dependencies file for bench_value_pricing.
# This may be replaced when dependencies are built.
