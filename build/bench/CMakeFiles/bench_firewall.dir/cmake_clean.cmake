file(REMOVE_RECURSE
  "CMakeFiles/bench_firewall.dir/bench_firewall.cpp.o"
  "CMakeFiles/bench_firewall.dir/bench_firewall.cpp.o.d"
  "bench_firewall"
  "bench_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
