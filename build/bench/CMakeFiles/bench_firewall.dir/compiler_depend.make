# Empty compiler generated dependencies file for bench_firewall.
# This may be replaced when dependencies are built.
