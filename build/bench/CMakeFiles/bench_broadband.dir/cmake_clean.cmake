file(REMOVE_RECURSE
  "CMakeFiles/bench_broadband.dir/bench_broadband.cpp.o"
  "CMakeFiles/bench_broadband.dir/bench_broadband.cpp.o.d"
  "bench_broadband"
  "bench_broadband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_broadband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
