# Empty compiler generated dependencies file for bench_broadband.
# This may be replaced when dependencies are built.
