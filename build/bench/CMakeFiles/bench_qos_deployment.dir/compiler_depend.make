# Empty compiler generated dependencies file for bench_qos_deployment.
# This may be replaced when dependencies are built.
