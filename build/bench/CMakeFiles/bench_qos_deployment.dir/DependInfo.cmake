
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_qos_deployment.cpp" "bench/CMakeFiles/bench_qos_deployment.dir/bench_qos_deployment.cpp.o" "gcc" "bench/CMakeFiles/bench_qos_deployment.dir/bench_qos_deployment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tussle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/tussle_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/tussle_game.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/tussle_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/tussle_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/tussle_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/names/CMakeFiles/tussle_names.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tussle_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tussle_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tussle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
