file(REMOVE_RECURSE
  "CMakeFiles/bench_qos_deployment.dir/bench_qos_deployment.cpp.o"
  "CMakeFiles/bench_qos_deployment.dir/bench_qos_deployment.cpp.o.d"
  "bench_qos_deployment"
  "bench_qos_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qos_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
