file(REMOVE_RECURSE
  "CMakeFiles/bench_hijack.dir/bench_hijack.cpp.o"
  "CMakeFiles/bench_hijack.dir/bench_hijack.cpp.o.d"
  "bench_hijack"
  "bench_hijack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hijack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
