# Empty dependencies file for bench_hijack.
# This may be replaced when dependencies are built.
