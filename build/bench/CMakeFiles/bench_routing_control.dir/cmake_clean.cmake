file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_control.dir/bench_routing_control.cpp.o"
  "CMakeFiles/bench_routing_control.dir/bench_routing_control.cpp.o.d"
  "bench_routing_control"
  "bench_routing_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
