# Empty compiler generated dependencies file for bench_routing_control.
# This may be replaced when dependencies are built.
