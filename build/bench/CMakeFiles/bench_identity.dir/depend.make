# Empty dependencies file for bench_identity.
# This may be replaced when dependencies are built.
