file(REMOVE_RECURSE
  "CMakeFiles/bench_identity.dir/bench_identity.cpp.o"
  "CMakeFiles/bench_identity.dir/bench_identity.cpp.o.d"
  "bench_identity"
  "bench_identity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_identity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
