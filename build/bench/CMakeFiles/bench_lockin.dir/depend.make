# Empty dependencies file for bench_lockin.
# This may be replaced when dependencies are built.
