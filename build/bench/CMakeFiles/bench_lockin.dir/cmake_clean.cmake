file(REMOVE_RECURSE
  "CMakeFiles/bench_lockin.dir/bench_lockin.cpp.o"
  "CMakeFiles/bench_lockin.dir/bench_lockin.cpp.o.d"
  "bench_lockin"
  "bench_lockin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lockin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
