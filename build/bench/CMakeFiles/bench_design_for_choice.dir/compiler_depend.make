# Empty compiler generated dependencies file for bench_design_for_choice.
# This may be replaced when dependencies are built.
