file(REMOVE_RECURSE
  "CMakeFiles/bench_design_for_choice.dir/bench_design_for_choice.cpp.o"
  "CMakeFiles/bench_design_for_choice.dir/bench_design_for_choice.cpp.o.d"
  "bench_design_for_choice"
  "bench_design_for_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_for_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
