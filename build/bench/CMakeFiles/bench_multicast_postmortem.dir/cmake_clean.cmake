file(REMOVE_RECURSE
  "CMakeFiles/bench_multicast_postmortem.dir/bench_multicast_postmortem.cpp.o"
  "CMakeFiles/bench_multicast_postmortem.dir/bench_multicast_postmortem.cpp.o.d"
  "bench_multicast_postmortem"
  "bench_multicast_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicast_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
