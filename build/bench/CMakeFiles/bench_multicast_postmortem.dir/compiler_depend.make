# Empty compiler generated dependencies file for bench_multicast_postmortem.
# This may be replaced when dependencies are built.
