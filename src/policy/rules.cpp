#include "policy/rules.hpp"

#include <algorithm>

namespace tussle::policy {

std::string to_string(Effect e) {
  switch (e) {
    case Effect::kPermit: return "permit";
    case Effect::kDeny: return "deny";
    case Effect::kRedirect: return "redirect";
  }
  return "?";
}

PolicySet& PolicySet::add(const std::string& name, Effect effect, const std::string& when,
                          const std::string& tussle_space,
                          const std::string& redirect_target) {
  if (effect == Effect::kRedirect && redirect_target.empty()) {
    throw PolicyError("redirect rule '" + name + "' needs a target");
  }
  Expr e = Expr::compile(when, onto_);
  if (e.result_type() != ValueType::kBool) {
    throw TypeError("rule '" + name + "' condition is not boolean");
  }
  rules_.push_back(Rule{name, effect, std::move(e), redirect_target, tussle_space});
  return *this;
}

bool PolicySet::remove(const std::string& name) {
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [&](const Rule& r) { return r.name == name; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

Decision PolicySet::evaluate(const Context& ctx) const {
  for (const Rule& r : rules_) {
    if (r.when.test(ctx)) {
      return Decision{r.effect, r.name, r.redirect_target};
    }
  }
  return Decision{default_, {}, {}};
}

std::vector<Coupling> PolicySet::cross_space_couplings() const {
  std::vector<Coupling> out;
  for (const Rule& r : rules_) {
    if (r.tussle_space.empty()) continue;  // untagged rules are exempt
    for (const std::string& attr : r.when.referenced_attributes()) {
      const std::string space = onto_.space_of(attr);
      if (!space.empty() && space != r.tussle_space) {
        out.push_back(Coupling{r.name, r.tussle_space, space, attr});
      }
    }
  }
  return out;
}

double PolicySet::spillover_index() const {
  std::size_t refs = 0;
  std::size_t crossings = 0;
  for (const Rule& r : rules_) {
    if (r.tussle_space.empty()) continue;
    for (const std::string& attr : r.when.referenced_attributes()) {
      const std::string space = onto_.space_of(attr);
      if (space.empty()) continue;
      ++refs;
      if (space != r.tussle_space) ++crossings;
    }
  }
  return refs == 0 ? 0.0 : static_cast<double>(crossings) / static_cast<double>(refs);
}

}  // namespace tussle::policy
