#include "policy/packet_adapter.hpp"

#include <memory>

namespace tussle::policy {

Ontology standard_packet_ontology() {
  Ontology o;
  o.declare("proto", ValueType::kString, "application");
  o.declare("payload_visible", ValueType::kBool, "security");
  o.declare("opaque", ValueType::kBool, "security");
  o.declare("encrypted", ValueType::kBool, "security");
  o.declare("tos", ValueType::kString, "qos");
  o.declare("size", ValueType::kNumber, "economics");
  o.declare("src_as", ValueType::kNumber, "identity");
  o.declare("dst_as", ValueType::kNumber, "identity");
  o.declare("src_host", ValueType::kNumber, "identity");
  o.declare("dst_host", ValueType::kNumber, "identity");
  o.declare("ttl", ValueType::kNumber, "application");
  o.declare("has_source_route", ValueType::kBool, "routing");
  return o;
}

Context context_for_packet(const net::Packet& p) {
  Context ctx;
  ctx.set("proto", net::to_string(p.observable_proto()));
  ctx.set("payload_visible", !p.encrypted);
  ctx.set("opaque", p.visibly_opaque());
  ctx.set("encrypted", p.encrypted);
  ctx.set("tos", net::to_string(p.tos));
  ctx.set("size", static_cast<double>(p.size_bytes));
  ctx.set("src_as", static_cast<double>(p.src.provider));
  ctx.set("dst_as", static_cast<double>(p.dst.provider));
  ctx.set("src_host", static_cast<double>(p.src.host));
  ctx.set("dst_host", static_cast<double>(p.dst.host));
  ctx.set("ttl", static_cast<double>(p.ttl));
  ctx.set("has_source_route", p.source_route.has_value());
  return ctx;
}

net::PacketFilter make_packet_filter(std::string name, bool disclosed, PolicySet policy,
                                     RedirectResolver resolver) {
  auto shared = std::make_shared<PolicySet>(std::move(policy));
  auto res = std::make_shared<RedirectResolver>(std::move(resolver));
  net::PacketFilter f;
  f.name = std::move(name);
  f.disclosed = disclosed;
  f.fn = [shared, res, fname = f.name](const net::Packet& p) -> net::FilterDecision {
    const Decision d = shared->evaluate(context_for_packet(p));
    switch (d.effect) {
      case Effect::kPermit: return net::FilterDecision::accept();
      case Effect::kDeny:
        return net::FilterDecision::drop(fname + ":" +
                                         (d.rule_name.empty() ? "default" : d.rule_name));
      case Effect::kRedirect: {
        if (*res) {
          if (auto addr = (*res)(d.redirect_target)) {
            return net::FilterDecision::redirect(*addr, fname + ":" + d.rule_name);
          }
        }
        // Unresolvable redirect degrades to a drop: failing closed is the
        // only safe behaviour for a control point.
        return net::FilterDecision::drop(fname + ":unresolvable-redirect");
      }
    }
    return net::FilterDecision::accept();
  };
  return f;
}

}  // namespace tussle::policy
