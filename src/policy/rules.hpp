// Rule engine: ordered first-match rule sets with a default effect.
//
// This is the simulator's analogue of the policy-language systems the paper
// surveys (P3P, KeyNote, COPS): actors express constraints inside a bounded
// ontology, and the engine decides per request. On top of plain evaluation
// it offers the modularity analysis the paper motivates — detecting rules
// that couple attributes from different tussle spaces.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "policy/expr.hpp"

namespace tussle::policy {

enum class Effect { kPermit, kDeny, kRedirect };

std::string to_string(Effect e);

struct Rule {
  std::string name;
  Effect effect = Effect::kPermit;
  Expr when;
  /// Target label for kRedirect (interpreted by the adapter layer).
  std::string redirect_target;
  /// Declared tussle space this rule is *supposed* to govern.
  std::string tussle_space;
};

struct Decision {
  Effect effect = Effect::kPermit;
  std::string rule_name;  ///< empty when the default applied
  std::string redirect_target;
};

/// Report row from the modularity analysis: a rule that reads attributes
/// outside its own declared tussle space.
struct Coupling {
  std::string rule_name;
  std::string rule_space;
  std::string foreign_space;
  std::string attribute;
};

class PolicySet {
 public:
  PolicySet(Ontology ontology, Effect default_effect)
      : onto_(std::move(ontology)), default_(default_effect) {}

  const Ontology& ontology() const noexcept { return onto_; }
  Effect default_effect() const noexcept { return default_; }

  /// Compiles and appends a rule. Throws on parse/ontology/type errors.
  PolicySet& add(const std::string& name, Effect effect, const std::string& when,
                 const std::string& tussle_space = {}, const std::string& redirect_target = {});

  bool remove(const std::string& name);
  const std::vector<Rule>& rules() const noexcept { return rules_; }

  /// First-match evaluation; falls back to the default effect.
  Decision evaluate(const Context& ctx) const;

  /// Every cross-space attribute reference — empty means the rule set is
  /// modular along its declared tussle boundaries.
  std::vector<Coupling> cross_space_couplings() const;

  /// Spillover index in [0,1]: fraction of attribute references that cross
  /// a tussle boundary. 0 = perfectly modular.
  double spillover_index() const;

 private:
  Ontology onto_;
  Effect default_;
  std::vector<Rule> rules_;
};

}  // namespace tussle::policy
