// Bridges the policy engine to the data plane.
//
// The standard packet ontology declares what an on-path box can lawfully
// *see* (and therefore what a policy can be written about): header fields,
// the observable protocol, opacity, and addressing — tagged by tussle
// space. Note what is absent: payload contents of encrypted packets are not
// in the vocabulary at all, so no installable policy can depend on them.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "net/node.hpp"
#include "policy/rules.hpp"

namespace tussle::policy {

/// The attribute vocabulary available to on-path packet policies.
///
/// Spaces: "application" (what is being run), "qos" (what service is asked
/// for), "identity" (who is talking), "economics" (size/accounting),
/// "security" (opacity).
Ontology standard_packet_ontology();

/// Binds a packet's observable fields into a Context.
Context context_for_packet(const net::Packet& p);

/// Resolves a redirect target label (e.g. "isp-mail-server") to an address.
using RedirectResolver = std::function<std::optional<net::Address>(const std::string&)>;

/// Wraps a PolicySet as a node filter. `name` identifies the controlling
/// actor; `disclosed` feeds the paper's visibility requirement.
net::PacketFilter make_packet_filter(std::string name, bool disclosed, PolicySet policy,
                                     RedirectResolver resolver = {});

}  // namespace tussle::policy
