// The policy expression language.
//
// A small, total (no loops, no side effects) boolean/arithmetic language
// over declared attributes:
//
//   proto == "web" and (dst_as in [3, 7] or encrypted) and size < 1500
//
// Grammar (precedence low→high):
//   expr   := or
//   or     := and ("or" and)*
//   and    := unary ("and" unary)*
//   unary  := "not" unary | cmp
//   cmp    := sum (("=="|"!="|"<"|"<="|">"|">=") sum | "in" list)?
//   sum    := term (("+"|"-") term)*
//   term   := atom (("*"|"/") atom)*
//   atom   := "(" expr ")" | number | string | "true" | "false" | ident
//   list   := "[" literal ("," literal)* "]"
//
// Compilation checks every identifier against an Ontology and type-checks
// operators, so malformed policy fails at install time, not on the fast
// path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "policy/value.hpp"

namespace tussle::policy {

/// A compiled, immutable expression. Cheap to copy (shared AST).
class Expr {
 public:
  /// Parses and type-checks `source` against `onto`.
  /// Throws ParseError / OntologyError / TypeError.
  static Expr compile(const std::string& source, const Ontology& onto);

  /// Evaluates against a context; result type matches the checked type.
  Value eval(const Context& ctx) const;

  /// Convenience for predicate use: evaluates and requires a bool result.
  bool test(const Context& ctx) const;

  ValueType result_type() const noexcept { return type_; }
  const std::string& source() const noexcept { return source_; }

  /// All attribute names the expression reads — used for tussle-boundary
  /// analysis (which tussle spaces does this policy couple?).
  std::vector<std::string> referenced_attributes() const;

  struct Node;  // AST; opaque to clients

 private:
  Expr(std::shared_ptr<const Node> root, ValueType t, std::string src)
      : root_(std::move(root)), type_(t), source_(std::move(src)) {}

  std::shared_ptr<const Node> root_;
  ValueType type_;
  std::string source_;
};

}  // namespace tussle::policy
