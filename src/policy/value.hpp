// Values and attribute contexts for the policy language.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <variant>

namespace tussle::policy {

/// Base class of all policy-engine errors.
class PolicyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The expression referenced an attribute the ontology does not define.
/// This is the formal face of the paper's §II-B point: a policy language
/// bounds the tussle that can be expressed within defined limits.
class OntologyError : public PolicyError {
 public:
  using PolicyError::PolicyError;
};

class ParseError : public PolicyError {
 public:
  using PolicyError::PolicyError;
};

class TypeError : public PolicyError {
 public:
  using PolicyError::PolicyError;
};

/// Runtime value: boolean, number, or string.
using Value = std::variant<bool, double, std::string>;

enum class ValueType { kBool, kNumber, kString };

ValueType type_of(const Value& v) noexcept;
std::string to_string(ValueType t);
std::string to_string(const Value& v);

/// Attribute bindings an expression is evaluated against.
class Context {
 public:
  Context& set(const std::string& name, Value v) {
    attrs_[name] = std::move(v);
    return *this;
  }
  Context& set(const std::string& name, const char* v) {
    return set(name, Value(std::string(v)));
  }
  /// Throws OntologyError when the attribute is absent.
  const Value& get(const std::string& name) const;
  bool has(const std::string& name) const { return attrs_.count(name) != 0; }

 private:
  std::map<std::string, Value> attrs_;
};

/// The declared attribute vocabulary. Expressions are checked against it at
/// compile time, so an undeclared attribute fails *before* any packet flows.
///
/// Each attribute may be tagged with the tussle space it belongs to
/// ("qos", "application", "identity", ...). The tagging powers the
/// modularity analysis in PolicySet: a rule whose expression crosses
/// spaces is coupling tussles that the paper says should stay separate.
class Ontology {
 public:
  Ontology& declare(const std::string& name, ValueType t, std::string space = {}) {
    attrs_[name] = t;
    if (!space.empty()) spaces_[name] = std::move(space);
    return *this;
  }
  bool defines(const std::string& name) const { return attrs_.count(name) != 0; }
  ValueType type_of(const std::string& name) const;
  /// Tussle space of the attribute, or "" when untagged.
  std::string space_of(const std::string& name) const;
  std::size_t size() const noexcept { return attrs_.size(); }

 private:
  std::map<std::string, ValueType> attrs_;
  std::map<std::string, std::string> spaces_;
};

}  // namespace tussle::policy
