#include "policy/expr.hpp"

#include <cctype>
#include <cmath>
#include <functional>
#include <set>

namespace tussle::policy {

// ------------------------------------------------------------- lexer ------

namespace {

enum class Tok {
  kEnd,
  kNumber,
  kString,
  kIdent,     // also carries keywords: and/or/not/in/true/false
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  double number = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Token next() {
    skip_ws();
    Token t;
    t.pos = i_;
    if (i_ >= src_.size()) return t;
    const char c = src_[i_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[i_ + 1])))) {
      return lex_number();
    }
    if (c == '"' || c == '\'') return lex_string(c);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_ident();
    ++i_;
    switch (c) {
      case '(': t.kind = Tok::kLParen; return t;
      case ')': t.kind = Tok::kRParen; return t;
      case '[': t.kind = Tok::kLBracket; return t;
      case ']': t.kind = Tok::kRBracket; return t;
      case ',': t.kind = Tok::kComma; return t;
      case '+': t.kind = Tok::kPlus; return t;
      case '-': t.kind = Tok::kMinus; return t;
      case '*': t.kind = Tok::kStar; return t;
      case '/': t.kind = Tok::kSlash; return t;
      case '=':
        if (peek() == '=') {
          ++i_;
          t.kind = Tok::kEq;
          return t;
        }
        break;
      case '!':
        if (peek() == '=') {
          ++i_;
          t.kind = Tok::kNe;
          return t;
        }
        break;
      case '<':
        if (peek() == '=') {
          ++i_;
          t.kind = Tok::kLe;
        } else {
          t.kind = Tok::kLt;
        }
        return t;
      case '>':
        if (peek() == '=') {
          ++i_;
          t.kind = Tok::kGe;
        } else {
          t.kind = Tok::kGt;
        }
        return t;
      default: break;
    }
    throw ParseError("unexpected character '" + std::string(1, c) + "' at offset " +
                     std::to_string(t.pos));
  }

 private:
  char peek() const { return i_ < src_.size() ? src_[i_] : '\0'; }

  void skip_ws() {
    while (i_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[i_]))) ++i_;
  }

  Token lex_number() {
    Token t;
    t.pos = i_;
    t.kind = Tok::kNumber;
    std::size_t end = i_;
    while (end < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[end])) || src_[end] == '.')) {
      ++end;
    }
    t.text = src_.substr(i_, end - i_);
    t.number = std::stod(t.text);
    i_ = end;
    return t;
  }

  Token lex_string(char quote) {
    Token t;
    t.pos = i_;
    t.kind = Tok::kString;
    ++i_;  // opening quote
    std::string out;
    while (i_ < src_.size() && src_[i_] != quote) {
      out.push_back(src_[i_]);
      ++i_;
    }
    if (i_ >= src_.size()) throw ParseError("unterminated string literal");
    ++i_;  // closing quote
    t.text = std::move(out);
    return t;
  }

  Token lex_ident() {
    Token t;
    t.pos = i_;
    t.kind = Tok::kIdent;
    std::size_t end = i_;
    while (end < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[end])) ||
                                 src_[end] == '_' || src_[end] == '.')) {
      ++end;
    }
    t.text = src_.substr(i_, end - i_);
    i_ = end;
    return t;
  }

  const std::string& src_;
  std::size_t i_ = 0;
};

}  // namespace

// --------------------------------------------------------------- AST ------

struct Expr::Node {
  enum class Op {
    kLiteral,
    kAttr,
    kNot,
    kAnd,
    kOr,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kIn,
    kAdd,
    kSub,
    kMul,
    kDiv,
  };
  Op op = Op::kLiteral;
  Value literal;
  std::string attr;
  std::vector<Value> list;  // for kIn
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
  ValueType type = ValueType::kBool;
};

namespace {

using Node = Expr::Node;
using Op = Node::Op;
using NodePtr = std::shared_ptr<const Node>;

class Parser {
 public:
  Parser(const std::string& src, const Ontology& onto) : lexer_(src), onto_(onto) { advance(); }

  NodePtr parse() {
    NodePtr e = parse_or();
    if (cur_.kind != Tok::kEnd) {
      throw ParseError("trailing input at offset " + std::to_string(cur_.pos));
    }
    return e;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  bool accept(Tok k) {
    if (cur_.kind != k) return false;
    advance();
    return true;
  }

  bool accept_kw(const char* kw) {
    if (cur_.kind != Tok::kIdent || cur_.text != kw) return false;
    advance();
    return true;
  }

  void expect(Tok k, const char* what) {
    if (!accept(k)) {
      throw ParseError(std::string("expected ") + what + " at offset " +
                       std::to_string(cur_.pos));
    }
  }

  static NodePtr make_bool_binary(Op op, NodePtr l, NodePtr r) {
    if (l->type != ValueType::kBool || r->type != ValueType::kBool) {
      throw TypeError("logical operator requires bool operands");
    }
    auto n = std::make_shared<Node>();
    n->op = op;
    n->lhs = std::move(l);
    n->rhs = std::move(r);
    n->type = ValueType::kBool;
    return n;
  }

  NodePtr parse_or() {
    NodePtr l = parse_and();
    while (accept_kw("or")) l = make_bool_binary(Op::kOr, l, parse_and());
    return l;
  }

  NodePtr parse_and() {
    NodePtr l = parse_unary();
    while (accept_kw("and")) l = make_bool_binary(Op::kAnd, l, parse_unary());
    return l;
  }

  NodePtr parse_unary() {
    if (accept_kw("not")) {
      NodePtr operand = parse_unary();
      if (operand->type != ValueType::kBool) throw TypeError("'not' requires a bool operand");
      auto n = std::make_shared<Node>();
      n->op = Op::kNot;
      n->lhs = std::move(operand);
      n->type = ValueType::kBool;
      return n;
    }
    return parse_cmp();
  }

  NodePtr parse_cmp() {
    NodePtr l = parse_sum();
    Op op;
    if (accept(Tok::kEq)) {
      op = Op::kEq;
    } else if (accept(Tok::kNe)) {
      op = Op::kNe;
    } else if (accept(Tok::kLt)) {
      op = Op::kLt;
    } else if (accept(Tok::kLe)) {
      op = Op::kLe;
    } else if (accept(Tok::kGt)) {
      op = Op::kGt;
    } else if (accept(Tok::kGe)) {
      op = Op::kGe;
    } else if (cur_.kind == Tok::kIdent && cur_.text == "in") {
      advance();
      return parse_in(std::move(l));
    } else {
      return l;
    }
    NodePtr r = parse_sum();
    if (l->type != r->type) {
      throw TypeError("comparison between " + to_string(l->type) + " and " +
                      to_string(r->type));
    }
    if ((op == Op::kLt || op == Op::kLe || op == Op::kGt || op == Op::kGe) &&
        l->type == ValueType::kBool) {
      throw TypeError("ordering comparison on bool");
    }
    auto n = std::make_shared<Node>();
    n->op = op;
    n->lhs = std::move(l);
    n->rhs = std::move(r);
    n->type = ValueType::kBool;
    return n;
  }

  NodePtr parse_in(NodePtr l) {
    expect(Tok::kLBracket, "'['");
    auto n = std::make_shared<Node>();
    n->op = Op::kIn;
    n->type = ValueType::kBool;
    do {
      Value v = parse_literal_value();
      if (type_of(v) != l->type) {
        throw TypeError("'in' list element type mismatches subject");
      }
      n->list.push_back(std::move(v));
    } while (accept(Tok::kComma));
    expect(Tok::kRBracket, "']'");
    n->lhs = std::move(l);
    return n;
  }

  Value parse_literal_value() {
    if (cur_.kind == Tok::kNumber) {
      Value v = cur_.number;
      advance();
      return v;
    }
    if (cur_.kind == Tok::kString) {
      Value v = cur_.text;
      advance();
      return v;
    }
    if (cur_.kind == Tok::kIdent && (cur_.text == "true" || cur_.text == "false")) {
      Value v = (cur_.text == "true");
      advance();
      return v;
    }
    throw ParseError("expected literal at offset " + std::to_string(cur_.pos));
  }

  NodePtr parse_sum() {
    NodePtr l = parse_term();
    for (;;) {
      Op op;
      if (accept(Tok::kPlus)) {
        op = Op::kAdd;
      } else if (accept(Tok::kMinus)) {
        op = Op::kSub;
      } else {
        return l;
      }
      l = make_arith(op, l, parse_term());
    }
  }

  NodePtr parse_term() {
    NodePtr l = parse_atom();
    for (;;) {
      Op op;
      if (accept(Tok::kStar)) {
        op = Op::kMul;
      } else if (accept(Tok::kSlash)) {
        op = Op::kDiv;
      } else {
        return l;
      }
      l = make_arith(op, l, parse_atom());
    }
  }

  static NodePtr make_arith(Op op, NodePtr l, NodePtr r) {
    if (l->type != ValueType::kNumber || r->type != ValueType::kNumber) {
      throw TypeError("arithmetic requires number operands");
    }
    auto n = std::make_shared<Node>();
    n->op = op;
    n->lhs = std::move(l);
    n->rhs = std::move(r);
    n->type = ValueType::kNumber;
    return n;
  }

  NodePtr parse_atom() {
    if (accept(Tok::kLParen)) {
      NodePtr e = parse_or();
      expect(Tok::kRParen, "')'");
      return e;
    }
    if (cur_.kind == Tok::kNumber || cur_.kind == Tok::kString ||
        (cur_.kind == Tok::kIdent && (cur_.text == "true" || cur_.text == "false"))) {
      auto n = std::make_shared<Node>();
      n->op = Op::kLiteral;
      n->literal = parse_literal_value();
      n->type = type_of(n->literal);
      return n;
    }
    if (cur_.kind == Tok::kIdent) {
      // Here the ontology does its bounding work.
      if (!onto_.defines(cur_.text)) {
        throw OntologyError("attribute not in ontology: " + cur_.text);
      }
      auto n = std::make_shared<Node>();
      n->op = Op::kAttr;
      n->attr = cur_.text;
      n->type = onto_.type_of(cur_.text);
      advance();
      return n;
    }
    throw ParseError("expected expression at offset " + std::to_string(cur_.pos));
  }

  Lexer lexer_;
  const Ontology& onto_;
  Token cur_;
};

Value eval_node(const Node& n, const Context& ctx) {
  switch (n.op) {
    case Op::kLiteral: return n.literal;
    case Op::kAttr: {
      const Value& v = ctx.get(n.attr);
      if (type_of(v) != n.type) {
        throw TypeError("attribute " + n.attr + " bound to wrong type at eval time");
      }
      return v;
    }
    case Op::kNot: return !std::get<bool>(eval_node(*n.lhs, ctx));
    case Op::kAnd:
      // Short-circuit: policies often guard expensive attributes.
      if (!std::get<bool>(eval_node(*n.lhs, ctx))) return false;
      return eval_node(*n.rhs, ctx);
    case Op::kOr:
      if (std::get<bool>(eval_node(*n.lhs, ctx))) return true;
      return eval_node(*n.rhs, ctx);
    case Op::kEq: return eval_node(*n.lhs, ctx) == eval_node(*n.rhs, ctx);
    case Op::kNe: return !(eval_node(*n.lhs, ctx) == eval_node(*n.rhs, ctx));
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      const Value a = eval_node(*n.lhs, ctx);
      const Value b = eval_node(*n.rhs, ctx);
      int c;
      if (a.index() == 1) {
        const double x = std::get<double>(a), y = std::get<double>(b);
        c = (x < y) ? -1 : (x > y ? 1 : 0);
      } else {
        const auto& x = std::get<std::string>(a);
        const auto& y = std::get<std::string>(b);
        c = x.compare(y);
      }
      switch (n.op) {
        case Op::kLt: return c < 0;
        case Op::kLe: return c <= 0;
        case Op::kGt: return c > 0;
        default: return c >= 0;
      }
    }
    case Op::kIn: {
      const Value subject = eval_node(*n.lhs, ctx);
      for (const Value& v : n.list) {
        if (v == subject) return true;
      }
      return false;
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv: {
      const double a = std::get<double>(eval_node(*n.lhs, ctx));
      const double b = std::get<double>(eval_node(*n.rhs, ctx));
      switch (n.op) {
        case Op::kAdd: return a + b;
        case Op::kSub: return a - b;
        case Op::kMul: return a * b;
        default:
          if (b == 0.0) throw TypeError("division by zero in policy expression");
          return a / b;
      }
    }
  }
  throw PolicyError("corrupt AST");
}

void collect_attrs(const Node& n, std::set<std::string>& out) {
  if (n.op == Op::kAttr) out.insert(n.attr);
  if (n.lhs) collect_attrs(*n.lhs, out);
  if (n.rhs) collect_attrs(*n.rhs, out);
}

}  // namespace

// -------------------------------------------------------------- Expr ------

Expr Expr::compile(const std::string& source, const Ontology& onto) {
  Parser p(source, onto);
  std::shared_ptr<const Node> root = p.parse();
  return Expr(root, root->type, source);
}

Value Expr::eval(const Context& ctx) const { return eval_node(*root_, ctx); }

bool Expr::test(const Context& ctx) const {
  if (type_ != ValueType::kBool) throw TypeError("test() on non-bool expression");
  return std::get<bool>(eval(ctx));
}

std::vector<std::string> Expr::referenced_attributes() const {
  std::set<std::string> s;
  collect_attrs(*root_, s);
  return {s.begin(), s.end()};
}

}  // namespace tussle::policy
