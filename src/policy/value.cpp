#include "policy/value.hpp"

#include <cstdio>

namespace tussle::policy {

ValueType type_of(const Value& v) noexcept {
  switch (v.index()) {
    case 0: return ValueType::kBool;
    case 1: return ValueType::kNumber;
    default: return ValueType::kString;
  }
}

std::string to_string(ValueType t) {
  switch (t) {
    case ValueType::kBool: return "bool";
    case ValueType::kNumber: return "number";
    case ValueType::kString: return "string";
  }
  return "?";
}

std::string to_string(const Value& v) {
  switch (v.index()) {
    case 0: return std::get<bool>(v) ? "true" : "false";
    case 1: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v));
      return buf;
    }
    default: return "\"" + std::get<std::string>(v) + "\"";
  }
}

const Value& Context::get(const std::string& name) const {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) throw OntologyError("attribute not bound: " + name);
  return it->second;
}

ValueType Ontology::type_of(const std::string& name) const {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) throw OntologyError("attribute not declared: " + name);
  return it->second;
}

std::string Ontology::space_of(const std::string& name) const {
  auto it = spaces_.find(name);
  return it == spaces_.end() ? std::string{} : it->second;
}

}  // namespace tussle::policy
