#include "econ/value_flow.hpp"

#include <stdexcept>

namespace tussle::econ {

void Ledger::transfer(const std::string& from, const std::string& to, double amount,
                      std::string memo) {
  if (amount < 0) throw std::invalid_argument("negative transfer");
  if (from == to) throw std::invalid_argument("self transfer");
  balances_[from] -= amount;
  balances_[to] += amount;
  log_.push_back(Entry{from, to, amount, std::move(memo)});
}

double Ledger::balance(const std::string& party) const {
  auto it = balances_.find(party);
  return it == balances_.end() ? 0.0 : it->second;
}

double Ledger::total() const {
  double t = 0;
  for (const auto& [p, b] : balances_) {
    (void)p;
    t += b;
  }
  return t;
}

double PaidTransit::transit_price(routing::AsId as) const {
  auto it = prices_.find(as);
  return it == prices_.end() ? default_price_ : it->second;
}

PaidTransit::Quote PaidTransit::quote(const std::vector<routing::AsId>& path) const {
  Quote q;
  q.path = path;
  q.paid_ases = builder_.off_contract_ases(path);
  for (routing::AsId as : q.paid_ases) q.total_price += transit_price(as);
  return q;
}

std::optional<PaidTransit::Quote> PaidTransit::best_quote(routing::AsId from, routing::AsId to,
                                                          std::size_t k) const {
  auto paths = builder_.k_shortest_paths(from, to, k);
  std::optional<Quote> best;
  for (const auto& p : paths) {
    Quote q = quote(p);
    if (!best || q.total_price < best->total_price ||
        (q.total_price == best->total_price && q.path.size() < best->path.size())) {
      best = std::move(q);
    }
  }
  return best;
}

double PaidTransit::settle(const std::string& payer, const Quote& q) {
  double moved = 0;
  for (routing::AsId as : q.paid_ases) {
    const double price = transit_price(as);
    ledger_->transfer(payer, "as:" + std::to_string(as), price, "transit");
    moved += price;
  }
  return moved;
}

}  // namespace tussle::econ
