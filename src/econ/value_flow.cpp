#include "econ/value_flow.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tussle::econ {

void Ledger::transfer(const std::string& from, const std::string& to, double amount,
                      std::string memo) {
  if (!std::isfinite(amount)) {
    throw std::invalid_argument("Ledger::transfer: non-finite amount (" + from + " -> " + to +
                                "): NaN/Inf would corrupt every downstream balance");
  }
  if (amount < 0) {
    throw std::invalid_argument("Ledger::transfer: negative amount (" + from + " -> " + to +
                                "): reverse the parties instead");
  }
  if (from == to) {
    throw std::invalid_argument("Ledger::transfer: self transfer ('" + from +
                                "'): value must flow between distinct parties");
  }
  if (auditor_ != nullptr) auditor_->record_shared_access("econ.ledger", "transfer");
  if (mem_ != nullptr) {
    // The log entry retains its strings for the life of the ledger: the
    // allocation is never freed, which is exactly what the live-bytes
    // trajectory should show. Sized before memo is moved below.
    mem_->count_alloc("econ.ledger_entry",
                      sizeof(Entry) + from.size() + to.size() + memo.size());
  }
  balances_[from] -= amount;
  balances_[to] += amount;
  sim::SpanId cause = sim::kNoSpan;
  if (spans_ != nullptr) {
    cause = spans_->current();
    // The transfer itself is a leaf span under the causing decision, so the
    // chrome trace shows "who was compensated" inside "what was decided".
    spans_->instant("econ.ledger", "transfer",
                    {{"from", from}, {"to", to}, {"amount", amount}, {"memo", memo}});
  }
  log_.push_back(Entry{from, to, amount, std::move(memo), cause});
#ifdef TUSSLE_SANITIZE
  // Conservation of value: double-entry bookkeeping must sum to zero up to
  // float error. Checked only under sanitizer builds — it is O(parties).
  assert(std::abs(total()) < 1e-6 * (1.0 + static_cast<double>(log_.size())) &&
         "Ledger::transfer: balances no longer sum to ~0");
#endif
}

double Ledger::balance(const std::string& party) const {
  auto it = balances_.find(party);
  return it == balances_.end() ? 0.0 : it->second;
}

double Ledger::total() const {
  double t = 0;
  for (const auto& [p, b] : balances_) {
    (void)p;
    t += b;
  }
  return t;
}

double PaidTransit::transit_price(routing::AsId as) const {
  auto it = prices_.find(as);
  return it == prices_.end() ? default_price_ : it->second;
}

PaidTransit::Quote PaidTransit::quote(const std::vector<routing::AsId>& path) const {
  Quote q;
  q.path = path;
  q.paid_ases = builder_.off_contract_ases(path);
  for (routing::AsId as : q.paid_ases) q.total_price += transit_price(as);
  if (auto* sp = ledger_->span_tracer()) {
    sp->instant("econ.transit", "quote",
                {{"hops", static_cast<std::int64_t>(path.size())},
                 {"paid_ases", static_cast<std::int64_t>(q.paid_ases.size())},
                 {"price", q.total_price}});
  }
  return q;
}

std::optional<PaidTransit::Quote> PaidTransit::best_quote(routing::AsId from, routing::AsId to,
                                                          std::size_t k) const {
  auto paths = builder_.k_shortest_paths(from, to, k);
  std::optional<Quote> best;
  for (const auto& p : paths) {
    Quote q = quote(p);
    if (!best || q.total_price < best->total_price ||
        (q.total_price == best->total_price && q.path.size() < best->path.size())) {
      best = std::move(q);
    }
  }
  return best;
}

double PaidTransit::settle(const std::string& payer, const Quote& q) {
  sim::SpanTracer* sp = ledger_->span_tracer();
  std::optional<sim::ScopedSpan> span;
  if (sp != nullptr) {
    // One settle span groups the per-AS transfers; nested under whatever
    // caused the settlement (typically a delivery observer's deliver span).
    span.emplace(sp, sp->last_time(), "econ.transit", "settle",
                 std::initializer_list<sim::TraceField>{
                     {"payer", payer}, {"total", q.total_price}});
  }
  double moved = 0;
  for (routing::AsId as : q.paid_ases) {
    const double price = transit_price(as);
    ledger_->transfer(payer, "as:" + std::to_string(as), price, "transit");
    moved += price;
  }
  return moved;
}

}  // namespace tussle::econ
