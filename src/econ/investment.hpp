// The QoS deployment post-mortem as a dynamic model (§VII, experiment E5).
//
// N ISPs repeatedly decide whether to deploy QoS. The paper's hypothesis:
// deployment fails without (a) a value-transfer mechanism rewarding the
// investment ("greed") and (b) consumer choice creating competitive
// pressure ("fear"); and *closed* deployment — QoS only for the ISP's own
// bundled application — yields vertical integration and monopoly pricing
// instead of an open end-to-end service.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace tussle::econ {

enum class QosMode {
  kNone,    ///< no deployment possible
  kOpen,    ///< deployed as an open service anyone can buy
  kClosed,  ///< deployed but enabled only for the ISP's own application
};

struct InvestmentConfig {
  std::size_t isps = 6;
  double deploy_cost = 2.0;        ///< per-period cost of running QoS
  bool value_flow = false;         ///< can the ISP charge for QoS at all?
  double qos_revenue = 3.0;        ///< per-period revenue if chargeable
  bool user_choice = false;        ///< can users switch toward QoS ISPs?
  double choice_pressure = 1.5;    ///< demand shifted per non-deploying rival
  bool closed_mode = false;        ///< deploy QoS closed (bundle) not open
  /// Closed-mode bundle margin: monopoly price on the ISP's own app.
  double closed_bundle_margin = 4.0;
  std::size_t periods = 300;
  double base_profit = 10.0;
};

struct InvestmentResult {
  double final_deploy_fraction = 0;  ///< ISPs running QoS at the end
  double mean_deploy_fraction = 0;   ///< time-average over last half
  double mean_isp_profit = 0;
  /// Is the deployed QoS usable by third-party applications?
  bool open_service_available = false;
  /// Effective price of the QoS-dependent application to consumers
  /// (competitive price under open QoS; monopoly bundle under closed).
  double app_price = 0;
};

/// Per-period visitor: (period index, deploy fraction, mean ISP profit)
/// after that period's revision. Telemetry hook — the per-period stats are
/// only computed when the observer is non-empty, and the dynamics are
/// identical with or without it.
using PeriodObserver =
    std::function<void(std::size_t period, double deploy_fraction, double mean_profit)>;

/// Myopic-best-response deployment dynamics with inertia.
InvestmentResult run_investment(const InvestmentConfig& cfg, sim::Rng& rng);

/// Same, with a per-period observer.
InvestmentResult run_investment(const InvestmentConfig& cfg, sim::Rng& rng,
                                const PeriodObserver& observer);

std::string to_string(QosMode m);

}  // namespace tussle::econ
