// Residential broadband and open access (§V-A-3, experiment E3).
//
// The scenario the paper fears: 5000 dial-up ISPs collapse to two wire
// owners. The proposed remedy: modularize along the *facility/service*
// tussle boundary — a (possibly municipal) fiber owner wholesales the wire
// to many competing service ISPs. This module composes the Market engine to
// compare the three regimes.
#pragma once

#include <cstddef>
#include <string>

#include "econ/market.hpp"

namespace tussle::econ {

enum class AccessRegime {
  kFacilityDuopoly,   ///< telco + cable, vertically integrated (the fear)
  kOpenAccess,        ///< wire owners must wholesale to K service ISPs
  kMunicipalFiber,    ///< neutral muni fiber, K service ISPs on top
};

std::string to_string(AccessRegime r);

struct BroadbandConfig {
  AccessRegime regime = AccessRegime::kFacilityDuopoly;
  std::size_t service_isps = 6;    ///< competitors under open access / muni
  double wire_cost = 2.0;          ///< facility marginal cost per sub
  double isp_overhead = 0.5;       ///< service-layer marginal cost per sub
  /// Regulated wholesale markup over wire cost under open access. Facility
  /// owners fight for a high number; the paper notes the investor usually
  /// loses under strict open access.
  double wholesale_markup = 0.5;
  std::size_t consumers = 500;
  std::size_t periods = 400;
  double switching_cost = 0.2;
};

struct BroadbandResult {
  MarketResult market;
  double facility_margin = 0;  ///< per-subscriber margin earned by wire owners
  std::size_t retail_competitors = 0;
};

BroadbandResult run_broadband(const BroadbandConfig& cfg, sim::Rng& rng);

}  // namespace tussle::econ
