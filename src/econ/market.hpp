// An adaptive provider/consumer market.
//
// The paper's economics thesis (§V-A): "the drivers of investment are fear
// and greed ... the vector of fear is competition, which results when the
// consumer has choice." This market makes those forces concrete: providers
// hill-climb on price (greed) and lose customers to rivals when consumers
// can switch cheaply (fear). Experiments sweep provider count and switching
// cost and read off price, concentration (HHI), and consumer surplus.
#pragma once

#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace tussle::econ {

struct ProviderConfig {
  std::string name;
  double marginal_cost = 2.0;   ///< cost of serving one customer per period
  double initial_price = 6.0;
};

struct MarketConfig {
  std::size_t consumers = 500;
  /// Mean disutility of changing provider (renumbering pain, E1). Actual
  /// per-consumer cost is heterogeneous: uniform in [0, 2·mean].
  double switching_cost = 0.0;
  /// Consumer willingness to pay: uniform in [wtp_lo, wtp_hi].
  double wtp_lo = 8.0;
  double wtp_hi = 12.0;
  std::size_t periods = 400;
  double price_step = 0.25;     ///< granularity of provider price moves
  double explore_prob = 0.2;    ///< chance a provider experiments per period
  /// Idiosyncratic per-consumer taste for each provider, uniform in
  /// [0, taste_noise]. Breaks price ties smoothly (mild differentiation)
  /// instead of sending every tied consumer to the same provider.
  double taste_noise = 0.05;
};

struct MarketResult {
  double mean_price = 0;          ///< customer-weighted, averaged over last half
  double hhi = 0;                 ///< Herfindahl index of final shares, in (0,1]
  double consumer_surplus = 0;    ///< mean per consumer per period (last half)
  double provider_profit = 0;     ///< mean per provider per period (last half)
  double subscribed_fraction = 0; ///< final share of consumers with service
  std::size_t total_switches = 0;
  std::vector<double> final_prices;
  std::vector<double> final_shares;  ///< of subscribed consumers
};

class Market {
 public:
  Market(MarketConfig cfg, std::vector<ProviderConfig> providers, sim::Rng& rng);

  /// Runs the configured number of periods and returns aggregates.
  MarketResult run();

  /// Single period, exposed for fine-grained scenarios. Returns per-period
  /// mean price paid.
  double step();

  const std::vector<double>& prices() const noexcept { return price_; }
  std::vector<double> shares() const;

 private:
  struct Consumer {
    double wtp = 0;
    double switch_cost = 0;
    std::vector<double> taste;  ///< per-provider idiosyncratic utility
    int provider = -1;          ///< -1: unsubscribed
  };

  void consumers_choose();
  void providers_adapt();
  double profit_of(std::size_t p) const;

  MarketConfig cfg_;
  std::vector<ProviderConfig> pcfg_;
  sim::Rng* rng_;
  std::vector<Consumer> consumers_;
  std::vector<double> price_;
  std::vector<double> last_profit_;
  std::vector<double> direction_;  ///< +1 raise / -1 cut, per provider
  std::vector<std::size_t> customers_;
  std::size_t switches_ = 0;
};

/// Herfindahl–Hirschman index over arbitrary share vectors; shares are
/// normalized first. Returns 0 for an empty/all-zero vector.
double herfindahl(const std::vector<double>& shares);

}  // namespace tussle::econ
