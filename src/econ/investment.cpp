#include "econ/investment.hpp"

#include <algorithm>

namespace tussle::econ {

std::string to_string(QosMode m) {
  switch (m) {
    case QosMode::kNone: return "none";
    case QosMode::kOpen: return "open";
    case QosMode::kClosed: return "closed";
  }
  return "?";
}

namespace {

/// Per-period profit of one ISP given its own deploy decision and the
/// number of rival deployers.
double profit(const InvestmentConfig& cfg, bool deployed, std::size_t rivals_deployed) {
  double p = cfg.base_profit;
  const auto rivals = static_cast<double>(cfg.isps - 1);
  if (deployed) {
    p -= cfg.deploy_cost;
    if (cfg.value_flow) p += cfg.qos_revenue;
    if (cfg.closed_mode) p += cfg.closed_bundle_margin;  // monopoly bundle income
    if (cfg.user_choice && rivals > 0) {
      // Steal demand from every rival that has not deployed.
      p += cfg.choice_pressure * static_cast<double>(cfg.isps - 1 - rivals_deployed) / rivals;
    }
  } else if (cfg.user_choice && rivals > 0) {
    // Lose demand toward every rival that has deployed.
    p -= cfg.choice_pressure * static_cast<double>(rivals_deployed) / rivals;
  }
  return p;
}

}  // namespace

InvestmentResult run_investment(const InvestmentConfig& cfg, sim::Rng& rng) {
  return run_investment(cfg, rng, PeriodObserver{});
}

InvestmentResult run_investment(const InvestmentConfig& cfg, sim::Rng& rng,
                                const PeriodObserver& observer) {
  std::vector<bool> deployed(cfg.isps, false);
  double profit_sum = 0;
  double deploy_sum = 0;
  std::size_t tail = 0;

  for (std::size_t t = 0; t < cfg.periods; ++t) {
    // One randomly chosen ISP revises its decision per period (asynchronous
    // best response — avoids the artificial synchronized flip-flop).
    const auto reviser = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg.isps) - 1));
    std::size_t others = 0;
    for (std::size_t i = 0; i < cfg.isps; ++i) {
      if (i != reviser && deployed[i]) ++others;
    }
    const double if_deploy = profit(cfg, true, others);
    const double if_skip = profit(cfg, false, others);
    deployed[reviser] = if_deploy > if_skip;

    if (observer || t >= cfg.periods / 2) {
      double f = 0, pr = 0;
      for (std::size_t i = 0; i < cfg.isps; ++i) {
        std::size_t rivals = 0;
        for (std::size_t j = 0; j < cfg.isps; ++j) {
          if (j != i && deployed[j]) ++rivals;
        }
        f += deployed[i] ? 1.0 : 0.0;
        pr += profit(cfg, deployed[i], rivals);
      }
      if (t >= cfg.periods / 2) {
        deploy_sum += f / static_cast<double>(cfg.isps);
        profit_sum += pr / static_cast<double>(cfg.isps);
        ++tail;
      }
      if (observer) {
        observer(t, f / static_cast<double>(cfg.isps), pr / static_cast<double>(cfg.isps));
      }
    }
  }

  InvestmentResult r;
  std::size_t final_deployed = 0;
  for (bool d : deployed) final_deployed += d;
  r.final_deploy_fraction = static_cast<double>(final_deployed) / static_cast<double>(cfg.isps);
  r.mean_deploy_fraction = tail ? deploy_sum / static_cast<double>(tail) : 0;
  r.mean_isp_profit = tail ? profit_sum / static_cast<double>(tail) : 0;
  r.open_service_available = !cfg.closed_mode && final_deployed > 0;

  // Application pricing: open QoS with competition prices near cost; closed
  // QoS prices the bundle at monopoly margin; no QoS → the app just works
  // worse but costs base price (normalized 1).
  if (final_deployed == 0) {
    r.app_price = 1.0;
  } else if (cfg.closed_mode) {
    r.app_price = 1.0 + cfg.closed_bundle_margin;
  } else {
    // Competitive discipline scales with how many ISPs offer it.
    r.app_price = 1.0 + cfg.qos_revenue / std::max(1.0, static_cast<double>(final_deployed));
  }
  return r;
}

}  // namespace tussle::econ
