#include "econ/market.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/trace.hpp"

namespace tussle::econ {

double herfindahl(const std::vector<double>& shares) {
  double total = 0;
  for (double s : shares) total += std::max(0.0, s);
  if (total <= 0) return 0;
  double h = 0;
  for (double s : shares) {
    if (s <= 0) continue;
    const double x = s / total;
    h += x * x;
  }
  return h;
}

Market::Market(MarketConfig cfg, std::vector<ProviderConfig> providers, sim::Rng& rng)
    : cfg_(cfg), pcfg_(std::move(providers)), rng_(&rng) {
  if (pcfg_.empty()) throw std::invalid_argument("market needs at least one provider");
  consumers_.reserve(cfg_.consumers);
  for (std::size_t i = 0; i < cfg_.consumers; ++i) {
    Consumer c;
    c.wtp = rng_->uniform(cfg_.wtp_lo, cfg_.wtp_hi);
    c.switch_cost = rng_->uniform(0, 2 * cfg_.switching_cost);
    for (std::size_t p = 0; p < pcfg_.size(); ++p) {
      c.taste.push_back(rng_->uniform(0, cfg_.taste_noise));
    }
    consumers_.push_back(c);
  }
  for (const auto& p : pcfg_) price_.push_back(p.initial_price);
  last_profit_.assign(pcfg_.size(), 0.0);
  direction_.assign(pcfg_.size(), +1.0);
  customers_.assign(pcfg_.size(), 0);
}

void Market::consumers_choose() {
  std::fill(customers_.begin(), customers_.end(), 0);
  for (Consumer& c : consumers_) {
    // Utility of every option; staying put costs no switching pain.
    double best_u = 0.0;  // outside option: no service
    int best = -1;
    for (std::size_t p = 0; p < price_.size(); ++p) {
      double u = c.wtp - price_[p] + c.taste[p];
      if (c.provider >= 0 && static_cast<int>(p) != c.provider) u -= c.switch_cost;
      if (u > best_u + 1e-12) {
        best_u = u;
        best = static_cast<int>(p);
      }
    }
    // Dropping service also costs the switch (contract exit, renumbering).
    if (best == -1 && c.provider >= 0 && c.wtp - price_[static_cast<std::size_t>(c.provider)] >
                                             -c.switch_cost) {
      best = c.provider;  // cheaper to stay than to churn away
    }
    if (best == -1 && c.provider >= 0) {
      // The paper's check on value pricing: a priced-out consumer walks
      // away entirely, which is the signal competition is supposed to send.
      TUSSLE_TRACE_EVENT(sim::Tracer::global(), sim::SimTime::zero(),
                         sim::TraceLevel::kInfo, "econ.market", "price-rejected",
                         {"provider", c.provider},
                         {"price", price_[static_cast<std::size_t>(c.provider)]},
                         {"wtp", c.wtp});
    }
    if (best != c.provider && best != -1 && c.provider != -1) ++switches_;
    c.provider = best;
    if (best >= 0) customers_[static_cast<std::size_t>(best)] += 1;
  }
}

double Market::profit_of(std::size_t p) const {
  return (price_[p] - pcfg_[p].marginal_cost) * static_cast<double>(customers_[p]);
}

void Market::providers_adapt() {
  for (std::size_t p = 0; p < price_.size(); ++p) {
    if (!rng_->bernoulli(cfg_.explore_prob)) continue;
    const double profit = profit_of(p);
    // Win-stay / lose-shift hill climbing: keep moving in the current
    // direction while profit does not fall; reverse when it does. A
    // provider with no customers always cuts — the only way back into the
    // market is to undercut.
    if (customers_[p] == 0) {
      direction_[p] = -1.0;
    } else if (profit < last_profit_[p] - 1e-9) {
      direction_[p] = -direction_[p];
    }
    last_profit_[p] = profit;
    price_[p] = std::max(pcfg_[p].marginal_cost, price_[p] + direction_[p] * cfg_.price_step);
  }
}

double Market::step() {
  consumers_choose();
  double paid = 0;
  std::size_t n = 0;
  for (const Consumer& c : consumers_) {
    if (c.provider >= 0) {
      paid += price_[static_cast<std::size_t>(c.provider)];
      ++n;
    }
  }
  providers_adapt();
  return n ? paid / static_cast<double>(n) : 0.0;
}

std::vector<double> Market::shares() const {
  std::vector<double> s;
  s.reserve(customers_.size());
  for (auto c : customers_) s.push_back(static_cast<double>(c));
  return s;
}

MarketResult Market::run() {
  MarketResult r;
  sim::Summary price_tail;
  sim::Summary surplus_tail;
  sim::Summary profit_tail;
  for (std::size_t t = 0; t < cfg_.periods; ++t) {
    const double mean_paid = step();
    if (t >= cfg_.periods / 2) {
      price_tail.observe(mean_paid);
      double surplus = 0;
      for (const Consumer& c : consumers_) {
        if (c.provider >= 0) surplus += c.wtp - price_[static_cast<std::size_t>(c.provider)];
      }
      surplus_tail.observe(surplus / static_cast<double>(consumers_.size()));
      double profit = 0;
      for (std::size_t p = 0; p < price_.size(); ++p) profit += profit_of(p);
      profit_tail.observe(profit / static_cast<double>(price_.size()));
    }
  }
  r.mean_price = price_tail.mean();
  r.consumer_surplus = surplus_tail.mean();
  r.provider_profit = profit_tail.mean();
  r.final_prices = price_;
  r.final_shares = shares();
  r.hhi = herfindahl(r.final_shares);
  std::size_t subscribed = 0;
  for (const Consumer& c : consumers_) subscribed += (c.provider >= 0);
  r.subscribed_fraction = static_cast<double>(subscribed) / static_cast<double>(consumers_.size());
  r.total_switches = switches_;
  return r;
}

}  // namespace tussle::econ
