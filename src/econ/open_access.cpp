#include "econ/open_access.hpp"

namespace tussle::econ {

std::string to_string(AccessRegime r) {
  switch (r) {
    case AccessRegime::kFacilityDuopoly: return "facility-duopoly";
    case AccessRegime::kOpenAccess: return "open-access";
    case AccessRegime::kMunicipalFiber: return "municipal-fiber";
  }
  return "?";
}

BroadbandResult run_broadband(const BroadbandConfig& cfg, sim::Rng& rng) {
  BroadbandResult out;
  std::vector<ProviderConfig> providers;

  switch (cfg.regime) {
    case AccessRegime::kFacilityDuopoly: {
      // Two vertically-integrated wire owners; retail cost = wire + ISP.
      for (int i = 0; i < 2; ++i) {
        ProviderConfig p;
        p.name = i == 0 ? "telco" : "cable";
        p.marginal_cost = cfg.wire_cost + cfg.isp_overhead;
        p.initial_price = 8.0;
        providers.push_back(p);
      }
      out.facility_margin = 0;  // captured inside retail profit instead
      break;
    }
    case AccessRegime::kOpenAccess: {
      // K ISPs ride the wire at a regulated wholesale price.
      const double wholesale = cfg.wire_cost + cfg.wholesale_markup;
      for (std::size_t i = 0; i < cfg.service_isps; ++i) {
        ProviderConfig p;
        p.name = "isp-" + std::to_string(i);
        p.marginal_cost = wholesale + cfg.isp_overhead;
        p.initial_price = 8.0;
        providers.push_back(p);
      }
      out.facility_margin = cfg.wholesale_markup;
      break;
    }
    case AccessRegime::kMunicipalFiber: {
      // Neutral muni fiber sells at cost; all margin is service-layer.
      for (std::size_t i = 0; i < cfg.service_isps; ++i) {
        ProviderConfig p;
        p.name = "isp-" + std::to_string(i);
        p.marginal_cost = cfg.wire_cost + cfg.isp_overhead;
        p.initial_price = 8.0;
        providers.push_back(p);
      }
      out.facility_margin = 0;
      break;
    }
  }

  MarketConfig mcfg;
  mcfg.consumers = cfg.consumers;
  mcfg.periods = cfg.periods;
  mcfg.switching_cost = cfg.switching_cost;
  Market market(mcfg, providers, rng);
  out.market = market.run();
  out.retail_competitors = providers.size();
  return out;
}

}  // namespace tussle::econ
