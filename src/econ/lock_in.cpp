#include "econ/lock_in.hpp"

namespace tussle::econ {

std::string to_string(AddressingMode m) {
  switch (m) {
    case AddressingMode::kStaticProviderAssigned: return "static-provider-assigned";
    case AddressingMode::kDhcpDynamicDns: return "dhcp+dyndns";
    case AddressingMode::kProviderIndependent: return "provider-independent";
  }
  return "?";
}

double LockInModel::switching_cost(AddressingMode m, std::size_t hosts) const {
  switch (m) {
    case AddressingMode::kStaticProviderAssigned:
      return renumber_cost_per_host * static_cast<double>(hosts);
    case AddressingMode::kDhcpDynamicDns:
      return dhcp_residual_cost;
    case AddressingMode::kProviderIndependent:
      return 0.0;
  }
  return 0.0;
}

std::size_t LockInModel::core_table_entries(AddressingMode m, std::size_t sites) const {
  switch (m) {
    case AddressingMode::kStaticProviderAssigned:
    case AddressingMode::kDhcpDynamicDns:
      return 0;  // aggregated under the provider prefix
    case AddressingMode::kProviderIndependent:
      return portable_prefixes_per_site * sites;
  }
  return 0;
}

}  // namespace tussle::econ
