// Pricing schemes (§V-A-2 "value pricing").
//
// A price is a function of an observed usage profile. What a scheme can
// observe is the tussle: value pricing needs to *see* that the customer
// runs a server, and tunnelling exists precisely to make that unobservable.
#pragma once

#include <memory>
#include <string>

namespace tussle::econ {

/// What the provider can observe about a subscriber in a billing period.
/// `runs_server_visible` is what the wire shows — a tunnelling customer
/// runs a server without it being visible.
struct UsageProfile {
  double bytes = 0;
  bool runs_server = false;          ///< ground truth
  bool runs_server_visible = false;  ///< what DPI can see
  bool premium_qos = false;
};

class PricingScheme {
 public:
  virtual ~PricingScheme() = default;
  virtual std::string name() const = 0;
  /// The bill for one period given what the provider can observe.
  virtual double charge(const UsageProfile& u) const = 0;
};

/// One price for everyone.
class FlatRate final : public PricingScheme {
 public:
  explicit FlatRate(double monthly) : monthly_(monthly) {}
  std::string name() const override { return "flat"; }
  double charge(const UsageProfile&) const override { return monthly_; }

 private:
  double monthly_ = 0;
};

/// Value pricing: a base rate plus a "business" surcharge when the customer
/// visibly runs a server (the paper's residential-broadband example), and
/// an optional premium-QoS surcharge.
class ValuePricing final : public PricingScheme {
 public:
  ValuePricing(double base, double server_surcharge, double qos_surcharge = 0)
      : base_(base), server_(server_surcharge), qos_(qos_surcharge) {}
  std::string name() const override { return "value"; }
  double charge(const UsageProfile& u) const override {
    return base_ + (u.runs_server_visible ? server_ : 0.0) + (u.premium_qos ? qos_ : 0.0);
  }

 private:
  double base_ = 0;
  double server_ = 0;
  double qos_ = 0;
};

/// Pay-by-the-byte (the scheme the paper notes "does not seem to have much
/// market appeal").
class PerByte final : public PricingScheme {
 public:
  explicit PerByte(double per_gigabyte) : rate_(per_gigabyte) {}
  std::string name() const override { return "per-byte"; }
  double charge(const UsageProfile& u) const override { return rate_ * u.bytes / 1e9; }

 private:
  double rate_ = 0;
};

}  // namespace tussle::econ
