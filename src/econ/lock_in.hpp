// Addressing-driven lock-in (§V-A-1).
//
// "Either a customer is locked into his provider by the provider-based
// addresses, or he obtains a separate block of addresses that is not
// topologically significant and therefore adds to the size of the
// forwarding tables in the core." This module prices both horns of that
// dilemma so experiment E1 can sweep addressing mechanisms and read off
// market outcomes *and* routing-table growth.
#pragma once

#include <cstddef>
#include <string>

namespace tussle::econ {

/// The addressing mechanisms the paper discusses.
enum class AddressingMode {
  kStaticProviderAssigned,  ///< renumbering every host by hand
  kDhcpDynamicDns,          ///< mechanisms that "favor the consumer"
  kProviderIndependent,     ///< portable block: free moves, core-table cost
};

std::string to_string(AddressingMode m);

struct LockInModel {
  /// Pain of renumbering one statically-addressed host.
  double renumber_cost_per_host = 0.8;
  /// Residual switching pain under DHCP+dynamic-DNS (config, DNS TTLs...).
  double dhcp_residual_cost = 0.1;
  /// Extra prefix entries each portable site adds to every core router.
  std::size_t portable_prefixes_per_site = 1;

  /// Mean switching cost (feeds MarketConfig::switching_cost) for a
  /// subscriber site with `hosts` hosts.
  double switching_cost(AddressingMode m, std::size_t hosts) const;

  /// Core routing-table entries attributable to `sites` subscriber sites.
  /// Provider-rooted addressing aggregates to one entry per provider (cost
  /// accounted as 0 here); portable addressing costs one entry per site.
  std::size_t core_table_entries(AddressingMode m, std::size_t sites) const;
};

}  // namespace tussle::econ
