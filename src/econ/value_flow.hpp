// Value flow (§IV-C): "Whatever the compensation, recognize that it must
// flow, just as much as data must flow. ... If this 'value flow' requires a
// protocol, design it."
//
// The Ledger is that protocol's settlement substrate: double-entry balances
// between named parties, with an audit log. PaidTransit prices a
// user-selected source route by charging every off-contract AS its asking
// transit price, then settles through the ledger — the missing piece the
// paper blames for loose source routing's failure.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "routing/source_route.hpp"
#include "sim/mem_profile.hpp"
#include "sim/shard_audit.hpp"
#include "sim/span.hpp"

namespace tussle::econ {

/// Double-entry balance book. Party names are free-form ("user:42",
/// "as:7"). Balances may go negative (credit), mirroring real interconnect
/// settlement; callers enforce credit limits if they want them.
class Ledger {
 public:
  struct Entry {
    std::string from;
    std::string to;
    double amount = 0;
    std::string memo;
    /// Causal attribution: the span active when the transfer posted (the
    /// forwarding/pricing/mediation decision that triggered it), or
    /// sim::kNoSpan when no tracer was attached.
    sim::SpanId span = sim::kNoSpan;
  };

  /// Moves `amount` from `from` to `to`. Throws std::invalid_argument on a
  /// negative, NaN, or infinite amount and on self-transfers — a settlement
  /// substrate must refuse to corrupt balances rather than record garbage.
  void transfer(const std::string& from, const std::string& to, double amount,
                std::string memo = {});
  double balance(const std::string& party) const;
  const std::vector<Entry>& log() const noexcept { return log_; }
  /// Invariant: all balances sum to zero (conservation of value).
  double total() const;

  /// Attaches a span tracer: each transfer then records the active span id
  /// in its audit-log entry and emits a zero-length "transfer" span under
  /// it, causally linking every settlement to the decision that caused it.
  void set_span_tracer(sim::SpanTracer* spans) noexcept { spans_ = spans; }
  sim::SpanTracer* span_tracer() const noexcept { return spans_; }

  /// Attaches a shard auditor: the ledger is declared *shared* state (value
  /// must flow between shards by design), so transfers are tallied per
  /// accessing shard rather than checked — the report then maps which
  /// shards settle, the input for making settlement a merge step in PDES.
  void set_auditor(sim::ShardAuditor* auditor) noexcept { auditor_ = auditor; }
  sim::ShardAuditor* auditor() const noexcept { return auditor_; }

  /// Attaches a memory profiler: each transfer's audit-log entry is then
  /// accounted as an allocation under "econ.ledger_entry" (struct plus the
  /// string payloads it retains), so the report shows how fast the ledger's
  /// unbounded log grows per settled packet.
  void set_mem_profiler(sim::MemProfiler* mem) noexcept { mem_ = mem; }
  sim::MemProfiler* mem_profiler() const noexcept { return mem_; }

 private:
  std::map<std::string, double> balances_;
  std::vector<Entry> log_;
  sim::SpanTracer* spans_ = nullptr;
  sim::ShardAuditor* auditor_ = nullptr;
  sim::MemProfiler* mem_ = nullptr;
};

/// Prices and settles paid source routes.
class PaidTransit {
 public:
  PaidTransit(const routing::AsGraph& graph, Ledger& ledger)
      : builder_(graph), ledger_(&ledger) {}

  /// Asking price per off-contract packet-carriage contract, per AS.
  void set_transit_price(routing::AsId as, double price) { prices_[as] = price; }
  double transit_price(routing::AsId as) const;

  struct Quote {
    std::vector<routing::AsId> path;
    std::vector<routing::AsId> paid_ases;  ///< who must be compensated
    double total_price = 0;
  };

  /// Quotes a specific path. A path with no off-contract AS costs zero.
  Quote quote(const std::vector<routing::AsId>& path) const;

  /// Quotes the cheapest of the k shortest paths between two ASes.
  std::optional<Quote> best_quote(routing::AsId from, routing::AsId to, std::size_t k) const;

  /// Settles a quote: `payer` pays each off-contract AS its price.
  /// Returns the amount moved.
  double settle(const std::string& payer, const Quote& q);

 private:
  routing::SourceRouteBuilder builder_;
  Ledger* ledger_;
  std::map<routing::AsId, double> prices_;
  double default_price_ = 1.0;
};

}  // namespace tussle::econ
