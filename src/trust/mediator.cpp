#include "trust/mediator.hpp"

#include <algorithm>
#include <optional>

#include "sim/span.hpp"

namespace tussle::trust {

TransactionOutcome EscrowMediator::transact(const std::string& buyer, const std::string& seller,
                                            double price, bool seller_honest) {
  sim::SpanTracer* sp = ledger_->span_tracer();
  std::optional<sim::ScopedSpan> span;
  if (sp != nullptr) {
    // The mediation span groups the escrow / release / chargeback transfers
    // so the trace shows the whole §V-C "trust mediation" as one decision.
    span.emplace(sp, sp->last_time(), "trust.mediator", "mediate",
                 std::initializer_list<sim::TraceField>{
                     {"buyer", buyer}, {"seller", seller}, {"price", price},
                     {"seller_honest", seller_honest}});
  }
  TransactionOutcome out;
  // Buyer pays into escrow first.
  ledger_->transfer(buyer, name_, price, "escrow");
  if (seller_honest) {
    const double fee = price * fee_rate_;
    ledger_->transfer(name_, seller, price - fee, "escrow-release");
    out.completed = true;
    out.buyer_loss = price;  // paid, but received the goods
    out.seller_revenue = price - fee;
    out.mediator_fee_collected = fee;
    reputation_->record(buyer, seller, true);
  } else {
    // Dispute: refund everything above the liability cap; the mediator
    // eats the cap difference as the price of the guarantee (and prices
    // fee_rate accordingly, as card networks do).
    const double refund = std::max(0.0, price - cap_);
    if (refund > 0) ledger_->transfer(name_, buyer, refund, "chargeback");
    out.completed = false;
    out.buyer_loss = price - refund;  // at most the cap
    out.seller_revenue = 0;
    out.mediator_fee_collected = 0;
    reputation_->record(buyer, seller, false);
  }
  return out;
}

TransactionOutcome EscrowMediator::transact_unmediated(econ::Ledger& ledger,
                                                       ReputationSystem& reputation,
                                                       const std::string& buyer,
                                                       const std::string& seller, double price,
                                                       bool seller_honest) {
  TransactionOutcome out;
  ledger.transfer(buyer, seller, price, "direct-sale");
  out.completed = seller_honest;
  out.buyer_loss = price;
  out.seller_revenue = price;
  reputation.record(buyer, seller, seller_honest);
  return out;
}

}  // namespace tussle::trust
