// Reputation: the third-party rating services the paper predicts ("the
// on-line analog of Consumer Reports", §IV-B; "web sites assess and report
// the reputation of other sites", §V-B).
//
// Scores use a Beta-prior estimator: score = (positives + 1) / (total + 2),
// so unknown parties start at 0.5 and single reports move the needle only
// modestly — resistant to trivial whitewashing.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace tussle::trust {

class ReputationSystem {
 public:
  /// Records one interaction outcome about `subject` from `rater`.
  void record(const std::string& rater, const std::string& subject, bool positive);

  /// Beta-mean score in (0, 1); 0.5 for unknown subjects.
  double score(const std::string& subject) const;

  std::size_t report_count(const std::string& subject) const;

  /// Raters whose judgement diverges from the consensus more than
  /// `threshold` of the time (potential shills / slanderers). Only raters
  /// with at least `min_reports` are considered.
  std::vector<std::string> outlier_raters(double threshold, std::size_t min_reports) const;

 private:
  struct Tally {
    std::size_t positive = 0;
    std::size_t total = 0;
  };
  std::map<std::string, Tally> subjects_;
  struct Report {
    std::string rater;
    std::string subject;
    bool positive = false;
  };
  std::vector<Report> reports_;
};

}  // namespace tussle::trust
