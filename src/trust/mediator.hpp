// Third-party mediation (§V-B): "Credit card companies limit our liability
// to $50 ... Each individual interaction may be two-party end-to-end, but
// the application design is not."
//
// The EscrowMediator sits between a buyer and a seller it need not trust:
// it caps the buyer's loss on a disputed transaction, makes the seller
// whole only on honest delivery, and feeds outcomes to a reputation system
// — the complete mediation loop the paper describes.
#pragma once

#include <string>

#include "econ/value_flow.hpp"
#include "trust/reputation.hpp"

namespace tussle::trust {

struct TransactionOutcome {
  bool completed = false;       ///< goods delivered and payment settled
  double buyer_loss = 0;        ///< what the buyer is actually out, post-mediation
  double seller_revenue = 0;
  double mediator_fee_collected = 0;
};

class EscrowMediator {
 public:
  /// `liability_cap` is the most a buyer can lose on a bad transaction
  /// (the "$50"); `fee_rate` is the mediator's cut of honest transactions.
  EscrowMediator(std::string name, econ::Ledger& ledger, ReputationSystem& reputation,
                 double liability_cap = 0.5, double fee_rate = 0.03)
      : name_(std::move(name)),
        ledger_(&ledger),
        reputation_(&reputation),
        cap_(liability_cap),
        fee_rate_(fee_rate) {}

  /// Executes a purchase of `price` where the seller honestly delivers iff
  /// `seller_honest`. Money moves through the mediator; outcomes are
  /// reported to the reputation system either way.
  TransactionOutcome transact(const std::string& buyer, const std::string& seller, double price,
                              bool seller_honest);

  /// Direct two-party purchase with no mediator, for comparison: a cheated
  /// buyer simply loses the full price and has nowhere to report it but
  /// the reputation system.
  static TransactionOutcome transact_unmediated(econ::Ledger& ledger,
                                                ReputationSystem& reputation,
                                                const std::string& buyer,
                                                const std::string& seller, double price,
                                                bool seller_honest);

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  econ::Ledger* ledger_;
  ReputationSystem* reputation_;
  double cap_ = 0;
  double fee_rate_ = 0;
};

}  // namespace tussle::trust
