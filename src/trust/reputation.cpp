#include "trust/reputation.hpp"

namespace tussle::trust {

void ReputationSystem::record(const std::string& rater, const std::string& subject,
                              bool positive) {
  Tally& t = subjects_[subject];
  t.total += 1;
  if (positive) t.positive += 1;
  reports_.push_back(Report{rater, subject, positive});
}

double ReputationSystem::score(const std::string& subject) const {
  auto it = subjects_.find(subject);
  if (it == subjects_.end()) return 0.5;
  const Tally& t = it->second;
  return (static_cast<double>(t.positive) + 1.0) / (static_cast<double>(t.total) + 2.0);
}

std::size_t ReputationSystem::report_count(const std::string& subject) const {
  auto it = subjects_.find(subject);
  return it == subjects_.end() ? 0 : it->second.total;
}

std::vector<std::string> ReputationSystem::outlier_raters(double threshold,
                                                          std::size_t min_reports) const {
  std::map<std::string, std::pair<std::size_t, std::size_t>> divergence;  // rater → {div, n}
  for (const Report& r : reports_) {
    const double consensus = score(r.subject);
    const bool consensus_positive = consensus >= 0.5;
    auto& [div, n] = divergence[r.rater];
    ++n;
    if (r.positive != consensus_positive) ++div;
  }
  std::vector<std::string> out;
  for (const auto& [rater, dn] : divergence) {
    if (dn.second >= min_reports &&
        static_cast<double>(dn.first) / static_cast<double>(dn.second) > threshold) {
      out.push_back(rater);
    }
  }
  return out;
}

}  // namespace tussle::trust
