#include "trust/certificates.hpp"

namespace tussle::trust {

Certificate CertificateAuthority::issue(const std::string& subject) {
  Certificate c;
  c.subject = subject;
  c.issuer = name_;
  c.serial = next_serial_++;
  // The token is "unforgeable" because only this object increments this
  // counter and records the mapping; a fabricated certificate will not
  // match signatures_.
  token_counter_ = token_counter_ * 6364136223846793005ULL + 1442695040888963407ULL;
  c.signature = token_counter_;
  signatures_[c.serial] = c.signature;
  return c;
}

bool CertificateAuthority::check(const Certificate& c) const {
  if (c.issuer != name_) return false;
  if (is_revoked(c.serial)) return false;
  auto it = signatures_.find(c.serial);
  return it != signatures_.end() && it->second == c.signature;
}

bool CaRegistry::validate(const Certificate& c) const {
  for (const CertificateAuthority* ca : cas_) {
    if (ca->name() == c.issuer) return ca->check(c);
  }
  return false;  // unknown issuer
}

std::optional<Certificate> CaRegistry::certificate_of(const std::string& subject) const {
  auto it = by_subject_.find(subject);
  if (it == by_subject_.end()) return std::nullopt;
  return it->second;
}

IdentityFramework::Verifier CaRegistry::verifier() const {
  return [this](const Identity& id) {
    Verification v;
    if (id.scheme != IdentityScheme::kCertified && id.scheme != IdentityScheme::kRole) return v;
    auto cert = certificate_of(id.name);
    if (cert && cert->issuer == id.issuer && validate(*cert)) {
      v.verified = true;
      v.linkable = true;
      // Role certificates attest the role, not the person: verified but
      // not personally accountable.
      v.accountable = (id.scheme == IdentityScheme::kCertified);
    }
    return v;
  };
}

}  // namespace tussle::trust
