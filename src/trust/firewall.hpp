// The trust-aware firewall (§V-B).
//
// "Firewalls that provide trust-mediated transparency must be designed so
// that they apply constraints based on *who is communicating*, as well as
// (or instead of) what protocols are being run." This firewall keys its
// decisions on the verified identity and reputation of the counterparty —
// not the port number — and supports the paper's two governance questions:
// who sets the policy (owner field, endpoint delegation) and whether the
// rules are visible to the endpoints they constrain (disclosure).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "net/node.hpp"
#include "sim/trace.hpp"
#include "trust/identity.hpp"
#include "trust/reputation.hpp"

namespace tussle::trust {

/// Who controls a firewall's policy — the governance tussle the paper
/// refuses to resolve ("There is no single answer, and we better not think
/// we are going to design it. All we can design is the space.").
enum class PolicyAuthority { kEndUser, kNetworkAdmin, kGovernment };

std::string to_string(PolicyAuthority a);

struct TrustFirewallConfig {
  PolicyAuthority authority = PolicyAuthority::kNetworkAdmin;
  bool disclosed = true;       ///< do endpoints get to see that rules exist?
  double min_reputation = 0.3; ///< below this, traffic is refused
  bool require_identified = false;  ///< refuse visibly-anonymous senders
  bool accept_unknown = true;  ///< senders with no identity binding at all
};

/// Maps a network source address to the identity its traffic carries.
using IdentityResolver = std::function<std::optional<Identity>(const net::Address&)>;

class TrustFirewall {
 public:
  TrustFirewall(std::string name, TrustFirewallConfig cfg, const IdentityFramework& framework,
                const ReputationSystem& reputation, IdentityResolver resolver)
      : name_(std::move(name)),
        cfg_(cfg),
        framework_(&framework),
        reputation_(&reputation),
        resolver_(std::move(resolver)) {}

  /// Decides about one packet. Exposed directly for unit tests; the filter
  /// adapter below is what scenarios install on nodes.
  net::FilterDecision decide(const net::Packet& p) const;

  /// Per-endpoint exception: the end user whitelists a peer regardless of
  /// reputation (endpoint delegation of control, §V-B). Only honored when
  /// the end user holds policy authority.
  void user_whitelist(const std::string& peer_name) { whitelist_[peer_name] = true; }

  /// Wraps this firewall as a node filter.
  net::PacketFilter as_filter() const;

  const TrustFirewallConfig& config() const noexcept { return cfg_; }
  const std::string& name() const noexcept { return name_; }

  /// Timestamps for the firewall's accept/reject trace events. A firewall
  /// sits outside the simulator, so it cannot read the clock itself;
  /// scenarios that want timestamped traces pass one in (events default to
  /// t=0 otherwise). Decisions go to the process-global tracer.
  void set_trace_clock(std::function<sim::SimTime()> clock) { clock_ = std::move(clock); }

 private:
  sim::SimTime trace_now() const { return clock_ ? clock_() : sim::SimTime::zero(); }

  std::string name_;
  TrustFirewallConfig cfg_;
  const IdentityFramework* framework_;
  const ReputationSystem* reputation_;
  IdentityResolver resolver_;
  std::map<std::string, bool> whitelist_;
  std::function<sim::SimTime()> clock_;
};

}  // namespace tussle::trust
