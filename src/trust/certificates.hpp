// Simulated public-key certification (§V-B: "public key certificate agents
// provide us with certificates that assure us we are talking to the party
// we think we are").
//
// Cryptography is simulated: a "signature" is an unforgeable token only the
// issuing authority can mint (enforced by construction — tokens come out of
// the CA's private counter). What the experiments need is the *trust
// semantics*: issuance, chains, expiry, revocation — not actual RSA.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "trust/identity.hpp"

namespace tussle::trust {

struct Certificate {
  std::string subject;
  std::string issuer;
  std::uint64_t serial = 0;
  std::uint64_t signature = 0;  ///< opaque token minted by the issuer
};

class CertificateAuthority {
 public:
  /// A root CA (self-named issuer) or an intermediate (if `parent_cert` is
  /// supplied, this CA's own certificate chains to the parent).
  explicit CertificateAuthority(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  Certificate issue(const std::string& subject);
  void revoke(std::uint64_t serial) { revoked_.insert(serial); }
  bool is_revoked(std::uint64_t serial) const { return revoked_.count(serial) != 0; }

  /// Did this CA actually sign this certificate (and not revoke it)?
  bool check(const Certificate& c) const;

  std::size_t issued_count() const noexcept { return next_serial_; }

 private:
  std::string name_;
  std::uint64_t next_serial_ = 0;
  std::map<std::uint64_t, std::uint64_t> signatures_;  ///< serial → token
  std::set<std::uint64_t> revoked_;
  std::uint64_t token_counter_ = 0x5eed;
};

/// A verifier suitable for IdentityFramework::set_verifier: accepts
/// certified identities whose certificate checks out against one of the
/// trusted CAs.
class CaRegistry {
 public:
  void trust(const CertificateAuthority* ca) { cas_.push_back(ca); }

  /// Looks up the CA by the certificate's issuer name and checks it.
  bool validate(const Certificate& c) const;

  /// Binds a subject name to its certificate so identity claims can be
  /// checked by name.
  void enroll(const Certificate& c) { by_subject_[c.subject] = c; }
  std::optional<Certificate> certificate_of(const std::string& subject) const;

  /// Verifier closure for the identity framework.
  IdentityFramework::Verifier verifier() const;

 private:
  std::vector<const CertificateAuthority*> cas_;
  std::map<std::string, Certificate> by_subject_;
};

}  // namespace tussle::trust
