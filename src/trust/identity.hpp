// The identity framework (§V-B-1).
//
// The paper rejects a single global user namespace: "What is needed is a
// framework that translates these diverse ways [of identifying oneself]
// into lower level network actions ... a framework for talking about
// identity, not a single identity scheme." So this module defines a scheme
// taxonomy, per-scheme verification properties, and the accountability /
// anonymity trade-off — including the paper's compromise position that
// *hiding should be hard to disguise*: anonymity is itself visible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

namespace tussle::trust {

enum class IdentityScheme : std::uint8_t {
  kAnonymous,      ///< no claim at all
  kPseudonymous,   ///< stable handle, unlinkable to a legal person
  kSelfAsserted,   ///< a bare name, unverified
  kCertified,      ///< vouched for by a certificate authority
  kRole,           ///< "a doctor", "an employee of X" — role not person
};

std::string to_string(IdentityScheme s);

struct Identity {
  IdentityScheme scheme = IdentityScheme::kAnonymous;
  std::string name;    ///< handle / subject / role label; empty for anonymous
  std::string issuer;  ///< certifying party, when applicable

  /// Anonymity must be visible (§V-B-1): any party can tell *that* this
  /// identity declines to identify, even though not *who* it is.
  bool visibly_anonymous() const noexcept { return scheme == IdentityScheme::kAnonymous; }

  friend bool operator==(const Identity&, const Identity&) = default;
  friend auto operator<=>(const Identity&, const Identity&) = default;
};

/// What verifying an identity established.
struct Verification {
  bool verified = false;     ///< claim checked by some authority
  bool accountable = false;  ///< misbehaviour can be attributed later
  bool linkable = false;     ///< repeated interactions can be correlated
};

/// Translates diverse identity claims into the properties peers act on.
/// Schemes plug in their own verifier; the framework supplies sensible
/// defaults for schemes that need no external check.
class IdentityFramework {
 public:
  using Verifier = std::function<Verification(const Identity&)>;

  IdentityFramework();

  /// Replaces the verifier for a scheme (e.g. to wire in a real CA).
  void set_verifier(IdentityScheme s, Verifier v) { verifiers_[s] = std::move(v); }

  Verification verify(const Identity& id) const;

 private:
  std::map<IdentityScheme, Verifier> verifiers_;
};

}  // namespace tussle::trust
