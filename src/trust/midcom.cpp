#include "trust/midcom.hpp"

#include "net/network.hpp"

namespace tussle::trust {

PinholeBroker::PinholeBroker(net::Network& net, net::NodeId control_point,
                             PolicyAuthority authority)
    : net_(&net), node_(control_point), authority_(authority) {
  // One filter, installed now, consults the live pinhole table. It must be
  // installed before the restrictive filters to pre-empt them; scenario
  // code constructs the broker before adding its firewall.
  net_->node(node_).add_filter(net::PacketFilter{
      .name = "pinhole-broker",
      .disclosed = true,
      .fn = [this](const net::Packet& p) {
        for (const auto& [id, hole] : pinholes_) {
          (void)id;
          if (p.src == hole.peer && p.proto == hole.proto) {
            return net::FilterDecision::bypass("pinhole");
          }
        }
        return net::FilterDecision::accept();
      }});
}

PinholeGrant PinholeBroker::request(const PinholeRequest& req) {
  PinholeGrant grant;
  switch (authority_) {
    case PolicyAuthority::kEndUser:
      grant.granted = true;
      grant.reason = "end-user authority: user consents to their own traffic";
      break;
    case PolicyAuthority::kNetworkAdmin:
      if (admin_allowed_.count(req.proto) && admin_allowed_.at(req.proto)) {
        grant.granted = true;
        grant.reason = "admin allowlist";
      } else {
        grant.reason = "protocol not negotiable under admin policy";
      }
      break;
    case PolicyAuthority::kGovernment:
      grant.reason = "control is not negotiable";
      break;
  }
  if (grant.granted) {
    grant.pinhole_id = next_id_++;
    pinholes_[grant.pinhole_id] = Pinhole{req.peer, req.proto};
  }
  log_.emplace_back(req, grant);
  return grant;
}

bool PinholeBroker::revoke(std::uint64_t pinhole_id) {
  return pinholes_.erase(pinhole_id) > 0;
}

}  // namespace tussle::trust
