#include "trust/firewall.hpp"

namespace tussle::trust {

namespace {

// One typed trace event per firewall verdict (§V-B: who is communicating,
// and was the refusal visible?). Reasons mirror the FilterDecision reasons.
void trace_verdict(const TrustFirewall& fw, sim::SimTime now, const net::Packet& p,
                   bool accepted, const char* reason) {
  TUSSLE_TRACE_EVENT(sim::Tracer::global(), now, sim::TraceLevel::kInfo, "trust.firewall",
                     accepted ? "accept" : "reject", {"firewall", fw.name()},
                     {"reason", reason}, {"uid", p.uid}, {"flow", p.flow},
                     {"authority", to_string(fw.config().authority)},
                     {"disclosed", fw.config().disclosed});
}

}  // namespace

std::string to_string(PolicyAuthority a) {
  switch (a) {
    case PolicyAuthority::kEndUser: return "end-user";
    case PolicyAuthority::kNetworkAdmin: return "network-admin";
    case PolicyAuthority::kGovernment: return "government";
  }
  return "?";
}

net::FilterDecision TrustFirewall::decide(const net::Packet& p) const {
  const auto identity = resolver_ ? resolver_(p.src) : std::nullopt;

  if (!identity) {
    if (cfg_.accept_unknown) {
      trace_verdict(*this, trace_now(), p, true, "unknown-sender");
      return net::FilterDecision::accept();
    }
    trace_verdict(*this, trace_now(), p, false, "unknown-sender");
    return net::FilterDecision::drop(name_ + ":unknown-sender");
  }

  // End-user whitelists override trust thresholds — but only when the end
  // user is the policy authority. An admin- or government-run firewall
  // ignores user exceptions, which is exactly the governance tussle.
  if (cfg_.authority == PolicyAuthority::kEndUser && !identity->name.empty()) {
    auto it = whitelist_.find(identity->name);
    if (it != whitelist_.end() && it->second) {
      trace_verdict(*this, trace_now(), p, true, "user-whitelist");
      return net::FilterDecision::accept();
    }
  }

  if (cfg_.require_identified && identity->visibly_anonymous()) {
    trace_verdict(*this, trace_now(), p, false, "anonymous-refused");
    return net::FilterDecision::drop(name_ + ":anonymous-refused");
  }

  const Verification v = framework_->verify(*identity);
  // Unverifiable non-anonymous claims are scored by name anyway (they are
  // at least linkable targets for reputation).
  const double score = identity->name.empty() ? 0.5 : reputation_->score(identity->name);
  if (score < cfg_.min_reputation) {
    trace_verdict(*this, trace_now(), p, false, "low-reputation");
    return net::FilterDecision::drop(name_ + ":low-reputation");
  }
  // Accountable identities get the benefit of the doubt; unaccountable
  // ones must clear the bar on reputation alone (they just did).
  (void)v;
  trace_verdict(*this, trace_now(), p, true, "reputation-ok");
  return net::FilterDecision::accept();
}

net::PacketFilter TrustFirewall::as_filter() const {
  net::PacketFilter f;
  f.name = name_;
  f.disclosed = cfg_.disclosed;
  f.fn = [this](const net::Packet& p) { return decide(p); };
  return f;
}

}  // namespace tussle::trust
