#include "trust/firewall.hpp"

namespace tussle::trust {

std::string to_string(PolicyAuthority a) {
  switch (a) {
    case PolicyAuthority::kEndUser: return "end-user";
    case PolicyAuthority::kNetworkAdmin: return "network-admin";
    case PolicyAuthority::kGovernment: return "government";
  }
  return "?";
}

net::FilterDecision TrustFirewall::decide(const net::Packet& p) const {
  const auto identity = resolver_ ? resolver_(p.src) : std::nullopt;

  if (!identity) {
    return cfg_.accept_unknown
               ? net::FilterDecision::accept()
               : net::FilterDecision::drop(name_ + ":unknown-sender");
  }

  // End-user whitelists override trust thresholds — but only when the end
  // user is the policy authority. An admin- or government-run firewall
  // ignores user exceptions, which is exactly the governance tussle.
  if (cfg_.authority == PolicyAuthority::kEndUser && !identity->name.empty()) {
    auto it = whitelist_.find(identity->name);
    if (it != whitelist_.end() && it->second) return net::FilterDecision::accept();
  }

  if (cfg_.require_identified && identity->visibly_anonymous()) {
    return net::FilterDecision::drop(name_ + ":anonymous-refused");
  }

  const Verification v = framework_->verify(*identity);
  // Unverifiable non-anonymous claims are scored by name anyway (they are
  // at least linkable targets for reputation).
  const double score = identity->name.empty() ? 0.5 : reputation_->score(identity->name);
  if (score < cfg_.min_reputation) {
    return net::FilterDecision::drop(name_ + ":low-reputation");
  }
  // Accountable identities get the benefit of the doubt; unaccountable
  // ones must clear the bar on reputation alone (they just did).
  (void)v;
  return net::FilterDecision::accept();
}

net::PacketFilter TrustFirewall::as_filter() const {
  net::PacketFilter f;
  f.name = name_;
  f.disclosed = cfg_.disclosed;
  f.fn = [this](const net::Packet& p) { return decide(p); };
  return f;
}

}  // namespace tussle::trust
