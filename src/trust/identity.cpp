#include "trust/identity.hpp"

namespace tussle::trust {

std::string to_string(IdentityScheme s) {
  switch (s) {
    case IdentityScheme::kAnonymous: return "anonymous";
    case IdentityScheme::kPseudonymous: return "pseudonymous";
    case IdentityScheme::kSelfAsserted: return "self-asserted";
    case IdentityScheme::kCertified: return "certified";
    case IdentityScheme::kRole: return "role";
  }
  return "?";
}

IdentityFramework::IdentityFramework() {
  verifiers_[IdentityScheme::kAnonymous] = [](const Identity&) {
    return Verification{.verified = false, .accountable = false, .linkable = false};
  };
  verifiers_[IdentityScheme::kPseudonymous] = [](const Identity& id) {
    // A stable handle is linkable across interactions but not accountable
    // to a legal person.
    return Verification{.verified = !id.name.empty(), .accountable = false, .linkable = true};
  };
  verifiers_[IdentityScheme::kSelfAsserted] = [](const Identity& id) {
    return Verification{.verified = false, .accountable = false, .linkable = !id.name.empty()};
  };
  // Certified and role identities need a real verifier (a CA); until one is
  // installed they verify negatively rather than trusting by default.
  verifiers_[IdentityScheme::kCertified] = [](const Identity&) { return Verification{}; };
  verifiers_[IdentityScheme::kRole] = [](const Identity&) { return Verification{}; };
}

Verification IdentityFramework::verify(const Identity& id) const {
  auto it = verifiers_.find(id.scheme);
  if (it == verifiers_.end()) return Verification{};
  return it->second(id);
}

}  // namespace tussle::trust
