// Endpoint ↔ control-point negotiation (§V-B).
//
// "Along with this device must be protocols and interfaces to allow the end
// node and the control point to communicate about the desired controls"
// (the paper cites the IETF MIDCOM work). PinholeBroker is that interface:
// an endpoint asks the firewall's owner for a pinhole (permit rule for a
// peer/application); whether the request is *grantable at all* depends on
// who holds policy authority — the governance tussle again — and every
// decision is recorded so endpoints can audit what they were granted.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/node.hpp"
#include "trust/firewall.hpp"

namespace tussle::trust {

struct PinholeRequest {
  std::string requester;        ///< the endpoint's identity name
  net::Address peer;            ///< who they want to hear from
  net::AppProto proto = net::AppProto::kUnknown;  ///< what traffic
  std::string justification;
};

struct PinholeGrant {
  bool granted = false;
  std::string reason;
  std::uint64_t pinhole_id = 0;  ///< for later revocation
};

/// Negotiates pinholes in front of a node's filter chain. The broker
/// installs a single high-priority filter that accepts pinholed traffic
/// before the rest of the chain runs.
class PinholeBroker {
 public:
  /// `authority` decides the grant policy:
  ///  - kEndUser: the endpoint's own requests are granted (it is asking
  ///    itself);
  ///  - kNetworkAdmin: granted only for protocols in the admin allowlist;
  ///  - kGovernment: never granted (the control is not negotiable).
  PinholeBroker(net::Network& net, net::NodeId control_point, PolicyAuthority authority);

  /// Admin-permitted protocols (only consulted under kNetworkAdmin).
  void admin_allow(net::AppProto proto) { admin_allowed_[proto] = true; }

  PinholeGrant request(const PinholeRequest& req);
  bool revoke(std::uint64_t pinhole_id);

  std::size_t active_pinholes() const noexcept { return pinholes_.size(); }
  /// The audit trail — disclosure applied to negotiation history.
  const std::vector<std::pair<PinholeRequest, PinholeGrant>>& log() const noexcept {
    return log_;
  }

 private:
  struct Pinhole {
    net::Address peer;
    net::AppProto proto;
  };

  net::Network* net_;
  net::NodeId node_;
  PolicyAuthority authority_;
  std::map<net::AppProto, bool> admin_allowed_;
  std::map<std::uint64_t, Pinhole> pinholes_;
  std::vector<std::pair<PinholeRequest, PinholeGrant>> log_;
  std::uint64_t next_id_ = 1;
};

}  // namespace tussle::trust
