// Equilibrium solvers.
#pragma once

#include "game/matrix_game.hpp"
#include "sim/random.hpp"

namespace tussle::game {

/// Approximate minimax solution of a zero-sum game via fictitious-play
/// self-play (Robinson 1951: converges for zero-sum games).
struct MinimaxSolution {
  Mixed row;
  Mixed col;
  double value = 0;       ///< game value to the row player
  double gap = 0;         ///< duality gap bound achieved (>= 0)
  std::size_t iterations = 0;
};
MinimaxSolution solve_zero_sum(const MatrixGame& game, std::size_t iterations = 20000);

/// Approximate (epsilon-)Nash of a general-sum game by regret-matching
/// self-play; returns the empirical joint strategies. For games where the
/// dynamics converge (e.g. dominance-solvable or zero-sum) this is a Nash
/// profile; in general it approximates a correlated equilibrium.
struct LearnedProfile {
  Mixed row;
  Mixed col;
  double epsilon = 0;  ///< best-deviation gain against the empirical mix
};
LearnedProfile learn_equilibrium(const MatrixGame& game, std::size_t iterations, sim::Rng& rng);

}  // namespace tussle::game
