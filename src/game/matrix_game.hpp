// Two-player matrix games: the paper's formal model of tussle (§II-B).
//
// "A game represents an abstraction of the underlying tussle environment,
// and can range from purely conflicting games (zero-sum) ... to
// coordination games." This type covers that whole range: payoffs for both
// players over finite action sets, with helpers for best responses, Nash
// checks and dominance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tussle::game {

/// A mixed strategy: probability per action. Invariant: sums to ~1.
using Mixed = std::vector<double>;

/// Validates and normalizes a mixed strategy; throws std::invalid_argument
/// on negative entries or zero mass.
Mixed normalize(Mixed m);

class MatrixGame {
 public:
  /// `row_payoff[i][j]` / `col_payoff[i][j]`: payoffs when row plays i and
  /// column plays j. Both matrices must be the same (non-empty,
  /// rectangular) shape.
  MatrixGame(std::vector<std::vector<double>> row_payoff,
             std::vector<std::vector<double>> col_payoff,
             std::vector<std::string> row_names = {}, std::vector<std::string> col_names = {});

  /// Zero-sum constructor: column player gets the negation.
  static MatrixGame zero_sum(std::vector<std::vector<double>> row_payoff,
                             std::vector<std::string> row_names = {},
                             std::vector<std::string> col_names = {});

  std::size_t rows() const noexcept { return row_.size(); }
  std::size_t cols() const noexcept { return row_[0].size(); }
  double row_payoff(std::size_t i, std::size_t j) const { return row_.at(i).at(j); }
  double col_payoff(std::size_t i, std::size_t j) const { return col_.at(i).at(j); }
  const std::string& row_name(std::size_t i) const { return row_names_.at(i); }
  const std::string& col_name(std::size_t j) const { return col_names_.at(j); }
  bool is_zero_sum(double tol = 1e-12) const noexcept;

  /// Expected payoffs under mixed strategies (row then column player).
  std::pair<double, double> expected_payoff(const Mixed& row, const Mixed& col) const;

  /// Best pure response of a player to the opponent's mixed strategy
  /// (lowest index wins ties, deterministic).
  std::size_t best_row_response(const Mixed& col) const;
  std::size_t best_col_response(const Mixed& row) const;

  /// Is (i, j) a pure Nash equilibrium?
  bool is_pure_nash(std::size_t i, std::size_t j, double tol = 1e-12) const;

  /// All pure Nash equilibria (may be empty — e.g. matching pennies).
  std::vector<std::pair<std::size_t, std::size_t>> pure_nash() const;

  /// Is (row, col) an epsilon-Nash equilibrium in mixed strategies?
  bool is_epsilon_nash(const Mixed& row, const Mixed& col, double epsilon) const;

  /// Is row action `a` strictly dominated by row action `b`?
  bool row_strictly_dominated(std::size_t a, std::size_t b) const;
  bool col_strictly_dominated(std::size_t a, std::size_t b) const;

  /// Iterated elimination of strictly dominated strategies. Returns the
  /// surviving action indices (in original coordinates).
  struct Survivors {
    std::vector<std::size_t> row_actions;
    std::vector<std::size_t> col_actions;
  };
  Survivors iterated_dominance() const;

 private:
  std::vector<std::vector<double>> row_;
  std::vector<std::vector<double>> col_;
  std::vector<std::string> row_names_;
  std::vector<std::string> col_names_;
};

}  // namespace tussle::game
