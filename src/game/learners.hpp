// Learning dynamics for repeated tussle games.
//
// The paper (§II-B) contrasts the idealized, perfectly-informed actors of
// classic game theory with real actors that are "ill-informed, myopic and
// act to satisfy some poorly defined objective" (Binmore). These learners
// span that spectrum: fictitious play (statistically sophisticated), regret
// matching (adaptive, no model of the opponent), epsilon-greedy (noisy
// satisficer) and myopic best response.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "game/matrix_game.hpp"
#include "sim/random.hpp"

namespace tussle::game {

/// A player in a repeated two-player game. Implementations keep whatever
/// internal statistics they need; they see their own payoff matrix and the
/// opponent's realized actions.
class Learner {
 public:
  virtual ~Learner() = default;
  virtual std::string name() const = 0;
  /// Picks the next action (game size fixed at construction).
  virtual std::size_t choose(sim::Rng& rng) = 0;
  /// Observes the opponent's action and own realized payoff for the round.
  virtual void observe(std::size_t opponent_action, double payoff) = 0;
};

/// Fictitious play: best-respond to the empirical mixture of the opponent's
/// past actions. Converges (in empirical frequency) in zero-sum games.
class FictitiousPlay final : public Learner {
 public:
  /// `my_payoff[i][j]` = my payoff when I play i and the opponent plays j.
  explicit FictitiousPlay(std::vector<std::vector<double>> my_payoff);
  std::string name() const override { return "fictitious-play"; }
  std::size_t choose(sim::Rng& rng) override;
  void observe(std::size_t opponent_action, double payoff) override;
  Mixed opponent_empirical() const;

 private:
  std::vector<std::vector<double>> payoff_;
  std::vector<double> counts_;
};

/// Regret matching (Hart & Mas-Colell): play actions with probability
/// proportional to positive cumulative regret. Empirical play converges to
/// the set of correlated equilibria; external regret vanishes.
class RegretMatching final : public Learner {
 public:
  explicit RegretMatching(std::vector<std::vector<double>> my_payoff);
  std::string name() const override { return "regret-matching"; }
  std::size_t choose(sim::Rng& rng) override;
  void observe(std::size_t opponent_action, double payoff) override;
  /// Average external regret so far (should → 0).
  double average_regret() const;

 private:
  std::vector<std::vector<double>> payoff_;
  std::vector<double> cum_regret_;
  std::size_t last_action_ = 0;
  double cum_payoff_ = 0;
  std::size_t rounds_ = 0;
  std::vector<double> cum_action_payoff_;  ///< payoff had I always played a
};

/// Epsilon-greedy satisficer: tracks average payoff per action, usually
/// exploits, sometimes explores. A deliberately "boundedly rational" actor.
class EpsilonGreedy final : public Learner {
 public:
  EpsilonGreedy(std::size_t n_actions, double epsilon);
  std::string name() const override { return "epsilon-greedy"; }
  std::size_t choose(sim::Rng& rng) override;
  void observe(std::size_t opponent_action, double payoff) override;

 private:
  double epsilon_ = 0;
  std::vector<double> total_;
  std::vector<std::size_t> tries_;
  std::size_t last_action_ = 0;
};

/// Myopic best response: assume the opponent repeats their last action.
class MyopicBestResponse final : public Learner {
 public:
  explicit MyopicBestResponse(std::vector<std::vector<double>> my_payoff);
  std::string name() const override { return "myopic"; }
  std::size_t choose(sim::Rng& rng) override;
  void observe(std::size_t opponent_action, double payoff) override;

 private:
  std::vector<std::vector<double>> payoff_;
  std::size_t opp_last_ = 0;
  bool seen_ = false;
};

/// Tit-for-tat (2-action games, action 0 = "cooperate"): start nice, then
/// mirror the opponent's last move. The formal face of §II-B's "social
/// pressure" — compliance enforced by reciprocity, not by the network.
class TitForTat final : public Learner {
 public:
  std::string name() const override { return "tit-for-tat"; }
  std::size_t choose(sim::Rng&) override { return next_; }
  void observe(std::size_t opponent_action, double) override { next_ = opponent_action; }

 private:
  std::size_t next_ = 0;
};

/// Grim trigger: cooperate until the opponent defects once, then punish
/// forever. The harshest social-enforcement convention.
class GrimTrigger final : public Learner {
 public:
  std::string name() const override { return "grim-trigger"; }
  std::size_t choose(sim::Rng&) override { return triggered_ ? 1 : 0; }
  void observe(std::size_t opponent_action, double) override {
    if (opponent_action != 0) triggered_ = true;
  }

 private:
  bool triggered_ = false;
};

/// A fixed (possibly mixed) strategy — useful as a control.
class FixedStrategy final : public Learner {
 public:
  explicit FixedStrategy(Mixed strategy) : strategy_(normalize(std::move(strategy))) {}
  std::string name() const override { return "fixed"; }
  std::size_t choose(sim::Rng& rng) override;
  void observe(std::size_t, double) override {}

 private:
  Mixed strategy_;
};

/// Result of a repeated-game run.
struct RepeatedOutcome {
  Mixed row_empirical;   ///< empirical action frequencies
  Mixed col_empirical;
  double row_mean_payoff = 0;
  double col_mean_payoff = 0;
  std::size_t rounds = 0;
};

/// Per-round visitor for play_repeated, invoked after both learners have
/// observed the round: (round index, row action, col action, row payoff,
/// col payoff). Telemetry hook — an empty function costs one branch per
/// round and the play is identical with or without it.
using RoundObserver = std::function<void(std::size_t round, std::size_t row_action,
                                         std::size_t col_action, double row_payoff,
                                         double col_payoff)>;

/// Plays `rounds` of `game` between two learners.
RepeatedOutcome play_repeated(const MatrixGame& game, Learner& row, Learner& col,
                              std::size_t rounds, sim::Rng& rng);

/// Same, with a per-round observer.
RepeatedOutcome play_repeated(const MatrixGame& game, Learner& row, Learner& col,
                              std::size_t rounds, sim::Rng& rng,
                              const RoundObserver& observer);

/// Convenience: payoff matrix of the row / column player as needed by the
/// learner constructors (column player's matrix is transposed so that
/// "my action" is always the first index).
std::vector<std::vector<double>> row_payoff_matrix(const MatrixGame& g);
std::vector<std::vector<double>> col_payoff_matrix(const MatrixGame& g);

}  // namespace tussle::game
