#include "game/solvers.hpp"

#include <algorithm>

#include "game/learners.hpp"

namespace tussle::game {

MinimaxSolution solve_zero_sum(const MatrixGame& game, std::size_t iterations) {
  MinimaxSolution out;
  std::vector<double> row_counts(game.rows(), 0.0);
  std::vector<double> col_counts(game.cols(), 0.0);
  // Cumulative payoff vectors (against opponent's historical play).
  std::vector<double> row_value(game.rows(), 0.0);  // sum over col history
  std::vector<double> col_value(game.cols(), 0.0);  // sum (row player's payoff)

  std::size_t r = 0, c = 0;
  for (std::size_t t = 0; t < iterations; ++t) {
    // Row best-responds to column history, column to row history.
    r = static_cast<std::size_t>(
        std::max_element(row_value.begin(), row_value.end()) - row_value.begin());
    c = static_cast<std::size_t>(
        std::min_element(col_value.begin(), col_value.end()) - col_value.begin());
    row_counts[r] += 1;
    col_counts[c] += 1;
    for (std::size_t i = 0; i < game.rows(); ++i) row_value[i] += game.row_payoff(i, c);
    for (std::size_t j = 0; j < game.cols(); ++j) col_value[j] += game.row_payoff(r, j);
  }

  out.row = normalize(row_counts);
  out.col = normalize(col_counts);
  out.iterations = iterations;
  // Value bounds: max_i payoff(i, col_mix) >= v >= min_j payoff(row_mix, j).
  double upper = -1e300;
  for (std::size_t i = 0; i < game.rows(); ++i) {
    double v = 0;
    for (std::size_t j = 0; j < game.cols(); ++j) v += out.col[j] * game.row_payoff(i, j);
    upper = std::max(upper, v);
  }
  double lower = 1e300;
  for (std::size_t j = 0; j < game.cols(); ++j) {
    double v = 0;
    for (std::size_t i = 0; i < game.rows(); ++i) v += out.row[i] * game.row_payoff(i, j);
    lower = std::min(lower, v);
  }
  out.value = 0.5 * (upper + lower);
  out.gap = upper - lower;
  return out;
}

LearnedProfile learn_equilibrium(const MatrixGame& game, std::size_t iterations, sim::Rng& rng) {
  RegretMatching row(row_payoff_matrix(game));
  RegretMatching col(col_payoff_matrix(game));
  auto outcome = play_repeated(game, row, col, iterations, rng);
  LearnedProfile p;
  p.row = std::move(outcome.row_empirical);
  p.col = std::move(outcome.col_empirical);
  const auto [ra, ca] = game.expected_payoff(p.row, p.col);
  double best_row = -1e300, best_col = -1e300;
  for (std::size_t i = 0; i < game.rows(); ++i) {
    double v = 0;
    for (std::size_t j = 0; j < game.cols(); ++j) v += p.col[j] * game.row_payoff(i, j);
    best_row = std::max(best_row, v);
  }
  for (std::size_t j = 0; j < game.cols(); ++j) {
    double v = 0;
    for (std::size_t i = 0; i < game.rows(); ++i) v += p.row[i] * game.col_payoff(i, j);
    best_col = std::max(best_col, v);
  }
  p.epsilon = std::max(best_row - ra, best_col - ca);
  return p;
}

}  // namespace tussle::game
