#include "game/canonical.hpp"

namespace tussle::game {

MatrixGame congestion_compliance_game() {
  // Row/col: {comply, defect}. Classic PD ordering T > R > P > S.
  return MatrixGame({{3, 0},   // comply vs {comply, defect}
                     {5, 1}},  // defect vs {comply, defect}
                    {{3, 5},   //
                     {0, 1}},
                    {"comply", "defect"}, {"comply", "defect"});
}

MatrixGame matching_pennies() {
  return MatrixGame::zero_sum({{1, -1}, {-1, 1}}, {"heads", "tails"}, {"heads", "tails"});
}

MatrixGame standards_coordination_game() {
  return MatrixGame({{2, 0}, {0, 1}},  // row prefers standard A
                    {{1, 0}, {0, 2}},  // column prefers standard B
                    {"standard-a", "standard-b"}, {"standard-a", "standard-b"});
}

MatrixGame peering_game() {
  // Chicken: {open, restrict}.
  return MatrixGame({{3, 1}, {4, 0}},  //
                    {{3, 4}, {1, 0}},  //
                    {"open", "restrict"}, {"open", "restrict"});
}

MatrixGame qos_investment_game(double cost, double revenue, double competition_bonus) {
  // Actions: {deploy, skip}. Baseline profit normalized to 10.
  const double base = 10;
  // Both deploy: extra revenue, no competitive displacement, both paid cost.
  const double both = base + revenue - cost;
  // I deploy alone: revenue plus whatever demand I steal from the rival.
  const double alone = base + revenue - cost + competition_bonus;
  // Rival deploys alone: I lose the stolen demand.
  const double left_behind = base - competition_bonus;
  return MatrixGame({{both, alone}, {left_behind, base}},
                    {{both, left_behind}, {alone, base}},
                    {"deploy", "skip"}, {"deploy", "skip"});
}

MatrixGame value_pricing_game(double tunnel_cost, double competition) {
  // User values service at 10; flat price 4; value price 7 for the "server
  // class" the user belongs to. Tunnelling under value pricing gets the
  // flat price but costs tunnel_cost. ISP margins mirror the payments, and
  // a value-pricing ISP loses `competition * 3` worth of business to churn.
  const double churn = competition * 3.0;
  return MatrixGame(
      {// user payoffs: rows {comply, tunnel}, cols {flat, value}
       {10 - 4, 10 - 7},
       {10 - 4 - tunnel_cost, 10 - 4 - tunnel_cost}},
      {// isp payoffs
       {4, 7 - churn},
       {4 - 0.5, 4 - 0.5 - churn}},  // tunnelled traffic is costlier to carry
      {"comply", "tunnel"}, {"flat-price", "value-price"});
}

}  // namespace tussle::game
