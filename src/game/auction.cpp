#include "game/auction.hpp"

#include <algorithm>

namespace tussle::game {

namespace {

std::vector<std::size_t> order_by_bid(const std::vector<Bid>& bids) {
  std::vector<std::size_t> idx(bids.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return bids[a].amount > bids[b].amount; });
  return idx;
}

}  // namespace

AuctionResult vickrey_auction(const std::vector<Bid>& bids) {
  AuctionResult r;
  if (bids.empty()) return r;
  auto idx = order_by_bid(bids);
  r.winner = bids[idx[0]].bidder;
  r.social_value = bids[idx[0]].amount;
  r.price = idx.size() > 1 ? bids[idx[1]].amount : 0.0;
  return r;
}

AuctionResult first_price_auction(const std::vector<Bid>& bids) {
  AuctionResult r;
  if (bids.empty()) return r;
  auto idx = order_by_bid(bids);
  r.winner = bids[idx[0]].bidder;
  r.social_value = bids[idx[0]].amount;
  r.price = bids[idx[0]].amount;
  return r;
}

std::vector<AuctionResult> vcg_uniform(const std::vector<Bid>& bids, std::size_t items) {
  std::vector<AuctionResult> out;
  if (bids.empty() || items == 0) return out;
  auto idx = order_by_bid(bids);
  const std::size_t winners = std::min(items, bids.size());
  const double clearing = bids.size() > items ? bids[idx[items]].amount : 0.0;
  for (std::size_t w = 0; w < winners; ++w) {
    AuctionResult r;
    r.winner = bids[idx[w]].bidder;
    r.social_value = bids[idx[w]].amount;
    r.price = clearing;
    out.push_back(std::move(r));
  }
  return out;
}

double vickrey_utility(double value, double bid, const std::vector<double>& rivals) {
  double top_rival = 0;
  for (double r : rivals) top_rival = std::max(top_rival, r);
  // Win iff bid strictly exceeds the top rival (ties lose, conservatively).
  if (bid > top_rival) return value - top_rival;
  return 0.0;
}

double first_price_utility(double value, double bid, const std::vector<double>& rivals) {
  double top_rival = 0;
  for (double r : rivals) top_rival = std::max(top_rival, r);
  if (bid > top_rival) return value - bid;
  return 0.0;
}

}  // namespace tussle::game
