// Mechanism design: Vickrey auctions and VCG (§II-B).
//
// "Vickrey ... outlined the beginnings of a theory to generatively design
// and prescribe actor networks that exhibit a desirable apriori set of
// properties" — concretely, mechanisms where truth-telling is a dominant
// strategy, removing the information tussle. First-price is included as the
// non-truthful baseline the experiments compare against.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tussle::game {

struct Bid {
  std::string bidder;
  double amount = 0;
};

struct AuctionResult {
  std::string winner;           ///< empty when there were no bids
  double price = 0;             ///< what the winner pays
  double social_value = 0;      ///< winner's *bid* (reported value)
};

/// Second-price sealed-bid auction. Ties go to the earlier bid.
AuctionResult vickrey_auction(const std::vector<Bid>& bids);

/// First-price sealed-bid auction (the non-truthful comparator).
AuctionResult first_price_auction(const std::vector<Bid>& bids);

/// VCG for k identical items, unit demand: the k highest bidders win and
/// each pays the (k+1)-th highest bid (uniform-price generalization of
/// Vickrey). Returns per-winner results.
std::vector<AuctionResult> vcg_uniform(const std::vector<Bid>& bids, std::size_t items);

/// Utility of a bidder with true value `value` if they bid `bid` while the
/// others bid `rivals`, under Vickrey rules. Used by the truthfulness
/// property tests and the E9 bench: for all bid != value,
/// utility(value, bid) <= utility(value, value).
double vickrey_utility(double value, double bid, const std::vector<double>& rivals);

/// Same under first-price rules (truth-telling yields zero utility, so
/// shading is profitable — the contrast case).
double first_price_utility(double value, double bid, const std::vector<double>& rivals);

}  // namespace tussle::game
