#include "game/matrix_game.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tussle::game {

Mixed normalize(Mixed m) {
  double total = 0;
  for (double p : m) {
    if (p < 0) throw std::invalid_argument("negative probability");
    total += p;
  }
  if (total <= 0) throw std::invalid_argument("mixed strategy has zero mass");
  for (double& p : m) p /= total;
  return m;
}

MatrixGame::MatrixGame(std::vector<std::vector<double>> row_payoff,
                       std::vector<std::vector<double>> col_payoff,
                       std::vector<std::string> row_names, std::vector<std::string> col_names)
    : row_(std::move(row_payoff)),
      col_(std::move(col_payoff)),
      row_names_(std::move(row_names)),
      col_names_(std::move(col_names)) {
  if (row_.empty() || row_[0].empty()) throw std::invalid_argument("empty payoff matrix");
  if (col_.size() != row_.size()) throw std::invalid_argument("payoff shape mismatch");
  for (std::size_t i = 0; i < row_.size(); ++i) {
    if (row_[i].size() != row_[0].size() || col_[i].size() != row_[0].size()) {
      throw std::invalid_argument("payoff matrices must be rectangular and equal shape");
    }
  }
  if (row_names_.empty()) {
    for (std::size_t i = 0; i < rows(); ++i) row_names_.push_back("r" + std::to_string(i));
  }
  if (col_names_.empty()) {
    for (std::size_t j = 0; j < cols(); ++j) col_names_.push_back("c" + std::to_string(j));
  }
  if (row_names_.size() != rows() || col_names_.size() != cols()) {
    throw std::invalid_argument("action name count mismatch");
  }
}

MatrixGame MatrixGame::zero_sum(std::vector<std::vector<double>> row_payoff,
                                std::vector<std::string> row_names,
                                std::vector<std::string> col_names) {
  std::vector<std::vector<double>> col = row_payoff;
  for (auto& r : col) {
    for (auto& x : r) x = -x;
  }
  return MatrixGame(std::move(row_payoff), std::move(col), std::move(row_names),
                    std::move(col_names));
}

bool MatrixGame::is_zero_sum(double tol) const noexcept {
  for (std::size_t i = 0; i < rows(); ++i) {
    for (std::size_t j = 0; j < cols(); ++j) {
      if (std::abs(row_[i][j] + col_[i][j]) > tol) return false;
    }
  }
  return true;
}

std::pair<double, double> MatrixGame::expected_payoff(const Mixed& row, const Mixed& col) const {
  if (row.size() != rows() || col.size() != cols()) {
    throw std::invalid_argument("strategy dimension mismatch");
  }
  double a = 0, b = 0;
  for (std::size_t i = 0; i < rows(); ++i) {
    if (row[i] == 0) continue;
    for (std::size_t j = 0; j < cols(); ++j) {
      const double w = row[i] * col[j];
      a += w * row_[i][j];
      b += w * col_[i][j];
    }
  }
  return {a, b};
}

std::size_t MatrixGame::best_row_response(const Mixed& col) const {
  std::size_t best = 0;
  double best_v = -1e300;
  for (std::size_t i = 0; i < rows(); ++i) {
    double v = 0;
    for (std::size_t j = 0; j < cols(); ++j) v += col[j] * row_[i][j];
    if (v > best_v + 1e-15) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

std::size_t MatrixGame::best_col_response(const Mixed& row) const {
  std::size_t best = 0;
  double best_v = -1e300;
  for (std::size_t j = 0; j < cols(); ++j) {
    double v = 0;
    for (std::size_t i = 0; i < rows(); ++i) v += row[i] * col_[i][j];
    if (v > best_v + 1e-15) {
      best_v = v;
      best = j;
    }
  }
  return best;
}

bool MatrixGame::is_pure_nash(std::size_t i, std::size_t j, double tol) const {
  for (std::size_t a = 0; a < rows(); ++a) {
    if (row_[a][j] > row_[i][j] + tol) return false;
  }
  for (std::size_t b = 0; b < cols(); ++b) {
    if (col_[i][b] > col_[i][j] + tol) return false;
  }
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> MatrixGame::pure_nash() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < rows(); ++i) {
    for (std::size_t j = 0; j < cols(); ++j) {
      if (is_pure_nash(i, j)) out.emplace_back(i, j);
    }
  }
  return out;
}

bool MatrixGame::is_epsilon_nash(const Mixed& row, const Mixed& col, double epsilon) const {
  const auto [ra, ca] = expected_payoff(row, col);
  // Best deviation payoffs.
  double best_row = -1e300;
  for (std::size_t i = 0; i < rows(); ++i) {
    double v = 0;
    for (std::size_t j = 0; j < cols(); ++j) v += col[j] * row_[i][j];
    best_row = std::max(best_row, v);
  }
  double best_col = -1e300;
  for (std::size_t j = 0; j < cols(); ++j) {
    double v = 0;
    for (std::size_t i = 0; i < rows(); ++i) v += row[i] * col_[i][j];
    best_col = std::max(best_col, v);
  }
  return best_row - ra <= epsilon && best_col - ca <= epsilon;
}

bool MatrixGame::row_strictly_dominated(std::size_t a, std::size_t b) const {
  for (std::size_t j = 0; j < cols(); ++j) {
    if (row_[b][j] <= row_[a][j]) return false;
  }
  return true;
}

bool MatrixGame::col_strictly_dominated(std::size_t a, std::size_t b) const {
  for (std::size_t i = 0; i < rows(); ++i) {
    if (col_[i][b] <= col_[i][a]) return false;
  }
  return true;
}

MatrixGame::Survivors MatrixGame::iterated_dominance() const {
  std::vector<std::size_t> ra(rows()), ca(cols());
  for (std::size_t i = 0; i < rows(); ++i) ra[i] = i;
  for (std::size_t j = 0; j < cols(); ++j) ca[j] = j;

  bool changed = true;
  while (changed && ra.size() > 1 && ca.size() > 1) {
    changed = false;
    // Row eliminations, restricted to surviving columns.
    for (std::size_t ai = 0; ai < ra.size() && ra.size() > 1; ++ai) {
      for (std::size_t bi = 0; bi < ra.size(); ++bi) {
        if (ai == bi) continue;
        bool dominated = true;
        for (std::size_t j : ca) {
          if (row_[ra[bi]][j] <= row_[ra[ai]][j]) {
            dominated = false;
            break;
          }
        }
        if (dominated) {
          ra.erase(ra.begin() + static_cast<std::ptrdiff_t>(ai));
          changed = true;
          --ai;
          break;
        }
      }
    }
    for (std::size_t aj = 0; aj < ca.size() && ca.size() > 1; ++aj) {
      for (std::size_t bj = 0; bj < ca.size(); ++bj) {
        if (aj == bj) continue;
        bool dominated = true;
        for (std::size_t i : ra) {
          if (col_[i][ca[bj]] <= col_[i][ca[aj]]) {
            dominated = false;
            break;
          }
        }
        if (dominated) {
          ca.erase(ca.begin() + static_cast<std::ptrdiff_t>(aj));
          changed = true;
          --aj;
          break;
        }
      }
    }
  }
  return Survivors{std::move(ra), std::move(ca)};
}

}  // namespace tussle::game
