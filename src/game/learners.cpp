#include "game/learners.hpp"

#include <algorithm>
#include <stdexcept>

namespace tussle::game {

namespace {

std::size_t argmax(const std::vector<double>& v) {
  return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace

// ---------------------------------------------------------- FictitiousPlay

FictitiousPlay::FictitiousPlay(std::vector<std::vector<double>> my_payoff)
    : payoff_(std::move(my_payoff)) {
  if (payoff_.empty() || payoff_[0].empty()) throw std::invalid_argument("empty payoff");
  counts_.assign(payoff_[0].size(), 0.0);
}

std::size_t FictitiousPlay::choose(sim::Rng& rng) {
  double total = 0;
  for (double c : counts_) total += c;
  std::vector<double> values(payoff_.size(), 0.0);
  if (total == 0) {
    // No history: uniform prior over opponent actions.
    for (std::size_t i = 0; i < payoff_.size(); ++i) {
      for (double x : payoff_[i]) values[i] += x;
    }
  } else {
    for (std::size_t i = 0; i < payoff_.size(); ++i) {
      for (std::size_t j = 0; j < counts_.size(); ++j) {
        values[i] += counts_[j] / total * payoff_[i][j];
      }
    }
  }
  (void)rng;
  return argmax(values);
}

void FictitiousPlay::observe(std::size_t opponent_action, double) {
  counts_.at(opponent_action) += 1;
}

Mixed FictitiousPlay::opponent_empirical() const {
  double total = 0;
  for (double c : counts_) total += c;
  Mixed m(counts_.size(), 0.0);
  if (total == 0) return m;
  for (std::size_t j = 0; j < counts_.size(); ++j) m[j] = counts_[j] / total;
  return m;
}

// ---------------------------------------------------------- RegretMatching

RegretMatching::RegretMatching(std::vector<std::vector<double>> my_payoff)
    : payoff_(std::move(my_payoff)) {
  if (payoff_.empty() || payoff_[0].empty()) throw std::invalid_argument("empty payoff");
  cum_regret_.assign(payoff_.size(), 0.0);
  cum_action_payoff_.assign(payoff_.size(), 0.0);
}

std::size_t RegretMatching::choose(sim::Rng& rng) {
  std::vector<double> pos(cum_regret_.size());
  double total = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = std::max(0.0, cum_regret_[i]);
    total += pos[i];
  }
  if (total <= 0) {
    last_action_ =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(pos.size()) - 1));
  } else {
    last_action_ = rng.weighted_pick(pos);
  }
  return last_action_;
}

void RegretMatching::observe(std::size_t opponent_action, double payoff) {
  cum_payoff_ += payoff;
  ++rounds_;
  for (std::size_t a = 0; a < payoff_.size(); ++a) {
    const double would = payoff_[a].at(opponent_action);
    cum_action_payoff_[a] += would;
    cum_regret_[a] += would - payoff;
  }
}

double RegretMatching::average_regret() const {
  if (rounds_ == 0) return 0;
  double best = *std::max_element(cum_action_payoff_.begin(), cum_action_payoff_.end());
  return std::max(0.0, (best - cum_payoff_) / static_cast<double>(rounds_));
}

// ------------------------------------------------------------ EpsilonGreedy

EpsilonGreedy::EpsilonGreedy(std::size_t n_actions, double epsilon)
    : epsilon_(epsilon), total_(n_actions, 0.0), tries_(n_actions, 0) {
  if (n_actions == 0) throw std::invalid_argument("no actions");
}

std::size_t EpsilonGreedy::choose(sim::Rng& rng) {
  if (rng.bernoulli(epsilon_)) {
    last_action_ = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(total_.size()) - 1));
    return last_action_;
  }
  // Exploit: best average so far; untried actions count as best.
  double best = -1e300;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < total_.size(); ++i) {
    const double avg = tries_[i] == 0 ? 1e300 : total_[i] / static_cast<double>(tries_[i]);
    if (avg > best) {
      best = avg;
      best_i = i;
    }
  }
  last_action_ = best_i;
  return last_action_;
}

void EpsilonGreedy::observe(std::size_t, double payoff) {
  total_[last_action_] += payoff;
  tries_[last_action_] += 1;
}

// ------------------------------------------------------ MyopicBestResponse

MyopicBestResponse::MyopicBestResponse(std::vector<std::vector<double>> my_payoff)
    : payoff_(std::move(my_payoff)) {
  if (payoff_.empty() || payoff_[0].empty()) throw std::invalid_argument("empty payoff");
}

std::size_t MyopicBestResponse::choose(sim::Rng& rng) {
  if (!seen_) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(payoff_.size()) - 1));
  }
  std::vector<double> values(payoff_.size());
  for (std::size_t i = 0; i < payoff_.size(); ++i) values[i] = payoff_[i][opp_last_];
  return argmax(values);
}

void MyopicBestResponse::observe(std::size_t opponent_action, double) {
  opp_last_ = opponent_action;
  seen_ = true;
}

// ------------------------------------------------------------ FixedStrategy

std::size_t FixedStrategy::choose(sim::Rng& rng) { return rng.weighted_pick(strategy_); }

// ------------------------------------------------------------- repeated ---

RepeatedOutcome play_repeated(const MatrixGame& game, Learner& row, Learner& col,
                              std::size_t rounds, sim::Rng& rng) {
  return play_repeated(game, row, col, rounds, rng, RoundObserver{});
}

RepeatedOutcome play_repeated(const MatrixGame& game, Learner& row, Learner& col,
                              std::size_t rounds, sim::Rng& rng,
                              const RoundObserver& observer) {
  RepeatedOutcome out;
  out.row_empirical.assign(game.rows(), 0.0);
  out.col_empirical.assign(game.cols(), 0.0);
  double rp = 0, cp = 0;
  for (std::size_t t = 0; t < rounds; ++t) {
    const std::size_t a = row.choose(rng);
    const std::size_t b = col.choose(rng);
    out.row_empirical.at(a) += 1;
    out.col_empirical.at(b) += 1;
    const double pr = game.row_payoff(a, b);
    const double pc = game.col_payoff(a, b);
    rp += pr;
    cp += pc;
    row.observe(b, pr);
    col.observe(a, pc);
    if (observer) observer(t, a, b, pr, pc);
  }
  if (rounds > 0) {
    for (double& x : out.row_empirical) x /= static_cast<double>(rounds);
    for (double& x : out.col_empirical) x /= static_cast<double>(rounds);
    out.row_mean_payoff = rp / static_cast<double>(rounds);
    out.col_mean_payoff = cp / static_cast<double>(rounds);
  }
  out.rounds = rounds;
  return out;
}

std::vector<std::vector<double>> row_payoff_matrix(const MatrixGame& g) {
  std::vector<std::vector<double>> m(g.rows(), std::vector<double>(g.cols()));
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) m[i][j] = g.row_payoff(i, j);
  }
  return m;
}

std::vector<std::vector<double>> col_payoff_matrix(const MatrixGame& g) {
  std::vector<std::vector<double>> m(g.cols(), std::vector<double>(g.rows()));
  for (std::size_t j = 0; j < g.cols(); ++j) {
    for (std::size_t i = 0; i < g.rows(); ++i) m[j][i] = g.col_payoff(i, j);
  }
  return m;
}

}  // namespace tussle::game
