// Canonical tussle games.
//
// Each constructor encodes one of the paper's recurring tussle situations
// as a matrix game, so experiments and examples can reason about equilibria
// instead of hand-waving. Payoff numbers are conventional; the *structure*
// (ordering of outcomes) is what each scenario fixes.
#pragma once

#include "game/matrix_game.hpp"

namespace tussle::game {

/// TCP congestion-control compliance (§II-B "system design perspectives"):
/// both comply → good throughput for both; one defects (aggressive sender)
/// → defector wins big, complier starves; both defect → congestion
/// collapse. A prisoner's dilemma: defection dominant, mutual defection
/// Pareto-dominated.
MatrixGame congestion_compliance_game();

/// Matching pennies — the purely adversarial (zero-sum) tussle class.
MatrixGame matching_pennies();

/// Standards coordination ("battle of the sexes"): two vendors prefer
/// different standards but both prefer agreement over fragmentation.
MatrixGame standards_coordination_game();

/// ISP peering as chicken: both "open" (peer) is fine, unilateral
/// "restrict" exploits the opener, mutual restriction (depeering) is worst.
MatrixGame peering_game();

/// The §VII QoS-deployment investment game between two ISPs.
/// Actions: {deploy QoS, don't}. Parameters:
///  - `cost`: router upgrade + operations cost of deploying;
///  - `revenue`: extra revenue if the deployment can be monetized;
///  - `competition_bonus`: demand stolen from a non-deploying rival when
///    consumers can choose providers (the "fear" term; 0 without choice).
/// Without value-flow, revenue = 0 and deploying is dominated — the
/// historical failure. With revenue > cost, deployment becomes dominant.
MatrixGame qos_investment_game(double cost, double revenue, double competition_bonus);

/// User-vs-ISP value-pricing tussle (§V-A-2). Row: user {comply, tunnel}.
/// Column: ISP {flat price, value price}. `tunnel_cost` is the user's
/// overhead of tunnelling; `competition` in [0,1] scales how much a value-
/// pricing ISP loses to churn when users are annoyed.
MatrixGame value_pricing_game(double tunnel_cost, double competition);

}  // namespace tussle::game
