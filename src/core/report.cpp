#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace tussle::core {

namespace {

std::string render(const Table::Cell& c, int precision) {
  if (std::holds_alternative<std::string>(c)) return std::get<std::string>(c);
  char buf[64];
  if (std::holds_alternative<double>(c)) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, std::get<double>(c));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", std::get<long long>(c));
  }
  return buf;
}

}  // namespace

Table& Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header count");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os, int precision) const {
  std::vector<std::size_t> width(headers_.size());
  std::vector<std::vector<std::string>> rendered;
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(render(row[i], precision));
      width[i] = std::max(width[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  auto pad = [&](const std::string& s, std::size_t w, bool right) {
    std::string out;
    if (right) out.append(w - s.size(), ' ');
    out += s;
    if (!right) out.append(w - s.size(), ' ');
    return out;
  };

  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << (i ? "  " : "") << pad(headers_[i], width[i], false);
  }
  os << "\n";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << (i ? "  " : "") << std::string(width[i], '-');
  }
  os << "\n";
  for (std::size_t r = 0; r < rendered.size(); ++r) {
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const bool numeric = !std::holds_alternative<std::string>(rows_[r][i]);
      os << (i ? "  " : "") << pad(rendered[r][i], width[i], numeric);
    }
    os << "\n";
  }
}

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& paper_section, const std::string& claim) {
  os << "\n=== " << id << " (" << paper_section << ") ===\n" << claim << "\n\n";
}

}  // namespace tussle::core
