// Actors and actor networks (§II-A, Latour/Callon).
//
// "It is the whole actor network ... that becomes stable, as all the human
// and nonhuman actors align and harmonize themselves to common interfaces."
// The ActorNetwork holds actors (human and technological) and weighted
// alignment edges; durability is mean pairwise alignment, and the paper's
// churn claim — new entrants keep the network changeable — is reproduced by
// entry perturbation.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace tussle::core {

/// The stakeholder classes the paper enumerates in §I, plus the technology
/// itself (a nonhuman actor with agency but no intentions, fn. 3).
enum class ActorKind {
  kUser,
  kCommercialIsp,
  kPrivateNetwork,
  kGovernment,
  kRightsHolder,
  kContentProvider,
  kDesigner,
  kTechnology,
};

std::string to_string(ActorKind k);

struct Actor {
  std::string name;
  ActorKind kind = ActorKind::kUser;
  /// Stake per tussle space ("economics", "trust", "openness", ...):
  /// positive = wants more of it, negative = opposes. Used to detect
  /// adverse-interest pairs.
  std::map<std::string, double> interests;
};

class ActorNetwork {
 public:
  /// Adds an actor; returns its index.
  std::size_t add(Actor a);
  const Actor& actor(std::size_t i) const { return actors_.at(i); }
  std::optional<std::size_t> find(const std::string& name) const;
  std::size_t size() const noexcept { return actors_.size(); }

  /// Sets mutual alignment in [0,1]: how committed the two actors are to
  /// their common interface (0 = none, 1 = fully locked in).
  void align(std::size_t a, std::size_t b, double strength);
  double alignment(std::size_t a, std::size_t b) const;

  /// Mean alignment over all pairs — the durability of the whole network.
  /// "The network gets harder to change as it grows up" = durability → 1.
  double durability() const;

  /// Whether two actors have directly adverse interests (opposite-signed
  /// stakes in the same tussle space).
  bool adverse(std::size_t a, std::size_t b) const;

  /// Number of adverse pairs — how much unresolved tussle the network
  /// carries. The paper: tussles not driven out ⇒ network stays fluid.
  std::size_t adverse_pairs() const;

  /// Simulates the entry of a new actor (§II-C): the entrant arrives with
  /// zero alignment to everyone, and shakes `disruption` fraction off every
  /// existing alignment (fresh perspectives de-stabilize). Returns the
  /// durability drop.
  double enter(Actor a, double disruption);

  /// The §II-C freezing predictor: with no new entrants, alignments anneal
  /// toward 1 at `rate` per step as actors harmonize. Runs `steps`.
  void anneal(double rate, std::size_t steps);

 private:
  std::vector<Actor> actors_;
  std::map<std::pair<std::size_t, std::size_t>, double> edges_;

  static std::pair<std::size_t, std::size_t> key(std::size_t a, std::size_t b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
};

}  // namespace tussle::core
