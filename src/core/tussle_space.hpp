// Tussle spaces and the modularity audit (§IV-A).
//
// A TussleMap registers the tussle spaces a design touches, which
// mechanisms serve which space, and which mechanisms couple several spaces
// at once. The audit produces the designer-facing report the paper asks
// for: "functions that are within a tussle space should be logically
// separated from functions outside of that space."
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "policy/rules.hpp"

namespace tussle::core {

struct Mechanism {
  std::string name;
  std::set<std::string> spaces_touched;  ///< tussle spaces this mechanism reads/affects
};

class TussleMap {
 public:
  void declare_space(const std::string& space) { spaces_.insert(space); }
  bool has_space(const std::string& space) const { return spaces_.count(space) != 0; }
  std::size_t space_count() const noexcept { return spaces_.size(); }

  /// Registers a mechanism and the spaces it touches. Unknown spaces are
  /// auto-declared (the map should reflect reality, not wishful thinking).
  void add_mechanism(const std::string& name, std::set<std::string> spaces);

  /// Imports couplings found by the policy engine's rule analysis.
  void import_policy_couplings(const std::string& mechanism_prefix,
                               const policy::PolicySet& rules);

  /// Mechanisms touching 2+ spaces — each is a modularity violation in the
  /// paper's sense.
  std::vector<Mechanism> entangled_mechanisms() const;

  /// Fraction of mechanisms that are entangled, in [0,1]. The ablation
  /// experiments drive this to 0 for "modularized" designs.
  double entanglement_ratio() const;

  const std::vector<Mechanism>& mechanisms() const noexcept { return mechanisms_; }

 private:
  std::set<std::string> spaces_;
  std::vector<Mechanism> mechanisms_;
};

}  // namespace tussle::core
