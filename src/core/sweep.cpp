#include "core/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "sim/json.hpp"
#include "sim/sharded_backend.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace tussle::core {

// ---------------------------------------------------------------- ParamPoint

void ParamPoint::set(std::string name, double value) {
  for (auto& [k, v] : values_) {
    if (k == name) {
      v = value;
      return;
    }
  }
  values_.emplace_back(std::move(name), value);
}

double ParamPoint::get(const std::string& name) const {
  for (const auto& [k, v] : values_) {
    if (k == name) return v;
  }
  throw std::out_of_range("ParamPoint: no axis named '" + name + "'");
}

double ParamPoint::get(const std::string& name, double fallback) const noexcept {
  for (const auto& [k, v] : values_) {
    if (k == name) return v;
  }
  return fallback;
}

bool ParamPoint::has(const std::string& name) const noexcept {
  for (const auto& [k, v] : values_) {
    (void)v;
    if (k == name) return true;
  }
  return false;
}

std::string ParamPoint::label() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ",";
    out += k + "=" + sim::json_number(v);
  }
  return out;
}

// ----------------------------------------------------------------- ParamGrid

ParamGrid& ParamGrid::axis(std::string name, std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("ParamGrid: axis '" + name + "' is empty");
  for (const auto& [k, vs] : axes_) {
    (void)vs;
    if (k == name) throw std::invalid_argument("ParamGrid: duplicate axis '" + name + "'");
  }
  axes_.emplace_back(std::move(name), std::move(values));
  return *this;
}

std::size_t ParamGrid::point_count() const noexcept {
  std::size_t n = 1;
  for (const auto& [k, vs] : axes_) {
    (void)k;
    n *= vs.size();
  }
  return n;
}

std::vector<ParamPoint> ParamGrid::points() const {
  std::vector<ParamPoint> out;
  out.reserve(point_count());
  // Mixed-radix counter over the axes; first axis is the most significant
  // digit, so it varies slowest.
  std::vector<std::size_t> idx(axes_.size(), 0);
  for (;;) {
    ParamPoint p;
    for (std::size_t a = 0; a < axes_.size(); ++a) p.set(axes_[a].first, axes_[a].second[idx[a]]);
    out.push_back(std::move(p));
    std::size_t a = axes_.size();
    for (;;) {
      if (a == 0) return out;
      --a;
      if (++idx[a] < axes_[a].second.size()) break;
      idx[a] = 0;
    }
  }
}

// ---------------------------------------------------------------- RunContext

void RunContext::instrument(sim::Simulator& sim) {
  // The backend must go in before the scenario schedules anything; hooks
  // attach afterwards so set_* can propagate them to the new backend.
  if (shards_ > 0) {
    sim.set_backend(std::make_unique<sim::ShardedBackend>(sim, shards_));
  }
  if (profiler_ != nullptr) sim.set_profiler(profiler_);
  if (audit_ != nullptr) {
    audit_->set_span_tracer(spans_);  // violation reports carry the span, if any
    sim.set_auditor(audit_);
  }
  if (scale_ != nullptr) sim.set_scale_profiler(scale_);
  if (exec_ != nullptr) sim.set_exec_profiler(exec_);
  if (mem_ != nullptr) {
    sim.set_mem_profiler(mem_);
    // The sweep engine's own per-run state is part of the footprint the
    // million-actor refactor has to carry; account it like any component.
    mem_->count_alloc("core.sweep_run", sizeof(RunResult));
    if (timeseries_ != nullptr) {
      // Satellite gauges: memory over sim time rides the same dashboard as
      // every other series. Probes fire only while the body samples, so
      // the captured simulator reference cannot outlive its run.
      sim::Simulator* s = &sim;
      timeseries_->probe("mem.live_bytes",
                         [s] { return static_cast<double>(s->mem_live_bytes()); });
      timeseries_->probe("sim.queue_depth",
                         [s] { return static_cast<double>(s->events_pending()); });
    }
  }
  // --trace installs its JSONL sink on the process-global tracer, but
  // components built on this simulator log to its own per-run tracer;
  // mirror the global configuration so their records land in the same
  // file. Trace mode forces one worker, so the shared sink is safe.
  auto& global = sim::Tracer::global();
  if (global.enabled() && global.sink()) {
    sim.tracer().enable(true);
    sim.tracer().set_level(global.level());
    sim.tracer().set_sink(global.sink());
  }
  if (heartbeat_seconds_ > 0) sim.set_heartbeat(sim::Duration::seconds(heartbeat_seconds_));
}

// --------------------------------------------------------------- SweepResult

const RunResult& SweepResult::run(std::size_t point_index, std::size_t replica) const {
  const std::size_t i = point_index * replicas + replica;
  if (point_index >= points.size() || replica >= replicas || i >= runs.size()) {
    throw std::out_of_range("SweepResult::run: no such run");
  }
  return runs[i];
}

std::size_t SweepResult::total_events() const noexcept {
  std::size_t n = 0;
  for (const auto& r : runs) n += r.events;
  return n;
}

double SweepResult::mean(std::size_t point_index, const std::string& key,
                         double fallback) const {
  sim::Summary s;
  for (std::size_t r = 0; r < replicas; ++r) {
    const auto& m = run(point_index, r).metrics;
    if (m.contains(key)) s.observe(m.get(key));
  }
  return s.count() ? s.mean() : fallback;
}

namespace {

/// Folds a range of runs into one MetricSet: plain keys for a single run,
/// K.mean/.stddev/.min/.max/.p50 for several. Key order is first
/// appearance in run-index order, so the output is schedule-independent.
sim::MetricSet aggregate_range(const std::vector<RunResult>& runs, std::size_t begin,
                               std::size_t end) {
  std::vector<std::string> order;
  std::map<std::string, std::pair<sim::Summary, sim::Histogram>> agg;
  for (std::size_t i = begin; i < end && i < runs.size(); ++i) {
    for (const auto& [k, v] : runs[i].metrics.items()) {
      auto [it, inserted] = agg.try_emplace(k);
      if (inserted) order.push_back(k);
      it->second.first.observe(v);
      it->second.second.observe(v);
    }
  }
  sim::MetricSet out;
  const std::size_t n = end > begin ? end - begin : 0;
  for (const auto& k : order) {
    const auto& [summary, hist] = agg.at(k);
    if (n <= 1) {
      out.put(k, summary.mean());
    } else {
      out.put(k + ".mean", summary.mean());
      out.put(k + ".stddev", summary.stddev());
      out.put(k + ".min", summary.min());
      out.put(k + ".max", summary.max());
      out.put(k + ".p50", hist.quantile(0.5));
    }
  }
  return out;
}

}  // namespace

sim::MetricSet SweepResult::aggregate(std::size_t point_index) const {
  if (point_index >= points.size()) throw std::out_of_range("SweepResult::aggregate");
  return aggregate_range(runs, point_index * replicas, (point_index + 1) * replicas);
}

sim::MetricSet SweepResult::aggregate() const { return aggregate_range(runs, 0, runs.size()); }

// ----------------------------------------------------------------- run_sweep

std::size_t resolve_jobs(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TUSSLE_JOBS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepResult run_sweep(const ScenarioSpec& spec, const SweepOptions& opts) {
  if (!spec.body) throw std::invalid_argument("run_sweep: spec '" + spec.name + "' has no body");

  SweepResult out;
  out.name = spec.name;
  out.points = spec.grid.points();
  out.replicas = opts.replicas > 0 ? opts.replicas : spec.replicas;

  const std::size_t total = out.points.size() * out.replicas;
  out.runs.resize(total);
  if (total == 0) return out;

  // Work is claimed from a shared counter, but a run's identity — and
  // therefore its RNG stream, metrics, notes, and slot in the results —
  // depends only on its index, so the claim order cannot leak into output.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const bool serial = resolve_jobs(opts.jobs) <= 1 || total == 1;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      const std::size_t point_index = i / out.replicas;
      const std::size_t replica = i % out.replicas;
      RunResult& slot = out.runs[i];
      slot.run_index = i;
      slot.point_index = point_index;
      slot.replica = replica;
      try {
        sim::Rng rng = sim::Rng::stream(opts.base_seed, i);
        RunContext ctx(rng, slot.metrics, out.points[point_index], point_index, replica, i);
        if (opts.profile) {
          slot.profiler = std::make_unique<sim::LoopProfiler>();
          ctx.profiler_ = slot.profiler.get();
        }
        if (opts.spans) {
          slot.spans = std::make_unique<sim::SpanTracer>();
          ctx.spans_ = slot.spans.get();
        }
        if (opts.timeseries_seconds > 0) {
          slot.timeseries = std::make_unique<sim::TimeSeriesRecorder>(
              sim::Duration::seconds(opts.timeseries_seconds));
          ctx.timeseries_ = slot.timeseries.get();
        }
        if (opts.audit) {
          slot.audit = std::make_unique<sim::ShardAuditor>();
          ctx.audit_ = slot.audit.get();
        }
        if (opts.scale) {
          slot.scale = std::make_unique<sim::ScaleProfiler>();
          ctx.scale_ = slot.scale.get();
          if (!slot.audit) {
            // Shard attribution rides the auditor's component registry;
            // fail-soft so profiling never turns into policing.
            slot.audit = std::make_unique<sim::ShardAuditor>();
            slot.audit->set_fail_fast(false);
            ctx.audit_ = slot.audit.get();
          }
        }
        if (opts.exec) {
          slot.exec = std::make_unique<sim::ExecProfiler>();
          ctx.exec_ = slot.exec.get();
        }
        if (opts.mem) {
          slot.mem = std::make_unique<sim::MemProfiler>();
          ctx.mem_ = slot.mem.get();
          if (!slot.audit) {
            // Per-shard footprint attribution rides the auditor's claim;
            // fail-soft so profiling never turns into policing.
            slot.audit = std::make_unique<sim::ShardAuditor>();
            slot.audit->set_fail_fast(false);
            ctx.audit_ = slot.audit.get();
          }
        }
        if (serial) ctx.heartbeat_seconds_ = opts.heartbeat_seconds;
        ctx.shards_ = opts.shards;
        spec.body(ctx);
        slot.notes = std::move(ctx.notes_);
        slot.events = ctx.events_;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  if (serial) {
    worker();
  } else {
    const std::size_t jobs = std::min(resolve_jobs(opts.jobs), total);
    std::vector<std::jthread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
  }

  if (first_error) std::rethrow_exception(first_error);
  return out;
}

// ---------------------------------------------------------- ScenarioRegistry

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("ScenarioRegistry: empty name");
  if (find(spec.name) != nullptr) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" + spec.name + "'");
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const noexcept {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s.name);
  return out;
}

}  // namespace tussle::core
