// Regional scenario helper: "different in different places".
//
// The declarative experiment surface lives in core/sweep.hpp (ScenarioSpec
// + run_sweep, or bench::Harness::scenario). The transitional single-body
// Scenario shim that used to live here is gone; this header keeps only the
// regional-variation helper built on the sweep engine.
#pragma once

#include <functional>
#include <vector>

#include "core/choice.hpp"
#include "core/sweep.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace tussle::core {

/// Runs one parameterized scenario body across regions and reports the
/// outcome variation of a chosen metric. Each region supplies a parameter
/// value (e.g. regional policy strictness).
struct RegionalOutcome {
  std::vector<double> per_region;
  double variation = 0;  ///< core::outcome_variation of per_region
};
RegionalOutcome run_regional(
    const std::vector<double>& region_params,
    const std::function<double(double param, sim::Rng&)>& body, std::uint64_t seed = 1);

}  // namespace tussle::core
