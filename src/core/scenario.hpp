// Scenario harness: a named, seeded, repeatable experiment run.
//
// Examples and benches define scenarios; the harness standardizes seeding,
// timing, metric collection, and regional variation (running the same
// mechanism under different regional parameters and measuring how much the
// outcome differs — the paper's "different in different places").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/choice.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace tussle::core {

class Scenario {
 public:
  using Body = std::function<void(sim::Rng&, sim::MetricSet&)>;

  Scenario(std::string name, Body body) : name_(std::move(name)), body_(std::move(body)) {}

  const std::string& name() const noexcept { return name_; }

  /// Runs once with the given seed.
  sim::MetricSet run(std::uint64_t seed = 1) const;

  /// Runs `replicas` seeds and returns per-metric summaries (keys suffixed
  /// ".mean"/".stddev").
  sim::MetricSet run_replicated(std::size_t replicas, std::uint64_t base_seed = 1) const;

 private:
  std::string name_;
  Body body_;
};

/// Runs one parameterized scenario body across regions and reports the
/// outcome variation of a chosen metric. Each region supplies a parameter
/// value (e.g. regional policy strictness).
struct RegionalOutcome {
  std::vector<double> per_region;
  double variation = 0;  ///< core::outcome_variation of per_region
};
RegionalOutcome run_regional(
    const std::vector<double>& region_params,
    const std::function<double(double param, sim::Rng&)>& body, std::uint64_t seed = 1);

}  // namespace tussle::core
