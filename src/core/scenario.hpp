// Scenario harness: a named, seeded, repeatable experiment run.
//
// The declarative surface lives in core/sweep.hpp (ScenarioSpec +
// run_sweep); this header keeps the original single-body Scenario class as
// a thin shim over it during the transition, plus the regional-variation
// helper ("different in different places").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/choice.hpp"
#include "core/sweep.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace tussle::core {

class Scenario {
 public:
  using Body = std::function<void(sim::Rng&, sim::MetricSet&)>;

  /// Transitional shim: wraps the body in a single-point ScenarioSpec and
  /// routes every run through the sweep engine. New code should declare a
  /// ScenarioSpec and call run_sweep (or bench::Harness::scenario) instead.
  [[deprecated("declare a core::ScenarioSpec and use core::run_sweep")]]
  Scenario(std::string name, Body body);

  const std::string& name() const noexcept { return spec_.name; }
  const ScenarioSpec& spec() const noexcept { return spec_; }

  /// Runs once, seeded with sim::Rng::stream(seed, 0).
  sim::MetricSet run(std::uint64_t seed = 1) const;

  /// Runs `replicas` independent streams of `base_seed` (in parallel when
  /// the machine allows) and returns per-metric aggregates: keys suffixed
  /// ".mean"/".stddev"/".min"/".max"/".p50".
  sim::MetricSet run_replicated(std::size_t replicas, std::uint64_t base_seed = 1) const;

 private:
  ScenarioSpec spec_;
};

/// Runs one parameterized scenario body across regions and reports the
/// outcome variation of a chosen metric. Each region supplies a parameter
/// value (e.g. regional policy strictness).
struct RegionalOutcome {
  std::vector<double> per_region;
  double variation = 0;  ///< core::outcome_variation of per_region
};
RegionalOutcome run_regional(
    const std::vector<double>& region_params,
    const std::function<double(double param, sim::Rng&)>& body, std::uint64_t seed = 1);

}  // namespace tussle::core
