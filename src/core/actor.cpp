#include "core/actor.hpp"

#include <algorithm>
#include <stdexcept>

namespace tussle::core {

std::string to_string(ActorKind k) {
  switch (k) {
    case ActorKind::kUser: return "user";
    case ActorKind::kCommercialIsp: return "commercial-isp";
    case ActorKind::kPrivateNetwork: return "private-network";
    case ActorKind::kGovernment: return "government";
    case ActorKind::kRightsHolder: return "rights-holder";
    case ActorKind::kContentProvider: return "content-provider";
    case ActorKind::kDesigner: return "designer";
    case ActorKind::kTechnology: return "technology";
  }
  return "?";
}

std::size_t ActorNetwork::add(Actor a) {
  actors_.push_back(std::move(a));
  return actors_.size() - 1;
}

std::optional<std::size_t> ActorNetwork::find(const std::string& name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name == name) return i;
  }
  return std::nullopt;
}

void ActorNetwork::align(std::size_t a, std::size_t b, double strength) {
  if (a == b) throw std::invalid_argument("self-alignment");
  if (a >= actors_.size() || b >= actors_.size()) throw std::out_of_range("unknown actor");
  edges_[key(a, b)] = std::clamp(strength, 0.0, 1.0);
}

double ActorNetwork::alignment(std::size_t a, std::size_t b) const {
  auto it = edges_.find(key(a, b));
  return it == edges_.end() ? 0.0 : it->second;
}

double ActorNetwork::durability() const {
  if (actors_.size() < 2) return 0.0;
  const double pairs =
      static_cast<double>(actors_.size()) * static_cast<double>(actors_.size() - 1) / 2.0;
  double sum = 0;
  for (const auto& [k, w] : edges_) {
    (void)k;
    sum += w;
  }
  return sum / pairs;
}

bool ActorNetwork::adverse(std::size_t a, std::size_t b) const {
  const Actor& x = actors_.at(a);
  const Actor& y = actors_.at(b);
  for (const auto& [space, stake] : x.interests) {
    auto it = y.interests.find(space);
    if (it != y.interests.end() && stake * it->second < 0) return true;
  }
  return false;
}

std::size_t ActorNetwork::adverse_pairs() const {
  std::size_t n = 0;
  for (std::size_t a = 0; a < actors_.size(); ++a) {
    for (std::size_t b = a + 1; b < actors_.size(); ++b) {
      if (adverse(a, b)) ++n;
    }
  }
  return n;
}

double ActorNetwork::enter(Actor a, double disruption) {
  const double before = durability();
  add(std::move(a));
  for (auto& [k, w] : edges_) {
    (void)k;
    w *= (1.0 - disruption);
  }
  return before - durability();
}

void ActorNetwork::anneal(double rate, std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s) {
    // Every pair drifts toward full alignment; pairs with adverse
    // interests anneal at half speed (their tussle resists resolution).
    for (std::size_t a = 0; a < actors_.size(); ++a) {
      for (std::size_t b = a + 1; b < actors_.size(); ++b) {
        const double r = adverse(a, b) ? rate * 0.5 : rate;
        const double w = alignment(a, b);
        edges_[key(a, b)] = w + r * (1.0 - w);
      }
    }
  }
}

}  // namespace tussle::core
