#include "core/choice.hpp"

#include <algorithm>

namespace tussle::core {

void ChoicePoint::select(const std::string& actor, const std::string& alternative) {
  if (std::find(alternatives_.begin(), alternatives_.end(), alternative) ==
      alternatives_.end()) {
    throw std::invalid_argument("choice point '" + name_ + "' does not offer '" + alternative +
                                "'");
  }
  selections_[actor] = alternative;
}

const std::string& ChoicePoint::selection_of(const std::string& actor) const {
  auto it = selections_.find(actor);
  if (it == selections_.end()) {
    throw std::out_of_range("actor '" + actor + "' has not selected at '" + name_ + "'");
  }
  return it->second;
}

std::map<std::string, std::size_t> ChoicePoint::tally() const {
  std::map<std::string, std::size_t> t;
  for (const auto& alt : alternatives_) t[alt] = 0;
  for (const auto& [actor, alt] : selections_) {
    (void)actor;
    t[alt] += 1;
  }
  return t;
}

double ChoicePoint::choice_index() const {
  if (alternatives_.size() < 2 || selections_.empty()) return 0.0;
  const double n = static_cast<double>(selections_.size());
  double h = 0;
  for (const auto& [alt, count] : tally()) {
    (void)alt;
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h / std::log2(static_cast<double>(alternatives_.size()));
}

double outcome_variation(const std::vector<double>& regional_outcomes) {
  if (regional_outcomes.size() < 2) return 0.0;
  double mean = 0;
  for (double x : regional_outcomes) mean += x;
  mean /= static_cast<double>(regional_outcomes.size());
  double var = 0;
  for (double x : regional_outcomes) var += (x - mean) * (x - mean);
  var /= static_cast<double>(regional_outcomes.size());
  const double sd = std::sqrt(var);
  if (mean == 0.0) return sd > 0 ? 1.0 : 0.0;
  const double cv = sd / std::abs(mean);
  return cv / (1.0 + cv);
}

}  // namespace tussle::core
