#include "core/tussle_space.hpp"

namespace tussle::core {

void TussleMap::add_mechanism(const std::string& name, std::set<std::string> spaces) {
  for (const auto& s : spaces) spaces_.insert(s);
  mechanisms_.push_back(Mechanism{name, std::move(spaces)});
}

void TussleMap::import_policy_couplings(const std::string& mechanism_prefix,
                                        const policy::PolicySet& rules) {
  for (const auto& rule : rules.rules()) {
    std::set<std::string> touched;
    if (!rule.tussle_space.empty()) touched.insert(rule.tussle_space);
    for (const auto& attr : rule.when.referenced_attributes()) {
      const std::string space = rules.ontology().space_of(attr);
      if (!space.empty()) touched.insert(space);
    }
    add_mechanism(mechanism_prefix + ":" + rule.name, std::move(touched));
  }
}

std::vector<Mechanism> TussleMap::entangled_mechanisms() const {
  std::vector<Mechanism> out;
  for (const auto& m : mechanisms_) {
    if (m.spaces_touched.size() >= 2) out.push_back(m);
  }
  return out;
}

double TussleMap::entanglement_ratio() const {
  if (mechanisms_.empty()) return 0.0;
  return static_cast<double>(entangled_mechanisms().size()) /
         static_cast<double>(mechanisms_.size());
}

}  // namespace tussle::core
