// tussle-net public API: one include for the whole library.
//
// Layering (bottom-up): sim → net → {policy, routing} → {game, econ, trust,
// names, apps} → core. Including this header pulls in everything; fine for
// applications, while library code includes only what it uses.
#pragma once

// engine
#include "sim/event_queue.hpp"   // IWYU pragma: export
#include "sim/random.hpp"        // IWYU pragma: export
#include "sim/simulator.hpp"     // IWYU pragma: export
#include "sim/stats.hpp"         // IWYU pragma: export
#include "sim/time.hpp"          // IWYU pragma: export
#include "sim/trace.hpp"         // IWYU pragma: export

// data plane
#include "net/address.hpp"       // IWYU pragma: export
#include "net/flow_stats.hpp"    // IWYU pragma: export
#include "net/forwarding.hpp"    // IWYU pragma: export
#include "net/network.hpp"       // IWYU pragma: export
#include "net/node.hpp"          // IWYU pragma: export
#include "net/packet.hpp"        // IWYU pragma: export
#include "net/queue.hpp"         // IWYU pragma: export
#include "net/topology.hpp"      // IWYU pragma: export

// control planes
#include "policy/expr.hpp"            // IWYU pragma: export
#include "policy/packet_adapter.hpp"  // IWYU pragma: export
#include "policy/rules.hpp"           // IWYU pragma: export
#include "policy/value.hpp"           // IWYU pragma: export
#include "routing/as_graph.hpp"       // IWYU pragma: export
#include "routing/inter_domain.hpp"   // IWYU pragma: export
#include "routing/link_state.hpp"     // IWYU pragma: export
#include "routing/multicast.hpp"      // IWYU pragma: export
#include "routing/overlay.hpp"        // IWYU pragma: export
#include "routing/path_vector.hpp"    // IWYU pragma: export
#include "routing/source_route.hpp"   // IWYU pragma: export

// domain substrates
#include "apps/attack.hpp"        // IWYU pragma: export
#include "apps/congestion.hpp"    // IWYU pragma: export
#include "apps/diagnostics.hpp"   // IWYU pragma: export
#include "apps/mail.hpp"          // IWYU pragma: export
#include "apps/mux.hpp"           // IWYU pragma: export
#include "apps/p2p.hpp"           // IWYU pragma: export
#include "apps/stego.hpp"         // IWYU pragma: export
#include "apps/transport.hpp"     // IWYU pragma: export
#include "apps/voip.hpp"          // IWYU pragma: export
#include "apps/web.hpp"           // IWYU pragma: export
#include "econ/investment.hpp"    // IWYU pragma: export
#include "econ/lock_in.hpp"       // IWYU pragma: export
#include "econ/market.hpp"        // IWYU pragma: export
#include "econ/open_access.hpp"   // IWYU pragma: export
#include "econ/pricing.hpp"       // IWYU pragma: export
#include "econ/value_flow.hpp"    // IWYU pragma: export
#include "game/auction.hpp"       // IWYU pragma: export
#include "game/canonical.hpp"     // IWYU pragma: export
#include "game/learners.hpp"      // IWYU pragma: export
#include "game/matrix_game.hpp"   // IWYU pragma: export
#include "game/solvers.hpp"       // IWYU pragma: export
#include "names/name_system.hpp"  // IWYU pragma: export
#include "names/workload.hpp"     // IWYU pragma: export
#include "trust/certificates.hpp" // IWYU pragma: export
#include "trust/firewall.hpp"     // IWYU pragma: export
#include "trust/identity.hpp"     // IWYU pragma: export
#include "trust/mediator.hpp"     // IWYU pragma: export
#include "trust/midcom.hpp"       // IWYU pragma: export
#include "trust/reputation.hpp"   // IWYU pragma: export

// the paper's contribution
#include "core/actor.hpp"         // IWYU pragma: export
#include "core/choice.hpp"        // IWYU pragma: export
#include "core/report.hpp"        // IWYU pragma: export
#include "core/scenario.hpp"      // IWYU pragma: export
#include "core/tussle_space.hpp"  // IWYU pragma: export
