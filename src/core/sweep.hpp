// The parallel deterministic sweep engine.
//
// Experiments here are embarrassingly parallel — a scenario body evaluated
// over a parameter grid × replica count — but they must stay bit-exact:
// the same spec and seed must produce the same numbers whether the sweep
// runs on 1 thread or 64. The engine guarantees that by construction:
//
//   * every run's randomness comes from sim::Rng::stream(base_seed,
//     run_index) — a pure function of the run's position in the sweep,
//     never of which worker executes it;
//   * every run writes into its own sim::MetricSet (and note list), so
//     workers share nothing;
//   * results are merged in run-index order after all workers join, so
//     aggregation sees a schedule-independent sequence.
//
// Benches declare a ScenarioSpec once (name, grid, replicas, body taking a
// RunContext) and the shared bench harness gives every experiment binary
// --list/--case/--replicas/--seed/--jobs for free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/exec_profile.hpp"
#include "sim/mem_profile.hpp"
#include "sim/profiler.hpp"
#include "sim/random.hpp"
#include "sim/scale_profile.hpp"
#include "sim/shard_audit.hpp"
#include "sim/span.hpp"
#include "sim/stats.hpp"
#include "sim/timeseries.hpp"

namespace tussle::sim {
class Simulator;
}  // namespace tussle::sim

namespace tussle::core {

/// One assignment of values to the grid's axes: an ordered list of
/// (axis-name, value) pairs. Axis order matches declaration order.
class ParamPoint {
 public:
  void set(std::string name, double value);
  double get(const std::string& name) const;  ///< throws std::out_of_range
  double get(const std::string& name, double fallback) const noexcept;
  bool has(const std::string& name) const noexcept;
  bool empty() const noexcept { return values_.empty(); }
  const std::vector<std::pair<std::string, double>>& items() const noexcept { return values_; }

  /// "rate=0.25,mode=2" (axes in declaration order); "" for the empty point.
  /// Values use the tooling's round-trip number format, so labels are
  /// stable across platforms.
  std::string label() const;

 private:
  std::vector<std::pair<std::string, double>> values_;
};

/// A cartesian product of named axes. The first-declared axis varies
/// slowest in points(); a grid with no axes yields exactly one empty point,
/// so "no parameters" and "one parameter set" need no special casing.
class ParamGrid {
 public:
  /// Declares an axis; returns *this so axes chain. Throws
  /// std::invalid_argument on a duplicate name or an empty value list.
  ParamGrid& axis(std::string name, std::vector<double> values);

  std::size_t axis_count() const noexcept { return axes_.size(); }
  std::size_t point_count() const noexcept;
  std::vector<ParamPoint> points() const;

 private:
  std::vector<std::pair<std::string, std::vector<double>>> axes_;
};

struct ScenarioSpec;
struct SweepOptions;
struct SweepResult;
SweepResult run_sweep(const ScenarioSpec& spec, const SweepOptions& opts);

/// Everything a scenario body may touch during one run. The engine owns
/// the referenced objects; the body must not stash the references beyond
/// its own invocation.
class RunContext {
 public:
  RunContext(sim::Rng& rng, sim::MetricSet& metrics, const ParamPoint& params,
             std::size_t point_index, std::size_t replica, std::size_t run_index) noexcept
      : rng_(rng), metrics_(metrics), params_(params), point_index_(point_index),
        replica_(replica), run_index_(run_index) {}

  sim::Rng& rng() noexcept { return rng_; }
  sim::MetricSet& metrics() noexcept { return metrics_; }
  const ParamPoint& params() const noexcept { return params_; }
  double param(const std::string& name) const { return params_.get(name); }
  double param(const std::string& name, double fallback) const noexcept {
    return params_.get(name, fallback);
  }

  std::size_t point_index() const noexcept { return point_index_; }
  std::size_t replica() const noexcept { return replica_; }
  std::size_t run_index() const noexcept { return run_index_; }

  void put(const std::string& key, double value) { metrics_.put(key, value); }

  /// Records a human-readable line attributed to this run. Notes are kept
  /// per run and replayed in run-index order, so narrative output stays
  /// deterministic under any --jobs.
  void note(std::string line) { notes_.push_back(std::move(line)); }

  /// Adds to this run's simulated-event total (e.g. the return value of
  /// sim::Simulator::run()).
  void add_events(std::size_t n) noexcept { events_ += n; }

  /// Attaches this run's observability hooks (per-run profiler, heartbeat)
  /// to a simulator the body built, and — when the sweep asked for
  /// --shards — installs a sim::ShardedBackend before any of them, so call
  /// this before scheduling any event. A no-op unless the sweep asked for
  /// instrumentation; each run profiles into its own sinks, so parallel
  /// runs never contend.
  void instrument(sim::Simulator& sim);

  /// This run's span tracer, or nullptr unless SweepOptions::spans was set.
  /// Bodies hand it to the components they build (Network::set_spans,
  /// Ledger::set_span_tracer, ...); each run records into its own tracer,
  /// so parallel runs never contend and merged output is deterministic.
  sim::SpanTracer* spans() noexcept { return spans_; }

  /// This run's time-series recorder, or nullptr unless
  /// SweepOptions::timeseries_seconds was set. Bodies register probes and
  /// attach() it / call maybe_sample() on the round loop; each run records
  /// into its own store, so merged exports are --jobs-independent.
  sim::TimeSeriesRecorder* timeseries() noexcept { return timeseries_; }

  /// This run's cross-shard access auditor, or nullptr unless
  /// SweepOptions::audit was set. instrument() attaches it to the
  /// simulator; bodies hand it to shared components they build
  /// (Ledger::set_auditor) and may declare control events on it. Each run
  /// audits into its own instance, merged in run-index order.
  sim::ShardAuditor* audit() noexcept { return audit_; }

  /// This run's scale profiler, or nullptr unless SweepOptions::scale was
  /// set. instrument() attaches it to the simulator (together with an
  /// auto-created, fail-soft auditor when --audit was not also requested,
  /// so shard attribution always works). Each run profiles into its own
  /// instance, merged in run-index order.
  sim::ScaleProfiler* scale() noexcept { return scale_; }

  /// This run's execution profiler, or nullptr unless SweepOptions::exec
  /// was set. instrument() attaches it to the simulator; the backends then
  /// record wall-clock barrier/worker timings into it. Wall-clock data:
  /// merged run records are NOT byte-identical across invocations (see
  /// sim/exec_profile.hpp), which is why exec reports live in their own
  /// files rather than in .metrics.
  sim::ExecProfiler* exec() noexcept { return exec_; }

  /// This run's memory profiler, or nullptr unless SweepOptions::mem was
  /// set. instrument() attaches it to the simulator (plus a fail-soft
  /// auditor when neither --audit nor --scale created one, so per-shard
  /// footprint attribution always works) and registers live-bytes /
  /// queue-depth gauges on the run's TimeSeriesRecorder when one exists.
  /// Each run profiles into its own instance, merged in run-index order —
  /// so merged exports are byte-identical at any --jobs and --shards.
  sim::MemProfiler* mem() noexcept { return mem_; }

 private:
  friend SweepResult run_sweep(const ScenarioSpec& spec, const SweepOptions& opts);

  sim::Rng& rng_;
  sim::MetricSet& metrics_;
  const ParamPoint& params_;
  std::size_t point_index_ = 0;
  std::size_t replica_ = 0;
  std::size_t run_index_ = 0;
  std::vector<std::string> notes_;
  std::size_t events_ = 0;
  sim::LoopProfiler* profiler_ = nullptr;
  double heartbeat_seconds_ = 0;
  std::size_t shards_ = 0;
  sim::SpanTracer* spans_ = nullptr;
  sim::TimeSeriesRecorder* timeseries_ = nullptr;
  sim::ShardAuditor* audit_ = nullptr;
  sim::ScaleProfiler* scale_ = nullptr;
  sim::ExecProfiler* exec_ = nullptr;
  sim::MemProfiler* mem_ = nullptr;
};

/// A declarative experiment case: what to run, over which parameter points,
/// how many replicas of each. The body must be a pure function of its
/// RunContext (draw randomness only from ctx.rng()) for the engine's
/// determinism guarantee to hold.
struct ScenarioSpec {
  std::string name;
  std::string description;
  ParamGrid grid;
  std::size_t replicas = 1;
  std::function<void(RunContext&)> body;
};

struct SweepOptions {
  std::uint64_t base_seed = 1;
  /// Worker threads. 0 = auto: $TUSSLE_JOBS if set and positive, else
  /// hardware_concurrency. Whatever the value, output is bit-identical.
  std::size_t jobs = 0;
  /// Overrides spec.replicas when nonzero.
  std::size_t replicas = 0;
  /// Give each run its own LoopProfiler (merged afterwards in run order).
  bool profile = false;
  /// Give each run its own SpanTracer via RunContext::spans() (merged
  /// afterwards in run-index order, so exports are --jobs-independent).
  bool spans = false;
  /// Heartbeat period for instrument()ed simulators (0 = off). Only honored
  /// when the sweep runs on one thread — progress lines from concurrent
  /// workers would interleave.
  double heartbeat_seconds = 0;
  /// Sampling interval (simulated seconds) for each run's
  /// TimeSeriesRecorder via RunContext::timeseries(); 0 = no recorder.
  double timeseries_seconds = 0;
  /// Give each run its own ShardAuditor via RunContext::audit() (merged
  /// afterwards in run-index order). Fail-fast: a cross-shard mutation
  /// throws out of the offending run with a causal report.
  bool audit = false;
  /// Give each run its own ScaleProfiler via RunContext::scale() (merged
  /// afterwards in run-index order). Implies a fail-soft ShardAuditor when
  /// audit is off, since shard attribution rides the auditor's registry.
  bool scale = false;
  /// Give each run its own ExecProfiler via RunContext::exec() (merged
  /// afterwards in run-index order). Wall-clock runtime observability —
  /// the merged aggregates are exempt from the byte-identity contract.
  bool exec = false;
  /// Give each run its own MemProfiler via RunContext::mem() (merged
  /// afterwards in run-index order; sim-deterministic, so merged exports
  /// are byte-identical at any --jobs and --shards). Implies a fail-soft
  /// ShardAuditor when audit/scale did not create one.
  bool mem = false;
  /// In-run parallelism: when > 0, RunContext::instrument() installs a
  /// sim::ShardedBackend with this many worker threads on the run's
  /// simulator (1 exercises the full barrier machinery on one worker —
  /// sharded output is byte-identical at any shard count). 0 keeps the
  /// serial backend. Orthogonal to `jobs` (across-run parallelism); the
  /// harness resolves the two together (bench::ParallelOptions).
  std::size_t shards = 0;
};

/// One completed run, in its final resting place inside a SweepResult.
struct RunResult {
  std::size_t run_index = 0;
  std::size_t point_index = 0;
  std::size_t replica = 0;
  sim::MetricSet metrics;
  std::vector<std::string> notes;
  std::size_t events = 0;
  /// Per-run profile; empty unless SweepOptions::profile was set and the
  /// body called ctx.instrument(). unique_ptr keeps RunResult movable.
  std::unique_ptr<sim::LoopProfiler> profiler;
  /// Per-run causal spans; null unless SweepOptions::spans was set.
  std::unique_ptr<sim::SpanTracer> spans;
  /// Per-run time series; null unless SweepOptions::timeseries_seconds > 0.
  std::unique_ptr<sim::TimeSeriesRecorder> timeseries;
  /// Per-run shard audit; null unless SweepOptions::audit or ::scale was
  /// set (scale auto-creates a fail-soft one for shard attribution).
  std::unique_ptr<sim::ShardAuditor> audit;
  /// Per-run scale profile; null unless SweepOptions::scale was set.
  std::unique_ptr<sim::ScaleProfiler> scale;
  /// Per-run execution (wall-clock) profile; null unless
  /// SweepOptions::exec was set.
  std::unique_ptr<sim::ExecProfiler> exec;
  /// Per-run memory profile; null unless SweepOptions::mem was set.
  std::unique_ptr<sim::MemProfiler> mem;
};

struct SweepResult {
  std::string name;
  std::vector<ParamPoint> points;
  std::size_t replicas = 0;  ///< replicas per point actually run
  std::vector<RunResult> runs;  ///< run-index order: point-major, replica-minor

  const RunResult& run(std::size_t point_index, std::size_t replica) const;
  std::size_t total_events() const noexcept;

  /// Mean of `key` across a point's replicas (the value itself when
  /// replicas == 1). Keys absent from every replica yield `fallback`.
  double mean(std::size_t point_index, const std::string& key, double fallback = 0.0) const;

  /// Per-point aggregate. With one replica the keys pass through as-is;
  /// with more, each key K expands to K.mean/.stddev/.min/.max/.p50
  /// (moments via sim::Summary, the quantile via sim::Histogram). Key
  /// order is first appearance across the point's runs.
  sim::MetricSet aggregate(std::size_t point_index) const;

  /// Aggregate over every run of the sweep, same expansion rules.
  sim::MetricSet aggregate() const;
};

/// Executes the spec's grid × replicas on a fixed pool of workers and
/// returns all runs merged in run-index order. The run with global index
/// i = point_index * replicas + replica draws from
/// sim::Rng::stream(opts.base_seed, i). Throws whatever the body throws
/// (first failing run by scheduling order; the pool drains first).
SweepResult run_sweep(const ScenarioSpec& spec, const SweepOptions& opts);
inline SweepResult run_sweep(const ScenarioSpec& spec) { return run_sweep(spec, SweepOptions{}); }

/// Resolves a jobs request (0 = auto) against $TUSSLE_JOBS and
/// hardware_concurrency; always at least 1.
std::size_t resolve_jobs(std::size_t requested) noexcept;

/// Named collection of scenario specs, so tools can enumerate and run
/// cases declared by independent modules ("one declarative surface").
class ScenarioRegistry {
 public:
  /// Throws std::invalid_argument on a duplicate or empty name.
  void add(ScenarioSpec spec);

  const ScenarioSpec* find(const std::string& name) const noexcept;
  std::vector<std::string> names() const;  ///< registration order
  std::size_t size() const noexcept { return specs_.size(); }
  const std::vector<ScenarioSpec>& specs() const noexcept { return specs_; }

 private:
  std::vector<ScenarioSpec> specs_;
};

}  // namespace tussle::core
