// Fixed-width table reporting for experiment binaries.
//
// Every bench prints its experiment's rows through this, so the tables in
// EXPERIMENTS.md and the binaries' stdout stay in the same shape.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace tussle::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  using Cell = std::variant<std::string, double, long long>;

  Table& add_row(std::vector<Cell> cells);

  /// Renders with a header rule and right-aligned numerics; floats get
  /// `precision` digits after the point.
  void print(std::ostream& os, int precision = 3) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

/// Prints the standard experiment banner (id, paper section, claim).
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& paper_section, const std::string& claim);

}  // namespace tussle::core
