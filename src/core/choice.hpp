// Design for choice (§IV-B), reified.
//
// A ChoicePoint is a named run-time decision the architecture deliberately
// leaves open — which SMTP relay, which provider, which firewall, whether
// to encrypt. It records each actor's selection so experiments can measure
// how much variation in outcome the design actually admits: a "choice"
// everyone is forced to make identically is no choice at all.
#pragma once

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace tussle::core {

class ChoicePoint {
 public:
  ChoicePoint(std::string name, std::vector<std::string> alternatives)
      : name_(std::move(name)), alternatives_(std::move(alternatives)) {
    if (alternatives_.empty()) throw std::invalid_argument("choice point with no alternatives");
  }

  const std::string& name() const noexcept { return name_; }
  const std::vector<std::string>& alternatives() const noexcept { return alternatives_; }

  /// Records that `actor` selected `alternative` (replacing any previous
  /// selection). Throws if the alternative is not offered.
  void select(const std::string& actor, const std::string& alternative);

  const std::string& selection_of(const std::string& actor) const;
  bool has_selected(const std::string& actor) const { return selections_.count(actor) != 0; }
  std::size_t selector_count() const noexcept { return selections_.size(); }

  /// How many actors chose each alternative.
  std::map<std::string, std::size_t> tally() const;

  /// Choice index in [0,1]: normalized Shannon entropy of the selections.
  /// 0 = everyone picked the same thing (or a degenerate single
  /// alternative); 1 = selections spread evenly across all alternatives.
  double choice_index() const;

 private:
  std::string name_;
  std::vector<std::string> alternatives_;
  std::map<std::string, std::string> selections_;
};

/// Variation-in-outcome metric (§IV: "the outcome can be different in
/// different places"): coefficient-of-variation-style dispersion of a
/// per-region metric, normalized to [0,1] as cv/(1+cv). 0 = identical
/// outcomes everywhere.
double outcome_variation(const std::vector<double>& regional_outcomes);

}  // namespace tussle::core
