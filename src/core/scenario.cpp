#include "core/scenario.hpp"

namespace tussle::core {

RegionalOutcome run_regional(const std::vector<double>& region_params,
                             const std::function<double(double, sim::Rng&)>& body,
                             std::uint64_t seed) {
  if (region_params.empty()) return {};
  ScenarioSpec spec;
  spec.name = "regional";
  std::vector<double> indices(region_params.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<double>(i);
  spec.grid.axis("region", indices);
  spec.body = [&region_params, &body](RunContext& ctx) {
    ctx.put("outcome", body(region_params[ctx.point_index()], ctx.rng()));
  };

  SweepOptions opts;
  opts.base_seed = seed;
  auto result = run_sweep(spec, opts);

  RegionalOutcome out;
  out.per_region.reserve(region_params.size());
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    out.per_region.push_back(result.run(i, 0).metrics.get("outcome"));
  }
  out.variation = outcome_variation(out.per_region);
  return out;
}

}  // namespace tussle::core
