#include "core/scenario.hpp"

#include <cmath>
#include <map>

namespace tussle::core {

sim::MetricSet Scenario::run(std::uint64_t seed) const {
  sim::Rng rng(seed);
  sim::MetricSet metrics;
  body_(rng, metrics);
  return metrics;
}

sim::MetricSet Scenario::run_replicated(std::size_t replicas, std::uint64_t base_seed) const {
  std::map<std::string, sim::Summary> agg;
  std::vector<std::string> order;
  for (std::size_t r = 0; r < replicas; ++r) {
    auto m = run(base_seed + r);
    for (const auto& [k, v] : m.items()) {
      if (!agg.count(k)) order.push_back(k);
      agg[k].observe(v);
    }
  }
  sim::MetricSet out;
  for (const auto& k : order) {
    out.put(k + ".mean", agg[k].mean());
    out.put(k + ".stddev", agg[k].stddev());
  }
  return out;
}

RegionalOutcome run_regional(const std::vector<double>& region_params,
                             const std::function<double(double, sim::Rng&)>& body,
                             std::uint64_t seed) {
  RegionalOutcome out;
  for (std::size_t i = 0; i < region_params.size(); ++i) {
    sim::Rng rng(seed + i);
    out.per_region.push_back(body(region_params[i], rng));
  }
  out.variation = outcome_variation(out.per_region);
  return out;
}

}  // namespace tussle::core
