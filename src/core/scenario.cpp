#include "core/scenario.hpp"

namespace tussle::core {

// Definition of the deprecated constructor; the attribute warns at use
// sites, not here.
Scenario::Scenario(std::string name, Body body) {
  spec_.name = std::move(name);
  spec_.replicas = 1;
  spec_.body = [body = std::move(body)](RunContext& ctx) { body(ctx.rng(), ctx.metrics()); };
}

sim::MetricSet Scenario::run(std::uint64_t seed) const {
  SweepOptions opts;
  opts.base_seed = seed;
  opts.jobs = 1;
  auto result = run_sweep(spec_, opts);
  return std::move(result.runs.at(0).metrics);
}

sim::MetricSet Scenario::run_replicated(std::size_t replicas, std::uint64_t base_seed) const {
  SweepOptions opts;
  opts.base_seed = base_seed;
  opts.replicas = replicas;
  return run_sweep(spec_, opts).aggregate();
}

RegionalOutcome run_regional(const std::vector<double>& region_params,
                             const std::function<double(double, sim::Rng&)>& body,
                             std::uint64_t seed) {
  if (region_params.empty()) return {};
  ScenarioSpec spec;
  spec.name = "regional";
  std::vector<double> indices(region_params.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<double>(i);
  spec.grid.axis("region", indices);
  spec.body = [&region_params, &body](RunContext& ctx) {
    ctx.put("outcome", body(region_params[ctx.point_index()], ctx.rng()));
  };

  SweepOptions opts;
  opts.base_seed = seed;
  auto result = run_sweep(spec, opts);

  RegionalOutcome out;
  out.per_region.reserve(region_params.size());
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    out.per_region.push_back(result.run(i, 0).metrics.get("outcome"));
  }
  out.variation = outcome_variation(out.per_region);
  return out;
}

}  // namespace tussle::core
