#include "routing/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "sim/trace.hpp"

namespace tussle::routing {

void Overlay::set_edge_cost(net::NodeId a, net::NodeId b, double cost) {
  if (!members_.count(a) || !members_.count(b)) {
    throw std::invalid_argument("overlay edge endpoints must be members");
  }
  costs_[{a, b}] = cost;
}

void Overlay::block_edge(net::NodeId a, net::NodeId b) {
  costs_.erase({a, b});
}

std::optional<double> Overlay::edge_cost(net::NodeId a, net::NodeId b) const {
  auto it = costs_.find({a, b});
  if (it == costs_.end()) return std::nullopt;
  return it->second;
}

std::vector<net::NodeId> Overlay::route(net::NodeId from, net::NodeId to) const {
  if (from == to) return {from};
  using Item = std::pair<double, net::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  std::map<net::NodeId, double> dist;
  std::map<net::NodeId, net::NodeId> parent;
  dist[from] = 0;
  pq.emplace(0.0, from);
  while (!pq.empty()) {
    auto [d, n] = pq.top();
    pq.pop();
    if (d > dist.at(n)) continue;
    if (n == to) break;
    for (const auto& [m, addr] : members_) {
      (void)addr;
      if (m == n) continue;
      auto c = edge_cost(n, m);
      if (!c || !std::isfinite(*c)) continue;
      const double nd = d + *c;
      auto it = dist.find(m);
      if (it == dist.end() || nd < it->second) {
        dist[m] = nd;
        parent[m] = n;
        pq.emplace(nd, m);
      }
    }
  }
  if (!parent.count(to)) return {};
  std::vector<net::NodeId> path{to};
  net::NodeId cur = to;
  while (cur != from) {
    cur = parent.at(cur);
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<net::NodeId> Overlay::send(net::NodeId from, net::NodeId to, net::Packet inner) {
  sim::SpanTracer* sp = net_->spans();
  // Overlay decisions belong to the flow's causal tree, not to any single
  // packet hop: the re-route chooses the path every tunneled packet takes.
  auto flow_instant = [&](const char* name, std::initializer_list<sim::TraceField> attrs) {
    const sim::SimTime now = net_->simulator().now();
    const sim::SpanId parent =
        inner.flow != 0 ? sp->flow_span(now, inner.flow) : sp->current();
    sp->end(sp->begin_under(parent, now, "routing.overlay", name, attrs), now);
  };
  const auto path = route(from, to);
  if (path.empty()) {
    TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kWarn,
                       "routing.overlay", "no-overlay-path", {"from", from}, {"to", to});
    if (sp != nullptr) flow_instant("no-overlay-path", {{"from", from}, {"to", to}});
    return {};
  }
  if (path.size() > 2) {
    // The overlay is actually routing *around* something: the direct edge
    // lost to a relay detour (§V-A-4 — overlays as a tool in the tussle).
    TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                       "routing.overlay", "reroute", {"from", from}, {"to", to},
                       {"relays", path.size() - 2}, {"first_relay", path[1]});
    if (sp != nullptr) {
      flow_instant("reroute", {{"from", from}, {"to", to},
                               {"relays", static_cast<std::int64_t>(path.size() - 2)},
                               {"first_relay", path[1]}});
    }
  }
  // Wrap back-to-front: the outermost tunnel targets the first relay.
  // path = [from, r1, r2, ..., to]; the inner packet already addresses its
  // final destination, so the hop to `to` uses the member address.
  net::Packet wrapped = std::move(inner);
  const net::Address self_addr = members_.at(from);
  for (std::size_t i = path.size(); i-- > 1;) {
    wrapped = wrapped.encapsulate(self_addr, members_.at(path[i]));
  }
  // The outermost layer wraps to path[1]; drop one layer if from==to-only.
  net_->node(from).originate(std::move(wrapped));
  return path;
}

}  // namespace tussle::routing
