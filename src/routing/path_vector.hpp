// Path-vector inter-domain routing (the BGP analogue).
//
// Provider-controlled routing, per the paper's account of why BGP won
// (§V-A-4): each AS unilaterally chooses among neighbor advertisements by
// local preference (business relationship first), and export filters decide
// what the neighbors are even allowed to see. The protocol hides internal
// choices — exactly the "visibility of choices made" property the paper
// contrasts with link-state routing.
//
// The solver runs synchronous rounds to a fixpoint. It detects
// non-convergence (dispute wheels such as Bad Gadget) by round cap, so
// experiments can probe the stability edge of policy autonomy.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "routing/as_graph.hpp"
#include "sim/span.hpp"

namespace tussle::routing {

/// One AS's chosen route toward a destination.
struct AsRoute {
  std::vector<AsId> as_path;  ///< first element: self; last: destination
  AsId next_hop = net::kNoAs;
  int local_pref = 0;
  bool valid() const noexcept { return !as_path.empty(); }
};

class PathVector {
 public:
  /// Policy hooks. Defaults implement Gao–Rexford:
  ///  - prefer customer (300) over peer (200) over provider (100) routes;
  ///  - export customer routes and own routes to everyone; export peer and
  ///    provider routes to customers only.
  struct Policy {
    std::function<int(AsId self, Rel learned_from, const std::vector<AsId>& path)> local_pref;
    std::function<bool(AsId self, Rel learned_from, Rel to_neighbor)> export_ok;
    static Policy gao_rexford();
    /// Shortest-path-only policy (no business preference) — the "everyone
    /// cooperates" baseline.
    static Policy shortest_path();
  };

  explicit PathVector(const AsGraph& graph, Policy policy = Policy::gao_rexford())
      : graph_(&graph), policy_(std::move(policy)) {}

  struct Outcome {
    std::map<AsId, AsRoute> routes;  ///< per source AS
    bool converged = false;
    int rounds = 0;
  };

  /// Computes every AS's route toward `dest`.
  Outcome compute(AsId dest, int max_rounds = 200) const;

  /// Per-destination outcomes for all ASes (the full inter-domain RIB).
  std::map<AsId, Outcome> compute_all(int max_rounds = 200) const;

  /// Byzantine variant (§II-B, the Perlman/Savage design school): every AS
  /// in `claimed_origins` announces the prefix as its own. With
  /// `origin_validation` (the RPKI-style defense), ASes discard any route
  /// whose terminal AS is not `legitimate_origin`. Routes in the result
  /// end at whichever origin captured that AS.
  Outcome compute_with_origins(const std::vector<AsId>& claimed_origins,
                               bool origin_validation, AsId legitimate_origin,
                               int max_rounds = 200) const;

  /// Partial-deployment variant: only the ASes in `validators` (sorted
  /// ascending) drop invalid-origin routes; everyone else believes whatever
  /// they hear. This is the realistic RPKI rollout — protection is a
  /// property of who deployed, not of the protocol.
  Outcome compute_with_origins(const std::vector<AsId>& claimed_origins,
                               const std::vector<AsId>& validators,
                               AsId legitimate_origin, int max_rounds = 200) const;

  /// Attaches a causal span tracer: each compute wraps its rounds in a
  /// "decide" span (annotated with convergence) and records every
  /// origin-validation discard as a child span — the control plane's
  /// contribution to "why did this flow take this path".
  void set_span_tracer(sim::SpanTracer* spans) noexcept { spans_ = spans; }

 private:
  const AsGraph* graph_;
  Policy policy_;
  sim::SpanTracer* spans_ = nullptr;
};

/// Convenience wrapper for the classic prefix-hijack experiment.
struct HijackOutcome {
  std::size_t total_ases = 0;
  std::size_t captured = 0;       ///< ASes whose traffic flows to the hijacker
  std::size_t legitimate = 0;     ///< ASes still reaching the true origin
  std::size_t unreachable = 0;    ///< ASes with no route at all
  double capture_fraction = 0;
  bool converged = false;
};
HijackOutcome simulate_hijack(const AsGraph& graph, AsId true_origin, AsId hijacker,
                              bool origin_validation,
                              PathVector::Policy policy = PathVector::Policy::gao_rexford(),
                              sim::SpanTracer* spans = nullptr);

/// Hijack under partial origin-validation deployment: only `validators`
/// (sorted ascending) check origins. `simulate_hijack(..., true, ...)` is
/// the special case validators == all ASes.
HijackOutcome simulate_hijack_partial(
    const AsGraph& graph, AsId true_origin, AsId hijacker,
    const std::vector<AsId>& validators,
    PathVector::Policy policy = PathVector::Policy::gao_rexford(),
    sim::SpanTracer* spans = nullptr);

/// Which routes would a *link-state* interdomain design reveal? For the
/// visibility comparison (§IV-C): link-state exports every edge and cost to
/// everyone, path-vector reveals only chosen paths. This helper counts the
/// edges observable by each AS under both designs.
struct VisibilityComparison {
  std::size_t edges_total = 0;           ///< what link-state would expose
  double mean_edges_visible_pv = 0;      ///< mean edges inferable from PV paths
  double visibility_ratio = 0;           ///< pv / link-state, in [0,1]
};
VisibilityComparison compare_visibility(const AsGraph& graph, const PathVector& pv);

}  // namespace tussle::routing
