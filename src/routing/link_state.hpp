// Link-state intra-domain routing (the OSPF analogue).
//
// Inside one administrative domain there is (the paper hopes) little
// tussle, so everyone exports true link costs and runs the same SPF — the
// design that would be naive between rival ASes. The class computes
// Dijkstra shortest-path trees over the physical network and installs
// prefix routes into node FIBs. A Bellman–Ford oracle is included so tests
// can cross-check SPF results independently.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "net/network.hpp"

namespace tussle::routing {

class LinkState {
 public:
  using CostFn = std::function<double(const net::Link&)>;

  /// Default cost: propagation delay in seconds (min-latency routing).
  explicit LinkState(net::Network& net, CostFn cost = {});

  struct Spf {
    std::map<net::NodeId, double> dist;
    /// First-hop interface at the source toward each node.
    std::map<net::NodeId, net::IfIndex> first_hop;
    /// Predecessor on the shortest path (absent for the source itself).
    std::map<net::NodeId, net::NodeId> parent;
  };

  /// Dijkstra from `src` over up links, restricted to `members` if nonempty.
  Spf spf(net::NodeId src, const std::vector<net::NodeId>& members = {}) const;

  /// Installs, on every member, a prefix route for every address owned by
  /// any other member, plus AS routes toward each member AS. Unreachable
  /// destinations get no entry. Returns number of routes installed.
  std::size_t install_routes(const std::vector<net::NodeId>& members);

  /// Bellman–Ford distances from `src` — O(V·E) oracle for tests.
  std::map<net::NodeId, double> bellman_ford(net::NodeId src,
                                             const std::vector<net::NodeId>& members = {}) const;

 private:
  bool allowed(net::NodeId n, const std::vector<net::NodeId>& members) const;

  net::Network* net_;
  CostFn cost_;
};

}  // namespace tussle::routing
