// The AS-level business topology.
//
// Inter-domain routing is the paper's flagship example of a tussle interface
// (§IV-C, §V-A-4): ASes are business rivals that must still interconnect.
// Edges therefore carry *relationships*, not just adjacency — a neighbor is
// my customer, my provider, or my peer — because every policy decision in
// BGP-style routing keys off that relationship (Gao–Rexford).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/address.hpp"
#include "sim/random.hpp"

namespace tussle::routing {

using net::AsId;

/// What a neighbor is *to me*.
enum class Rel : std::uint8_t { kCustomer, kPeer, kProvider };

std::string to_string(Rel r);

/// Inverts the relationship for the other side of the edge.
constexpr Rel reverse(Rel r) noexcept {
  switch (r) {
    case Rel::kCustomer: return Rel::kProvider;
    case Rel::kProvider: return Rel::kCustomer;
    case Rel::kPeer: return Rel::kPeer;
  }
  return Rel::kPeer;
}

class AsGraph {
 public:
  void add_as(AsId as);
  bool contains(AsId as) const { return adj_.count(as) != 0; }

  /// Declares `customer` to buy transit from `provider` (adds both ends).
  void add_customer_provider(AsId customer, AsId provider);
  /// Declares a settlement-free peering (adds both ends).
  void add_peering(AsId a, AsId b);

  /// Neighbors of `as` with their relationship to `as`.
  const std::vector<std::pair<AsId, Rel>>& neighbors(AsId as) const;
  std::optional<Rel> relationship(AsId from, AsId to) const;

  std::vector<AsId> ases() const;
  std::size_t as_count() const noexcept { return adj_.size(); }
  std::size_t edge_count() const noexcept { return edges_; }

  /// Valley-free test: after traversing a peer or provider→customer edge, a
  /// path may never climb again. Customers do not give free transit.
  bool valley_free(const std::vector<AsId>& path) const;

 private:
  std::map<AsId, std::vector<std::pair<AsId, Rel>>> adj_;
  std::size_t edges_ = 0;
};

/// Synthetic Internet-like hierarchy:
///  - `tier1` fully-meshed top providers;
///  - `tier2` regional ISPs, each buying from 1–2 tier-1s, some peering;
///  - `stubs` edge networks, each buying from 1–2 tier-2s.
/// Returned AS ids are dense starting at 1 (tier-1 first).
struct Hierarchy {
  AsGraph graph;
  std::vector<AsId> tier1;
  std::vector<AsId> tier2;
  std::vector<AsId> stubs;
};
Hierarchy make_hierarchy(sim::Rng& rng, std::size_t tier1, std::size_t tier2, std::size_t stubs,
                         double tier2_peering_prob = 0.3);

}  // namespace tussle::routing
