#include "routing/multicast.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace tussle::routing {

std::vector<net::NodeId> spf_path(const LinkState::Spf& tree, net::NodeId src,
                                  net::NodeId dst) {
  if (src == dst) return {src};
  if (!tree.parent.count(dst)) return {};
  std::vector<net::NodeId> path{dst};
  net::NodeId cur = dst;
  while (cur != src) {
    auto it = tree.parent.find(cur);
    if (it == tree.parent.end()) return {};
    cur = it->second;
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

/// Edges (as ordered node pairs, canonicalized) along a path.
void collect_edges(const std::vector<net::NodeId>& path,
                   std::set<std::pair<net::NodeId, net::NodeId>>& edges) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto a = std::min(path[i], path[i + 1]);
    const auto b = std::max(path[i], path[i + 1]);
    edges.emplace(a, b);
  }
}

}  // namespace

DistributionCost compare_distribution(net::Network& net, net::NodeId source,
                                      const std::vector<net::NodeId>& members,
                                      const std::vector<net::NodeId>& caches) {
  DistributionCost cost;
  // Hop-count SPF: every link costs 1 transmission.
  LinkState ls(net, [](const net::Link&) { return 1.0; });
  const auto src_tree = ls.spf(source);

  std::set<std::pair<net::NodeId, net::NodeId>> tree_edges;
  for (net::NodeId m : members) {
    auto path = spf_path(src_tree, source, m);
    if (path.size() < 2) continue;
    cost.unicast += path.size() - 1;
    collect_edges(path, tree_edges);
  }
  cost.multicast = tree_edges.size();

  if (caches.empty()) {
    cost.cdn = cost.unicast;
    return cost;
  }

  // Fill the caches once.
  std::map<net::NodeId, LinkState::Spf> cache_trees;
  for (net::NodeId c : caches) {
    auto path = spf_path(src_tree, source, c);
    if (path.size() >= 2) cost.cdn += path.size() - 1;
    cache_trees.emplace(c, ls.spf(c));
  }
  // Each member fetches from its nearest cache.
  for (net::NodeId m : members) {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (net::NodeId c : caches) {
      auto path = spf_path(cache_trees.at(c), c, m);
      if (!path.empty()) best = std::min(best, path.size() - 1);
    }
    if (best != std::numeric_limits<std::size_t>::max()) cost.cdn += best;
  }
  return cost;
}

}  // namespace tussle::routing
