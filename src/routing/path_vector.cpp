#include "routing/path_vector.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "sim/trace.hpp"

namespace tussle::routing {

PathVector::Policy PathVector::Policy::gao_rexford() {
  Policy p;
  p.local_pref = [](AsId, Rel learned_from, const std::vector<AsId>&) {
    switch (learned_from) {
      case Rel::kCustomer: return 300;
      case Rel::kPeer: return 200;
      case Rel::kProvider: return 100;
    }
    return 0;
  };
  p.export_ok = [](AsId, Rel learned_from, Rel to_neighbor) {
    // Own/customer routes go to everyone; peer & provider routes only to
    // customers (no free transit between my providers/peers).
    if (learned_from == Rel::kCustomer) return true;
    return to_neighbor == Rel::kCustomer;
  };
  return p;
}

PathVector::Policy PathVector::Policy::shortest_path() {
  Policy p;
  p.local_pref = [](AsId, Rel, const std::vector<AsId>&) { return 0; };
  p.export_ok = [](AsId, Rel, Rel) { return true; };
  return p;
}

namespace {

/// Is candidate (pref, path) better than incumbent? Ties broken by shorter
/// path, then lower next-hop id (deterministic, like BGP's tie-breakers).
bool better(int pref_a, const std::vector<AsId>& path_a, int pref_b,
            const std::vector<AsId>& path_b) {
  if (pref_a != pref_b) return pref_a > pref_b;
  if (path_a.size() != path_b.size()) return path_a.size() < path_b.size();
  // Compare next-hop (second element; both paths start at self).
  return path_a < path_b;
}

}  // namespace

PathVector::Outcome PathVector::compute(AsId dest, int max_rounds) const {
  return compute_with_origins({dest}, /*origin_validation=*/false, dest, max_rounds);
}

PathVector::Outcome PathVector::compute_with_origins(const std::vector<AsId>& claimed_origins,
                                                     bool origin_validation,
                                                     AsId legitimate_origin,
                                                     int max_rounds) const {
  return compute_with_origins(claimed_origins,
                              origin_validation ? graph_->ases() : std::vector<AsId>{},
                              legitimate_origin, max_rounds);
}

PathVector::Outcome PathVector::compute_with_origins(const std::vector<AsId>& claimed_origins,
                                                     const std::vector<AsId>& validators,
                                                     AsId legitimate_origin,
                                                     int max_rounds) const {
  std::optional<sim::ScopedSpan> decide;
  if (spans_ != nullptr) {
    // Control-plane work happens at setup time, outside the simulator
    // clock; the tracer's last observed time keeps ordering consistent.
    decide.emplace(spans_, spans_->last_time(), "routing.bgp", "decide",
                   std::initializer_list<sim::TraceField>{
                       {"origins", static_cast<std::int64_t>(claimed_origins.size())},
                       {"legitimate_origin", legitimate_origin},
                       {"validators", static_cast<std::int64_t>(validators.size())}});
  }
  Outcome out;
  std::map<AsId, AsRoute> rib;
  auto is_origin = [&](AsId a) {
    return std::find(claimed_origins.begin(), claimed_origins.end(), a) !=
           claimed_origins.end();
  };
  for (AsId dest : claimed_origins) {
    if (!graph_->contains(dest)) continue;
    AsRoute self;
    self.as_path = {dest};
    self.next_hop = dest;
    self.local_pref = 1 << 20;  // own route beats anything learned
    rib[dest] = self;
  }
  if (rib.empty()) return out;

  const auto all = graph_->ases();
  for (int round = 1; round <= max_rounds; ++round) {
    bool changed = false;
    // Synchronous rounds: decisions in round r see the RIB of round r-1,
    // which keeps the computation deterministic and order-independent.
    std::map<AsId, AsRoute> next = rib;
    for (AsId self_as : all) {
      if (is_origin(self_as)) continue;
      const bool validates =
          std::binary_search(validators.begin(), validators.end(), self_as);
      AsRoute best;  // invalid
      bool have = false;
      for (const auto& [nbr, rel] : graph_->neighbors(self_as)) {
        auto it = rib.find(nbr);
        if (it == rib.end() || !it->second.valid()) continue;
        const AsRoute& nbr_route = it->second;
        // Would the neighbor export this route to me? From the neighbor's
        // point of view I am reverse(rel).
        const Rel me_to_nbr = reverse(rel);
        Rel nbr_learned_from;
        if (is_origin(nbr)) {
          nbr_learned_from = Rel::kCustomer;  // own routes export like customer routes
        } else {
          auto r = graph_->relationship(nbr, nbr_route.next_hop);
          if (!r) continue;
          nbr_learned_from = *r;
        }
        if (!is_origin(nbr) && !policy_.export_ok(nbr, nbr_learned_from, me_to_nbr)) continue;
        // Loop prevention: reject paths containing self.
        if (std::find(nbr_route.as_path.begin(), nbr_route.as_path.end(), self_as) !=
            nbr_route.as_path.end()) {
          continue;
        }
        // Origin validation (RPKI analogue): ASes that deployed it discard
        // routes terminating at an AS not authorized for the prefix.
        if (validates && nbr_route.as_path.back() != legitimate_origin) {
          TUSSLE_TRACE_EVENT(sim::Tracer::global(), sim::SimTime::zero(),
                             sim::TraceLevel::kDebug, "routing.bgp", "origin-invalid",
                             {"as", self_as}, {"from", nbr},
                             {"claimed_origin", nbr_route.as_path.back()});
          if (spans_ != nullptr) {
            spans_->instant("routing.bgp", "origin-invalid",
                            {{"as", self_as}, {"from", nbr},
                             {"claimed_origin", nbr_route.as_path.back()}});
          }
          continue;
        }
        std::vector<AsId> path;
        path.reserve(nbr_route.as_path.size() + 1);
        path.push_back(self_as);
        path.insert(path.end(), nbr_route.as_path.begin(), nbr_route.as_path.end());
        const int pref = policy_.local_pref(self_as, rel, path);
        if (!have || better(pref, path, best.local_pref, best.as_path)) {
          best.as_path = std::move(path);
          best.next_hop = nbr;
          best.local_pref = pref;
          have = true;
        }
      }
      const AsRoute& cur = rib.count(self_as) ? rib.at(self_as) : AsRoute{};
      if (have) {
        if (!cur.valid() || cur.as_path != best.as_path) changed = true;
        next[self_as] = best;
      } else if (cur.valid()) {
        next.erase(self_as);
        changed = true;
      }
    }
    rib = std::move(next);
    out.rounds = round;
    if (!changed) {
      out.converged = true;
      break;
    }
  }
  out.routes = std::move(rib);
  if (decide) {
    decide->annotate({"converged", out.converged});
    decide->annotate({"rounds", static_cast<std::int64_t>(out.rounds)});
  }
  return out;
}

namespace {

/// Classifies every AS's route after a hijack computation: captured by the
/// hijacker, still reaching the true origin, or without a route at all.
HijackOutcome tally_hijack(const AsGraph& graph, const PathVector::Outcome& out,
                           AsId true_origin, AsId hijacker, bool origin_validation,
                           sim::SpanTracer* spans) {
  HijackOutcome h;
  h.converged = out.converged;
  for (AsId as : graph.ases()) {
    if (as == true_origin || as == hijacker) continue;
    ++h.total_ases;
    auto it = out.routes.find(as);
    if (it == out.routes.end() || !it->second.valid()) {
      ++h.unreachable;
    } else if (it->second.as_path.back() == hijacker) {
      // The narrated moment of the experiment: this AS believed the
      // hijacker's announcement and now routes the victim's prefix to it.
      TUSSLE_TRACE_EVENT(sim::Tracer::global(), sim::SimTime::zero(),
                         sim::TraceLevel::kInfo, "routing.bgp", "hijack-accepted",
                         {"as", as}, {"hijacker", hijacker}, {"victim", true_origin},
                         {"path_len", it->second.as_path.size()},
                         {"origin_validation", origin_validation});
      if (spans != nullptr) {
        spans->instant("routing.bgp", "hijack-accepted",
                       {{"as", as},
                        {"path_len", static_cast<std::int64_t>(it->second.as_path.size())}});
      }
      ++h.captured;
    } else {
      ++h.legitimate;
    }
  }
  h.capture_fraction =
      h.total_ases ? static_cast<double>(h.captured) / static_cast<double>(h.total_ases) : 0;
  return h;
}

}  // namespace

HijackOutcome simulate_hijack(const AsGraph& graph, AsId true_origin, AsId hijacker,
                              bool origin_validation, PathVector::Policy policy,
                              sim::SpanTracer* spans) {
  std::optional<sim::ScopedSpan> span;
  if (spans != nullptr) {
    span.emplace(spans, spans->last_time(), "routing.bgp", "hijack",
                 std::initializer_list<sim::TraceField>{
                     {"victim", true_origin}, {"hijacker", hijacker},
                     {"origin_validation", origin_validation}});
  }
  PathVector pv(graph, std::move(policy));
  pv.set_span_tracer(spans);
  auto out = pv.compute_with_origins({true_origin, hijacker}, origin_validation, true_origin);
  return tally_hijack(graph, out, true_origin, hijacker, origin_validation, spans);
}

HijackOutcome simulate_hijack_partial(const AsGraph& graph, AsId true_origin, AsId hijacker,
                                      const std::vector<AsId>& validators,
                                      PathVector::Policy policy, sim::SpanTracer* spans) {
  std::optional<sim::ScopedSpan> span;
  if (spans != nullptr) {
    span.emplace(spans, spans->last_time(), "routing.bgp", "hijack",
                 std::initializer_list<sim::TraceField>{
                     {"victim", true_origin}, {"hijacker", hijacker},
                     {"validators", static_cast<std::int64_t>(validators.size())}});
  }
  PathVector pv(graph, std::move(policy));
  pv.set_span_tracer(spans);
  auto out = pv.compute_with_origins({true_origin, hijacker}, validators, true_origin);
  return tally_hijack(graph, out, true_origin, hijacker, !validators.empty(), spans);
}

std::map<AsId, PathVector::Outcome> PathVector::compute_all(int max_rounds) const {
  std::map<AsId, Outcome> out;
  for (AsId dest : graph_->ases()) out.emplace(dest, compute(dest, max_rounds));
  return out;
}

VisibilityComparison compare_visibility(const AsGraph& graph, const PathVector& pv) {
  VisibilityComparison v;
  v.edges_total = graph.edge_count();
  if (v.edges_total == 0) return v;

  const auto all = graph.ases();
  auto rib = pv.compute_all();
  double total_visible = 0;
  for (AsId self : all) {
    std::set<std::pair<AsId, AsId>> seen;
    for (const auto& [dest, outcome] : rib) {
      (void)dest;
      auto it = outcome.routes.find(self);
      if (it == outcome.routes.end() || !it->second.valid()) continue;
      const auto& path = it->second.as_path;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        auto a = std::min(path[i], path[i + 1]);
        auto b = std::max(path[i], path[i + 1]);
        seen.emplace(a, b);
      }
    }
    total_visible += static_cast<double>(seen.size());
  }
  v.mean_edges_visible_pv = total_visible / static_cast<double>(all.size());
  v.visibility_ratio = v.mean_edges_visible_pv / static_cast<double>(v.edges_total);
  return v;
}

}  // namespace tussle::routing
