// Bridges the AS-level control plane to the packet-level data plane.
//
// Experiments that need both economics-grade AS structure and real packets
// (E4, E10, E11 variants) use this to materialize an AsGraph as a Network —
// one border router per AS, one link per business relationship — and to
// compile PathVector outcomes into the routers' forwarding tables, so
// packets really follow the Gao–Rexford-chosen AS paths.
#pragma once

#include <map>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "routing/path_vector.hpp"

namespace tussle::routing {

struct InterDomainNet {
  std::map<AsId, net::NodeId> router_of;
  /// The canonical address of each AS's network (host 1 in subscriber 0).
  std::map<AsId, net::Address> address_of;
};

/// Builds one border router per AS and connects every AsGraph edge with
/// `spec`. Each router owns the address {as, 0, 1}.
InterDomainNet build_inter_domain(net::Network& net, const AsGraph& graph,
                                  const net::LinkSpec& spec);

/// Runs the path-vector protocol for every destination AS and installs the
/// chosen next hops as prefix+AS routes in every router's FIB. Returns the
/// number of routes installed. Destinations some AS cannot reach (policy)
/// simply get no entry there — the packet-level symptom is a no-route drop,
/// exactly like real BGP blackholes.
std::size_t install_path_vector_routes(net::Network& net, const InterDomainNet& topo,
                                       const PathVector& pv);

}  // namespace tussle::routing
