#include "routing/link_state.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace tussle::routing {

LinkState::LinkState(net::Network& net, CostFn cost) : net_(&net), cost_(std::move(cost)) {
  if (!cost_) {
    cost_ = [](const net::Link& l) { return l.propagation().as_seconds(); };
  }
}

bool LinkState::allowed(net::NodeId n, const std::vector<net::NodeId>& members) const {
  return members.empty() || std::find(members.begin(), members.end(), n) != members.end();
}

LinkState::Spf LinkState::spf(net::NodeId src, const std::vector<net::NodeId>& members) const {
  Spf out;
  using Item = std::pair<double, net::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  out.dist[src] = 0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, n] = pq.top();
    pq.pop();
    if (d > out.dist.at(n)) continue;  // stale entry
    const net::Node& node = net_->node(n);
    for (net::IfIndex i = 0; i < static_cast<net::IfIndex>(node.interface_count()); ++i) {
      const net::Link& l = net_->link(node.link_of(i));
      if (!l.up()) continue;
      const net::NodeId peer = l.peer_of(n);
      if (!allowed(peer, members)) continue;
      const double nd = d + cost_(l);
      auto it = out.dist.find(peer);
      if (it == out.dist.end() || nd < it->second) {
        out.dist[peer] = nd;
        // First hop: inherit from n unless n is the source itself.
        out.first_hop[peer] = (n == src) ? i : out.first_hop.at(n);
        out.parent[peer] = n;
        pq.emplace(nd, peer);
      }
    }
  }
  return out;
}

std::size_t LinkState::install_routes(const std::vector<net::NodeId>& members) {
  // Whole-area SPF installation is barrier-phase control work (see
  // install_path_vector_routes): declared so a mid-run reconvergence may
  // run as a sharded-backend control event with every shard quiescent.
  if (sim::ShardAuditor* au = net_->auditor()) {
    au->declare_control_event("routing.install-link-state");
  }
  std::size_t installed = 0;
  for (net::NodeId src : members) {
    const Spf tree = spf(src, members);
    net::Node& sn = net_->node(src);
    for (net::NodeId dst : members) {
      if (dst == src) continue;
      auto hop = tree.first_hop.find(dst);
      if (hop == tree.first_hop.end()) continue;  // unreachable
      for (const net::Address& a : net_->node(dst).addresses()) {
        sn.forwarding().set_prefix_route(net::prefix_of(a), hop->second);
        ++installed;
      }
      // AS-plane route toward the destination's AS (first writer wins; all
      // nodes of an AS are equivalent entry points for source routing).
      sn.forwarding().set_as_route(net_->node(dst).as(), hop->second);
    }
  }
  return installed;
}

std::map<net::NodeId, double> LinkState::bellman_ford(
    net::NodeId src, const std::vector<net::NodeId>& members) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::map<net::NodeId, double> dist;
  std::vector<net::NodeId> nodes;
  for (net::NodeId n = 0; n < static_cast<net::NodeId>(net_->node_count()); ++n) {
    if (allowed(n, members)) {
      nodes.push_back(n);
      dist[n] = kInf;
    }
  }
  dist[src] = 0;
  for (std::size_t round = 0; round + 1 < nodes.size(); ++round) {
    bool changed = false;
    for (net::NodeId n : nodes) {
      if (dist[n] == kInf) continue;
      const net::Node& node = net_->node(n);
      for (net::IfIndex i = 0; i < static_cast<net::IfIndex>(node.interface_count()); ++i) {
        const net::Link& l = net_->link(node.link_of(i));
        if (!l.up()) continue;
        const net::NodeId peer = l.peer_of(n);
        if (!allowed(peer, members)) continue;
        const double nd = dist[n] + cost_(l);
        if (nd < dist[peer]) {
          dist[peer] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  // Drop unreachable entries for parity with spf().
  for (auto it = dist.begin(); it != dist.end();) {
    if (it->second == kInf) {
      it = dist.erase(it);
    } else {
      ++it;
    }
  }
  return dist;
}

}  // namespace tussle::routing
