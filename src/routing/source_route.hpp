// User-controlled provider-level source routing (the NIRA-flavoured
// alternative the paper wishes had been built, §V-A-4).
//
// A user composes an AS-level path instead of accepting the provider-chosen
// one. The catch the paper insists on: intermediate providers have no
// reason to carry traffic that overrides their business arrangements unless
// *payment flows*. The builder therefore reports, per candidate path, which
// ASes are carrying off-contract traffic and must be compensated.
#pragma once

#include <optional>
#include <vector>

#include "routing/as_graph.hpp"

namespace tussle::routing {

class SourceRouteBuilder {
 public:
  explicit SourceRouteBuilder(const AsGraph& graph) : graph_(&graph) {}

  /// Shortest AS path by hop count (BFS); empty if unreachable.
  std::vector<AsId> shortest_path(AsId from, AsId to) const;

  /// Up to `k` loop-free paths, shortest first (Yen's algorithm over hop
  /// count). Deterministic tie-breaking by lexicographic path order.
  std::vector<std::vector<AsId>> k_shortest_paths(AsId from, AsId to, std::size_t k) const;

  /// ASes on `path` that carry traffic outside their business interest:
  /// a transit AS is "on contract" only when at least one side of the
  /// traffic (previous or next hop) is its customer — otherwise it is
  /// giving transit away and will demand payment (§V-A-4).
  std::vector<AsId> off_contract_ases(const std::vector<AsId>& path) const;

  /// True when the path would be accepted without any payments at all,
  /// i.e. it is valley-free (provider-routing-compatible).
  bool free_of_charge(const std::vector<AsId>& path) const {
    return graph_->valley_free(path);
  }

 private:
  std::vector<AsId> bfs(AsId from, AsId to,
                        const std::vector<std::pair<AsId, AsId>>& banned_edges,
                        const std::vector<AsId>& banned_nodes) const;

  const AsGraph* graph_;
};

}  // namespace tussle::routing
