#include "routing/inter_domain.hpp"

namespace tussle::routing {

InterDomainNet build_inter_domain(net::Network& net, const AsGraph& graph,
                                  const net::LinkSpec& spec) {
  InterDomainNet topo;
  for (AsId as : graph.ases()) {
    const net::NodeId n = net.add_node(as);
    topo.router_of[as] = n;
    const net::Address a{.provider = as, .subscriber = 0, .host = 1};
    net.node(n).add_address(a);
    topo.address_of[as] = a;
  }
  // One physical link per relationship edge. AsGraph stores each edge on
  // both endpoints; connect once per unordered pair.
  for (AsId as : graph.ases()) {
    for (const auto& [peer, rel] : graph.neighbors(as)) {
      (void)rel;
      if (as < peer) {
        net.connect(topo.router_of.at(as), topo.router_of.at(peer), spec.bandwidth_bps,
                    spec.propagation, spec.queue, spec.queue_capacity);
      }
    }
  }
  return topo;
}

std::size_t install_path_vector_routes(net::Network& net, const InterDomainNet& topo,
                                       const PathVector& pv) {
  // Installing a converged RIB touches every router's FIB at once. Declare
  // the touch as barrier-phase control work: a no-op during setup, and the
  // contract that lets a mid-run reconvergence run as a control event on
  // the sharded backend's coordinator (with all shards quiescent) instead
  // of tripping the cross-shard mutation check.
  if (sim::ShardAuditor* au = net.auditor()) {
    au->declare_control_event("routing.install-path-vector");
  }
  std::size_t installed = 0;
  // Precompute, per router, the interface toward each neighbor AS.
  std::map<net::NodeId, std::map<AsId, net::IfIndex>> iface_to;
  for (const auto& [as, node] : topo.router_of) {
    (void)as;
    for (net::IfIndex i = 0; i < static_cast<net::IfIndex>(net.node(node).interface_count());
         ++i) {
      const net::Link& l = net.link(net.node(node).link_of(i));
      const net::NodeId peer_node = l.peer_of(node);
      iface_to[node][net.node(peer_node).as()] = i;
    }
  }

  auto rib = pv.compute_all();
  for (const auto& [dest, outcome] : rib) {
    const net::Address dest_addr = topo.address_of.at(dest);
    for (const auto& [src, route] : outcome.routes) {
      if (src == dest || !route.valid()) continue;
      const net::NodeId router = topo.router_of.at(src);
      auto it = iface_to[router].find(route.next_hop);
      if (it == iface_to[router].end()) continue;
      net.node(router).forwarding().set_prefix_route(net::prefix_of(dest_addr), it->second);
      net.node(router).forwarding().set_as_route(dest, it->second);
      ++installed;
    }
  }
  // Source-route support: every router also knows the interface toward each
  // *adjacent* AS even without a policy route (carriage is then a matter of
  // payment, not reachability).
  for (const auto& [node, ifaces] : iface_to) {
    for (const auto& [as, iface] : ifaces) {
      net.node(node).forwarding().set_as_route(as, iface);
    }
  }
  return installed;
}

}  // namespace tussle::routing
