#include "routing/as_graph.hpp"

#include <stdexcept>

namespace tussle::routing {

std::string to_string(Rel r) {
  switch (r) {
    case Rel::kCustomer: return "customer";
    case Rel::kPeer: return "peer";
    case Rel::kProvider: return "provider";
  }
  return "?";
}

void AsGraph::add_as(AsId as) { adj_.try_emplace(as); }

void AsGraph::add_customer_provider(AsId customer, AsId provider) {
  if (customer == provider) throw std::invalid_argument("AS cannot buy transit from itself");
  if (relationship(customer, provider)) throw std::invalid_argument("edge already exists");
  adj_[customer].emplace_back(provider, Rel::kProvider);
  adj_[provider].emplace_back(customer, Rel::kCustomer);
  ++edges_;
}

void AsGraph::add_peering(AsId a, AsId b) {
  if (a == b) throw std::invalid_argument("AS cannot peer with itself");
  if (relationship(a, b)) throw std::invalid_argument("edge already exists");
  adj_[a].emplace_back(b, Rel::kPeer);
  adj_[b].emplace_back(a, Rel::kPeer);
  ++edges_;
}

const std::vector<std::pair<AsId, Rel>>& AsGraph::neighbors(AsId as) const {
  static const std::vector<std::pair<AsId, Rel>> kEmpty;
  auto it = adj_.find(as);
  return it == adj_.end() ? kEmpty : it->second;
}

std::optional<Rel> AsGraph::relationship(AsId from, AsId to) const {
  for (const auto& [n, rel] : neighbors(from)) {
    if (n == to) return rel;
  }
  return std::nullopt;
}

std::vector<AsId> AsGraph::ases() const {
  std::vector<AsId> out;
  out.reserve(adj_.size());
  for (const auto& [as, _] : adj_) out.push_back(as);
  return out;
}

bool AsGraph::valley_free(const std::vector<AsId>& path) const {
  if (path.size() < 2) return true;
  // Phase 0: climbing (customer→provider edges). Phase 1: at most one peer
  // edge. Phase 2: descending (provider→customer edges).
  int phase = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto rel = relationship(path[i], path[i + 1]);
    if (!rel) return false;  // not even an edge
    switch (*rel) {
      case Rel::kProvider:  // climbing
        if (phase != 0) return false;
        break;
      case Rel::kPeer:
        if (phase != 0) return false;
        phase = 1;
        break;
      case Rel::kCustomer:  // descending
        phase = 2;
        break;
    }
    if (phase == 1) phase = 2;  // only a single peer edge allowed
  }
  return true;
}

Hierarchy make_hierarchy(sim::Rng& rng, std::size_t tier1, std::size_t tier2,
                                           std::size_t stubs, double tier2_peering_prob) {
  if (tier1 == 0) throw std::invalid_argument("need at least one tier-1 AS");
  Hierarchy h;
  AsId next = 1;
  for (std::size_t i = 0; i < tier1; ++i) h.tier1.push_back(next++);
  for (std::size_t i = 0; i < tier2; ++i) h.tier2.push_back(next++);
  for (std::size_t i = 0; i < stubs; ++i) h.stubs.push_back(next++);

  for (AsId a : h.tier1) h.graph.add_as(a);
  for (AsId a : h.tier2) h.graph.add_as(a);
  for (AsId a : h.stubs) h.graph.add_as(a);

  // Tier-1 full mesh of peerings.
  for (std::size_t i = 0; i < h.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < h.tier1.size(); ++j) {
      h.graph.add_peering(h.tier1[i], h.tier1[j]);
    }
  }
  // Tier-2: one or two tier-1 providers, occasional lateral peering.
  for (std::size_t i = 0; i < h.tier2.size(); ++i) {
    const AsId a = h.tier2[i];
    const auto p1 = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.tier1.size()) - 1));
    h.graph.add_customer_provider(a, h.tier1[p1]);
    if (h.tier1.size() > 1 && rng.bernoulli(0.5)) {
      auto p2 = p1;
      while (p2 == p1) {
        p2 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(h.tier1.size()) - 1));
      }
      h.graph.add_customer_provider(a, h.tier1[p2]);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (rng.bernoulli(tier2_peering_prob)) h.graph.add_peering(a, h.tier2[j]);
    }
  }
  // Stubs: one or two tier-2 providers (or tier-1 if no tier-2 exists).
  const auto& upstreams = h.tier2.empty() ? h.tier1 : h.tier2;
  for (AsId a : h.stubs) {
    const auto p1 = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(upstreams.size()) - 1));
    h.graph.add_customer_provider(a, upstreams[p1]);
    if (upstreams.size() > 1 && rng.bernoulli(0.4)) {
      auto p2 = p1;
      while (p2 == p1) {
        p2 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(upstreams.size()) - 1));
      }
      h.graph.add_customer_provider(a, upstreams[p2]);
    }
  }
  return h;
}

}  // namespace tussle::routing
