// Resilient-overlay routing ("overlays are a tool in the tussle", §V-A-4
// footnote; experiment E10).
//
// Overlay members tunnel among themselves above the provider-controlled
// network. When direct paths are blocked or degraded, traffic is relayed
// through other members using nested encapsulation — the data plane's own
// tunnel machinery does the unwrapping hop by hop, so the underlay never
// needs to know the overlay exists (which is precisely the point).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace tussle::routing {

class Overlay {
 public:
  /// `members` maps each member node to the address its tunnels terminate
  /// at.
  Overlay(net::Network& net, std::map<net::NodeId, net::Address> members)
      : net_(&net), members_(std::move(members)) {}

  /// Sets the measured quality of the overlay edge a→b (symmetric update is
  /// the caller's choice). Cost semantics: lower is better; infinity (or
  /// removal) means unusable/blocked.
  void set_edge_cost(net::NodeId a, net::NodeId b, double cost);
  void block_edge(net::NodeId a, net::NodeId b);
  std::optional<double> edge_cost(net::NodeId a, net::NodeId b) const;

  /// Cheapest member relay path from `from` to `to` over current edge
  /// costs (Dijkstra). Includes both endpoints; empty when disconnected.
  std::vector<net::NodeId> route(net::NodeId from, net::NodeId to) const;

  /// Sends `inner` from member `from` to member `to` along the overlay
  /// path, building the nested tunnel stack. Returns the relay path used
  /// (empty = no path; nothing sent).
  std::vector<net::NodeId> send(net::NodeId from, net::NodeId to, net::Packet inner);

  std::size_t member_count() const noexcept { return members_.size(); }
  const std::map<net::NodeId, net::Address>& members() const noexcept { return members_; }

 private:
  net::Network* net_;
  std::map<net::NodeId, net::Address> members_;
  std::map<std::pair<net::NodeId, net::NodeId>, double> costs_;
};

}  // namespace tussle::routing
