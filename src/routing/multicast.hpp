// The multicast cost model (§VII footnote 19: "the case study of the
// failure to deploy multicast is left as an exercise for the reader").
//
// We do the exercise. Three ways to deliver one item from a source to N
// group members, costed in link transmissions (the resource ISPs pay for):
//
//  - unicast:   N separate copies along shortest paths (what actually won);
//  - multicast: one copy per tree edge of the union of those paths (what
//    the routers could have done);
//  - CDN:       one copy to each cache, then local unicast from the
//    nearest cache (what the market built instead, because caches are
//    *unilaterally deployable* and monetizable).
//
// The economics then mirror the QoS post-mortem: multicast's savings
// accrue to everyone except the ISP that must upgrade its routers.
#pragma once

#include <vector>

#include "routing/link_state.hpp"

namespace tussle::routing {

/// Node path src→dst extracted from an SPF run rooted at src; empty when
/// unreachable.
std::vector<net::NodeId> spf_path(const LinkState::Spf& tree, net::NodeId src,
                                  net::NodeId dst);

struct DistributionCost {
  std::size_t unicast = 0;    ///< link transmissions, N unicast copies
  std::size_t multicast = 0;  ///< link transmissions, router-replicated tree
  std::size_t cdn = 0;        ///< source→caches plus nearest-cache→members
  double multicast_savings() const {
    return unicast ? 1.0 - static_cast<double>(multicast) / static_cast<double>(unicast) : 0;
  }
  double cdn_savings() const {
    return unicast ? 1.0 - static_cast<double>(cdn) / static_cast<double>(unicast) : 0;
  }
};

/// Costs delivery of one item from `source` to `members` using hop-count
/// SPF over the network. `caches` are CDN replica locations (may be empty,
/// in which case cdn falls back to unicast cost).
DistributionCost compare_distribution(net::Network& net, net::NodeId source,
                                      const std::vector<net::NodeId>& members,
                                      const std::vector<net::NodeId>& caches);

}  // namespace tussle::routing
