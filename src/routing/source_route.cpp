#include "routing/source_route.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace tussle::routing {

std::vector<AsId> SourceRouteBuilder::bfs(
    AsId from, AsId to, const std::vector<std::pair<AsId, AsId>>& banned_edges,
    const std::vector<AsId>& banned_nodes) const {
  if (from == to) return {from};
  auto edge_banned = [&](AsId a, AsId b) {
    return std::find(banned_edges.begin(), banned_edges.end(), std::make_pair(a, b)) !=
           banned_edges.end();
  };
  auto node_banned = [&](AsId n) {
    return std::find(banned_nodes.begin(), banned_nodes.end(), n) != banned_nodes.end();
  };
  if (node_banned(from) || node_banned(to)) return {};

  std::map<AsId, AsId> parent;
  std::deque<AsId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const AsId n = frontier.front();
    frontier.pop_front();
    // Deterministic neighbor order: AsGraph adjacency is insertion-ordered;
    // sort for stable lexicographic tie-breaking.
    auto nbrs = graph_->neighbors(n);
    std::sort(nbrs.begin(), nbrs.end());
    for (const auto& [peer, rel] : nbrs) {
      (void)rel;
      if (parent.count(peer) || node_banned(peer) || edge_banned(n, peer)) continue;
      parent[peer] = n;
      if (peer == to) {
        std::vector<AsId> path{to};
        AsId cur = to;
        while (cur != from) {
          cur = parent.at(cur);
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(peer);
    }
  }
  return {};
}

std::vector<AsId> SourceRouteBuilder::shortest_path(AsId from, AsId to) const {
  return bfs(from, to, {}, {});
}

std::vector<std::vector<AsId>> SourceRouteBuilder::k_shortest_paths(AsId from, AsId to,
                                                                    std::size_t k) const {
  std::vector<std::vector<AsId>> result;
  if (k == 0) return result;
  auto first = shortest_path(from, to);
  if (first.empty()) return result;
  result.push_back(std::move(first));

  // Yen's algorithm with a candidate set ordered by (length, lexicographic).
  auto cmp = [](const std::vector<AsId>& a, const std::vector<AsId>& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  };
  std::set<std::vector<AsId>, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const auto& prev = result.back();
    for (std::size_t i = 0; i + 1 < prev.size(); ++i) {
      // Spur node prev[i]; root = prev[0..i].
      std::vector<AsId> root(prev.begin(), prev.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      std::vector<std::pair<AsId, AsId>> banned_edges;
      for (const auto& p : result) {
        if (p.size() > i &&
            std::equal(root.begin(), root.end() - 1, p.begin())) {
          if (p.size() > i + 1) banned_edges.emplace_back(p[i], p[i + 1]);
        }
      }
      std::vector<AsId> banned_nodes(root.begin(), root.end() - 1);
      auto spur = bfs(prev[i], to, banned_edges, banned_nodes);
      if (spur.empty()) continue;
      std::vector<AsId> total = root;
      total.pop_back();
      total.insert(total.end(), spur.begin(), spur.end());
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<AsId> SourceRouteBuilder::off_contract_ases(const std::vector<AsId>& path) const {
  std::vector<AsId> out;
  // Endpoints originate/consume the traffic; only transit ASes can be
  // off-contract.
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const AsId self = path[i];
    const auto prev_rel = graph_->relationship(self, path[i - 1]);
    const auto next_rel = graph_->relationship(self, path[i + 1]);
    const bool prev_pays = prev_rel && *prev_rel == Rel::kCustomer;
    const bool next_pays = next_rel && *next_rel == Rel::kCustomer;
    if (!prev_pays && !next_pays) out.push_back(self);
  }
  return out;
}

}  // namespace tussle::routing
