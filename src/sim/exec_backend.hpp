// The pluggable execution surface behind sim::Simulator.
//
// The Simulator used to *be* its dispatch loop; it is now a scheduling
// surface (schedule / schedule_for / cancel / run) delegating to an
// ExecutionBackend:
//
//   SerialBackend   — today's single-threaded loop, bit-exact with every
//                     release before the split. The default.
//   ShardedBackend  — conservative barrier-synchronized parallel DES
//                     (sharded_backend.hpp): one logical process per
//                     owner (the AS id the ShardAuditor uses as the
//                     provisional shard), k worker threads, lookahead
//                     windows from the static link-latency registry.
//
// Two pieces of shared vocabulary live here so both backends and the
// components built on the simulator can speak it:
//
//  * ExecCtx — the per-thread execution context. Under the sharded
//    backend every worker event runs with a context installed; Simulator
//    accessors (now(), rng(), auditor(), scale_profiler()) resolve
//    through it so component code is backend-agnostic. Serial execution
//    never installs one, so the serial hot path pays a single
//    thread-local load per accessor call.
//
//  * shard_lane<T>() — per-owner copies of shared sink objects (packet
//    counters, id sources, ...). Under the sharded backend each owner
//    accumulates into its own lane, and lanes are folded into the base
//    object in ascending owner order at barrier points and at the end of
//    run(), so results are byte-identical at any shard count. Outside a
//    sharded worker the call returns nullptr and the caller uses the
//    base object directly.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/shard_audit.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

class Simulator;
class LoopProfiler;
class ScaleProfiler;
class ExecProfiler;
class MemProfiler;
class Rng;

/// Per-thread execution context installed by a backend while it dispatches
/// an event. All pointers are owned elsewhere; `sim` discriminates nested
/// simulators (a simulator built inside another's event keeps using its
/// own base state).
struct ExecCtx {
  Simulator* sim = nullptr;
  void* lp = nullptr;  ///< backend-private logical-process handle (null for control events)
  SimTime now{};
  Rng* rng = nullptr;               ///< stream to serve Simulator::rng()
  ShardAuditor* auditor = nullptr;  ///< lane to serve Simulator::auditor()
  ScaleProfiler* scale = nullptr;   ///< lane to serve Simulator::scale_profiler()
  MemProfiler* mem = nullptr;       ///< lane to serve Simulator::mem_profiler()
  ShardId owner = kNoShard;
  bool control = false;  ///< true while a barrier-phase control event runs
};

namespace detail {
extern thread_local ExecCtx* t_exec_ctx;
void set_exec_ctx(ExecCtx* ctx) noexcept;
}  // namespace detail

/// The calling thread's execution context, or nullptr outside a backend
/// dispatch (setup code, serial execution, post-run analysis).
inline ExecCtx* current_exec_ctx() noexcept { return detail::t_exec_ctx; }

/// Abstract execution engine. One backend owns a Simulator's pending-event
/// state; the Simulator forwards its whole scheduling and execution
/// surface here. Implementations are not thread-safe from the caller's
/// side: schedule/cancel/run are called from setup code or from within
/// the backend's own dispatch.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  ExecutionBackend(const ExecutionBackend&) = delete;
  ExecutionBackend& operator=(const ExecutionBackend&) = delete;

  virtual const char* name() const noexcept = 0;

  /// Schedules `action` at absolute time `at` in the calling context's
  /// ordering domain (current owner under the sharded backend; the global
  /// queue serially).
  virtual EventId schedule(SimTime at, TaskTag tag, EventQueue::Action action) = 0;

  /// Schedules into `owner`'s ordering domain. The serial backend ignores
  /// the owner (one global order); the sharded backend routes to the
  /// owner's queue — through its barrier inbox when called from another
  /// owner's event, so per-owner event order is shard-count-independent.
  virtual EventId schedule_for(ShardId owner, SimTime at, TaskTag tag,
                               EventQueue::Action action) = 0;

  /// Cancels a pending event. Backends may refuse cross-owner
  /// cancellation (returns false) — see the concrete backend's contract.
  virtual bool cancel(EventId id) = 0;

  virtual std::size_t pending() const = 0;

  /// Declares that `owner` exists (Network::add_node registers each AS).
  /// The sharded backend pre-creates one logical process per owner.
  virtual void register_owner(ShardId owner) { (void)owner; }

  /// Declares a static cross-owner latency bound (Network::connect
  /// registers each cross-AS link). The minimum becomes the sharded
  /// backend's barrier-window lookahead.
  virtual void register_lookahead(ShardId a, ShardId b, Duration latency) {
    (void)a;
    (void)b;
    (void)latency;
  }

  /// Runs until drained / stopped / past `horizon`; returns events executed.
  virtual std::size_t run(SimTime horizon) = 0;
  /// Executes one pending event. Backends without a serializable single
  /// step throw std::logic_error.
  virtual bool step() = 0;

  /// The Simulator re-attached or detached observability hooks
  /// (profiler/auditor/scale/mem); backends refresh derived state (tag
  /// recording on their queues).
  virtual void on_hooks_changed() {}

  /// Modeled live bytes across every attached MemProfiler instance: the
  /// base profiler here; the sharded backend adds its per-owner lanes
  /// (safe from control events — workers are parked at the barrier).
  /// 0 when no profiler is attached.
  virtual std::int64_t mem_live_bytes() const;

 protected:
  explicit ExecutionBackend(Simulator& sim) noexcept : sim_(&sim) {}
  Simulator& sim() noexcept { return *sim_; }
  const Simulator& sim() const noexcept { return *sim_; }

  // Access to Simulator internals for backend implementations; Simulator
  // befriends only this base class, subclasses go through these.
  EventQueue& base_queue() noexcept;
  SimTime base_now() const noexcept;
  void set_base_now(SimTime t) noexcept;
  std::uint64_t sim_seed() const noexcept;
  Rng& base_rng() noexcept;
  bool stop_requested() const noexcept;
  void clear_stop() noexcept;
  void add_executed(std::size_t n) noexcept;
  bool hooks_record_tags() const noexcept;
  LoopProfiler* profiler_hook() const noexcept;
  ShardAuditor* auditor_hook() const noexcept;
  ScaleProfiler* scale_hook() const noexcept;
  ExecProfiler* exec_hook() const noexcept;
  MemProfiler* mem_hook() const noexcept;
  /// Heartbeat support for non-serial backends: true when a heartbeat is
  /// configured, reset at run() start, and a tick the coordinator calls
  /// between barrier windows (emits at most one line per heartbeat period
  /// of sim-time; schedules nothing, so it cannot change the event order).
  bool heartbeat_active() const noexcept;
  void heartbeat_begin_run() noexcept;
  void heartbeat_tick(SimTime sim_now, std::size_t executed_total,
                      std::size_t queue_depth);

 private:
  Simulator* sim_;
};

/// Today's dispatch loop: one global (time, sequence) order, support for
/// the loop profiler, heartbeat, auditor, and scale profiler exactly as
/// the pre-split Simulator ran them.
class SerialBackend final : public ExecutionBackend {
 public:
  explicit SerialBackend(Simulator& sim) noexcept : ExecutionBackend(sim) {}

  const char* name() const noexcept override { return "serial"; }
  EventId schedule(SimTime at, TaskTag tag, EventQueue::Action action) override;
  EventId schedule_for(ShardId owner, SimTime at, TaskTag tag,
                       EventQueue::Action action) override;
  bool cancel(EventId id) override;
  std::size_t pending() const override;
  std::size_t run(SimTime horizon) override;
  bool step() override;
};

// ------------------------------------------------------------------ lanes --
// Type-erased per-owner lane storage, implemented by the sharded backend
// (sharded_backend.cpp). `make` builds one lane for an owner, `fold`
// merges a lane into the base object (and resets the lane so folds are
// incremental), `destroy` frees it. Lanes are keyed by base-object
// address; folds iterate owners in ascending order so merged results are
// shard-count-independent.
using LaneMakeFn = void* (*)(void* base, ShardId owner);
using LaneFoldFn = void (*)(void* base, void* lane);
using LaneDestroyFn = void (*)(void* lane);

/// The calling worker's lane for `base`, created on first use; nullptr
/// when the thread is not inside a sharded worker event.
void* shard_lane_raw(Simulator& sim, void* base, LaneMakeFn make, LaneFoldFn fold,
                     LaneDestroyFn destroy);

/// Customization point: how to build and fold a lane for T. Specialize
/// next to the type's own code (see NetCounters in net/network.cpp).
template <typename T>
struct LaneTraits {
  static T* make(const T& base, ShardId owner) {
    (void)base;
    (void)owner;
    return new T();
  }
  static void fold(T& base, T& lane) {
    base.merge(lane);
    lane = T{};
  }
};

template <typename T>
T* shard_lane(Simulator& sim, T& base) {
  return static_cast<T*>(shard_lane_raw(
      sim, &base,
      [](void* b, ShardId owner) -> void* {
        return LaneTraits<T>::make(*static_cast<T*>(b), owner);
      },
      [](void* b, void* l) { LaneTraits<T>::fold(*static_cast<T*>(b), *static_cast<T*>(l)); },
      [](void* l) { delete static_cast<T*>(l); }));
}

}  // namespace tussle::sim
