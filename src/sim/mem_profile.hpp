// Memory profiler: the allocation-site / object-lifetime / locality pass.
//
// ROADMAP item 1 calls for a million-actor data plane (struct-of-arrays
// actors, arena/pool allocation, calendar queue). Before restructuring the
// engine around that design, this profiler measures — on today's
// pointer-heavy engine — exactly the quantities the refactor must improve:
//
//  (a) allocation sites: per-component alloc/free counters and live-bytes
//      (event control blocks, packets, nodes/links, routing-table entries,
//      ledger entries, sweep per-run state), all in sim-deterministic model
//      units so reports are reproducible — never a malloc hook, never RSS;
//  (b) object lifetimes in sim time: packet birth→deliver/drop and event
//      schedule→dispatch/cancel histograms — the churn an arena with
//      per-window reset would absorb;
//  (c) a pointer-chase/locality model ("chase-churn-v1"): per-dispatch
//      indirection depth along the hot path (queue top → heap handle →
//      closure, then node → FIB → interface → link → queue as components
//      report them) plus container-occupancy stats, scored per component
//      into a predicted arena/SoA benefit — the analogue of the
//      ScaleProfiler's predicted-speedup curve, and the ranking that says
//      which component the refactor should flatten first;
//  (d) peak/steady live-bytes per shard, so the sharded backend's memory
//      footprint is attributable per owner.
//
// One accounting source: ScaleProfiler's bytes-per-actor tables and this
// profiler's live-bytes are fed by the same registration calls (see
// profile_actor / profile_alloc below) and share kEventControlBlockBytes,
// so the two reports can never disagree on a size.
//
// Determinism contract (same as spans/timeseries/scale — detlint's
// mem-wall-clock check enforces the first rule statically):
//  - nothing here may touch a wall clock, draw randomness, or schedule:
//    every recorded byte is a model unit attached to a sim-time event, so
//    "live bytes" means modeled resident bytes, never process RSS;
//  - all accumulation structures that survive to a merge point are
//    ordered containers, so reports are byte-identical across runs;
//  - sweep runs record into per-run instances merged in run-index order,
//    so exports are byte-identical at any --jobs; on the sharded backend
//    each owner lane records into its own instance and lanes fold in
//    ascending-owner order, so exports are byte-identical at any --shards;
//  - an unattached profiler costs the simulator one null-pointer branch
//    per hook site (the pointer, not this class, is the guard).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/profiler.hpp"
#include "sim/shard_audit.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

class ScaleProfiler;

/// Estimated resident bytes of one scheduled event: the heap Entry (time,
/// seq, id, std::function) plus the typical out-of-line closure the
/// std::function small-buffer optimisation cannot hold. A model constant,
/// not a measurement — the arena-allocation refactor gates on the *count*;
/// bytes give the reports a common unit with packets and actors. Shared by
/// ScaleProfiler and MemProfiler so their event-churn rows always agree.
inline constexpr std::uint64_t kEventControlBlockBytes = 96;

/// Base pointer-chase depth of one dispatch before any component adds its
/// own hops: queue top → heap event handle → out-of-line closure target.
/// A model constant of today's std::function-based queue; the calendar
/// queue / arena refactor aims to cut it to 1.
inline constexpr std::uint64_t kDispatchChaseHops = 3;

class MemProfiler {
 public:
  // --- configuration (set before recording) -------------------------------
  /// Tick interval for the live-bytes timeline grid (default 10 ms of sim
  /// time). Must be positive; applies to samples recorded afterwards.
  void set_tick(Duration tick);
  Duration tick() const noexcept { return tick_; }

  // --- simulator hooks -----------------------------------------------------
  /// An event was scheduled: counts one event-control-block allocation
  /// under "sim.event/<component>" and opens its schedule→dispatch/cancel
  /// lifetime.
  void on_schedule(std::uint64_t id, SimTime now, SimTime at, const TaskTag& tag);
  /// A pending event was cancelled before firing: closes its lifetime into
  /// the cancelled histogram and frees its control block.
  void on_cancel(std::uint64_t id, SimTime now);
  /// Dispatch is about to run event `id`: closes its lifetime into the
  /// dispatched histogram, frees its control block, samples event-queue
  /// occupancy, and opens the per-dispatch chase/churn window.
  void begin_event(std::uint64_t id, SimTime now, std::size_t queue_depth,
                   const TaskTag& tag);
  /// The event's handler returned; `shard` is the shard the ShardAuditor
  /// saw claim it (kNoShard when unclaimed or no auditor is attached).
  /// Attributes the dispatch's live-bytes delta to that shard.
  void end_event(ShardId shard);

  // --- accounting hooks (components) ---------------------------------------
  /// Counts one long-lived actor of `kind` at an estimated resident size;
  /// actor bytes enter the live-bytes account (they are allocated and stay).
  void register_actor(const char* kind, std::uint64_t bytes);
  /// Counts one allocation of `site` at `bytes` model bytes into the
  /// live-bytes account.
  void count_alloc(const std::string& site, std::uint64_t bytes);
  /// Counts one free of `site`; live-bytes go down by `bytes`.
  void count_free(const std::string& site, std::uint64_t bytes);

  // --- packet lifetimes -----------------------------------------------------
  /// A packet was originated (uid assigned): opens its birth→death lifetime
  /// and counts its allocation under "net.packet". Tunnel decapsulation
  /// keeps the wire uid, so a tunneled packet has exactly one identity and
  /// one lifetime end-to-end.
  void packet_birth(std::uint64_t uid, SimTime now, std::uint64_t bytes);
  /// The packet reached its destination. First death wins: mirrored copies
  /// share the original's uid, and only the first deliver/drop closes the
  /// lifetime; later deaths of the same uid are ignored.
  void packet_delivered(std::uint64_t uid, SimTime now);
  /// The packet was dropped (filter, ttl, no-route, queue-full, link-down).
  void packet_dropped(std::uint64_t uid, SimTime now);

  // --- locality hooks -------------------------------------------------------
  /// Component `component` chased `hops` pointer indirections on the hot
  /// path (FIB hash lookup, interface vector, link handle, queue handle…).
  /// Hops noted during a dispatch also enter the per-dispatch histogram.
  void note_hops(const char* component, std::uint64_t hops);
  /// Samples the occupancy of a named container (event queue, FIB tables,
  /// link queues) — the sizing input for arenas and flat tables.
  void note_occupancy(const char* container, std::uint64_t size);

  // --- results -------------------------------------------------------------
  /// Total events dispatched while attached (the per-event denominator).
  std::uint64_t work() const noexcept { return work_; }
  std::uint64_t events_scheduled() const noexcept { return scheduled_; }
  std::uint64_t events_cancelled() const noexcept { return cancelled_; }
  /// Runs folded into this profiler (a recording instance counts itself
  /// once work was recorded).
  std::uint64_t runs() const noexcept { return merged_runs_ + (recorded_ ? 1 : 0); }

  /// Modeled live bytes right now (sum over sites of alloc − freed bytes).
  std::int64_t live_bytes() const noexcept { return live_; }
  /// Peak modeled live bytes of any single merged run (max over runs —
  /// replicas do not stack in memory; the sweep reuses their footprint).
  std::int64_t peak_live_bytes() const noexcept {
    return own_peak_ > merged_peak_ ? own_peak_ : merged_peak_;
  }
  /// Total allocations counted across every site.
  std::uint64_t alloc_count() const noexcept { return alloc_count_; }
  /// Registered actor population and its modeled resident bytes.
  std::uint64_t actor_count() const noexcept;
  std::uint64_t actor_bytes() const noexcept;
  /// The two gated ratios (bench_compare.py MEM mode): modeled live bytes
  /// per registered actor, and allocations per dispatched event.
  double live_bytes_per_actor() const noexcept;
  double allocs_per_event() const noexcept;

  struct SiteStats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t alloc_bytes = 0;
    std::uint64_t freed_bytes = 0;
    std::int64_t peak_live = 0;  ///< max live bytes of this site in one run
    std::int64_t live() const noexcept {
      return static_cast<std::int64_t>(alloc_bytes) - static_cast<std::int64_t>(freed_bytes);
    }
  };
  const std::map<std::string, SiteStats>& sites() const noexcept { return sites_; }

  struct Tally {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };
  const std::map<std::string, Tally>& actors() const noexcept { return actors_; }

  /// Lifetime histograms, power-of-two nanosecond buckets (bucket 0 = 0 ns,
  /// bucket b covers [2^(b−1), 2^b − 1] ns).
  const std::map<std::uint32_t, std::uint64_t>& packet_delivered_hist() const noexcept {
    return pkt_delivered_hist_;
  }
  const std::map<std::uint32_t, std::uint64_t>& packet_dropped_hist() const noexcept {
    return pkt_dropped_hist_;
  }
  const std::map<std::uint32_t, std::uint64_t>& event_dispatched_hist() const noexcept {
    return ev_dispatched_hist_;
  }
  const std::map<std::uint32_t, std::uint64_t>& event_cancelled_hist() const noexcept {
    return ev_cancelled_hist_;
  }

  struct ChaseStats {
    std::uint64_t calls = 0;
    std::uint64_t hops = 0;
  };
  const std::map<std::string, ChaseStats>& chases() const noexcept { return chase_; }
  /// Per-dispatch total-hop histogram (power-of-two buckets).
  const std::map<std::uint32_t, std::uint64_t>& hops_per_dispatch_hist() const noexcept {
    return hops_hist_;
  }

  struct OccupancyStats {
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    double mean() const noexcept {
      return samples > 0 ? static_cast<double>(sum) / static_cast<double>(samples) : 0.0;
    }
  };
  const std::map<std::string, OccupancyStats>& occupancy() const noexcept { return occ_; }

  /// The chase-churn-v1 locality score per component: arena_score =
  /// allocations per dispatched event (churn an arena absorbs), soa_score =
  /// chase hops per dispatched event (indirections SoA flattens),
  /// score = arena_score + soa_score. Components are the union of
  /// allocation-site prefixes (text before '/') and chase keys, so every
  /// churner and every chaser gets ranked.
  struct LocalityScore {
    std::string component;
    std::uint64_t allocs = 0;
    std::uint64_t chase_calls = 0;
    std::uint64_t chase_hops = 0;
    double arena_score = 0;
    double soa_score = 0;
    double score = 0;
  };
  std::vector<LocalityScore> locality_scores() const;

  struct ShardMem {
    std::uint64_t events = 0;
    std::int64_t live = 0;       ///< net live-bytes delta attributed to the shard
    std::int64_t peak_live = 0;  ///< max of that running delta in one run
  };
  const std::map<ShardId, ShardMem>& shard_mem() const noexcept { return shard_mem_; }

  /// Live-bytes timeline: tick index → max modeled live bytes observed in
  /// that tick. Tick index i covers [i·tick, (i+1)·tick). Merging runs
  /// takes the per-tick max, so the merged timeline is the footprint
  /// envelope across replicas.
  const std::map<std::int64_t, std::int64_t>& timeline() const noexcept { return timeline_; }

  /// Machine-readable report. Every container behind it is ordered, so the
  /// output is a pure function of the recorded event sequence.
  std::string report_json() const;

  /// Folds another profiler's results into this one. Peaks are finalized
  /// per source run before pooling (max over runs), counts and histograms
  /// sum, timelines take the per-tick max — so merging is associative and
  /// run-index-order merges are schedule-independent.
  void merge(const MemProfiler& other);

 private:
  struct PendingEvent {
    std::int64_t sched_ns = 0;
    std::string site;  ///< "sim.event/<component>" to free at death
  };
  struct PendingPacket {
    std::int64_t birth_ns = 0;
    std::uint64_t bytes = 0;
  };

  void sample_timeline();
  void add_live(std::int64_t delta);

  // --- configuration / in-flight state ---
  Duration tick_ = Duration::millis(10);
  std::map<std::uint64_t, PendingEvent> pending_;
  std::map<std::uint64_t, PendingPacket> pending_packets_;
  bool in_event_ = false;
  std::int64_t cur_time_ns_ = 0;
  std::int64_t cur_delta_ = 0;   ///< live-bytes delta of the dispatching event
  std::uint64_t cur_hops_ = 0;   ///< chase hops of the dispatching event
  bool recorded_ = false;        ///< this instance dispatched at least one event

  // --- raw per-run recording (summed on merge) ---
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t work_ = 0;
  std::uint64_t alloc_count_ = 0;
  std::int64_t live_ = 0;
  std::map<std::string, SiteStats> sites_;
  std::map<std::string, Tally> actors_;
  std::map<std::uint32_t, std::uint64_t> pkt_delivered_hist_;
  std::map<std::uint32_t, std::uint64_t> pkt_dropped_hist_;
  std::map<std::uint32_t, std::uint64_t> ev_dispatched_hist_;
  std::map<std::uint32_t, std::uint64_t> ev_cancelled_hist_;
  std::map<std::string, ChaseStats> chase_;
  std::map<std::uint32_t, std::uint64_t> hops_hist_;
  std::map<std::string, OccupancyStats> occ_;
  std::map<ShardId, ShardMem> shard_mem_;
  std::map<std::int64_t, std::int64_t> timeline_;

  // --- own peak (this instance's recording) ---
  std::int64_t own_peak_ = 0;

  // --- merged-run accumulators (finalized results folded by merge()) ---
  std::uint64_t merged_runs_ = 0;
  std::int64_t merged_peak_ = 0;
};

/// Registers one actor into whichever of the two profilers is attached —
/// the single accounting source keeping ScaleProfiler bytes-per-actor and
/// MemProfiler live-bytes in agreement by construction.
void profile_actor(ScaleProfiler* sp, MemProfiler* mp, const char* kind,
                   std::uint64_t bytes);
/// Counts one transient allocation into whichever profiler is attached.
void profile_alloc(ScaleProfiler* sp, MemProfiler* mp, const char* kind,
                   std::uint64_t bytes);

/// Self-contained zero-JS HTML dashboard section: stat tiles, live-bytes
/// timeline, lifetime histograms, per-site allocation bars, locality
/// scores, and the per-shard footprint table. Byte-identical for a given
/// profiler state.
std::string mem_dashboard(const MemProfiler& mp, const std::string& title);

}  // namespace tussle::sim
