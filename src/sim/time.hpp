// Simulation time: a strong type over integer nanoseconds.
//
// Integer ticks (rather than floating seconds) keep event ordering exact and
// runs bit-reproducible across platforms, which the scenario harness relies
// on for deterministic replay.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace tussle::sim {

/// A point in simulated time, measured in nanoseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() noexcept : ns_(0) {}

  /// Named constructors. Prefer these over raw tick counts at call sites.
  static constexpr SimTime nanos(std::int64_t n) noexcept { return SimTime(n); }
  static constexpr SimTime micros(std::int64_t u) noexcept { return SimTime(u * 1000); }
  static constexpr SimTime millis(std::int64_t m) noexcept { return SimTime(m * 1'000'000); }
  static constexpr SimTime seconds(double s) noexcept {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimTime zero() noexcept { return SimTime(0); }
  static constexpr SimTime max() noexcept {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t as_nanos() const noexcept { return ns_; }
  constexpr double as_seconds() const noexcept { return static_cast<double>(ns_) * 1e-9; }
  constexpr double as_millis() const noexcept { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime d) const noexcept { return SimTime(ns_ + d.ns_); }
  constexpr SimTime operator-(SimTime d) const noexcept { return SimTime(ns_ - d.ns_); }
  constexpr SimTime& operator+=(SimTime d) noexcept {
    ns_ += d.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) noexcept {
    ns_ -= d.ns_;
    return *this;
  }
  /// Scale a duration (e.g. backoff doubling). Saturation is not handled;
  /// callers stay far from the 292-year range limit in practice.
  constexpr SimTime operator*(double k) const noexcept {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
  }

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Duration and time-point share one representation; the alias documents
/// intent at interfaces that take "how long" rather than "when".
using Duration = SimTime;

}  // namespace tussle::sim
