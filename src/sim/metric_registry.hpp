// Central registry of named instruments.
//
// Subsystems register hierarchically-named instruments ("net.delivered",
// "link.0.backlog") once and update them on hot paths at plain-field cost;
// the registry owns the instruments and knows how to flatten all of them
// into a snapshot — an ordered name→number map that can be diffed against
// an earlier snapshot ("what happened during this window?") and serialized
// to JSON for the bench harness and CI perf trajectory.
//
// Names are dot-separated, unique across instrument kinds: registering
// "x" as a counter and again as a summary is a programming error and
// throws. Re-requesting the same name with the same kind returns the same
// instrument, so independent modules can share one ("net.drops").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

/// A flattened, deterministic view of every instrument at one instant.
/// Multi-valued instruments expand into suffixed entries: a Summary "lat"
/// becomes "lat.count", "lat.mean", "lat.min", "lat.max", "lat.stddev"; a
/// Histogram adds "x.p50", "x.p90", "x.p99"; a TimeWeighted becomes
/// "x.avg" and "x.current". Entries are sorted by name.
class MetricSnapshot {
 public:
  using Entry = std::pair<std::string, double>;

  explicit MetricSnapshot(std::vector<Entry> entries = {});

  const std::vector<Entry>& entries() const noexcept { return entries_; }
  double get(const std::string& name, double fallback = 0.0) const;
  bool contains(const std::string& name) const;
  std::size_t size() const noexcept { return entries_.size(); }

  /// Per-name `after - before`. Names present on only one side keep their
  /// sign (a metric that appeared mid-window diffs against zero).
  static MetricSnapshot diff(const MetricSnapshot& before, const MetricSnapshot& after);

  /// One flat JSON object, keys in sorted order: {"a.b":1,"a.c":2.5}.
  std::string to_json() const;

  /// Parses the output of to_json() (a flat object of string→number).
  /// Throws std::invalid_argument on malformed input — this is a schema
  /// check for round-trip tests and tooling, not a general JSON parser.
  static MetricSnapshot from_json(const std::string& json);

 private:
  std::vector<Entry> entries_;  // sorted by name
};

class MetricRegistry {
 public:
  /// Get-or-create. Throws std::logic_error if `name` is already
  /// registered as a different kind of instrument.
  Counter& counter(const std::string& name);
  Summary& summary(const std::string& name);
  Histogram& histogram(const std::string& name);
  TimeWeighted& time_weighted(const std::string& name);

  /// Scalar output metric (a result, not an accumulator): last put wins.
  /// Same-name collision rules apply against the instrument kinds.
  void gauge(const std::string& name, double value);

  bool contains(const std::string& name) const { return instruments_.count(name) != 0; }
  std::size_t size() const noexcept { return instruments_.size(); }

  /// "counter", "summary", "histogram", "time_weighted" or "gauge";
  /// nullptr if `name` is not registered. Lets samplers dispatch on the
  /// instrument kind without triggering get-or-create.
  const char* kind(const std::string& name) const noexcept;

  /// Current value of a gauge; `fallback` if absent or not a gauge.
  double gauge_value(const std::string& name, double fallback = 0.0) const noexcept;

  /// `now` closes out TimeWeighted averages; pass the simulator's clock.
  MetricSnapshot snapshot(SimTime now = SimTime::zero()) const;

  std::string to_json(SimTime now = SimTime::zero()) const { return snapshot(now).to_json(); }

 private:
  // unique_ptr keeps instrument addresses stable across rehash-free map
  // growth *and* makes the intent explicit: handed-out references live as
  // long as the registry.
  using Instrument = std::variant<Counter, Summary, Histogram, TimeWeighted, double>;

  template <typename T>
  T& get_or_create(const std::string& name, const char* kind_name);

  static const char* kind_of(const Instrument& ins) noexcept;

  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
};

}  // namespace tussle::sim
