#include "sim/trace.hpp"

#include <cstdio>
#include <ostream>

#include "sim/json.hpp"

namespace tussle::sim {

std::string_view to_string(TraceLevel level) noexcept {
  switch (level) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
    case TraceLevel::kError: return "ERROR";
  }
  return "?";
}

std::vector<Tracer::Record> Tracer::drain() {
  std::vector<Record> out;
  out.swap(records_);
  return out;
}

void Tracer::emit(SimTime now, TraceLevel level, std::string_view component,
                  std::string message) {
  if (!enabled_for(level)) return;
  dispatch(Record{now, level, std::string(component), std::move(message), {}});
}

void Tracer::emit_event(SimTime now, TraceLevel level, std::string_view component,
                        std::string_view event, std::initializer_list<TraceField> fields) {
  if (!enabled_for(level)) return;
  dispatch(Record{now, level, std::string(component), std::string(event),
                  std::vector<TraceField>(fields)});
}

void Tracer::dispatch(Record rec) {
  if (sink_) {
    sink_(rec);
  } else if (!keep_) {
    std::string line = rec.message;
    for (const TraceField& f : rec.fields) {
      line += ' ';
      line += f.key;
      line += '=';
      if (const auto* s = std::get_if<std::string>(&f.value)) {
        line += *s;
      } else if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
        line += std::to_string(*i);
      } else if (const auto* d = std::get_if<double>(&f.value)) {
        line += json_number(*d);
      } else {
        line += std::get<bool>(f.value) ? "true" : "false";
      }
    }
    std::fprintf(stderr, "[%s] %s %s: %s\n", rec.time.to_string().c_str(),
                 std::string(to_string(rec.level)).c_str(), rec.component.c_str(),
                 line.c_str());
  }
  if (keep_) records_.push_back(std::move(rec));
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::string to_jsonl(const Tracer::Record& rec) {
  JsonWriter w;
  w.begin_object();
  w.key("t_ns").value(rec.time.as_nanos());
  w.key("level").value(to_string(rec.level));
  w.key("component").value(rec.component);
  w.key("event").value(rec.message);
  for (const TraceField& f : rec.fields) {
    w.key(f.key);
    if (const auto* s = std::get_if<std::string>(&f.value)) {
      w.value(std::string_view(*s));
    } else if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
      w.value(*i);
    } else if (const auto* d = std::get_if<double>(&f.value)) {
      w.value(*d);
    } else {
      w.value(std::get<bool>(f.value));
    }
  }
  w.end_object();
  return w.str();
}

Tracer::Sink make_jsonl_sink(std::ostream& os) {
  return [&os](const Tracer::Record& rec) { os << to_jsonl(rec) << '\n'; };
}

}  // namespace tussle::sim
