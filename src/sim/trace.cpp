#include "sim/trace.hpp"

#include <cstdio>

namespace tussle::sim {

std::string_view to_string(TraceLevel level) noexcept {
  switch (level) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
    case TraceLevel::kError: return "ERROR";
  }
  return "?";
}

std::vector<Tracer::Record> Tracer::drain() {
  std::vector<Record> out;
  out.swap(records_);
  return out;
}

void Tracer::emit(SimTime now, TraceLevel level, std::string_view component,
                  std::string message) {
  if (!enabled_for(level)) return;
  Record rec{now, level, std::string(component), std::move(message)};
  if (sink_) {
    sink_(rec);
  } else if (!keep_) {
    std::fprintf(stderr, "[%s] %s %s: %s\n", rec.time.to_string().c_str(),
                 std::string(to_string(level)).c_str(), rec.component.c_str(),
                 rec.message.c_str());
  }
  if (keep_) records_.push_back(std::move(rec));
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace tussle::sim
