#include "sim/sharded_backend.hpp"

#include <algorithm>
#include <barrier>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "sim/simulator.hpp"

namespace tussle::sim {

namespace {

/// Installs/uninstalls the thread's ExecCtx with unwind safety: a throwing
/// event handler must not leave a stale context behind.
class CtxGuard {
 public:
  explicit CtxGuard(ExecCtx* ctx) noexcept { detail::set_exec_ctx(ctx); }
  ~CtxGuard() { detail::set_exec_ctx(nullptr); }
  CtxGuard(const CtxGuard&) = delete;
  CtxGuard& operator=(const CtxGuard&) = delete;
};

}  // namespace

ShardedBackend::Lp::~Lp() {
  for (auto& [base, entry] : lanes) {
    if (entry.destroy != nullptr) entry.destroy(entry.obj);
  }
}

ShardedBackend::ShardedBackend(Simulator& sim, std::size_t shards)
    : ExecutionBackend(sim), shards_(shards == 0 ? 1 : shards) {}

ShardedBackend::~ShardedBackend() = default;

// --------------------------------------------------------------- registry --

void ShardedBackend::register_owner(ShardId owner) {
  if (owner == kNoShard || owner == kSharedShard) return;  // sentinels own nothing
  if (index_.count(owner) != 0) return;
  if (running_) {
    throw std::logic_error(
        "ShardedBackend: owner " + std::to_string(owner) +
        " registered mid-run; the owner set must be fixed before run()");
  }
  auto lp = std::make_unique<Lp>();
  lp->owner = owner;
  // Namespace the owner's event ids so cancel() can route by id. Bits 40+
  // hold owner+1 (0 stays the control queue); bit 63 flags inbox-routed ids.
  lp->queue.set_id_base((static_cast<std::uint64_t>(owner) + 1) << 40);
  lp->queue.record_tags(hooks_record_tags());
  lp->rng = Rng::stream(sim_seed(), owner);
  const auto pos = std::lower_bound(
      lps_.begin(), lps_.end(), owner,
      [](const std::unique_ptr<Lp>& a, ShardId o) { return a->owner < o; });
  lps_.insert(pos, std::move(lp));
  index_.clear();
  for (std::size_t i = 0; i < lps_.size(); ++i) index_.emplace(lps_[i]->owner, i);
}

void ShardedBackend::register_lookahead(ShardId a, ShardId b, Duration latency) {
  if (a == b) return;  // intra-owner links do not bound the window
  const std::int64_t ns = latency.as_nanos() < 0 ? 0 : latency.as_nanos();
  if (lookahead_ns_ < 0 || ns < lookahead_ns_) lookahead_ns_ = ns;
}

Duration ShardedBackend::lookahead() const noexcept {
  if (lookahead_ns_ < 0) return SimTime::max();
  return SimTime::nanos(lookahead_ns_ < 1 ? 1 : lookahead_ns_);
}

ShardedBackend::Lp& ShardedBackend::lp_for(ShardId owner) {
  const auto it = index_.find(owner);
  if (it != index_.end()) return *lps_[it->second];
  register_owner(owner);  // throws mid-run
  const auto it2 = index_.find(owner);
  if (it2 == index_.end()) {
    throw std::logic_error("ShardedBackend: cannot schedule for sentinel owner " +
                           std::to_string(owner));
  }
  return *lps_[it2->second];
}

// ------------------------------------------------------------- scheduling --

EventId ShardedBackend::push_control(SimTime at, TaskTag tag, EventQueue::Action action) {
  const EventId id = control_.push(at, std::move(action), tag);
  if (ScaleProfiler* sc = scale_hook()) {
    ShardAuditor* au = auditor_hook();
    sc->on_schedule(id.value, base_now(), at, tag, au != nullptr ? au->current() : kNoShard);
  }
  if (MemProfiler* mm = mem_hook()) mm->on_schedule(id.value, base_now(), at, tag);
  return id;
}

EventId ShardedBackend::push_direct(Lp& lp, SimTime at, TaskTag tag,
                                    EventQueue::Action action) {
  const EventId id = lp.queue.push(at, std::move(action), tag);
  if (ScaleProfiler* sc = scale_hook()) {
    ShardAuditor* au = auditor_hook();
    sc->on_schedule(id.value, base_now(), at, tag, au != nullptr ? au->current() : kNoShard);
  }
  if (MemProfiler* mm = mem_hook()) mm->on_schedule(id.value, base_now(), at, tag);
  return id;
}

EventId ShardedBackend::schedule(SimTime at, TaskTag tag, EventQueue::Action action) {
  ExecCtx* c = current_exec_ctx();
  if (c != nullptr && c->sim == &sim() && c->lp != nullptr) {
    // A worker event scheduling for its own owner: plain per-owner push.
    Lp& lp = *static_cast<Lp*>(c->lp);
    const EventId id = lp.queue.push(at, std::move(action), tag);
    if (scale_hook() != nullptr) {
      lp.scale.on_schedule(id.value, c->now, at, tag,
                           auditor_hook() != nullptr ? lp.audit.current() : kNoShard);
    }
    if (mem_hook() != nullptr) lp.mem.on_schedule(id.value, c->now, at, tag);
    return id;
  }
  // Setup code or a control event: global work runs on the control queue at
  // a barrier, with every shard quiescent.
  return push_control(at, std::move(tag), std::move(action));
}

EventId ShardedBackend::schedule_for(ShardId owner, SimTime at, TaskTag tag,
                                     EventQueue::Action action) {
  ExecCtx* c = current_exec_ctx();
  const bool worker = c != nullptr && c->sim == &sim() && c->lp != nullptr;
  if (!worker) {
    // Setup or control context: the world is quiescent, push directly into
    // the owner's queue (deterministic — single-threaded by construction).
    if (owner == kNoShard || owner == kSharedShard) {
      return push_control(at, std::move(tag), std::move(action));
    }
    return push_direct(lp_for(owner), at, std::move(tag), std::move(action));
  }

  Lp& src = *static_cast<Lp*>(c->lp);
  if (owner == src.owner) {
    const EventId id = src.queue.push(at, std::move(action), tag);
    if (scale_hook() != nullptr) {
      src.scale.on_schedule(id.value, c->now, at, tag,
                            auditor_hook() != nullptr ? src.audit.current() : kNoShard);
    }
    if (mem_hook() != nullptr) src.mem.on_schedule(id.value, c->now, at, tag);
    return id;
  }

  // Cross-owner (or owner-less control) message from a worker event: park it
  // in the per-destination outbox; the destination drains, sorts by
  // (time, source owner, source sequence), and enqueues at the next barrier.
  // This path is taken even when both owners share a worker — the event
  // order a destination sees must be a function of the simulation, not of
  // the owner-to-worker assignment.
  std::size_t slot;
  if (owner == kNoShard || owner == kSharedShard) {
    slot = lps_.size();  // the control-queue inbox
  } else {
    const auto it = index_.find(owner);
    if (it == index_.end()) {
      throw std::logic_error(
          "ShardedBackend::schedule_for: unknown owner " + std::to_string(owner) +
          "; owners must be registered (Network::add_node) before run()");
    }
    slot = it->second;
  }
  const std::uint64_t seq = src.out_seq++;
  Msg m;
  m.at = at;
  m.src = src.owner;
  m.seq = seq;
  m.tag = tag;
  m.action = std::move(action);
  m.origin = auditor_hook() != nullptr ? src.audit.current() : kNoShard;
  m.sent = c->now;
  src.outbox[slot].push_back(std::move(m));
  // A synthetic, non-cancellable id: the destination assigns the real one
  // when it drains the inbox.
  return EventId{kRemoteId | (((static_cast<std::uint64_t>(src.owner) + 1) << 40) + seq + 1)};
}

bool ShardedBackend::cancel(EventId id) {
  if (id.value == 0 || (id.value & kRemoteId) != 0) return false;  // inbox-routed
  const std::uint64_t owner_p1 = id.value >> 40;
  ExecCtx* c = current_exec_ctx();
  const bool worker = c != nullptr && c->sim == &sim() && c->lp != nullptr;
  if (owner_p1 == 0) {
    if (worker) return false;  // the control queue belongs to the coordinator
    const bool ok = control_.cancel(id);
    if (ok && scale_hook() != nullptr) scale_hook()->on_cancel(id.value);
    if (ok && mem_hook() != nullptr) mem_hook()->on_cancel(id.value, base_now());
    return ok;
  }
  const auto it = index_.find(static_cast<ShardId>(owner_p1 - 1));
  if (it == index_.end()) return false;
  Lp& lp = *lps_[it->second];
  if (worker && c->lp != &lp) return false;  // cross-owner cancel would race
  const bool ok = lp.queue.cancel(id);
  if (ok && scale_hook() != nullptr) {
    if (worker) {
      lp.scale.on_cancel(id.value);
    } else {
      scale_hook()->on_cancel(id.value);
    }
  }
  if (ok && mem_hook() != nullptr) {
    // Route like the schedule did: worker pushes recorded in the lane,
    // setup/control pushes (push_direct) in the base profiler — so the
    // pending-event bookkeeping (lifetime + control-block free) matches.
    if (worker) {
      lp.mem.on_cancel(id.value, c->now);
    } else {
      mem_hook()->on_cancel(id.value, base_now());
    }
  }
  return ok;
}

std::size_t ShardedBackend::pending() const {
  std::size_t n = control_.size();
  for (const auto& lp : lps_) n += lp->queue.size();
  return n;
}

void ShardedBackend::on_hooks_changed() {
  const bool on = hooks_record_tags();
  control_.record_tags(on);
  for (auto& lp : lps_) lp->queue.record_tags(on);
}

bool ShardedBackend::step() {
  throw std::logic_error(
      "Simulator::step() is not supported by the sharded backend: there is no "
      "single global next event; use run() or the serial backend");
}

// ---------------------------------------------------------------- dispatch --

std::size_t ShardedBackend::process_lp(Lp& lp, SimTime window_end,
                                       ExecProfiler::WorkerLane* xl) {
  const bool audit = auditor_hook() != nullptr;
  const bool scale = scale_hook() != nullptr;
  const bool mem = mem_hook() != nullptr;
  const bool prof = profiler_hook() != nullptr;
  ExecCtx ctx;
  ctx.sim = &sim();
  ctx.lp = &lp;
  ctx.rng = &lp.rng;
  ctx.auditor = audit ? &lp.audit : nullptr;
  ctx.scale = scale ? &lp.scale : nullptr;
  ctx.mem = mem ? &lp.mem : nullptr;
  ctx.owner = lp.owner;
  CtxGuard guard(&ctx);
  std::size_t n = 0;
  while (!lp.queue.empty()) {
    if (lp.queue.next_time() >= window_end) break;
    auto ev = lp.queue.pop();
    lp.lp_now = ev.time;
    ctx.now = ev.time;
    if (audit) lp.audit.begin_event(ev.time, ev.tag);
    if (scale) lp.scale.begin_event(ev.id.value, ev.time, lp.queue.size(), ev.tag);
    if (mem) lp.mem.begin_event(ev.id.value, ev.time, lp.queue.size(), ev.tag);
    if (prof) {
      const double t0 = wall_now_seconds();
      ev.action();
      lp.prof.record(ev.tag, wall_now_seconds() - t0);
    } else {
      ev.action();
    }
    // Both profilers read the auditor's claim before end_event resets it.
    if (mem) lp.mem.end_event(audit ? lp.audit.current() : kNoShard);
    if (scale) lp.scale.end_event(audit ? lp.audit.current() : kNoShard);
    if (audit) lp.audit.end_event();
    ++lp.executed;
    ++n;
    if (stop_requested()) break;  // finish no more events; the window still barriers
  }
  if (xl != nullptr && n > 0) xl->owner_events(lp.owner, n);
  return n;
}

void ShardedBackend::drain_lp(std::size_t index, Lp& dst, ExecProfiler::WorkerLane* xl) {
  // Gather this destination's inbox: slot `index` of every source outbox.
  // Each slot has exactly one reader (this worker) after the barrier, so
  // the gather is race-free without locks.
  std::vector<Msg> msgs;
  for (auto& src : lps_) {
    auto& slot = src->outbox[index];
    if (slot.empty()) continue;
    if (xl != nullptr) xl->drained(src->owner, dst.owner, slot.size());
    msgs.insert(msgs.end(), std::make_move_iterator(slot.begin()),
                std::make_move_iterator(slot.end()));
    slot.clear();
  }
  if (msgs.empty()) return;
  // Canonical arrival order: (time, source owner, source sequence) — a pure
  // function of the simulation, independent of worker interleaving.
  std::sort(msgs.begin(), msgs.end(), [](const Msg& a, const Msg& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  const bool scale = scale_hook() != nullptr;
  const bool mem = mem_hook() != nullptr;
  for (auto& m : msgs) {
    if (m.at < dst.lp_now) {
      throw std::logic_error(
          "ShardedBackend: cross-shard lookahead violated — owner " +
          std::to_string(m.src) + " sent an event for owner " +
          std::to_string(dst.owner) + " at t=" + std::to_string(m.at.as_nanos()) +
          "ns, which already executed up to t=" +
          std::to_string(dst.lp_now.as_nanos()) +
          "ns; register the true minimum cross-owner latency "
          "(Simulator::register_lookahead) or schedule no earlier than one "
          "lookahead ahead");
    }
    const EventId id = dst.queue.push(m.at, std::move(m.action), m.tag);
    if (scale) dst.scale.on_schedule(id.value, m.sent, m.at, m.tag, m.origin);
    if (mem) dst.mem.on_schedule(id.value, m.sent, m.at, m.tag);
  }
}

void ShardedBackend::drain_control_inbox() {
  std::vector<Msg> msgs;
  ExecProfiler* const ex = exec_hook();
  const std::size_t slot_index = lps_.size();
  for (auto& src : lps_) {
    auto& slot = src->outbox[slot_index];
    if (slot.empty()) continue;
    if (ex != nullptr) ex->record_drained(src->owner, kNoShard, slot.size());
    msgs.insert(msgs.end(), std::make_move_iterator(slot.begin()),
                std::make_move_iterator(slot.end()));
    slot.clear();
  }
  if (msgs.empty()) return;
  std::sort(msgs.begin(), msgs.end(), [](const Msg& a, const Msg& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  const bool scale = scale_hook() != nullptr;
  MemProfiler* const mm = mem_hook();
  for (auto& m : msgs) {
    const EventId id = control_.push(m.at, std::move(m.action), m.tag);
    if (scale) scale_hook()->on_schedule(id.value, m.sent, m.at, m.tag, m.origin);
    if (mm != nullptr) mm->on_schedule(id.value, m.sent, m.at, m.tag);
  }
}

std::size_t ShardedBackend::run_control_at(SimTime tc) {
  // Control events see the merged world: fold every state lane first, in
  // ascending owner order, so e.g. a time-series sample reads the same
  // counter values at any shard count.
  ExecProfiler* const ex = exec_hook();
  const double xt0 = ex != nullptr ? wall_now_seconds() : 0;
  fold_state_lanes();
  const double xt1 = ex != nullptr ? wall_now_seconds() : 0;
  std::size_t n = 0;
  ShardAuditor* au = auditor_hook();
  ScaleProfiler* sc = scale_hook();
  MemProfiler* mm = mem_hook();
  LoopProfiler* pr = profiler_hook();
  ExecCtx ctx;
  ctx.sim = &sim();
  ctx.control = true;
  ctx.rng = &base_rng();
  ctx.auditor = au;
  ctx.scale = sc;
  ctx.mem = mm;
  CtxGuard guard(&ctx);
  while (!control_.empty() && control_.next_time() == tc && !stop_requested()) {
    auto ev = control_.pop();
    set_base_now(ev.time);
    ctx.now = ev.time;
    if (au != nullptr) {
      au->begin_event(ev.time, ev.tag);
      au->declare_control_event(ev.tag.kind != nullptr ? ev.tag.kind : "control");
    }
    if (sc != nullptr) sc->begin_event(ev.id.value, ev.time, control_.size(), ev.tag);
    if (mm != nullptr) mm->begin_event(ev.id.value, ev.time, control_.size(), ev.tag);
    if (pr != nullptr) {
      const double t0 = wall_now_seconds();
      ev.action();
      pr->record(ev.tag, wall_now_seconds() - t0);
    } else {
      ev.action();
    }
    if (mm != nullptr) mm->end_event(au != nullptr ? au->current() : kNoShard);
    if (sc != nullptr) sc->end_event(au != nullptr ? au->current() : kNoShard);
    if (au != nullptr) au->end_event();
    ++n;
  }
  if (ex != nullptr) ex->record_control(xt0, xt1 - xt0, wall_now_seconds() - xt1, n);
  return n;
}

// ------------------------------------------------------------------ lanes --

void* ShardedBackend::lane(void* base, LaneMakeFn make, LaneFoldFn fold,
                           LaneDestroyFn destroy) {
  ExecCtx* c = current_exec_ctx();
  Lp& lp = *static_cast<Lp*>(c->lp);
  auto it = lp.lanes.find(base);
  if (it == lp.lanes.end()) {
    LaneEntry e;
    e.obj = make(base, lp.owner);
    e.base = base;
    e.fold = fold;
    e.destroy = destroy;
    it = lp.lanes.emplace(base, e).first;
  }
  return it->second.obj;
}

void* shard_lane_raw(Simulator& sim, void* base, LaneMakeFn make, LaneFoldFn fold,
                     LaneDestroyFn destroy) {
  ExecCtx* c = current_exec_ctx();
  if (c == nullptr || c->sim != &sim || c->lp == nullptr) return nullptr;
  auto* backend = dynamic_cast<ShardedBackend*>(&sim.backend());
  if (backend == nullptr) return nullptr;
  return backend->lane(base, make, fold, destroy);
}

std::int64_t ShardedBackend::mem_live_bytes() const {
  std::int64_t total = ExecutionBackend::mem_live_bytes();
  if (mem_hook() != nullptr) {
    for (const auto& lp : lps_) total += lp->mem.live_bytes();
  }
  return total;
}

void ShardedBackend::fold_state_lanes() {
  // Ascending owner order (lps_ is sorted), so merged results never depend
  // on the shard count. Folds reset the lane, so they are incremental.
  for (auto& lp : lps_) {
    for (auto& [base, entry] : lp->lanes) entry.fold(entry.base, entry.obj);
  }
}

void ShardedBackend::merge_observability() {
  // Unlike state lanes, the profiling sinks merge once per run (their merge
  // semantics treat each source as a completed run), so this happens at the
  // end of run() only, again in ascending owner order.
  ShardAuditor* au = auditor_hook();
  ScaleProfiler* sc = scale_hook();
  MemProfiler* mm = mem_hook();
  LoopProfiler* pr = profiler_hook();
  for (auto& lp : lps_) {
    if (au != nullptr) {
      au->merge(lp->audit);
      lp->audit = ShardAuditor{};
      lp->audit.set_fail_fast(au->fail_fast());
    }
    if (sc != nullptr) {
      sc->merge(lp->scale);
      lp->scale = ScaleProfiler{};
    }
    if (mm != nullptr) {
      mm->merge(lp->mem);
      lp->mem = MemProfiler{};
    }
    if (pr != nullptr) {
      pr->merge(lp->prof);
      lp->prof.reset();
    }
  }
}

// -------------------------------------------------------------------- run --

std::size_t ShardedBackend::run(SimTime horizon) {
  clear_stop();
  running_ = true;
  const bool audit = auditor_hook() != nullptr;
  if (audit) {
    audit_fail_fast_ = auditor_hook()->fail_fast();
    for (auto& lp : lps_) lp->audit.set_fail_fast(audit_fail_fast_);
  }
  const std::size_t control_slot = lps_.size();
  for (auto& lp : lps_) {
    if (lp->outbox.size() != control_slot + 1) lp->outbox.resize(control_slot + 1);
    lp->error = nullptr;
  }

  const std::int64_t max_ns = SimTime::max().as_nanos();
  const std::int64_t la_ns =
      lookahead_ns_ < 0 ? max_ns : (lookahead_ns_ < 1 ? 1 : lookahead_ns_);

  std::size_t start_executed = 0;
  for (const auto& lp : lps_) start_executed += lp->executed;
  std::size_t control_n = 0;

  const std::size_t nw = std::min(shards_, lps_.size());
  std::atomic<bool> failed{false};
  std::barrier sync(static_cast<std::ptrdiff_t>(nw) + 1);
  done_ = false;

  // Execution profiler: workers time their slice of each window through a
  // private lane; the coordinator brackets windows/control. Detached runs
  // pay one null-pointer branch per window, never per event.
  ExecProfiler* const ex = exec_hook();
  const double run_wall = ex != nullptr ? ex->begin_run("sharded", nw, la_ns) : 0;
  const bool hb = heartbeat_active();
  if (hb) heartbeat_begin_run();

  {
    std::vector<std::jthread> workers;
    workers.reserve(nw);
    for (std::size_t w = 0; w < nw; ++w) {
      ExecProfiler::WorkerLane* const xl = ex != nullptr ? &ex->lane(w) : nullptr;
      workers.emplace_back([this, w, nw, &sync, &failed, xl, run_wall] {
        while (true) {
          // tA..t4 bracket this worker's window: barrier wait (includes the
          // coordinator's inter-window work), dispatch, B-wait, drain.
          const double tA = xl != nullptr ? wall_now_seconds() : 0;
          sync.arrive_and_wait();  // A: window published
          if (done_) return;
          const double t1 = xl != nullptr ? wall_now_seconds() : 0;
          std::uint64_t events = 0;
          for (std::size_t i = w; i < lps_.size(); i += nw) {
            try {
              events += process_lp(*lps_[i], window_end_, xl);
            } catch (...) {
              lps_[i]->error = std::current_exception();
              failed.store(true, std::memory_order_relaxed);
            }
          }
          const double t2 = xl != nullptr ? wall_now_seconds() : 0;
          sync.arrive_and_wait();  // B: all outboxes final for this window
          const double t3 = xl != nullptr ? wall_now_seconds() : 0;
          for (std::size_t i = w; i < lps_.size(); i += nw) {
            try {
              drain_lp(i, *lps_[i], xl);
            } catch (...) {
              lps_[i]->error = std::current_exception();
              failed.store(true, std::memory_order_relaxed);
            }
          }
          if (xl != nullptr) {
            const double t4 = wall_now_seconds();
            xl->window((t1 - tA) + (t3 - t2), t2 - t1, t4 - t3, t1 - run_wall,
                       t3 - run_wall, events);
          }
          sync.arrive_and_wait();  // C: all queues consistent again
        }
      });
    }

    std::exception_ptr coordinator_error;
    while (true) {
      if (stop_requested() || failed.load(std::memory_order_relaxed)) break;
      // Next control time and next shard-event time decide the round kind.
      const bool have_c = !control_.empty();
      const SimTime tc = have_c ? control_.next_time() : SimTime::max();
      bool have_q = false;
      SimTime tq = SimTime::max();
      for (const auto& lp : lps_) {
        if (lp->queue.empty()) continue;
        have_q = true;
        tq = std::min(tq, lp->queue.next_time());
      }
      if (!have_c && !have_q) break;
      const SimTime tmin = std::min(tc, tq);
      if (tmin > horizon) break;

      if (have_c && tc <= tq) {
        // Control events run before shard events at the same instant, with
        // every shard quiescent and all state lanes folded.
        try {
          control_n += run_control_at(tc);
        } catch (...) {
          coordinator_error = std::current_exception();
          break;
        }
        continue;
      }

      // One barrier window [tq, window_end_).
      const std::int64_t start_ns = tq.as_nanos();
      std::int64_t end_ns = (max_ns - start_ns > la_ns) ? start_ns + la_ns : max_ns;
      if (have_c) end_ns = std::min(end_ns, tc.as_nanos());
      if (horizon != SimTime::max()) end_ns = std::min(end_ns, horizon.as_nanos() + 1);
      window_end_ = SimTime::nanos(end_ns);
      if (ex != nullptr) ex->begin_window(start_ns, end_ns);
      sync.arrive_and_wait();  // A
      sync.arrive_and_wait();  // B
      sync.arrive_and_wait();  // C
      if (ex != nullptr) ex->end_window();
      drain_control_inbox();
      ++windows_;
      if (hb) {
        // Workers are parked at barrier A; barrier C ordered their writes,
        // so reading per-owner progress here is race-free. Every owner has
        // simulated through window_end_; the beat reports lifetime events
        // including this run's so far.
        std::size_t exec_now = 0;
        for (const auto& lp : lps_) exec_now += lp->executed;
        heartbeat_tick(window_end_,
                       sim().events_executed() + control_n + (exec_now - start_executed),
                       pending());
      }
    }

    done_ = true;
    sync.arrive_and_wait();  // release the workers; jthreads join on scope exit
    if (coordinator_error != nullptr) {
      running_ = false;
      fold_state_lanes();
      merge_observability();
      std::rethrow_exception(coordinator_error);
    }
  }

  const double fold_wall = ex != nullptr ? wall_now_seconds() : 0;
  fold_state_lanes();
  merge_observability();
  running_ = false;
  if (ex != nullptr) {
    ex->record_fold(wall_now_seconds() - fold_wall);
    // Error paths skip end_run: a failed run's partial record is discarded
    // by the next begin_run rather than reported as a complete run.
    if (!failed.load(std::memory_order_relaxed)) ex->end_run();
  }

  // Advance the global clock: the furthest any owner actually executed,
  // then the horizon if we drained before reaching it (serial semantics).
  SimTime end_now = base_now();
  for (const auto& lp : lps_) end_now = std::max(end_now, lp->lp_now);
  set_base_now(end_now);
  if (failed.load(std::memory_order_relaxed)) {
    for (const auto& lp : lps_) {
      if (lp->error != nullptr) std::rethrow_exception(lp->error);
    }
  }
  if (!stop_requested() && base_now() < horizon && horizon != SimTime::max()) {
    set_base_now(horizon);
  }

  std::size_t executed_now = 0;
  for (const auto& lp : lps_) executed_now += lp->executed;
  const std::size_t n = control_n + (executed_now - start_executed);
  add_executed(n);
  return n;
}

}  // namespace tussle::sim
