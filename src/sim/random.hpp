// Deterministic random source for simulations.
//
// Wraps a fixed PRNG (splitmix64-seeded xoshiro256**) so that results do not
// depend on the standard library's distribution implementations: all
// distributions here are implemented from first principles and therefore
// reproduce exactly across compilers.
#pragma once

#include <cstdint>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace tussle::sim {

/// xoshiro256** with convenience distributions. Not thread-safe; each
/// simulation owns one (or derives substreams via `split`).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Derives an independent-looking substream; used to give each actor its
  /// own RNG so adding an actor does not perturb the draws of others.
  Rng split() noexcept { return Rng(next_u64()); }

  /// Counter-based stream derivation: the `index`-th independent stream of
  /// `seed`, computed by splitmix64 mixing of (seed, index). Unlike
  /// `Rng(seed + index)`, adjacent indices land in unrelated states, and
  /// the result depends only on the two arguments — never on which thread
  /// asks or in what order. This is the seeding contract the sweep engine
  /// (core/sweep.hpp) builds its "bit-identical at any --jobs" guarantee on.
  static Rng stream(std::uint64_t seed, std::uint64_t index) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Bounded Pareto used for heavy-tailed flow sizes.
  double pareto(double shape, double scale) noexcept;

  /// Standard normal via Box–Muller (no cached spare: reproducibility over
  /// speed).
  double normal(double mean, double stddev) noexcept;

  /// Zipf-distributed rank in [1, n] with exponent s, by inverse-CDF over a
  /// precomputed table — callers with hot loops should cache a ZipfTable.
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Throws std::invalid_argument if all weights are zero/negative.
  std::size_t weighted_pick(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
  }

 private:
  std::uint64_t s_[4] = {};
};

/// Precomputed Zipf CDF for repeated draws over a fixed support.
class ZipfTable {
 public:
  ZipfTable(std::size_t n, double exponent);
  /// Rank in [1, n].
  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace tussle::sim
