// Measurement primitives used throughout the simulator.
//
// Scenarios publish results through these types; the bench harness formats
// them into the experiment tables. Everything is plain value types so a
// scenario can snapshot and diff collections of them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tussle::sim {

/// Monotone event counter.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept { value_ += n; }
  std::int64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Online mean/variance/min/max via Welford's algorithm: numerically stable
/// and O(1) per observation, so it can sit on per-packet paths.
class Summary {
 public:
  void observe(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< Sample variance (n-1 denominator).
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double total() const noexcept { return mean_ * static_cast<double>(n_); }
  void reset() noexcept { *this = Summary{}; }

  /// Pools two summaries (parallel-axis combination).
  Summary& merge(const Summary& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Sample-retaining histogram for quantiles. Retains every observation;
/// intended for scenario-scale (≤ millions) sample counts.
class Histogram {
 public:
  void observe(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const noexcept { return samples_.size(); }
  double quantile(double q) const;  ///< q in [0,1]; nearest-rank. 0 if empty.
  double mean() const noexcept;
  void reset() noexcept { samples_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Time-weighted average of a piecewise-constant signal (queue depth,
/// price level, share of compliant actors, ...). The averaging window
/// starts at the first set(): a signal that begins mid-run is averaged
/// over its own lifetime, not since t=0.
class TimeWeighted {
 public:
  void set(SimTime now, double value) noexcept;
  double average(SimTime now) const noexcept;
  double current() const noexcept { return value_; }

  /// Non-destructive mid-window read: the running average as of `now`,
  /// with `now` clamped to the last set() so a sampler replaying a tick
  /// that landed just before an update never sees a negative tail weight.
  double value_at(SimTime now) const noexcept {
    return average(now < last_ ? last_ : now);
  }

 private:
  SimTime first_{};
  SimTime last_{};
  double value_ = 0;
  double weighted_sum_ = 0;
  bool started_ = false;
};

/// A named bag of metrics a scenario exports. Keys are stable identifiers
/// ("qos.deployment_rate"); benches print them in declaration order.
class MetricSet {
 public:
  void put(const std::string& key, double value) { ordered_put(key, value); }
  double get(const std::string& key, double fallback = 0.0) const;
  bool contains(const std::string& key) const { return index_.count(key) != 0; }
  const std::vector<std::pair<std::string, double>>& items() const noexcept { return order_; }

 private:
  void ordered_put(const std::string& key, double value);
  // Maps each key to its slot in order_, which holds the authoritative
  // value; updates to hot keys are O(log n) instead of a linear re-scan.
  std::map<std::string, std::size_t> index_;
  std::vector<std::pair<std::string, double>> order_;
};

}  // namespace tussle::sim
