#include "sim/stats.hpp"

#include <cmath>

namespace tussle::sim {

void Summary::observe(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

Summary& Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return *this;
  if (n_ == 0) {
    *this = other;
    return *this;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
  return *this;
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Histogram::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void TimeWeighted::set(SimTime now, double value) noexcept {
  if (started_) {
    weighted_sum_ += value_ * (now - last_).as_seconds();
  } else {
    first_ = now;
  }
  last_ = now;
  value_ = value;
  started_ = true;
}

double TimeWeighted::average(SimTime now) const noexcept {
  if (!started_) return 0.0;
  const double span = (now - first_).as_seconds();
  if (span <= 0) return value_;
  const double tail = value_ * (now - last_).as_seconds();
  return (weighted_sum_ + tail) / span;
}

double MetricSet::get(const std::string& key, double fallback) const {
  auto it = index_.find(key);
  return it == index_.end() ? fallback : order_[it->second].second;
}

void MetricSet::ordered_put(const std::string& key, double value) {
  auto [it, inserted] = index_.try_emplace(key, order_.size());
  if (inserted) {
    order_.emplace_back(key, value);
  } else {
    order_[it->second].second = value;
  }
}

}  // namespace tussle::sim
