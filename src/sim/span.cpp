#include "sim/span.hpp"

#include <algorithm>

#include "sim/json.hpp"

namespace tussle::sim {

namespace {

/// Renders a TraceField value the same way the JSONL trace sink does, so
/// span reports and flat traces agree on formatting.
std::string field_text(const TraceField::Value& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return json_number(*d);
  return std::get<bool>(v) ? "true" : "false";
}

void field_json(JsonWriter& w, const TraceField& f) {
  w.key(f.key);
  if (const auto* s = std::get_if<std::string>(&f.value)) {
    w.value(std::string_view(*s));
  } else if (const auto* i = std::get_if<std::int64_t>(&f.value)) {
    w.value(*i);
  } else if (const auto* d = std::get_if<double>(&f.value)) {
    w.value(*d);
  } else {
    w.value(std::get<bool>(f.value));
  }
}

const TraceField* find_attr(const Span& s, std::string_view key) {
  for (const TraceField& f : s.attrs) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

/// Children of each span, in id (creation) order. Index 0 holds the roots.
std::vector<std::vector<SpanId>> child_index(const std::vector<Span>& spans) {
  std::vector<std::vector<SpanId>> kids(spans.size() + 1);
  for (const Span& s : spans) kids[s.parent].push_back(s.id);
  return kids;
}

/// Open spans export as zero-length at their start (a crash or an
/// un-delivered packet leaves its span open; clamping keeps output valid).
SimTime clamped_end(const Span& s) { return s.closed && s.end >= s.start ? s.end : s.start; }

}  // namespace

// ---------------------------------------------------------------- tracer ---

SpanId SpanTracer::begin(SimTime now, std::string_view component, std::string_view name,
                         std::initializer_list<TraceField> attrs) {
  return begin_under(current(), now, component, name, attrs);
}

SpanId SpanTracer::begin_under(SpanId parent, SimTime now, std::string_view component,
                               std::string_view name,
                               std::initializer_list<TraceField> attrs) {
  last_time_ = now;
  Span s;
  s.id = next_id();
  s.parent = parent;
  s.start = now;
  s.end = now;
  s.component = std::string(component);
  s.name = std::string(name);
  s.attrs.assign(attrs.begin(), attrs.end());
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void SpanTracer::end(SpanId id, SimTime now) {
  if (id == kNoSpan || id > spans_.size()) return;
  last_time_ = now;
  Span& s = span_of(id);
  s.end = now;
  s.closed = true;
}

SpanId SpanTracer::instant(SimTime now, std::string_view component, std::string_view name,
                           std::initializer_list<TraceField> attrs) {
  const SpanId id = begin(now, component, name, attrs);
  end(id, now);
  return id;
}

SpanId SpanTracer::instant(std::string_view component, std::string_view name,
                           std::initializer_list<TraceField> attrs) {
  return instant(last_time_, component, name, attrs);
}

void SpanTracer::annotate(SpanId id, TraceField field) {
  if (id == kNoSpan || id > spans_.size()) return;
  span_of(id).attrs.push_back(std::move(field));
}

SpanId SpanTracer::flow_span(SimTime now, std::uint64_t flow) {
  auto it = flow_spans_.find(flow);
  if (it != flow_spans_.end()) return it->second;
  const SpanId id =
      begin_under(kNoSpan, now, "net.flow", "flow", {{"flow", flow}});
  flow_spans_.emplace(flow, id);
  return id;
}

SpanId SpanTracer::packet_span(SimTime now, std::uint64_t uid, std::uint64_t flow) {
  // Flow 0 is "no flow": such packets root their own causal tree.
  const SpanId parent = flow != 0 ? flow_span(now, flow) : kNoSpan;
  const SpanId id =
      begin_under(parent, now, "net.packet", "packet", {{"uid", uid}, {"flow", flow}});
  packet_spans_[uid] = id;
  return id;
}

SpanId SpanTracer::find_packet(std::uint64_t uid) const noexcept {
  auto it = packet_spans_.find(uid);
  return it == packet_spans_.end() ? kNoSpan : it->second;
}

void SpanTracer::end_packet(std::uint64_t uid, SimTime now) {
  auto it = packet_spans_.find(uid);
  if (it == packet_spans_.end()) return;
  const SpanId id = it->second;
  packet_spans_.erase(it);
  end(id, now);
  // Stretch the flow span to cover its longest-lived packet; the flow span
  // stays open (more packets may come) and is clamped on export if nothing
  // closes it.
  const SpanId flow = span_of(id).parent;
  if (flow != kNoSpan) {
    Span& fs = span_of(flow);
    fs.end = std::max(fs.end, now);
    fs.closed = true;
  }
}

void SpanTracer::merge(const SpanTracer& other) {
  const SpanId offset = static_cast<SpanId>(spans_.size());
  spans_.reserve(spans_.size() + other.spans_.size());
  for (const Span& s : other.spans_) {
    Span copy = s;
    copy.id += offset;
    if (copy.parent != kNoSpan) copy.parent += offset;
    spans_.push_back(std::move(copy));
  }
  last_time_ = std::max(last_time_, other.last_time_);
  // The uid/flow registries are per-run working state, not merged: a merged
  // tracer is an archive for export, never a live recording target.
}

void SpanTracer::clear() {
  spans_.clear();
  stack_.clear();
  flow_spans_.clear();
  packet_spans_.clear();
  last_time_ = SimTime::zero();
}

// -------------------------------------------------------- chrome exporter --

std::string to_chrome_trace(const std::vector<Span>& spans) {
  const auto kids = child_index(spans);

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // One track (pid 1, tid = root span id) per causal tree; a metadata event
  // names it. Slices are emitted in preorder so Perfetto's containment
  // nesting matches the parent links carried in args.
  for (SpanId root : kids[kNoSpan]) {
    const Span& rs = spans[root - 1];
    std::string label = rs.name;
    if (const TraceField* f = find_attr(rs, "flow"); f != nullptr && rs.name == "flow") {
      label += " " + field_text(f->value);
    } else {
      label = rs.component + " " + rs.name + " #" + std::to_string(root);
    }
    w.begin_object();
    w.key("ph").value("M");
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(static_cast<std::int64_t>(root));
    w.key("name").value("thread_name");
    w.key("args").begin_object();
    w.key("name").value(label);
    w.end_object();
    w.end_object();

    std::vector<SpanId> stack{root};
    while (!stack.empty()) {
      const SpanId id = stack.back();
      stack.pop_back();
      const Span& s = spans[id - 1];
      w.begin_object();
      w.key("ph").value("X");
      w.key("pid").value(std::int64_t{1});
      w.key("tid").value(static_cast<std::int64_t>(root));
      w.key("ts").value(static_cast<double>(s.start.as_nanos()) / 1e3);
      w.key("dur").value(static_cast<double>((clamped_end(s) - s.start).as_nanos()) / 1e3);
      w.key("name").value(s.name);
      w.key("cat").value(s.component);
      w.key("args").begin_object();
      w.key("span").value(static_cast<std::int64_t>(s.id));
      w.key("parent").value(static_cast<std::int64_t>(s.parent));
      for (const TraceField& f : s.attrs) field_json(w, f);
      w.end_object();
      w.end_object();
      // Push children in reverse so they pop in creation order.
      const auto& c = kids[id];
      for (auto it = c.rbegin(); it != c.rend(); ++it) stack.push_back(*it);
    }
  }

  w.end_array();
  w.end_object();
  return w.str();
}

// ------------------------------------------------------- span-tree report --

namespace {

void tree_line(std::string& out, const std::vector<Span>& spans,
               const std::vector<std::vector<SpanId>>& kids, SpanId id, int depth) {
  const Span& s = spans[id - 1];
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += "[" + s.component + "] " + s.name;
  out += " @" + s.start.to_string();
  const SimTime dur = clamped_end(s) - s.start;
  if (dur > SimTime::zero()) out += " +" + dur.to_string();
  for (const TraceField& f : s.attrs) {
    out += " " + f.key + "=" + field_text(f.value);
  }
  out += "\n";
  for (SpanId c : kids[id]) tree_line(out, spans, kids, c, depth + 1);
}

}  // namespace

std::string span_tree_report(const std::vector<Span>& spans) {
  const auto kids = child_index(spans);
  std::string out;
  for (SpanId root : kids[kNoSpan]) tree_line(out, spans, kids, root, 0);
  return out;
}

// ----------------------------------------------------------- the explainer --

namespace {

struct TransferLine {
  std::string from, to, memo;
  double amount = 0;
  std::string caused_by;  ///< "component name" of the nearest decision ancestor
};

void collect_explain(const std::vector<Span>& spans,
                     const std::vector<std::vector<SpanId>>& kids, SpanId id, int depth,
                     std::string& narrative, std::vector<TransferLine>& transfers) {
  const Span& s = spans[id - 1];
  const bool is_transfer = s.component == "econ.ledger" && s.name == "transfer";
  if (is_transfer) {
    TransferLine t;
    if (const auto* f = find_attr(s, "from")) t.from = field_text(f->value);
    if (const auto* f = find_attr(s, "to")) t.to = field_text(f->value);
    if (const auto* f = find_attr(s, "memo")) t.memo = field_text(f->value);
    if (const auto* f = find_attr(s, "amount")) {
      if (const auto* d = std::get_if<double>(&f->value)) t.amount = *d;
    }
    if (s.parent != kNoSpan) {
      const Span& p = spans[s.parent - 1];
      t.caused_by = p.component + " " + p.name;
    }
    transfers.push_back(std::move(t));
  }
  narrative.append(static_cast<std::size_t>(depth) * 2, ' ');
  narrative += s.name;
  if (s.name != s.component) narrative += " (" + s.component + ")";
  narrative += " @" + s.start.to_string();
  for (const TraceField& f : s.attrs) {
    if (f.key == "flow") continue;  // the header already names the flow
    narrative += " " + f.key + "=" + field_text(f.value);
  }
  narrative += "\n";
  for (SpanId c : kids[id]) {
    collect_explain(spans, kids, c, depth + 1, narrative, transfers);
  }
}

}  // namespace

std::string explain_flow(const std::vector<Span>& spans, std::uint64_t flow) {
  const auto kids = child_index(spans);
  std::vector<SpanId> flow_roots;
  for (const Span& s : spans) {
    if (s.name != "flow" || s.component != "net.flow") continue;
    const TraceField* f = find_attr(s, "flow");
    if (f == nullptr) continue;
    const auto* v = std::get_if<std::int64_t>(&f->value);
    if (v != nullptr && static_cast<std::uint64_t>(*v) == flow) flow_roots.push_back(s.id);
  }
  if (flow_roots.empty()) {
    return "no spans recorded for flow " + std::to_string(flow) + "\n";
  }

  std::string out = "why flow " + std::to_string(flow) + ":\n";
  std::vector<TransferLine> transfers;
  for (SpanId root : flow_roots) {
    // Count outcomes: packets, and whether each one's subtree ever reached
    // a deliver span (delivery nests under the final hop).
    std::size_t packets = 0, delivered = 0, dropped = 0;
    for (SpanId pid : kids[root]) {
      const Span& p = spans[pid - 1];
      if (p.name != "packet") continue;
      ++packets;
      std::vector<SpanId> stack{pid};
      bool got_there = false;
      while (!stack.empty() && !got_there) {
        const SpanId id = stack.back();
        stack.pop_back();
        if (spans[id - 1].name == "deliver") got_there = true;
        for (SpanId c : kids[id]) stack.push_back(c);
      }
      if (got_there) ++delivered;
    }
    // A packet with no deliver span anywhere below it was dropped (or is
    // still in flight at run end, which for an explainer is the same news).
    dropped = packets - std::min(packets, delivered);
    out += "  " + std::to_string(packets) + " packet(s): " + std::to_string(delivered) +
           " delivered, " + std::to_string(dropped) + " dropped or unterminated\n\n";

    std::string narrative;
    collect_explain(spans, kids, root, 1, narrative, transfers);
    out += narrative;
  }

  out += "\nvalue flow caused by this flow:\n";
  if (transfers.empty()) {
    out += "  (none — nobody was compensated)\n";
  } else {
    std::map<std::string, double> by_recipient;
    for (const TransferLine& t : transfers) {
      out += "  " + t.from + " -> " + t.to + "  " + json_number(t.amount);
      if (!t.memo.empty()) out += "  (" + t.memo + ")";
      if (!t.caused_by.empty()) out += "  caused by: " + t.caused_by;
      out += "\n";
      by_recipient[t.to] += t.amount;
    }
    out += "  net compensation by recipient:\n";
    for (const auto& [to, amount] : by_recipient) {
      out += "    " + to + "  " + json_number(amount) + "\n";
    }
  }
  return out;
}

}  // namespace tussle::sim
