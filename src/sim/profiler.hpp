// Event-loop profiler and heartbeat support (in the style of Shadow's
// host-tracker): where does simulated work actually spend wall-clock time?
//
// Call sites label their scheduled events with a TaskTag (two static
// string literals: component and event kind). When a profiler is attached
// to a Simulator, every dispatched event is attributed to its tag with a
// count and wall-clock duration; hotspot reports rank (component, kind)
// cells by time. Profiling is off by default: an un-attached simulator
// pays one branch per event, and wall-clock time is only ever *reported*,
// never fed back into simulation decisions, so attaching the profiler
// cannot perturb bit-exact replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tussle::sim {

/// Monotonic process time in seconds. Observability only — results must
/// never influence event ordering or any simulated outcome.
double wall_now_seconds() noexcept;

/// Label for a scheduled event. Both pointers must be string literals (or
/// otherwise outlive the simulation); the default tag is "(untagged)".
struct TaskTag {
  const char* component = nullptr;
  const char* kind = nullptr;
};

class LoopProfiler {
 public:
  struct Hotspot {
    std::string component;
    std::string kind;
    std::uint64_t events = 0;
    double wall_seconds = 0;
    double share = 0;  ///< fraction of total profiled wall time
  };

  /// Attributes one dispatched event. Called by the Simulator dispatch
  /// loop; the (component, kind) cell is found by scanning a small vector
  /// of previously-seen tags — tag sets are tiny (tens), and pointer
  /// comparison keeps the hot path allocation-free.
  void record(const TaskTag& tag, double wall_seconds) noexcept;

  std::uint64_t total_events() const noexcept { return total_events_; }
  double total_wall_seconds() const noexcept { return total_wall_; }

  /// Top `k` cells by wall time (ties broken by name, so output is stable).
  std::vector<Hotspot> hotspots(std::size_t k = 10) const;

  /// Renders `hotspots(k)` as a JSON array of objects.
  std::string hotspots_json(std::size_t k = 10) const;

  /// Fixed-width human report, one line per hotspot.
  std::string report(std::size_t k = 10) const;

  /// Folds another profiler's cells into this one (the sweep engine
  /// profiles each run separately and merges in run-index order). Tags are
  /// string literals, so cells match by pointer first, then by content.
  void merge(const LoopProfiler& other);

  void reset() noexcept;

 private:
  struct Cell {
    const char* component = nullptr;
    const char* kind = nullptr;
    std::uint64_t events = 0;
    double wall = 0;
  };

  std::vector<Cell> cells_;
  std::uint64_t total_events_ = 0;
  double total_wall_ = 0;
};

}  // namespace tussle::sim
