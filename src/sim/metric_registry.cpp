#include "sim/metric_registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "sim/json.hpp"

namespace tussle::sim {

// ------------------------------------------------------- MetricSnapshot --

MetricSnapshot::MetricSnapshot(std::vector<Entry> entries) : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
}

double MetricSnapshot::get(const std::string& name, double fallback) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, const std::string& n) { return e.first < n; });
  if (it == entries_.end() || it->first != name) return fallback;
  return it->second;
}

bool MetricSnapshot::contains(const std::string& name) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, const std::string& n) { return e.first < n; });
  return it != entries_.end() && it->first == name;
}

MetricSnapshot MetricSnapshot::diff(const MetricSnapshot& before, const MetricSnapshot& after) {
  std::vector<Entry> out;
  auto a = after.entries_.begin();
  auto b = before.entries_.begin();
  // Both sides are sorted: a single merge pass pairs names up.
  while (a != after.entries_.end() || b != before.entries_.end()) {
    if (b == before.entries_.end() || (a != after.entries_.end() && a->first < b->first)) {
      out.emplace_back(a->first, a->second);
      ++a;
    } else if (a == after.entries_.end() || b->first < a->first) {
      out.emplace_back(b->first, -b->second);
      ++b;
    } else {
      out.emplace_back(a->first, a->second - b->second);
      ++a;
      ++b;
    }
  }
  return MetricSnapshot(std::move(out));
}

std::string MetricSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  for (const Entry& e : entries_) {
    w.key(e.first).value(e.second);
  }
  w.end_object();
  return w.str();
}

MetricSnapshot MetricSnapshot::from_json(const std::string& json) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < json.size() && std::isspace(static_cast<unsigned char>(json[i])) != 0) ++i;
  };
  auto fail = [&](const char* why) -> void {
    throw std::invalid_argument(std::string("MetricSnapshot::from_json: ") + why);
  };
  auto expect = [&](char c) {
    skip_ws();
    if (i >= json.size() || json[i] != c) fail("unexpected token");
    ++i;
  };

  auto parse_string = [&]() -> std::string {
    expect('"');
    std::string out;
    while (i < json.size() && json[i] != '"') {
      char c = json[i++];
      if (c == '\\') {
        if (i >= json.size()) fail("truncated escape");
        char e = json[i++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (i + 4 > json.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = json[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u digit");
            }
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            out.push_back(static_cast<char>(code));
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    expect('"');
    return out;
  };

  std::vector<Entry> entries;
  expect('{');
  skip_ws();
  if (i < json.size() && json[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws();
      std::string name = parse_string();
      expect(':');
      skip_ws();
      const char* start = json.c_str() + i;
      char* end = nullptr;
      double v = std::strtod(start, &end);
      if (end == start) fail("expected number");
      i += static_cast<std::size_t>(end - start);
      entries.emplace_back(std::move(name), v);
      skip_ws();
      if (i < json.size() && json[i] == ',') {
        ++i;
        continue;
      }
      expect('}');
      break;
    }
  }
  skip_ws();
  if (i != json.size()) fail("trailing characters");
  return MetricSnapshot(std::move(entries));
}

// ------------------------------------------------------- MetricRegistry --

template <typename T>
T& MetricRegistry::get_or_create(const std::string& name, const char* kind_name) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(name, std::make_unique<Instrument>(T{})).first;
  } else if (!std::holds_alternative<T>(*it->second)) {
    throw std::logic_error("metric '" + name + "' already registered as " +
                           kind_of(*it->second) + ", requested as " + kind_name);
  }
  return std::get<T>(*it->second);
}

const char* MetricRegistry::kind_of(const Instrument& ins) noexcept {
  switch (ins.index()) {
    case 0: return "counter";
    case 1: return "summary";
    case 2: return "histogram";
    case 3: return "time_weighted";
    default: return "gauge";
  }
}

const char* MetricRegistry::kind(const std::string& name) const noexcept {
  auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : kind_of(*it->second);
}

double MetricRegistry::gauge_value(const std::string& name, double fallback) const noexcept {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) return fallback;
  const auto* v = std::get_if<double>(it->second.get());
  return v == nullptr ? fallback : *v;
}

Counter& MetricRegistry::counter(const std::string& name) {
  return get_or_create<Counter>(name, "counter");
}

Summary& MetricRegistry::summary(const std::string& name) {
  return get_or_create<Summary>(name, "summary");
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  return get_or_create<Histogram>(name, "histogram");
}

TimeWeighted& MetricRegistry::time_weighted(const std::string& name) {
  return get_or_create<TimeWeighted>(name, "time_weighted");
}

void MetricRegistry::gauge(const std::string& name, double value) {
  get_or_create<double>(name, "gauge") = value;
}

MetricSnapshot MetricRegistry::snapshot(SimTime now) const {
  std::vector<MetricSnapshot::Entry> out;
  out.reserve(instruments_.size() * 2);
  for (const auto& [name, ins] : instruments_) {
    if (const auto* c = std::get_if<Counter>(ins.get())) {
      out.emplace_back(name, static_cast<double>(c->value()));
    } else if (const auto* s = std::get_if<Summary>(ins.get())) {
      out.emplace_back(name + ".count", static_cast<double>(s->count()));
      out.emplace_back(name + ".mean", s->mean());
      out.emplace_back(name + ".min", s->min());
      out.emplace_back(name + ".max", s->max());
      out.emplace_back(name + ".stddev", s->stddev());
    } else if (const auto* h = std::get_if<Histogram>(ins.get())) {
      out.emplace_back(name + ".count", static_cast<double>(h->count()));
      out.emplace_back(name + ".mean", h->mean());
      out.emplace_back(name + ".p50", h->quantile(0.50));
      out.emplace_back(name + ".p90", h->quantile(0.90));
      out.emplace_back(name + ".p99", h->quantile(0.99));
    } else if (const auto* tw = std::get_if<TimeWeighted>(ins.get())) {
      out.emplace_back(name + ".avg", tw->average(now));
      out.emplace_back(name + ".current", tw->current());
    } else {
      out.emplace_back(name, std::get<double>(*ins));
    }
  }
  return MetricSnapshot(std::move(out));
}

}  // namespace tussle::sim
