// Pending-event set for the discrete-event engine.
//
// A binary heap keyed on (time, sequence). The sequence number breaks ties
// in insertion order, so two events scheduled for the same instant fire in
// the order they were scheduled — a property several protocol models (and
// the determinism tests) depend on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "sim/profiler.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

/// Opaque handle identifying a scheduled event, usable to cancel it.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue() = default;

  // The queue owns callbacks that may capture anything; copying the queue
  // would duplicate scheduled side effects, so it is move-only.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;

  /// Schedules `action` to fire at absolute time `at`. `tag` labels the
  /// event for the loop profiler; it is retained only while
  /// record_tags(true) is in effect, so the untagged common case stores
  /// nothing per event.
  EventId push(SimTime at, Action action, TaskTag tag = {});

  /// Offsets every EventId this queue hands out by `base` (ids become
  /// base + seq + 1). The sharded execution backend runs one queue per
  /// owner and needs ids from different queues to stay distinguishable so
  /// cancel() can be routed; the default base of 0 keeps serial ids
  /// exactly as before. Must be set before the first push.
  void set_id_base(std::uint64_t base) noexcept { id_base_ = base; }
  std::uint64_t id_base() const noexcept { return id_base_; }

  /// Turns tag retention on or off (off by default). The Simulator enables
  /// it while a profiler is attached; keeping tags out of the heap entries
  /// keeps sift moves cheap for uninstrumented runs.
  void record_tags(bool on) noexcept;

  /// Cancels a pending event. Returns false if the event already fired,
  /// was cancelled before, or never existed. Cancellation is O(1); the
  /// tombstoned entry is discarded lazily when it reaches the heap top.
  bool cancel(EventId id);

  bool empty() const noexcept;
  std::size_t size() const noexcept { return heap_.size() - cancelled_.size(); }

  /// Earliest pending event time. Precondition: !empty().
  SimTime next_time() const;

  /// Removes and returns the earliest event's action, time, tag, and id.
  /// Precondition: !empty().
  struct Popped {
    SimTime time;
    Action action;
    TaskTag tag;
    EventId id;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq = 0;
    EventId id;
    Action action;
  };
  // Min-heap comparison (std::push_heap builds a max-heap, so invert).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_top() const;

  // mutable: tombstoned entries are discarded lazily, so logically-const
  // observers (next_time) compact the heap as a side effect.
  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  // Tags live out-of-line, keyed by sequence number, and only while a
  // profiler wants them; entries are erased as events fire or tombstones
  // are discarded.
  mutable std::map<std::uint64_t, TaskTag> tags_;
  bool record_tags_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t id_base_ = 0;
};

}  // namespace tussle::sim
