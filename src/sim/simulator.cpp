#include "sim/simulator.hpp"

#include <memory>
#include <stdexcept>

namespace tussle::sim {

EventId Simulator::schedule_at(SimTime at, EventQueue::Action action) {
  if (at < now_) throw std::invalid_argument("schedule_at: time is in the past");
  return queue_.push(at, std::move(action));
}

void Simulator::schedule_every(Duration period, std::function<bool()> action) {
  // Each firing builds the next closure afresh around the shared action, so
  // nothing captures an owning pointer to itself (a self-referential
  // shared_ptr cycle would never be freed once the chain stops).
  auto shared = std::make_shared<std::function<bool()>>(std::move(action));
  schedule(period, [this, period, shared] { run_repeating(period, shared); });
}

void Simulator::run_repeating(Duration period,
                              const std::shared_ptr<std::function<bool()>>& action) {
  if ((*action)()) {
    schedule(period, [this, period, action] { run_repeating(period, action); });
  }
}

std::size_t Simulator::run(SimTime horizon) {
  stopping_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopping_) {
    if (queue_.next_time() > horizon) break;
    auto [time, action] = queue_.pop();
    now_ = time;
    action();
    ++n;
    ++executed_;
  }
  if (!stopping_ && now_ < horizon && horizon != SimTime::max()) {
    now_ = horizon;  // simulated until the requested horizon
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, action] = queue_.pop();
  now_ = time;
  action();
  ++executed_;
  return true;
}

}  // namespace tussle::sim
