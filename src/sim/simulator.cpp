#include "sim/simulator.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "sim/exec_profile.hpp"
#include "sim/mem_profile.hpp"
#include "sim/scale_profile.hpp"
#include "sim/shard_audit.hpp"

namespace tussle::sim {

// ------------------------------------------------------- backend plumbing --

namespace detail {
thread_local ExecCtx* t_exec_ctx = nullptr;
void set_exec_ctx(ExecCtx* ctx) noexcept { t_exec_ctx = ctx; }
}  // namespace detail

EventQueue& ExecutionBackend::base_queue() noexcept { return sim_->queue_; }
SimTime ExecutionBackend::base_now() const noexcept { return sim_->now_; }
void ExecutionBackend::set_base_now(SimTime t) noexcept { sim_->now_ = t; }
std::uint64_t ExecutionBackend::sim_seed() const noexcept { return sim_->seed_; }
Rng& ExecutionBackend::base_rng() noexcept { return sim_->rng_; }
bool ExecutionBackend::stop_requested() const noexcept {
  return sim_->stopping_.load(std::memory_order_relaxed);
}
void ExecutionBackend::clear_stop() noexcept {
  sim_->stopping_.store(false, std::memory_order_relaxed);
}
void ExecutionBackend::add_executed(std::size_t n) noexcept { sim_->executed_ += n; }
bool ExecutionBackend::hooks_record_tags() const noexcept {
  return sim_->profiler_ != nullptr || sim_->auditor_ != nullptr ||
         sim_->scale_ != nullptr || sim_->mem_ != nullptr;
}
LoopProfiler* ExecutionBackend::profiler_hook() const noexcept { return sim_->profiler_; }
ShardAuditor* ExecutionBackend::auditor_hook() const noexcept { return sim_->auditor_; }
ScaleProfiler* ExecutionBackend::scale_hook() const noexcept { return sim_->scale_; }
ExecProfiler* ExecutionBackend::exec_hook() const noexcept { return sim_->exec_; }
MemProfiler* ExecutionBackend::mem_hook() const noexcept { return sim_->mem_; }

std::int64_t ExecutionBackend::mem_live_bytes() const {
  return sim_->mem_ != nullptr ? sim_->mem_->live_bytes() : 0;
}

bool ExecutionBackend::heartbeat_active() const noexcept {
  return static_cast<bool>(sim_->heartbeat_);
}

void ExecutionBackend::heartbeat_begin_run() noexcept {
  sim_->run_wall_start_ = wall_now_seconds();
  sim_->last_beat_wall_ = sim_->run_wall_start_;
  sim_->last_beat_events_ = sim_->executed_;
  sim_->next_heartbeat_ = sim_->now_ + sim_->heartbeat_period_;
}

void ExecutionBackend::heartbeat_tick(SimTime sim_now, std::size_t executed_total,
                                      std::size_t queue_depth) {
  if (!sim_->heartbeat_ || sim_now < sim_->next_heartbeat_) return;
  sim_->emit_heartbeat(sim_now, executed_total, queue_depth);
}

EventId SerialBackend::schedule(SimTime at, TaskTag tag, EventQueue::Action action) {
  return sim().serial_schedule(at, tag, std::move(action));
}

EventId SerialBackend::schedule_for(ShardId owner, SimTime at, TaskTag tag,
                                    EventQueue::Action action) {
  (void)owner;  // one global order: owner routing is a sharded-backend concern
  return sim().serial_schedule(at, tag, std::move(action));
}

bool SerialBackend::cancel(EventId id) { return sim().serial_cancel(id); }
std::size_t SerialBackend::pending() const { return sim().queue_.size(); }
std::size_t SerialBackend::run(SimTime horizon) { return sim().serial_run(horizon); }
bool SerialBackend::step() { return sim().serial_step(); }

void Simulator::set_backend(std::unique_ptr<ExecutionBackend> backend) {
  if (backend == nullptr) {
    throw std::invalid_argument("Simulator::set_backend: null backend");
  }
  if (backend_->pending() != 0) {
    throw std::logic_error(
        "Simulator::set_backend: events already scheduled; install the backend "
        "before building the scenario");
  }
  backend_ = std::move(backend);
  backend_->on_hooks_changed();
}

// ------------------------------------------------------ scheduling surface --

EventId Simulator::schedule_at(SimTime at, EventQueue::Action action) {
  if (at < now()) throw std::invalid_argument("schedule_at: time is in the past");
  return backend_->schedule(at, TaskTag{}, std::move(action));
}

EventId Simulator::schedule_at(SimTime at, TaskTag tag, EventQueue::Action action) {
  if (at < now()) throw std::invalid_argument("schedule_at: time is in the past");
  return backend_->schedule(at, tag, std::move(action));
}

EventId Simulator::serial_schedule(SimTime at, TaskTag tag, EventQueue::Action action) {
  const EventId id = queue_.push(at, std::move(action), tag);
  if (scale_ != nullptr) note_schedule(id, at, tag);
  if (mem_ != nullptr) mem_note_schedule(id, at, tag);
  return id;
}

bool Simulator::serial_cancel(EventId id) {
  const bool cancelled = queue_.cancel(id);
  if (cancelled && scale_ != nullptr) scale_->on_cancel(id.value);
  if (cancelled && mem_ != nullptr) mem_note_cancel(id);
  return cancelled;
}

void Simulator::note_schedule(EventId id, SimTime at, const TaskTag& tag) {
  // The scheduling event's claimed shard is the traffic-matrix origin;
  // during setup (or with no auditor) there is none.
  const ShardId origin = auditor_ != nullptr ? auditor_->current() : kNoShard;
  scale_->on_schedule(id.value, now_, at, tag, origin);
}

void Simulator::scale_begin(const EventQueue::Popped& ev) {
  scale_->begin_event(ev.id.value, now_, queue_.size(), ev.tag);
}

void Simulator::scale_end() {
  scale_->end_event(auditor_ != nullptr ? auditor_->current() : kNoShard);
}

void Simulator::mem_note_schedule(EventId id, SimTime at, const TaskTag& tag) {
  mem_->on_schedule(id.value, now_, at, tag);
}

void Simulator::mem_note_cancel(EventId id) { mem_->on_cancel(id.value, now_); }

void Simulator::mem_begin(const EventQueue::Popped& ev) {
  mem_->begin_event(ev.id.value, now_, queue_.size(), ev.tag);
}

void Simulator::mem_end() {
  mem_->end_event(auditor_ != nullptr ? auditor_->current() : kNoShard);
}

void Simulator::schedule_every(Duration period, std::function<bool()> action) {
  schedule_every(period, TaskTag{}, std::move(action));
}

void Simulator::schedule_every(Duration period, TaskTag tag, std::function<bool()> action) {
  // Each firing builds the next closure afresh around the shared action, so
  // nothing captures an owning pointer to itself (a self-referential
  // shared_ptr cycle would never be freed once the chain stops).
  auto shared = std::make_shared<std::function<bool()>>(std::move(action));
  schedule(period, tag, [this, period, tag, shared] { run_repeating(period, tag, shared); });
}

void Simulator::run_repeating(Duration period, TaskTag tag,
                              const std::shared_ptr<std::function<bool()>>& action) {
  if ((*action)()) {
    schedule(period, tag, [this, period, tag, action] { run_repeating(period, tag, action); });
  }
}

void Simulator::set_heartbeat(Duration period, HeartbeatFn fn) {
  heartbeat_period_ = period;
  if (period.as_nanos() <= 0) {
    heartbeat_ = nullptr;
  } else if (fn) {
    heartbeat_ = std::move(fn);
  } else {
    heartbeat_ = [](const Heartbeat& hb) {
      std::fprintf(stderr,
                   "heartbeat: sim-time %s, %zu events (%.0f/s), queue depth %zu, "
                   "wall %.2fs\n",
                   hb.sim_now.to_string().c_str(), hb.events_executed, hb.events_per_sec,
                   hb.queue_depth, hb.wall_seconds);
    };
  }
  next_heartbeat_ = now_ + heartbeat_period_;
  instrumented_ = profiler_ != nullptr || static_cast<bool>(heartbeat_);
}

void Simulator::dispatch_instrumented(EventQueue::Popped& ev) {
  if (profiler_ != nullptr) {
    const double t0 = wall_now_seconds();
    ev.action();
    profiler_->record(ev.tag, wall_now_seconds() - t0);
  } else {
    ev.action();
  }
  if (heartbeat_ && now_ >= next_heartbeat_) maybe_heartbeat();
}

void Simulator::maybe_heartbeat() {
  emit_heartbeat(now_, executed_ + 1 /* the event being dispatched */, queue_.size());
}

void Simulator::emit_heartbeat(SimTime sim_now, std::size_t executed_total,
                               std::size_t queue_depth) {
  const double wall = wall_now_seconds();
  Heartbeat hb;
  hb.sim_now = sim_now;
  hb.events_executed = executed_total;
  hb.queue_depth = queue_depth;
  hb.wall_seconds = wall - run_wall_start_;
  const double dt = wall - last_beat_wall_;
  hb.events_per_sec =
      dt > 0 ? static_cast<double>(executed_total - last_beat_events_) / dt : 0;
  heartbeat_(hb);
  last_beat_wall_ = wall;
  last_beat_events_ = executed_total;
  // Catch up past idle stretches so a long event gap emits one beat, not a
  // burst of back-dated ones.
  while (next_heartbeat_ <= sim_now) next_heartbeat_ += heartbeat_period_;
}

std::size_t Simulator::serial_run(SimTime horizon) {
  stopping_.store(false, std::memory_order_relaxed);
  const std::int64_t exec_start_ns = now_.as_nanos();
  const double exec_wall = exec_ != nullptr ? wall_now_seconds() : 0;
  if (instrumented_) {
    run_wall_start_ = wall_now_seconds();
    last_beat_wall_ = run_wall_start_;
    last_beat_events_ = executed_;
    if (heartbeat_) next_heartbeat_ = now_ + heartbeat_period_;
  }
  std::size_t n = 0;
  while (!queue_.empty() && !stopping_.load(std::memory_order_relaxed)) {
    if (queue_.next_time() > horizon) break;
    auto ev = queue_.pop();
    now_ = ev.time;
    if (auditor_ != nullptr) auditor_->begin_event(now_, ev.tag);
    if (scale_ != nullptr) scale_begin(ev);
    if (mem_ != nullptr) mem_begin(ev);
    if (instrumented_) {
      dispatch_instrumented(ev);
    } else {
      ev.action();
    }
    // Both profilers read the auditor's claim before end_event resets it.
    if (mem_ != nullptr) mem_end();
    if (scale_ != nullptr) scale_end();
    if (auditor_ != nullptr) auditor_->end_event();
    ++n;
    ++executed_;
  }
  if (!stopping_.load(std::memory_order_relaxed) && now_ < horizon &&
      horizon != SimTime::max()) {
    now_ = horizon;  // simulated until the requested horizon
  }
  if (exec_ != nullptr) {
    exec_->record_serial_run(exec_start_ns, now_.as_nanos(), n,
                             wall_now_seconds() - exec_wall);
  }
  return n;
}

bool Simulator::serial_step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.time;
  if (auditor_ != nullptr) auditor_->begin_event(now_, ev.tag);
  if (scale_ != nullptr) scale_begin(ev);
  if (mem_ != nullptr) mem_begin(ev);
  if (instrumented_) {
    dispatch_instrumented(ev);
  } else {
    ev.action();
  }
  if (mem_ != nullptr) mem_end();
  if (scale_ != nullptr) scale_end();
  if (auditor_ != nullptr) auditor_->end_event();
  ++executed_;
  return true;
}

}  // namespace tussle::sim
