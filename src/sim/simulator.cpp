#include "sim/simulator.hpp"

#include <memory>
#include <stdexcept>

namespace tussle::sim {

EventId Simulator::schedule_at(SimTime at, EventQueue::Action action) {
  if (at < now_) throw std::invalid_argument("schedule_at: time is in the past");
  return queue_.push(at, std::move(action));
}

void Simulator::schedule_every(Duration period, std::function<bool()> action) {
  // Self-rescheduling closure; stops rescheduling when action returns false.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, action = std::move(action), tick]() {
    if (action()) {
      schedule(period, *tick);
    }
  };
  schedule(period, *tick);
}

std::size_t Simulator::run(SimTime horizon) {
  stopping_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopping_) {
    if (queue_.next_time() > horizon) break;
    auto [time, action] = queue_.pop();
    now_ = time;
    action();
    ++n;
    ++executed_;
  }
  if (!stopping_ && now_ < horizon && horizon != SimTime::max()) {
    now_ = horizon;  // simulated until the requested horizon
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, action] = queue_.pop();
  now_ = time;
  action();
  ++executed_;
  return true;
}

}  // namespace tussle::sim
