// The discrete-event simulation engine.
//
// Single-threaded by design: tussle experiments need bit-exact replay far
// more than they need parallel speedup, and a single run of the largest
// scenario completes in seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

class Simulator {
 public:
  /// `seed` drives every random decision in the run; identical seeds yield
  /// identical event sequences.
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// Schedules `action` to run `delay` after the current time.
  EventId schedule(Duration delay, EventQueue::Action action) {
    return queue_.push(now_ + delay, std::move(action));
  }

  /// Schedules at an absolute time, which must not be in the past.
  EventId schedule_at(SimTime at, EventQueue::Action action);

  /// Schedules a recurring action every `period`, starting one period from
  /// now, until `action` returns false or the simulation stops.
  void schedule_every(Duration period, std::function<bool()> action);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains or `horizon` is reached, whichever
  /// comes first. Events at exactly `horizon` still fire. Returns the
  /// number of events executed.
  std::size_t run(SimTime horizon = SimTime::max());

  /// Executes pending events one at a time; useful in tests.
  bool step();

  /// Requests that run() return after the current event completes.
  void stop() noexcept { stopping_ = true; }

  std::size_t events_executed() const noexcept { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

 private:
  void run_repeating(Duration period, const std::shared_ptr<std::function<bool()>>& action);

  EventQueue queue_;
  SimTime now_{};
  Rng rng_;
  bool stopping_ = false;
  std::size_t executed_ = 0;
};

}  // namespace tussle::sim
