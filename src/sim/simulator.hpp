// The discrete-event simulation engine.
//
// Single-threaded by design: tussle experiments need bit-exact replay far
// more than they need parallel speedup, and a single run of the largest
// scenario completes in seconds.
//
// Observability hooks (all off by default, one branch per event when off):
//  - set_profiler() attributes each dispatched event's wall-clock cost to
//    its TaskTag; see sim/profiler.hpp.
//  - set_heartbeat() prints a periodic progress line (sim-time, events/sec,
//    queue depth) from inside the dispatch loop — it schedules nothing, so
//    enabling it cannot change the event sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/profiler.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace tussle::sim {

class ShardAuditor;
class ScaleProfiler;

class Simulator {
 public:
  /// `seed` drives every random decision in the run; identical seeds yield
  /// identical event sequences.
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// This simulator's own trace log. Components built on the simulator
  /// (Network and friends) default to it, so two concurrent runs never
  /// share a tracer — the per-run analogue of what Tracer::global() was.
  Tracer& tracer() noexcept { return tracer_; }

  /// Schedules `action` to run `delay` after the current time.
  EventId schedule(Duration delay, EventQueue::Action action) {
    const EventId id = queue_.push(now_ + delay, std::move(action));
    if (scale_ != nullptr) note_schedule(id, now_ + delay, TaskTag{});
    return id;
  }

  /// Tagged variant: the tag labels the event for the loop profiler.
  EventId schedule(Duration delay, TaskTag tag, EventQueue::Action action) {
    const EventId id = queue_.push(now_ + delay, std::move(action), tag);
    if (scale_ != nullptr) note_schedule(id, now_ + delay, tag);
    return id;
  }

  /// Schedules at an absolute time, which must not be in the past.
  EventId schedule_at(SimTime at, EventQueue::Action action);
  EventId schedule_at(SimTime at, TaskTag tag, EventQueue::Action action);

  /// Schedules a recurring action every `period`, starting one period from
  /// now, until `action` returns false or the simulation stops.
  void schedule_every(Duration period, std::function<bool()> action);
  void schedule_every(Duration period, TaskTag tag, std::function<bool()> action);

  bool cancel(EventId id);

  /// Runs until the event queue drains or `horizon` is reached, whichever
  /// comes first. Events at exactly `horizon` still fire. Returns the
  /// number of events executed.
  std::size_t run(SimTime horizon = SimTime::max());

  /// Executes pending events one at a time; useful in tests.
  bool step();

  /// Requests that run() return after the current event completes.
  void stop() noexcept { stopping_ = true; }

  std::size_t events_executed() const noexcept { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  /// Attaches (or detaches, with nullptr) an event-loop profiler. Not
  /// owned; must outlive the simulator or be detached first.
  void set_profiler(LoopProfiler* profiler) noexcept {
    profiler_ = profiler;
    queue_.record_tags(profiler_ != nullptr || auditor_ != nullptr || scale_ != nullptr);
    instrumented_ = profiler_ != nullptr || heartbeat_;
  }
  LoopProfiler* profiler() const noexcept { return profiler_; }

  /// Attaches (or detaches, with nullptr) the cross-shard access auditor.
  /// Dispatch then opens every event with ShardAuditor::begin_event, so
  /// instrumented mutation points can attribute accesses to the claiming
  /// shard (see sim/shard_audit.hpp). Not owned. Uninstrumented runs pay
  /// one null-pointer branch per event.
  void set_auditor(ShardAuditor* auditor) noexcept {
    auditor_ = auditor;
    queue_.record_tags(profiler_ != nullptr || auditor_ != nullptr || scale_ != nullptr);
  }
  ShardAuditor* auditor() const noexcept { return auditor_; }

  /// Attaches (or detaches, with nullptr) the scale profiler. Dispatch then
  /// reports schedule/cancel/dispatch transitions so it can reconstruct the
  /// event DAG, per-shard loads, and queue-depth profile (see
  /// sim/scale_profile.hpp). Works best with an auditor attached too —
  /// shard attribution comes from the auditor's claim registry, and without
  /// one every event lands on kNoShard. Not owned. Uninstrumented runs pay
  /// one null-pointer branch per schedule and per event.
  void set_scale_profiler(ScaleProfiler* scale) noexcept {
    scale_ = scale;
    queue_.record_tags(profiler_ != nullptr || auditor_ != nullptr || scale_ != nullptr);
  }
  ScaleProfiler* scale_profiler() const noexcept { return scale_; }

  /// One progress report, emitted every heartbeat period of *simulated*
  /// time while the dispatch loop runs.
  struct Heartbeat {
    SimTime sim_now;
    std::size_t events_executed = 0;  ///< lifetime total for this simulator
    std::size_t queue_depth = 0;
    double wall_seconds = 0;       ///< wall time since run() started
    double events_per_sec = 0;     ///< dispatch rate since the last beat
  };
  using HeartbeatFn = std::function<void(const Heartbeat&)>;

  /// Enables a heartbeat every `period` of sim-time; `fn` defaults to a
  /// stderr progress line. A zero period disables.
  void set_heartbeat(Duration period, HeartbeatFn fn = nullptr);

 private:
  void run_repeating(Duration period, TaskTag tag,
                     const std::shared_ptr<std::function<bool()>>& action);
  void dispatch_instrumented(EventQueue::Popped& ev);
  void maybe_heartbeat();
  /// Out-of-line scale-profiler notifications (ScaleProfiler is an
  /// incomplete type here).
  void note_schedule(EventId id, SimTime at, const TaskTag& tag);
  void scale_begin(const EventQueue::Popped& ev);
  void scale_end();

  EventQueue queue_;
  SimTime now_{};
  Rng rng_;
  bool stopping_ = false;
  std::size_t executed_ = 0;

  // --- observability (never consulted by simulation logic) ---
  bool instrumented_ = false;  ///< profiler_ or heartbeat active
  LoopProfiler* profiler_ = nullptr;
  ShardAuditor* auditor_ = nullptr;
  ScaleProfiler* scale_ = nullptr;
  Tracer tracer_;
  Duration heartbeat_period_{};
  HeartbeatFn heartbeat_;
  SimTime next_heartbeat_{};
  double run_wall_start_ = 0;
  double last_beat_wall_ = 0;
  std::size_t last_beat_events_ = 0;
};

}  // namespace tussle::sim
