// The discrete-event simulation engine's scheduling surface.
//
// The Simulator owns simulated time, the run's RNG, and the observability
// hooks; *execution* is delegated to a pluggable ExecutionBackend
// (sim/exec_backend.hpp):
//
//  - SerialBackend (the default): the classic single-threaded dispatch
//    loop — bit-exact replay, one global (time, sequence) event order.
//  - ShardedBackend (sim/sharded_backend.hpp): conservative
//    barrier-synchronized parallel execution, one logical process per
//    owner (AS), byte-identical output at any shard count.
//
// Component code stays backend-agnostic: now()/rng()/auditor()/
// scale_profiler() resolve through the per-thread ExecCtx when a sharded
// worker is dispatching, and fall back to the simulator's own state
// otherwise (one thread-local load per call on the serial path).
//
// Observability hooks (all off by default, one branch per event when off):
//  - set_profiler() attributes each dispatched event's wall-clock cost to
//    its TaskTag; see sim/profiler.hpp.
//  - set_heartbeat() prints a periodic progress line (sim-time, events/sec,
//    queue depth) — it schedules nothing, so enabling it cannot change the
//    event sequence. The serial loop checks it per event; the sharded
//    backend's coordinator checks it between barrier windows.
//  - set_exec_profiler() records the runtime's own wall-clock profile
//    (barrier windows, worker dispatch/drain/wait); see sim/exec_profile.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/exec_backend.hpp"
#include "sim/profiler.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace tussle::sim {

class ShardAuditor;
class ScaleProfiler;
class ExecProfiler;
class MemProfiler;

class Simulator {
 public:
  /// `seed` drives every random decision in the run; identical seeds yield
  /// identical event sequences. The sharded backend derives each owner's
  /// stream from the same seed, so per-owner draws are shard-count-
  /// independent too.
  explicit Simulator(std::uint64_t seed = 1)
      : rng_(seed), seed_(seed), backend_(std::make_unique<SerialBackend>(*this)) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time: the dispatching worker's event time inside a
  /// sharded worker event, the global clock otherwise.
  SimTime now() const noexcept {
    const ExecCtx* c = current_exec_ctx();
    if (c != nullptr && c->sim == this) return c->now;
    return now_;
  }

  /// The run's RNG. Inside a sharded worker event this is the owner's own
  /// stream (Rng::stream(seed, owner)), so draws stay per-owner
  /// deterministic at any shard count.
  Rng& rng() noexcept {
    ExecCtx* c = current_exec_ctx();
    if (c != nullptr && c->sim == this && c->rng != nullptr) return *c->rng;
    return rng_;
  }

  /// This simulator's own trace log. Components built on the simulator
  /// (Network and friends) default to it, so two concurrent runs never
  /// share a tracer — the per-run analogue of what Tracer::global() was.
  Tracer& tracer() noexcept { return tracer_; }

  // --- execution backend ----------------------------------------------------

  /// Replaces the execution backend. Must be called before any event is
  /// scheduled (throws std::logic_error otherwise); typically right after
  /// construction, e.g. core::RunContext::instrument() installs a
  /// ShardedBackend when the sweep asked for --shards.
  void set_backend(std::unique_ptr<ExecutionBackend> backend);
  ExecutionBackend& backend() noexcept { return *backend_; }
  const ExecutionBackend& backend() const noexcept { return *backend_; }

  /// Declares that owner (provisional shard / AS id) exists; forwarded to
  /// the backend so the sharded one can pre-create its logical process.
  void register_owner(ShardId owner) { backend_->register_owner(owner); }

  /// Declares a static latency bound between two owners (Network::connect
  /// registers every cross-AS link); the minimum is the sharded backend's
  /// barrier-window lookahead.
  void register_lookahead(ShardId a, ShardId b, Duration latency) {
    backend_->register_lookahead(a, b, latency);
  }

  // --- scheduling -----------------------------------------------------------

  /// Schedules `action` to run `delay` after the current time.
  EventId schedule(Duration delay, EventQueue::Action action) {
    return backend_->schedule(now() + delay, TaskTag{}, std::move(action));
  }

  /// Tagged variant: the tag labels the event for the loop profiler.
  EventId schedule(Duration delay, TaskTag tag, EventQueue::Action action) {
    return backend_->schedule(now() + delay, tag, std::move(action));
  }

  /// Schedules into `owner`'s ordering domain (see
  /// ExecutionBackend::schedule_for). Equivalent to schedule() on the
  /// serial backend; required for cross-owner work (packet delivery to
  /// another AS, probe injection at a specific AS) under the sharded one.
  EventId schedule_for(ShardId owner, Duration delay, TaskTag tag,
                       EventQueue::Action action) {
    return backend_->schedule_for(owner, now() + delay, tag, std::move(action));
  }
  EventId schedule_for(ShardId owner, Duration delay, EventQueue::Action action) {
    return backend_->schedule_for(owner, now() + delay, TaskTag{}, std::move(action));
  }

  /// Schedules at an absolute time, which must not be in the past.
  EventId schedule_at(SimTime at, EventQueue::Action action);
  EventId schedule_at(SimTime at, TaskTag tag, EventQueue::Action action);

  /// Schedules a recurring action every `period`, starting one period from
  /// now, until `action` returns false or the simulation stops.
  void schedule_every(Duration period, std::function<bool()> action);
  void schedule_every(Duration period, TaskTag tag, std::function<bool()> action);

  bool cancel(EventId id) { return backend_->cancel(id); }

  /// Runs until the event queue drains or `horizon` is reached, whichever
  /// comes first. Events at exactly `horizon` still fire. Returns the
  /// number of events executed.
  std::size_t run(SimTime horizon = SimTime::max()) { return backend_->run(horizon); }

  /// Executes pending events one at a time; useful in tests. Serial
  /// backend only (the sharded backend throws std::logic_error).
  bool step() { return backend_->step(); }

  /// Requests that run() return after the current event completes — or,
  /// under the sharded backend, after the current barrier window
  /// completes on every shard, so the stopping point is shard-count-
  /// independent.
  void stop() noexcept { stopping_.store(true, std::memory_order_relaxed); }

  std::size_t events_executed() const noexcept { return executed_; }
  std::size_t events_pending() const { return backend_->pending(); }

  /// Attaches (or detaches, with nullptr) an event-loop profiler. Not
  /// owned; must outlive the simulator or be detached first.
  void set_profiler(LoopProfiler* profiler) noexcept {
    profiler_ = profiler;
    queue_.record_tags(profiler_ != nullptr || auditor_ != nullptr || scale_ != nullptr ||
                       mem_ != nullptr);
    instrumented_ = profiler_ != nullptr || static_cast<bool>(heartbeat_);
    backend_->on_hooks_changed();
  }
  LoopProfiler* profiler() const noexcept { return profiler_; }

  /// Attaches (or detaches, with nullptr) the cross-shard access auditor.
  /// Dispatch then opens every event with ShardAuditor::begin_event, so
  /// instrumented mutation points can attribute accesses to the claiming
  /// shard (see sim/shard_audit.hpp). Not owned. Uninstrumented runs pay
  /// one null-pointer branch per event. Inside a sharded worker event the
  /// accessor returns the worker's per-owner lane.
  void set_auditor(ShardAuditor* auditor) noexcept {
    auditor_ = auditor;
    queue_.record_tags(profiler_ != nullptr || auditor_ != nullptr || scale_ != nullptr ||
                       mem_ != nullptr);
    backend_->on_hooks_changed();
  }
  ShardAuditor* auditor() const noexcept {
    const ExecCtx* c = current_exec_ctx();
    if (c != nullptr && c->sim == this) return c->auditor;
    return auditor_;
  }

  /// Attaches (or detaches, with nullptr) the scale profiler. Dispatch then
  /// reports schedule/cancel/dispatch transitions so it can reconstruct the
  /// event DAG, per-shard loads, and queue-depth profile (see
  /// sim/scale_profile.hpp). Works best with an auditor attached too —
  /// shard attribution comes from the auditor's claim registry, and without
  /// one every event lands on kNoShard. Not owned. Uninstrumented runs pay
  /// one null-pointer branch per schedule and per event. Inside a sharded
  /// worker event the accessor returns the worker's per-owner lane.
  void set_scale_profiler(ScaleProfiler* scale) noexcept {
    scale_ = scale;
    queue_.record_tags(profiler_ != nullptr || auditor_ != nullptr || scale_ != nullptr ||
                       mem_ != nullptr);
    backend_->on_hooks_changed();
  }
  ScaleProfiler* scale_profiler() const noexcept {
    const ExecCtx* c = current_exec_ctx();
    if (c != nullptr && c->sim == this) return c->scale;
    return scale_;
  }

  /// Attaches (or detaches, with nullptr) the memory profiler. Dispatch
  /// then reports schedule/cancel/dispatch transitions so it can account
  /// event-control-block churn and lifetimes; components report packet
  /// births/deaths, actor registrations, and pointer-chase hops through it
  /// (see sim/mem_profile.hpp). Works best with an auditor attached too —
  /// per-shard footprints come from the auditor's claim registry. Not
  /// owned. Uninstrumented runs pay one null-pointer branch per schedule
  /// and per event. Inside a sharded worker event the accessor returns the
  /// worker's per-owner lane.
  void set_mem_profiler(MemProfiler* mem) noexcept {
    mem_ = mem;
    queue_.record_tags(profiler_ != nullptr || auditor_ != nullptr || scale_ != nullptr ||
                       mem_ != nullptr);
    backend_->on_hooks_changed();
  }
  MemProfiler* mem_profiler() const noexcept {
    const ExecCtx* c = current_exec_ctx();
    if (c != nullptr && c->sim == this) return c->mem;
    return mem_;
  }

  /// Modeled live bytes currently attributed to this simulator's attached
  /// memory profiler(s): the base profiler under serial execution, base
  /// plus every owner lane under the sharded backend (safe to read from
  /// control events — workers are parked). 0 when none is attached. The
  /// --dashboard "mem.live_bytes" gauge samples this.
  std::int64_t mem_live_bytes() const { return backend_->mem_live_bytes(); }

  /// Attaches (or detaches, with nullptr) the execution profiler, which
  /// records the runtime's own wall-clock behavior (barrier windows, worker
  /// dispatch/drain/barrier splits, outbox volumes). Wall-clock data is
  /// inherently nondeterministic — exec reports are exempt from the
  /// byte-identity contract and are emitted to their own files (see
  /// sim/exec_profile.hpp). Not owned. Detached runs pay one null-pointer
  /// branch per run and per barrier window, never per event.
  void set_exec_profiler(ExecProfiler* exec) noexcept {
    exec_ = exec;
    backend_->on_hooks_changed();
  }
  ExecProfiler* exec_profiler() const noexcept { return exec_; }

  /// One progress report, emitted every heartbeat period of *simulated*
  /// time while the dispatch loop runs.
  struct Heartbeat {
    SimTime sim_now;
    std::size_t events_executed = 0;  ///< lifetime total for this simulator
    std::size_t queue_depth = 0;
    double wall_seconds = 0;       ///< wall time since run() started
    double events_per_sec = 0;     ///< dispatch rate since the last beat
  };
  using HeartbeatFn = std::function<void(const Heartbeat&)>;

  /// Enables a heartbeat every `period` of sim-time; `fn` defaults to a
  /// stderr progress line. A zero period disables. The serial backend
  /// checks per event; the sharded backend's coordinator checks between
  /// barrier windows (so beats are at window granularity there).
  void set_heartbeat(Duration period, HeartbeatFn fn = nullptr);

 private:
  friend class ExecutionBackend;
  friend class SerialBackend;

  void run_repeating(Duration period, TaskTag tag,
                     const std::shared_ptr<std::function<bool()>>& action);
  void dispatch_instrumented(EventQueue::Popped& ev);
  void maybe_heartbeat();
  /// Shared heartbeat emitter: advances next_heartbeat_ past `sim_now` and
  /// calls the callback once. Used per event by the serial loop and per
  /// barrier window by the sharded coordinator (via the backend accessors).
  void emit_heartbeat(SimTime sim_now, std::size_t executed_total,
                      std::size_t queue_depth);
  /// Out-of-line scale-profiler notifications (ScaleProfiler is an
  /// incomplete type here).
  void note_schedule(EventId id, SimTime at, const TaskTag& tag);
  void scale_begin(const EventQueue::Popped& ev);
  void scale_end();
  /// Out-of-line mem-profiler notifications (MemProfiler is an incomplete
  /// type here).
  void mem_note_schedule(EventId id, SimTime at, const TaskTag& tag);
  void mem_note_cancel(EventId id);
  void mem_begin(const EventQueue::Popped& ev);
  void mem_end();

  // The pre-split dispatch loop, verbatim; SerialBackend forwards here.
  EventId serial_schedule(SimTime at, TaskTag tag, EventQueue::Action action);
  bool serial_cancel(EventId id);
  std::size_t serial_run(SimTime horizon);
  bool serial_step();

  EventQueue queue_;
  SimTime now_{};
  Rng rng_;
  std::uint64_t seed_ = 1;
  std::atomic<bool> stopping_{false};
  std::size_t executed_ = 0;
  std::unique_ptr<ExecutionBackend> backend_;

  // --- observability (never consulted by simulation logic) ---
  bool instrumented_ = false;  ///< profiler_ or heartbeat active
  LoopProfiler* profiler_ = nullptr;
  ShardAuditor* auditor_ = nullptr;
  ScaleProfiler* scale_ = nullptr;
  ExecProfiler* exec_ = nullptr;
  MemProfiler* mem_ = nullptr;
  Tracer tracer_;
  Duration heartbeat_period_{};
  HeartbeatFn heartbeat_;
  SimTime next_heartbeat_{};
  double run_wall_start_ = 0;
  double last_beat_wall_ = 0;
  std::size_t last_beat_events_ = 0;
};

}  // namespace tussle::sim
