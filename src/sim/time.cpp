#include "sim/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace tussle::sim {

std::string SimTime::to_string() const {
  char buf[64];
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.6fs", as_seconds());
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", as_millis());
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns_);
  }
  return buf;
}

}  // namespace tussle::sim
