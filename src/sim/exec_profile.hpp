// Execution profiler: wall-clock observability for the runtime itself.
//
// The ScaleProfiler (sim/scale_profile.hpp) *predicts* barrier-window PDES
// speedup from event counts on the serial engine; this module *measures*
// where wall-clock time actually goes once the ShardedBackend runs — per
// barrier window and per worker, split across
//
//   dispatch      — executing the owner queues' events,
//   outbox drain  — gathering/sorting/enqueueing cross-owner messages,
//   barrier wait  — blocked at a window barrier (includes the coordinator's
//                   inter-window work the workers must wait out),
//   control batch — coordinator-run control events between windows,
//   lane fold     — folding per-owner state lanes before control events,
//
// plus window occupancy (events dispatched against the lookahead horizon),
// per-(src, dst) outbox message/byte volumes, and per-jthread busy/idle
// shares. The same hooks wrap the serial backend's dispatch loop (one
// window per run() call, all of it dispatch on worker 0), so serial and
// sharded runs export the same report schema.
//
// validate() replays the ScaleProfiler's virtual-barrier model (LPT packing
// of per-owner loads onto k virtual shards, window cost = the slowest
// shard) over the per-window per-owner event counts this profiler recorded
// at runtime, and compares the model's predicted speedup against the
// measured one (worker busy seconds / elapsed run wall). The residual is
// decomposed into the three loss terms a barrier design can suffer —
// dispatch imbalance, barrier/coordination overhead, drain cost — so a
// regression names its cause.
//
// Determinism contract — the explicit EXCEPTION. Everything here is
// wall-clock data and therefore nondeterministic run to run: exec reports
// are exempt from the byte-identity contract that covers metrics, spans,
// time series, audit, and scale exports. The harness emits them to their
// own files (--exec-json/--exec-trace/--exec-dashboard), never into the
// .metrics object, and detlint's wall-clock check keeps the list of
// modules allowed to read the wall clock to exactly the audited set this
// file belongs to. An unattached profiler costs each backend one
// null-pointer branch per run/window, never per event.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/shard_audit.hpp"

namespace tussle::sim {

class ExecProfiler {
 public:
  /// Wall-time slices beyond this many windows per run are dropped from the
  /// Chrome trace (aggregates stay complete) so long runs stay bounded.
  static constexpr std::size_t kMaxSliceWindows = 512;
  /// Modeled bytes per cross-owner message (control block + payload
  /// handle), mirroring the ScaleProfiler's event-size estimate.
  static constexpr std::uint64_t kMsgBytes = 96;

  /// One worker's share of one barrier window (seconds of wall time).
  struct WorkerSlice {
    double barrier_s = 0;   ///< waiting for the window to open (A release)
    double dispatch_s = 0;  ///< executing owner-queue events
    double drain_s = 0;     ///< draining/sorting/enqueueing inboxes
    double dispatch_start = -1;  ///< run-relative wall; -1 = slice capped
    double drain_start = -1;
    std::uint64_t events = 0;  ///< events this worker dispatched
  };

  /// One barrier window, assembled from every worker's lane at end_run().
  struct Window {
    std::int64_t start_ns = 0;  ///< sim-time window [start, end)
    std::int64_t end_ns = 0;
    double wall_start = -1;  ///< run-relative coordinator wall; -1 = capped
    double elapsed = 0;      ///< coordinator wall from publish to barrier C
    std::uint64_t events = 0;
    std::vector<WorkerSlice> workers;
    std::map<ShardId, std::uint64_t> owner_events;  ///< validation replay input
  };

  /// One coordinator control batch (between windows).
  struct ControlBatch {
    double wall_start = -1;  ///< run-relative; -1 = capped
    double fold_s = 0;       ///< lane fold preceding the batch
    double control_s = 0;
    std::uint64_t events = 0;
  };

  struct Volume {
    std::uint64_t events = 0;
    std::uint64_t bytes = 0;
  };

  /// One backend run() invocation.
  struct Run {
    std::string backend;  ///< "serial" or "sharded"
    std::size_t workers = 0;
    std::int64_t lookahead_ns = 0;
    double elapsed = 0;
    double control_seconds = 0;
    double fold_seconds = 0;
    std::uint64_t control_events = 0;
    std::vector<Window> windows;
    std::vector<ControlBatch> control_batches;
    /// (src owner, dst owner) -> drained message volume; dst == kNoShard is
    /// the control-queue inbox.
    std::map<std::pair<ShardId, ShardId>, Volume> volumes;
  };

  /// Per-worker recording surface. Worker w writes only lane(w), strictly
  /// between its barrier-A release and its barrier-C arrival; the
  /// coordinator reads lanes only in end_run(), after the workers joined.
  class WorkerLane {
   public:
    /// Closes this worker's current window (call once per window, before
    /// arriving at barrier C). Wall starts are run-relative.
    void window(double barrier_s, double dispatch_s, double drain_s,
                double dispatch_start, double drain_start, std::uint64_t events);
    /// Events this worker dispatched for `owner` in the current window.
    void owner_events(ShardId owner, std::uint64_t events);
    /// Messages drained from `src`'s outbox into `dst`'s queue.
    void drained(ShardId src, ShardId dst, std::uint64_t events);

   private:
    friend class ExecProfiler;
    struct WinRec {
      std::uint32_t window = 0;
      float barrier_s = 0;
      float dispatch_s = 0;
      float drain_s = 0;
      double dispatch_start = -1;
      double drain_start = -1;
      std::uint32_t events = 0;
    };
    struct OwnRec {
      std::uint32_t window = 0;
      ShardId owner = kNoShard;
      std::uint32_t events = 0;
    };
    std::uint32_t windows_done_ = 0;
    std::vector<WinRec> windows_;
    std::vector<OwnRec> owners_;
    std::map<std::pair<ShardId, ShardId>, Volume> volumes_;
  };

  // --- recording: coordinator / backend thread only ------------------------
  /// Opens a run record and sizes `workers` lanes. Returns the run-start
  /// wall time so the caller can compute run-relative offsets.
  double begin_run(const char* backend, std::size_t workers, std::int64_t lookahead_ns);
  /// Worker w's lane; stable for the whole run (no reallocation mid-run).
  WorkerLane& lane(std::size_t worker) { return lanes_[worker]; }
  /// Coordinator brackets for one barrier window (outside barriers A..C).
  void begin_window(std::int64_t start_ns, std::int64_t end_ns);
  void end_window();
  /// One coordinator control batch: the lane fold that preceded it, the
  /// batch itself, and how many control events ran.
  void record_control(double wall_start, double fold_s, double control_s,
                      std::uint64_t events);
  /// End-of-run lane fold / observability merge time.
  void record_fold(double seconds);
  /// Coordinator-drained volume (the control-queue inbox, dst == kNoShard).
  void record_drained(ShardId src, ShardId dst, std::uint64_t events);
  /// Closes the run: assembles windows from the worker lanes and retires
  /// the record. Error paths skip this; begin_run() discards partial state.
  void end_run();

  /// The serial backend's whole dispatch loop as one single-worker window.
  void record_serial_run(std::int64_t start_ns, std::int64_t end_ns,
                         std::uint64_t events, double elapsed_s);

  // --- results -------------------------------------------------------------
  std::size_t runs() const noexcept { return runs_.size(); }
  const std::vector<Run>& run_records() const noexcept { return runs_; }
  std::size_t windows() const noexcept;
  std::size_t max_workers() const noexcept;
  double elapsed_seconds() const noexcept;

  struct PhaseTotals {
    double dispatch = 0;  ///< summed worker-seconds
    double drain = 0;
    double barrier = 0;
    double control = 0;
    double fold = 0;
  };
  PhaseTotals phases() const noexcept;

  struct WorkerShare {
    double busy_s = 0;  ///< dispatch + drain
    double idle_s = 0;  ///< barrier wait
  };
  /// Pooled per-worker-index busy/idle, sized max_workers().
  std::vector<WorkerShare> worker_shares() const;

  /// Pooled per-(src, dst) drained-message volumes across runs.
  std::map<std::pair<ShardId, ShardId>, Volume> volumes() const;

  /// Window-occupancy histogram: log2 bucket of events-per-window -> count
  /// (bucket b covers [2^(b-1), 2^b - 1], bucket 0 = empty windows).
  std::map<std::uint32_t, std::uint64_t> occupancy_histogram() const;

  /// Measured-vs-predicted speedup over the pooled runs.
  struct Validation {
    std::size_t workers = 0;         ///< max worker count across runs
    std::uint64_t window_events = 0;
    std::uint64_t serial_events = 0;  ///< control-batch events (serial by design)
    double measured_speedup = 0;   ///< busy wall / elapsed wall
    double predicted_speedup = 0;  ///< the ScaleProfiler LPT model, replayed
    std::size_t windows_compared = 0;
    double mean_window_error = 0;  ///< mean |measured − predicted| / predicted
    double imbalance_seconds = 0;  ///< max-dispatch − mean-dispatch, summed
    double drain_seconds = 0;      ///< slowest drain per window, summed
    double barrier_seconds = 0;    ///< window wall unexplained by dispatch/drain
    const char* dominant_loss = "none";
    double barrier_overhead_fraction = 0;  ///< barrier_seconds / elapsed
  };
  Validation validate() const;

  /// Machine-readable report (the --exec-json payload). Wall-clock data:
  /// NOT byte-identical across runs — see the file comment.
  std::string report_json() const;

  /// Appends another profiler's run records (the sweep engine merges per-run
  /// instances in run-index order, same as every other sink).
  void merge(const ExecProfiler& other);

 private:
  std::vector<Run> runs_;
  // In-flight run state (coordinator thread only).
  bool in_run_ = false;
  Run cur_;
  double run_start_ = 0;
  double window_open_ = 0;
  std::vector<WorkerLane> lanes_;
};

/// Chrome trace-event JSON: one process per run, one track per worker plus
/// a coordinator track, wall-time "X" slices for dispatch/drain/control/
/// fold/window (capped at ExecProfiler::kMaxSliceWindows per run).
std::string exec_chrome_trace(const ExecProfiler& ep);

/// Self-contained zero-JS HTML dashboard: stat tiles, worker timeline
/// gantt, window-occupancy histogram, and per-worker stall breakdown —
/// same idiom as scale_dashboard / timeseries_dashboard.
std::string exec_dashboard(const ExecProfiler& ep, const std::string& title);

}  // namespace tussle::sim
