// Runtime cross-shard access auditor: the dynamic half of the shard-safety
// analysis (tools/sharedlint is the static half).
//
// The PDES refactor (ROADMAP item 2) will partition the world by AS into
// shards, each with its own event queue, synchronized in barrier rounds
// with link latency as lookahead. That is only sound if an event handler
// never mutates state owned by another shard except by scheduling an event
// — the invariant Shadow enforced structurally before it could split its
// scheduler from its workers. This auditor proves the invariant dynamically:
//
//  - every Node/Link/actor registers under a provisional ShardId (its AS);
//  - Simulator dispatch calls begin_event() so each event starts with an
//    *unclaimed* shard context; the first component whose handler runs
//    claims the event for its shard;
//  - instrumented mutation points (Node/Link accessors, forwarding-table
//    writes, Ledger transfers) call check_mutation(); a mutation of state
//    owned by a different shard than the claimant fails fast with a causal
//    report (component, event tag, owning vs accessing shard, active span);
//  - state that is *designed* to be shared (the Ledger, merge sinks)
//    registers under kSharedShard: accesses are tallied per accessing
//    shard instead of failing, so the report maps exactly which merge
//    points the PDES refactor must make shard-local-then-merge.
//
// Cost contract: identical to SpanTracer — uninstrumented runs pay one
// null-pointer branch per hook site (the pointer, not this class, is the
// guard), and the auditor never schedules, samples a clock, or draws
// randomness, so enabling it cannot change the event sequence. The report
// is a pure function of the event sequence: byte-identical across runs.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/profiler.hpp"
#include "sim/span.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

/// Provisional shard identifier. The AS id doubles as the shard id — the
/// partition the PDES design will start from.
using ShardId = std::uint32_t;
/// Sentinel: no shard claimed yet (event prologue, or setup code running
/// outside any dispatched event).
inline constexpr ShardId kNoShard = 0xFFFFFFFFu;
/// Sentinel: state declared shared across shards (Ledger, merge sinks).
/// Mutations are tallied per accessing shard instead of checked.
inline constexpr ShardId kSharedShard = 0xFFFFFFFEu;

/// One audited mutation that crossed (or legally entered) a shard.
struct ShardAccess {
  std::string component;        ///< owning component kind, e.g. "net.node"
  std::uint64_t id = 0;         ///< component instance id
  ShardId owner = kNoShard;     ///< shard that owns the mutated state
  ShardId accessor = kNoShard;  ///< shard the current event had claimed
  std::string what;             ///< mutator, e.g. "forwarding"
  std::string event_component;  ///< TaskTag of the dispatched event, if any
  std::string event_kind;
  SimTime time;                 ///< sim time of the dispatched event
  SpanId span = kNoSpan;        ///< active causal span, if a tracer is wired
};

/// Thrown on a cross-shard mutation when fail-fast is on. what() carries
/// the full causal report.
class ShardViolation : public std::runtime_error {
 public:
  ShardViolation(const std::string& report, ShardAccess access)
      : std::runtime_error(report), access_(std::move(access)) {}
  const ShardAccess& access() const noexcept { return access_; }

 private:
  ShardAccess access_;
};

class ShardAuditor {
 public:
  // --- simulator hook -----------------------------------------------------
  /// Called by Simulator dispatch before each event fires: resets the
  /// claimed shard and remembers the event's tag/time for causal reports.
  void begin_event(SimTime now, const TaskTag& tag);

  /// Called by Simulator dispatch after each event's handler returns:
  /// closes the shard context so code running *between* events — or between
  /// two run() calls, as phase-structured benches do — is classified as
  /// setup again rather than inheriting the last event's claimed shard.
  void end_event();

  // --- shard context ------------------------------------------------------
  /// A component's handler announces it is running: claims the current
  /// event for `shard` (first claim wins). A claim from a handler while a
  /// *different* shard holds the event is itself a cross-shard entry and
  /// is reported like a mutation.
  void claim(std::string_view kind, std::uint64_t id, ShardId shard);
  ShardId current() const noexcept { return current_; }

  /// Declares the remainder of the current event a *control event*: a
  /// deliberately global action (scenario failure injection, route
  /// reconvergence) that the PDES design will run at a barrier, with every
  /// shard quiescent. Mutations and claims are tallied under `name`
  /// instead of checked, so the report enumerates exactly what each
  /// barrier phase must be allowed to touch. Resets at the next event.
  void declare_control_event(const char* name);

  // --- registry -----------------------------------------------------------
  /// Assigns (idempotently) a component instance to a shard. Hook sites
  /// register lazily on first touch; Network registers its whole topology
  /// eagerly when an auditor is attached.
  void register_component(std::string_view kind, std::uint64_t id, ShardId shard);

  // --- checks -------------------------------------------------------------
  /// Audits one state mutation of the component owned by `owner`.
  /// Legal: setup phase (no event in flight), the claiming shard's own
  /// state, or kSharedShard state (tallied). Anything else is a violation:
  /// recorded, and thrown as ShardViolation when fail-fast is on.
  void check_mutation(std::string_view kind, std::uint64_t id, ShardId owner,
                      std::string_view what);

  /// Tallies an access to declared-shared state by the current shard.
  void record_shared_access(std::string_view kind, std::string_view what);

  // --- configuration ------------------------------------------------------
  /// Throw on the first violation (default). Off = collect and report.
  void set_fail_fast(bool on) noexcept { fail_fast_ = on; }
  bool fail_fast() const noexcept { return fail_fast_; }

  /// Wires a span tracer so violation reports carry the active causal span.
  void set_span_tracer(const SpanTracer* spans) noexcept { spans_ = spans; }

  // --- results ------------------------------------------------------------
  std::size_t events_audited() const noexcept { return events_; }
  std::size_t mutations_checked() const noexcept { return checks_; }
  std::size_t claims() const noexcept { return claims_; }
  std::size_t component_count() const noexcept { return components_.size(); }
  /// Number of distinct shards seen (excluding the shared sentinel).
  std::size_t shard_count() const;
  const std::vector<ShardAccess>& violations() const noexcept { return violations_; }

  /// Human-readable causal report for one access.
  std::string describe(const ShardAccess& a) const;

  /// Machine-readable audit report: registered components per shard,
  /// shared-state access tallies, and violations. All containers are
  /// ordered maps, so the output is byte-identical across runs.
  std::string report_json() const;

  /// Folds another auditor's tallies into this one (sweep runs merge in
  /// run-index order, like profiler/span merges).
  void merge(const ShardAuditor& other);

  /// Folds one escaped violation into the report. Used by harnesses that
  /// catch a fail-fast ShardViolation thrown from an auditor whose tallies
  /// never merged (the exception unwound past the merge point) — the
  /// report artifact must still name the failure.
  void record_violation(const ShardAccess& a) { violations_.push_back(a); }

 private:
  ShardAccess make_access(std::string_view kind, std::uint64_t id, ShardId owner,
                          std::string_view what) const;

  ShardId current_ = kNoShard;
  bool in_event_ = false;
  bool in_control_ = false;
  const char* control_name_ = nullptr;
  bool fail_fast_ = true;
  SimTime event_time_;
  const char* event_component_ = nullptr;
  const char* event_kind_ = nullptr;
  const SpanTracer* spans_ = nullptr;

  std::size_t events_ = 0;
  std::size_t checks_ = 0;
  std::size_t claims_ = 0;
  /// (kind, id) -> owning shard; ordered so reports are deterministic.
  std::map<std::pair<std::string, std::uint64_t>, ShardId> components_;
  /// (kind, what) -> accessing shard -> count, for kSharedShard state.
  std::map<std::pair<std::string, std::string>, std::map<ShardId, std::uint64_t>> shared_;
  /// (control-event name, kind/what) -> count, for declared barrier work.
  std::map<std::pair<std::string, std::string>, std::uint64_t> control_;
  std::vector<ShardAccess> violations_;
};

}  // namespace tussle::sim
