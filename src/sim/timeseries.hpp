// Time-series telemetry: the "when" layer of the observability stack.
//
// End-of-run tables show tussle *outcomes*; the paper's point is that tussle
// is an ongoing *process* — arms races oscillate, learners converge,
// deployments follow adoption curves. This module records selected signals
// at a fixed sim-time interval so those trajectories become first-class,
// exportable data: a columnar store keyed by (series, tick), a windowed
// convergence/oscillation analysis per series, and CSV / JSON / single-file
// HTML-dashboard exporters.
//
// Determinism contract (the same one spans obey — see sim/span.hpp):
//  - every sample is stamped with *simulated* time; nothing in this module
//    may touch a wall clock (detlint's timeseries-wall-clock check enforces
//    this statically);
//  - sample ticks are aligned to multiples of the interval, so the tick
//    grid is a pure function of (interval, horizon), never of call timing;
//  - each sweep run records into its own TimeSeriesRecorder and the results
//    merge in run-index order under per-run name prefixes, so exported
//    output is byte-identical at any --jobs count;
//  - an unattached recorder costs instrumented scenarios one null-pointer
//    branch (the RunContext pointer, not this class, is the guard).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

class MetricRegistry;
class Simulator;

/// One sampled signal: parallel tick/value columns, ticks strictly
/// increasing. Appends out of order are a programming error and throw.
class TimeSeries {
 public:
  void append(SimTime tick, double value);

  const std::vector<SimTime>& ticks() const noexcept { return ticks_; }
  const std::vector<double>& values() const noexcept { return values_; }
  std::size_t size() const noexcept { return ticks_.size(); }
  bool empty() const noexcept { return ticks_.empty(); }

 private:
  std::vector<SimTime> ticks_;
  std::vector<double> values_;
};

/// Tuning for the trailing-window stationarity and oscillation detectors.
/// The defaults suit the bench trajectories (tens to thousands of samples).
struct ConvergenceConfig {
  /// Minimum stable-suffix length (in samples) to call a series converged.
  std::size_t window = 8;
  /// Half-width of the stationarity band, as a fraction of the series'
  /// value range (an absolute floor of 1e-12 guards constant series).
  double tolerance = 0.05;
  /// Autocorrelation a candidate period must reach to call oscillation.
  double min_autocorrelation = 0.5;
};

/// What the detectors found in one series. `converged` and `oscillating`
/// are mutually exclusive by construction: a series that settles is not
/// reported as an oscillator, however it got there.
struct SeriesAnalysis {
  std::size_t samples = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double final_value = 0;
  bool converged = false;
  SimTime converged_at;       ///< first tick of the stable suffix
  double converged_value = 0; ///< mean over the stable suffix
  bool oscillating = false;
  SimTime dominant_period;    ///< autocorrelation-peak lag × sample spacing
  double oscillation_strength = 0;  ///< autocorrelation at the peak lag
};

/// Trailing-window stationarity + dominant-period estimate; pure function
/// of the series contents.
SeriesAnalysis analyze_series(const TimeSeries& s, const ConvergenceConfig& cfg = {});

/// The columnar store: named series in first-registration order (a pure
/// function of the recording schedule, so exports need no re-sorting to be
/// deterministic).
class TimeSeriesStore {
 public:
  /// Get-or-create by name.
  TimeSeries& series(const std::string& name);
  const TimeSeries* find(const std::string& name) const noexcept;

  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return series_.size(); }
  bool empty() const noexcept { return series_.empty(); }
  const std::vector<std::pair<std::string, TimeSeries>>& items() const noexcept {
    return series_;
  }

  /// Folds `other`'s series into this store, each under `prefix + name`.
  /// The sweep harness merges per-run stores in run-index order with
  /// per-run prefixes, so the merged store is schedule-independent.
  void merge_prefixed(const std::string& prefix, const TimeSeriesStore& other);

  /// Long-format CSV: "series,tick_ns,value" — one row per sample, series
  /// in store order, ticks ascending within a series.
  std::string to_csv() const;

  /// One JSON object: {"series":[{"name":...,"ticks_ns":[...],
  /// "values":[...],"analysis":{...}}]}. Analysis uses `cfg`.
  std::string to_json(const ConvergenceConfig& cfg = {}) const;

 private:
  std::vector<std::pair<std::string, TimeSeries>> series_;
  std::map<std::string, std::size_t> index_;
};

/// Self-contained single-file HTML dashboard: inline SVG line chart + stat
/// tiles + convergence/oscillation verdict per series, no external assets
/// and no scripts, styled for light and dark mode. Byte-identical for a
/// given store (everything is rendered from sampled sim-time data).
std::string timeseries_dashboard(const TimeSeriesStore& store, const std::string& title,
                                 const ConvergenceConfig& cfg = {});

/// The periodic sampler. Register sources first, then either attach() it to
/// a Simulator (event-driven scenarios) or call maybe_sample() from a
/// round-based loop; both produce the same aligned tick grid
/// {0, interval, 2·interval, ...}.
class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(Duration interval);

  Duration interval() const noexcept { return interval_; }

  // --- sources (register before the first sample) -------------------------
  /// Arbitrary gauge probe, recorded as a level. Welfare/utility probes —
  /// a learner's running payoff, a ledger balance — enter through here.
  void probe(std::string name, std::function<double()> fn);
  /// Counter, recorded as the delta since the previous sample (the first
  /// sample diffs against the value at registration time).
  void track_counter(std::string name, const Counter& counter);
  /// TimeWeighted signal: records "<name>.current" (the level) and
  /// "<name>.avg" (the running time-weighted average via value_at()).
  void track_time_weighted(std::string name, const TimeWeighted& tw);
  /// Snapshots a MetricRegistry instrument by name: counters as deltas,
  /// gauges and Summary means as levels, TimeWeighted as current + avg.
  /// Throws std::logic_error for unregistered names and Histograms.
  void watch(MetricRegistry& registry, const std::string& name);

  // --- sampling -----------------------------------------------------------
  /// Records one row for every registered source at exactly `tick`.
  void sample(SimTime tick);
  /// Records a row at the next due aligned tick(s) ≤ `now`, then advances
  /// the grid past `now`. Round-based models call this once per round with
  /// now = round × some per-round duration; rounds between ticks cost one
  /// comparison.
  void maybe_sample(SimTime now);
  /// Schedules aligned sampling on `sim` from its current time to
  /// `horizon` inclusive (bounded — never keeps the event queue alive past
  /// the horizon), and takes the t=now baseline sample immediately.
  void attach(Simulator& sim, SimTime horizon);
  /// Final partial-window sample at `now` if the grid has not reached it
  /// (interval not dividing the horizon leaves a tail); no-op otherwise.
  void finish(SimTime now);

  TimeSeriesStore& store() noexcept { return store_; }
  const TimeSeriesStore& store() const noexcept { return store_; }

 private:
  struct Source {
    enum class Kind { kProbe, kCounterDelta, kTimeWeighted } kind = Kind::kProbe;
    std::string name;
    std::function<double()> fn;          // kProbe
    const Counter* counter = nullptr;    // kCounterDelta
    std::int64_t last_count = 0;         // kCounterDelta
    const TimeWeighted* tw = nullptr;    // kTimeWeighted
  };

  Duration interval_;
  SimTime next_due_;  // next aligned tick maybe_sample() will record
  std::vector<Source> sources_;
  TimeSeriesStore store_;
  SimTime last_sampled_;
  bool sampled_any_ = false;
};

}  // namespace tussle::sim
