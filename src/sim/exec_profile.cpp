#include "sim/exec_profile.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "sim/json.hpp"
#include "sim/profiler.hpp"

namespace tussle::sim {

namespace {

std::string owner_label(ShardId s) {
  if (s == kNoShard) return "none";
  if (s == kSharedShard) return "shared";
  return std::to_string(s);
}

/// Same bucketing as the ScaleProfiler's depth/queue histograms: bucket b
/// covers [2^(b-1), 2^b - 1], bucket 0 = zero.
std::uint32_t log2_bucket(std::uint64_t v) {
  return static_cast<std::uint32_t>(std::bit_width(v));
}

/// The ScaleProfiler's virtual-barrier window cost, replayed over measured
/// per-owner loads: owners ordered by (events desc, id asc) are greedily
/// packed onto k virtual shards (LPT); the window costs the slowest shard,
/// plus any events not attributed to an owner, which run serially.
std::uint64_t lpt_window_cost(const std::map<ShardId, std::uint64_t>& owner_events,
                              std::uint64_t window_events, std::size_t k) {
  std::uint64_t owned = 0;
  std::vector<std::pair<std::uint64_t, ShardId>> loads;
  loads.reserve(owner_events.size());
  for (const auto& [owner, n] : owner_events) {
    if (n == 0) continue;
    owned += n;
    loads.emplace_back(n, owner);
  }
  const std::uint64_t serial = window_events > owned ? window_events - owned : 0;
  if (loads.empty()) return serial;
  std::sort(loads.begin(), loads.end(),
            [](const std::pair<std::uint64_t, ShardId>& a,
               const std::pair<std::uint64_t, ShardId>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<std::uint64_t> bins(std::max<std::size_t>(1, std::min(k, loads.size())), 0);
  for (const auto& [n, owner] : loads) {
    (void)owner;
    *std::min_element(bins.begin(), bins.end()) += n;
  }
  return *std::max_element(bins.begin(), bins.end()) + serial;
}

}  // namespace

// -------------------------------------------------------------- WorkerLane --

void ExecProfiler::WorkerLane::window(double barrier_s, double dispatch_s,
                                      double drain_s, double dispatch_start,
                                      double drain_start, std::uint64_t events) {
  WinRec r;
  r.window = windows_done_++;
  r.barrier_s = static_cast<float>(barrier_s);
  r.dispatch_s = static_cast<float>(dispatch_s);
  r.drain_s = static_cast<float>(drain_s);
  if (r.window < kMaxSliceWindows) {
    r.dispatch_start = dispatch_start;
    r.drain_start = drain_start;
  }
  r.events = static_cast<std::uint32_t>(events);
  windows_.push_back(r);
}

void ExecProfiler::WorkerLane::owner_events(ShardId owner, std::uint64_t events) {
  if (events == 0) return;
  OwnRec r;
  r.window = windows_done_;  // the window currently being dispatched
  r.owner = owner;
  r.events = static_cast<std::uint32_t>(events);
  owners_.push_back(r);
}

void ExecProfiler::WorkerLane::drained(ShardId src, ShardId dst, std::uint64_t events) {
  if (events == 0) return;
  Volume& v = volumes_[{src, dst}];
  v.events += events;
  v.bytes += events * kMsgBytes;
}

// --------------------------------------------------------------- recording --

double ExecProfiler::begin_run(const char* backend, std::size_t workers,
                               std::int64_t lookahead_ns) {
  // A previous run that errored out never reached end_run(); its partial
  // state is discarded here rather than polluting the record.
  cur_ = Run{};
  cur_.backend = backend;
  cur_.workers = workers;
  cur_.lookahead_ns = lookahead_ns;
  lanes_.assign(workers, WorkerLane{});
  run_start_ = wall_now_seconds();
  in_run_ = true;
  return run_start_;
}

void ExecProfiler::begin_window(std::int64_t start_ns, std::int64_t end_ns) {
  Window w;
  w.start_ns = start_ns;
  w.end_ns = end_ns;
  window_open_ = wall_now_seconds();
  if (cur_.windows.size() < kMaxSliceWindows) w.wall_start = window_open_ - run_start_;
  w.workers.resize(cur_.workers);
  cur_.windows.push_back(std::move(w));
}

void ExecProfiler::end_window() {
  cur_.windows.back().elapsed = wall_now_seconds() - window_open_;
}

void ExecProfiler::record_control(double wall_start, double fold_s, double control_s,
                                  std::uint64_t events) {
  cur_.fold_seconds += fold_s;
  cur_.control_seconds += control_s;
  cur_.control_events += events;
  ControlBatch b;
  if (cur_.control_batches.size() < kMaxSliceWindows) b.wall_start = wall_start - run_start_;
  b.fold_s = fold_s;
  b.control_s = control_s;
  b.events = events;
  cur_.control_batches.push_back(b);
}

void ExecProfiler::record_fold(double seconds) { cur_.fold_seconds += seconds; }

void ExecProfiler::record_drained(ShardId src, ShardId dst, std::uint64_t events) {
  if (events == 0) return;
  Volume& v = cur_.volumes[{src, dst}];
  v.events += events;
  v.bytes += events * kMsgBytes;
}

void ExecProfiler::end_run() {
  if (!in_run_) return;
  cur_.elapsed = wall_now_seconds() - run_start_;
  for (std::size_t w = 0; w < lanes_.size(); ++w) {
    const WorkerLane& lane = lanes_[w];
    for (const auto& r : lane.windows_) {
      if (r.window >= cur_.windows.size()) continue;  // worker saw a window the run abandoned
      Window& win = cur_.windows[r.window];
      WorkerSlice& s = win.workers[w];
      s.barrier_s = r.barrier_s;
      s.dispatch_s = r.dispatch_s;
      s.drain_s = r.drain_s;
      s.dispatch_start = r.dispatch_start;
      s.drain_start = r.drain_start;
      s.events = r.events;
      win.events += r.events;
    }
    for (const auto& r : lane.owners_) {
      if (r.window >= cur_.windows.size()) continue;
      cur_.windows[r.window].owner_events[r.owner] += r.events;
    }
    for (const auto& [key, v] : lane.volumes_) {
      Volume& dst = cur_.volumes[key];
      dst.events += v.events;
      dst.bytes += v.bytes;
    }
  }
  lanes_.clear();
  runs_.push_back(std::move(cur_));
  cur_ = Run{};
  in_run_ = false;
}

void ExecProfiler::record_serial_run(std::int64_t start_ns, std::int64_t end_ns,
                                     std::uint64_t events, double elapsed_s) {
  Run r;
  r.backend = "serial";
  r.workers = 1;
  r.elapsed = elapsed_s;
  Window w;
  w.start_ns = start_ns;
  w.end_ns = end_ns;
  w.wall_start = 0;
  w.elapsed = elapsed_s;
  w.events = events;
  WorkerSlice s;
  s.dispatch_s = elapsed_s;
  s.dispatch_start = 0;
  s.events = events;
  w.workers.push_back(s);
  r.windows.push_back(std::move(w));
  runs_.push_back(std::move(r));
}

// ----------------------------------------------------------------- results --

std::size_t ExecProfiler::windows() const noexcept {
  std::size_t n = 0;
  for (const auto& r : runs_) n += r.windows.size();
  return n;
}

std::size_t ExecProfiler::max_workers() const noexcept {
  std::size_t n = 0;
  for (const auto& r : runs_) n = std::max(n, r.workers);
  return n;
}

double ExecProfiler::elapsed_seconds() const noexcept {
  double s = 0;
  for (const auto& r : runs_) s += r.elapsed;
  return s;
}

ExecProfiler::PhaseTotals ExecProfiler::phases() const noexcept {
  PhaseTotals t;
  for (const auto& r : runs_) {
    t.control += r.control_seconds;
    t.fold += r.fold_seconds;
    for (const auto& w : r.windows) {
      for (const auto& s : w.workers) {
        t.dispatch += s.dispatch_s;
        t.drain += s.drain_s;
        t.barrier += s.barrier_s;
      }
    }
  }
  return t;
}

std::vector<ExecProfiler::WorkerShare> ExecProfiler::worker_shares() const {
  std::vector<WorkerShare> out(max_workers());
  for (const auto& r : runs_) {
    for (const auto& w : r.windows) {
      for (std::size_t i = 0; i < w.workers.size() && i < out.size(); ++i) {
        out[i].busy_s += w.workers[i].dispatch_s + w.workers[i].drain_s;
        out[i].idle_s += w.workers[i].barrier_s;
      }
    }
  }
  return out;
}

std::map<std::pair<ShardId, ShardId>, ExecProfiler::Volume> ExecProfiler::volumes() const {
  std::map<std::pair<ShardId, ShardId>, Volume> out;
  for (const auto& r : runs_) {
    for (const auto& [key, v] : r.volumes) {
      Volume& dst = out[key];
      dst.events += v.events;
      dst.bytes += v.bytes;
    }
  }
  return out;
}

std::map<std::uint32_t, std::uint64_t> ExecProfiler::occupancy_histogram() const {
  std::map<std::uint32_t, std::uint64_t> out;
  for (const auto& r : runs_) {
    for (const auto& w : r.windows) ++out[log2_bucket(w.events)];
  }
  return out;
}

ExecProfiler::Validation ExecProfiler::validate() const {
  Validation v;
  v.workers = max_workers();
  const double elapsed = elapsed_seconds();
  double busy = 0;           // useful serial work: dispatch + control batches
  std::uint64_t work = 0;    // events the model's numerator counts
  std::uint64_t cost = 0;    // virtual-barrier cost in event units
  double err_sum = 0;
  for (const auto& r : runs_) {
    busy += r.control_seconds;
    v.serial_events += r.control_events;
    work += r.control_events;
    cost += r.control_events;
    for (const auto& w : r.windows) {
      v.window_events += w.events;
      work += w.events;
      const std::uint64_t wcost = lpt_window_cost(w.owner_events, w.events, r.workers);
      cost += wcost;
      double max_d = 0, sum_d = 0, max_dr = 0;
      for (const auto& s : w.workers) {
        busy += s.dispatch_s;
        sum_d += s.dispatch_s;
        max_d = std::max(max_d, s.dispatch_s);
        max_dr = std::max(max_dr, s.drain_s);
      }
      const double nw = r.workers > 0 ? static_cast<double>(r.workers) : 1.0;
      v.imbalance_seconds += max_d - sum_d / nw;
      v.drain_seconds += max_dr;
      v.barrier_seconds += std::max(0.0, w.elapsed - max_d - max_dr);
      if (w.elapsed > 0 && w.events > 0 && wcost > 0) {
        const double measured_w = sum_d / w.elapsed;
        const double predicted_w =
            static_cast<double>(w.events) / static_cast<double>(wcost);
        err_sum += predicted_w > 0
                       ? (measured_w > predicted_w ? measured_w - predicted_w
                                                   : predicted_w - measured_w) /
                             predicted_w
                       : 0;
        ++v.windows_compared;
      }
    }
  }
  v.measured_speedup = elapsed > 0 ? busy / elapsed : 0;
  v.predicted_speedup =
      cost > 0 ? static_cast<double>(work) / static_cast<double>(cost) : 0;
  v.mean_window_error =
      v.windows_compared > 0 ? err_sum / static_cast<double>(v.windows_compared) : 0;
  v.barrier_overhead_fraction = elapsed > 0 ? v.barrier_seconds / elapsed : 0;
  if (v.imbalance_seconds > 0 || v.barrier_seconds > 0 || v.drain_seconds > 0) {
    if (v.imbalance_seconds >= v.barrier_seconds &&
        v.imbalance_seconds >= v.drain_seconds) {
      v.dominant_loss = "imbalance";
    } else if (v.barrier_seconds >= v.drain_seconds) {
      v.dominant_loss = "barrier";
    } else {
      v.dominant_loss = "drain";
    }
  }
  return v;
}

std::string ExecProfiler::report_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("runs").value(static_cast<std::uint64_t>(runs()));
  w.key("windows").value(static_cast<std::uint64_t>(windows()));
  w.key("workers").value(static_cast<std::uint64_t>(max_workers()));
  w.key("elapsed_seconds").value(elapsed_seconds());

  std::map<std::string, std::uint64_t> backends;
  for (const auto& r : runs_) ++backends[r.backend];
  w.key("backends").begin_object();
  for (const auto& [name, n] : backends) w.key(name).value(n);
  w.end_object();

  const PhaseTotals p = phases();
  w.key("phases").begin_object();
  w.key("dispatch_seconds").value(p.dispatch);
  w.key("drain_seconds").value(p.drain);
  w.key("barrier_seconds").value(p.barrier);
  w.key("control_seconds").value(p.control);
  w.key("fold_seconds").value(p.fold);
  w.end_object();

  const auto shares = worker_shares();
  w.key("workers_detail").begin_array();
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double total = shares[i].busy_s + shares[i].idle_s;
    w.begin_object();
    w.key("worker").value(static_cast<std::uint64_t>(i));
    w.key("busy_seconds").value(shares[i].busy_s);
    w.key("idle_seconds").value(shares[i].idle_s);
    w.key("busy_share").value(total > 0 ? shares[i].busy_s / total : 0);
    w.end_object();
  }
  w.end_array();

  std::uint64_t occ_max = 0, occ_sum = 0;
  std::size_t occ_n = 0;
  for (const auto& r : runs_) {
    for (const auto& win : r.windows) {
      occ_max = std::max(occ_max, win.events);
      occ_sum += win.events;
      ++occ_n;
    }
  }
  w.key("occupancy").begin_object();
  w.key("windows").value(static_cast<std::uint64_t>(occ_n));
  w.key("mean_events")
      .value(occ_n > 0 ? static_cast<double>(occ_sum) / static_cast<double>(occ_n) : 0);
  w.key("max_events").value(occ_max);
  w.key("histogram").begin_array();
  for (const auto& [bucket, n] : occupancy_histogram()) {
    w.begin_object();
    w.key("bucket").value(static_cast<std::uint64_t>(bucket));
    w.key("windows").value(n);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("outbox").begin_array();
  for (const auto& [key, v] : volumes()) {
    w.begin_object();
    w.key("src").value(owner_label(key.first));
    w.key("dst").value(owner_label(key.second));
    w.key("events").value(v.events);
    w.key("bytes").value(v.bytes);
    w.end_object();
  }
  w.end_array();

  const Validation val = validate();
  w.key("validation").begin_object();
  w.key("model").value("barrier-window-lpt");
  w.key("workers").value(static_cast<std::uint64_t>(val.workers));
  w.key("window_events").value(val.window_events);
  w.key("serial_events").value(val.serial_events);
  w.key("measured_speedup").value(val.measured_speedup);
  w.key("predicted_speedup").value(val.predicted_speedup);
  w.key("windows_compared").value(static_cast<std::uint64_t>(val.windows_compared));
  w.key("mean_window_error").value(val.mean_window_error);
  w.key("loss").begin_object();
  w.key("imbalance_seconds").value(val.imbalance_seconds);
  w.key("barrier_seconds").value(val.barrier_seconds);
  w.key("drain_seconds").value(val.drain_seconds);
  w.key("dominant").value(val.dominant_loss);
  w.end_object();
  w.key("barrier_overhead_fraction").value(val.barrier_overhead_fraction);
  w.end_object();

  w.end_object();
  return w.str();
}

void ExecProfiler::merge(const ExecProfiler& other) {
  runs_.insert(runs_.end(), other.runs_.begin(), other.runs_.end());
}

// ------------------------------------------------------------ chrome trace --

namespace {

void slice(JsonWriter& w, std::int64_t pid, std::int64_t tid, double start_s,
           double dur_s, const char* name) {
  w.begin_object();
  w.key("ph").value("X");
  w.key("pid").value(pid);
  w.key("tid").value(tid);
  w.key("ts").value(start_s * 1e6);  // Chrome trace timestamps are microseconds
  w.key("dur").value(dur_s * 1e6);
  w.key("name").value(name);
  w.key("cat").value("exec");
}

void name_meta(JsonWriter& w, std::int64_t pid, std::int64_t tid, const char* key,
               const std::string& label) {
  w.begin_object();
  w.key("ph").value("M");
  w.key("pid").value(pid);
  w.key("tid").value(tid);
  w.key("name").value(key);
  w.key("args").begin_object();
  w.key("name").value(label);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string exec_chrome_trace(const ExecProfiler& ep) {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  std::int64_t pid = 0;
  for (const auto& r : ep.run_records()) {
    ++pid;
    name_meta(w, pid, 0, "process_name",
              "run " + std::to_string(pid) + " (" + r.backend + ")");
    name_meta(w, pid, 0, "thread_name", "coordinator");
    for (std::size_t i = 0; i < r.workers; ++i) {
      name_meta(w, pid, static_cast<std::int64_t>(i) + 1, "thread_name",
                "worker " + std::to_string(i));
    }

    std::size_t window_idx = 0;
    for (const auto& win : r.windows) {
      ++window_idx;
      if (win.wall_start >= 0) {
        slice(w, pid, 0, win.wall_start, win.elapsed, "window");
        w.key("args").begin_object();
        w.key("window").value(static_cast<std::uint64_t>(window_idx));
        w.key("start_ns").value(win.start_ns);
        w.key("end_ns").value(win.end_ns);
        w.key("events").value(win.events);
        w.end_object();
        w.end_object();
      }
      for (std::size_t i = 0; i < win.workers.size(); ++i) {
        const auto& s = win.workers[i];
        const std::int64_t tid = static_cast<std::int64_t>(i) + 1;
        if (s.dispatch_start >= 0 && s.dispatch_s > 0) {
          slice(w, pid, tid, s.dispatch_start, s.dispatch_s, "dispatch");
          w.key("args").begin_object();
          w.key("window").value(static_cast<std::uint64_t>(window_idx));
          w.key("events").value(s.events);
          w.end_object();
          w.end_object();
        }
        if (s.drain_start >= 0 && s.drain_s > 0) {
          slice(w, pid, tid, s.drain_start, s.drain_s, "drain");
          w.key("args").begin_object();
          w.key("window").value(static_cast<std::uint64_t>(window_idx));
          w.end_object();
          w.end_object();
        }
      }
    }
    for (const auto& b : r.control_batches) {
      if (b.wall_start < 0) continue;
      if (b.fold_s > 0) {
        slice(w, pid, 0, b.wall_start, b.fold_s, "fold");
        w.key("args").begin_object();
        w.end_object();
        w.end_object();
      }
      slice(w, pid, 0, b.wall_start + b.fold_s, b.control_s, "control");
      w.key("args").begin_object();
      w.key("events").value(b.events);
      w.end_object();
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  return w.str();
}

// --------------------------------------------------------------- dashboard --

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Fixed two decimals so SVG output is platform-stable.
std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fmt_compact(double v) {
  char buf[48];
  if (v == 0) return "0";
  const double a = v < 0 ? -v : v;
  if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else if (a >= 10 || a == static_cast<double>(static_cast<std::int64_t>(a))) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

void open_card(std::string& out, const std::string& heading, const std::string& note) {
  out += "<div class=\"card\">\n<h2>" + html_escape(heading) + "</h2>\n";
  if (!note.empty()) out += "<p class=\"stats\">" + note + "</p>\n";
}

}  // namespace

std::string exec_dashboard(const ExecProfiler& ep, const std::string& title) {
  std::string out;
  out +=
      "<!DOCTYPE html>\n"
      "<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n";
  out += "<title>" + html_escape(title) + "</title>\n";
  out +=
      "<style>\n"
      ".viz-root {\n"
      "  color-scheme: light;\n"
      "  --surface-1: #fcfcfb; --page: #f9f9f7;\n"
      "  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;\n"
      "  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);\n"
      "  --series-1: #2a78d6; --heat: 42,120,214;\n"
      "}\n"
      "@media (prefers-color-scheme: dark) {\n"
      "  :root:where(:not([data-theme=\"light\"])) .viz-root {\n"
      "    color-scheme: dark;\n"
      "    --surface-1: #1a1a19; --page: #0d0d0d;\n"
      "    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;\n"
      "    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);\n"
      "    --series-1: #3987e5; --heat: 57,135,229;\n"
      "  }\n"
      "}\n"
      ":root[data-theme=\"dark\"] .viz-root {\n"
      "  color-scheme: dark;\n"
      "  --surface-1: #1a1a19; --page: #0d0d0d;\n"
      "  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;\n"
      "  --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);\n"
      "  --series-1: #3987e5; --heat: 57,135,229;\n"
      "}\n"
      "body { margin: 0; font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif; }\n"
      ".viz-root { background: var(--page); color: var(--text-primary);\n"
      "  min-height: 100vh; padding: 24px; box-sizing: border-box; }\n"
      "h1 { font-size: 20px; margin: 0 0 4px; }\n"
      ".sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }\n"
      ".tiles { display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 24px; }\n"
      ".tile { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 12px 16px; min-width: 110px; }\n"
      ".tile .v { font-size: 24px; }\n"
      ".tile .k { color: var(--text-secondary); font-size: 12px; }\n"
      ".card { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 16px; margin-bottom: 16px; max-width: 820px; }\n"
      ".card h2 { font-size: 14px; margin: 0 0 4px; font-weight: 600; }\n"
      ".stats { color: var(--text-secondary); font-size: 12px; margin: 0 0 10px; }\n"
      ".stats b { color: var(--text-primary); font-weight: 600; }\n"
      "svg { display: block; width: 100%; height: auto; }\n"
      ".grid { stroke: var(--grid); stroke-width: 1; }\n"
      ".axis { stroke: var(--axis); stroke-width: 1; }\n"
      ".tick { fill: var(--muted); font-size: 10px; font-variant-numeric: tabular-nums; }\n"
      ".cell { stroke: var(--grid); stroke-width: 0.5; }\n"
      ".bar { fill: var(--series-1); }\n"
      "</style>\n</head>\n<body>\n<div class=\"viz-root\">\n";

  out += "<h1>" + html_escape(title) + "</h1>\n";
  out += "<p class=\"sub\">Execution profile &#183; wall-clock runtime observability "
         "&#183; nondeterministic export (exempt from byte identity)</p>\n";

  const ExecProfiler::Validation val = ep.validate();
  out += "<div class=\"tiles\">\n";
  const std::pair<const char*, std::string> tiles[] = {
      {"runs", fmt_compact(static_cast<double>(ep.runs()))},
      {"windows", fmt_compact(static_cast<double>(ep.windows()))},
      {"workers", fmt_compact(static_cast<double>(ep.max_workers()))},
      {"elapsed (s)", fmt2(ep.elapsed_seconds())},
      {"measured speedup", fmt2(val.measured_speedup)},
      {"predicted speedup", fmt2(val.predicted_speedup)},
      {"barrier overhead", fmt2(val.barrier_overhead_fraction * 100) + "%"},
      {"dominant loss", val.dominant_loss},
  };
  for (const auto& [k, v] : tiles) {
    out += "<div class=\"tile\"><div class=\"v\">" + html_escape(v) +
           "</div><div class=\"k\">" + k + "</div></div>\n";
  }
  out += "</div>\n";

  // --- worker timeline gantt ----------------------------------------------
  {
    // The run with the most workers has the most interesting timeline;
    // ties go to the first (run-index order).
    const ExecProfiler::Run* best = nullptr;
    for (const auto& r : ep.run_records()) {
      if (best == nullptr || r.workers > best->workers) best = &r;
    }
    open_card(out, "Worker timeline",
              best != nullptr
                  ? "one row per worker &#183; <b>dispatch</b> solid, <b>drain</b> "
                    "faded; gaps are barrier waits (first " +
                        std::to_string(ExecProfiler::kMaxSliceWindows) + " windows)"
                  : "");
    if (best != nullptr && !best->windows.empty()) {
      double span = 0;
      for (const auto& win : best->windows) {
        for (const auto& s : win.workers) {
          if (s.dispatch_start >= 0) span = std::max(span, s.dispatch_start + s.dispatch_s);
          if (s.drain_start >= 0) span = std::max(span, s.drain_start + s.drain_s);
        }
      }
      if (span <= 0) span = best->elapsed > 0 ? best->elapsed : 1;
      const double lw = 64, pw = 740, rh = 16;
      const double hpx = rh * static_cast<double>(best->workers) + 24;
      out += "<svg viewBox=\"0 0 " + fmt2(lw + pw + 8) + " " + fmt2(hpx) +
             "\" role=\"img\">\n";
      for (std::size_t i = 0; i < best->workers; ++i) {
        out += "<text class=\"tick\" x=\"" + fmt2(lw - 6) + "\" y=\"" +
               fmt2(rh * static_cast<double>(i) + rh * 0.7) +
               "\" text-anchor=\"end\">w" + std::to_string(i) + "</text>\n";
      }
      for (const auto& win : best->windows) {
        for (std::size_t i = 0; i < win.workers.size(); ++i) {
          const auto& s = win.workers[i];
          const double y = rh * static_cast<double>(i) + 2;
          if (s.dispatch_start >= 0 && s.dispatch_s > 0) {
            out += "<rect class=\"cell\" x=\"" + fmt2(lw + pw * s.dispatch_start / span) +
                   "\" y=\"" + fmt2(y) + "\" width=\"" +
                   fmt2(std::max(0.5, pw * s.dispatch_s / span)) + "\" height=\"" +
                   fmt2(rh - 4) + "\" fill=\"rgba(var(--heat),0.9)\"/>\n";
          }
          if (s.drain_start >= 0 && s.drain_s > 0) {
            out += "<rect class=\"cell\" x=\"" + fmt2(lw + pw * s.drain_start / span) +
                   "\" y=\"" + fmt2(y) + "\" width=\"" +
                   fmt2(std::max(0.5, pw * s.drain_s / span)) + "\" height=\"" +
                   fmt2(rh - 4) + "\" fill=\"rgba(var(--heat),0.35)\"/>\n";
          }
        }
      }
      out += "<text class=\"tick\" x=\"" + fmt2(lw) + "\" y=\"" + fmt2(hpx - 8) +
             "\">0 ms</text>\n";
      out += "<text class=\"tick\" x=\"" + fmt2(lw + pw) + "\" y=\"" + fmt2(hpx - 8) +
             "\" text-anchor=\"end\">" + html_escape(fmt2(span * 1e3)) + " ms</text>\n";
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  // --- window-occupancy histogram -----------------------------------------
  {
    const auto hist = ep.occupancy_histogram();
    std::uint64_t mx = 0;
    for (const auto& [b, n] : hist) {
      (void)b;
      mx = std::max(mx, n);
    }
    open_card(out, "Window occupancy",
              "events dispatched per barrier window, power-of-two buckets "
              "(occupancy drives barrier amortization)");
    if (!hist.empty() && mx > 0) {
      const double lw = 64, bw = 28, bh = 120;
      const double wpx = lw + bw * static_cast<double>(hist.size()) + 8;
      out += "<svg viewBox=\"0 0 " + fmt2(wpx) + " " + fmt2(bh + 28) + "\" role=\"img\">\n";
      std::size_t i = 0;
      for (const auto& [bucket, n] : hist) {
        const double h = bh * static_cast<double>(n) / static_cast<double>(mx);
        const double x = lw + bw * static_cast<double>(i);
        out += "<rect class=\"bar\" x=\"" + fmt2(x + 2) + "\" y=\"" + fmt2(bh - h) +
               "\" width=\"" + fmt2(bw - 4) + "\" height=\"" + fmt2(h) +
               "\"><title>" + std::to_string(n) + " windows</title></rect>\n";
        const std::uint64_t lo = bucket == 0 ? 0 : (1ull << (bucket - 1));
        out += "<text class=\"tick\" x=\"" + fmt2(x + bw / 2) + "\" y=\"" +
               fmt2(bh + 12) + "\" text-anchor=\"middle\">" +
               html_escape(fmt_compact(static_cast<double>(lo))) + "</text>\n";
        ++i;
      }
      out += "<line class=\"axis\" x1=\"" + fmt2(lw) + "\" y1=\"" + fmt2(bh) +
             "\" x2=\"" + fmt2(wpx - 8) + "\" y2=\"" + fmt2(bh) + "\"/>\n";
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  // --- stall breakdown ------------------------------------------------------
  {
    const auto shares = ep.worker_shares();
    open_card(out, "Stall breakdown",
              "per-worker wall time: <b>dispatch+drain</b> (solid) vs <b>barrier "
              "wait</b> (faded)");
    if (!shares.empty()) {
      double mx = 0;
      for (const auto& s : shares) mx = std::max(mx, s.busy_s + s.idle_s);
      if (mx <= 0) mx = 1;
      const double lw = 64, pw = 700, rh = 18;
      const double hpx = rh * static_cast<double>(shares.size()) + 8;
      out += "<svg viewBox=\"0 0 " + fmt2(lw + pw + 56) + " " + fmt2(hpx) +
             "\" role=\"img\">\n";
      for (std::size_t i = 0; i < shares.size(); ++i) {
        const double y = rh * static_cast<double>(i) + 2;
        const double busy_w = pw * shares[i].busy_s / mx;
        const double idle_w = pw * shares[i].idle_s / mx;
        out += "<text class=\"tick\" x=\"" + fmt2(lw - 6) + "\" y=\"" +
               fmt2(y + rh * 0.6) + "\" text-anchor=\"end\">w" + std::to_string(i) +
               "</text>\n";
        out += "<rect class=\"cell\" x=\"" + fmt2(lw) + "\" y=\"" + fmt2(y) +
               "\" width=\"" + fmt2(busy_w) + "\" height=\"" + fmt2(rh - 4) +
               "\" fill=\"rgba(var(--heat),0.9)\"/>\n";
        out += "<rect class=\"cell\" x=\"" + fmt2(lw + busy_w) + "\" y=\"" + fmt2(y) +
               "\" width=\"" + fmt2(idle_w) + "\" height=\"" + fmt2(rh - 4) +
               "\" fill=\"rgba(var(--heat),0.25)\"/>\n";
        const double total = shares[i].busy_s + shares[i].idle_s;
        out += "<text class=\"tick\" x=\"" + fmt2(lw + busy_w + idle_w + 6) + "\" y=\"" +
               fmt2(y + rh * 0.6) + "\">" +
               html_escape(fmt2(total > 0 ? 100 * shares[i].busy_s / total : 0)) +
               "% busy</text>\n";
      }
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  out += "</div>\n</body>\n</html>\n";
  return out;
}

}  // namespace tussle::sim
