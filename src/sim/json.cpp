#include "sim/json.hpp"

#include <cmath>
#include <cstdio>

namespace tussle::sim {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Integral values (counters, event totals) read better without ".0", and
  // 2^53 bounds where every integer is exactly representable anyway.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // %.17g round-trips but often carries noise digits; prefer the shortest
    // of %.15g / %.16g that still parses back exactly.
    for (int prec = 15; prec <= 16; ++prec) {
      char shorter[40];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      double back = 0;
      std::sscanf(shorter, "%lf", &back);
      if (back == v) {
        return shorter;
      }
    }
  }
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  has_elem_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  has_elem_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  out_ += json_quote(name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  out_ += json_quote(s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  separate();
  out_ += fragment;
  return *this;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;  // value directly follows its key, no comma
    return;
  }
  if (!has_elem_.empty() && has_elem_.back()) out_.push_back(',');
  if (!has_elem_.empty()) has_elem_.back() = true;
}

}  // namespace tussle::sim
