// Minimal JSON emission for the observability layer.
//
// The metric registry, the JSONL trace sink and the bench harness all emit
// machine-readable output; this writer is the one place that knows JSON's
// escaping and number-formatting rules. It builds a single value into a
// string — no DOM, no allocation beyond the output buffer — which is all
// the simulator needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tussle::sim {

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters) and
/// returns it wrapped in double quotes.
std::string json_quote(std::string_view s);

/// Renders a double the way the rest of the tooling expects: integral
/// values print without a fractional part, everything else with enough
/// digits to round-trip. NaN/Inf (not representable in JSON) print as null.
std::string json_number(double v);

/// Streaming writer for one JSON value. Handles comma placement; the caller
/// supplies structure via begin/end calls. Misuse (e.g. a key outside an
/// object) is a programming error and is not diagnosed.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"name":` — must be followed by exactly one value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices a pre-rendered JSON value (e.g. another writer's str()) in
  /// value position. The fragment is trusted, not validated.
  JsonWriter& raw(std::string_view fragment);

  const std::string& str() const noexcept { return out_; }

 private:
  void separate();

  std::string out_;
  // Per-nesting-level flag: has this container already emitted an element?
  std::vector<bool> has_elem_{false};
  bool after_key_ = false;
};

}  // namespace tussle::sim
