#include "sim/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "sim/json.hpp"

namespace tussle::sim {

double wall_now_seconds() noexcept {
  // Wall time is reported to humans and JSON files, never read back into
  // simulation state (see the detlint allowlist entry for this file).
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

namespace {

const char* or_untagged(const char* s) noexcept { return s != nullptr ? s : "(untagged)"; }

}  // namespace

void LoopProfiler::record(const TaskTag& tag, double wall_seconds) noexcept {
  total_events_ += 1;
  total_wall_ += wall_seconds;
  for (Cell& c : cells_) {
    if (c.component == tag.component && c.kind == tag.kind) {
      c.events += 1;
      c.wall += wall_seconds;
      return;
    }
  }
  cells_.push_back(Cell{tag.component, tag.kind, 1, wall_seconds});
}

std::vector<LoopProfiler::Hotspot> LoopProfiler::hotspots(std::size_t k) const {
  std::vector<Hotspot> out;
  out.reserve(cells_.size());
  for (const Cell& c : cells_) {
    Hotspot h;
    h.component = or_untagged(c.component);
    h.kind = or_untagged(c.kind);
    h.events = c.events;
    h.wall_seconds = c.wall;
    h.share = total_wall_ > 0 ? c.wall / total_wall_ : 0;
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
    if (a.wall_seconds != b.wall_seconds) return a.wall_seconds > b.wall_seconds;
    if (a.component != b.component) return a.component < b.component;
    return a.kind < b.kind;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::string LoopProfiler::hotspots_json(std::size_t k) const {
  JsonWriter w;
  w.begin_array();
  for (const Hotspot& h : hotspots(k)) {
    w.begin_object();
    w.key("component").value(std::string_view(h.component));
    w.key("kind").value(std::string_view(h.kind));
    w.key("events").value(static_cast<std::uint64_t>(h.events));
    w.key("wall_seconds").value(h.wall_seconds);
    w.key("share").value(h.share);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

std::string LoopProfiler::report(std::size_t k) const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-24s %-16s %12s %12s %7s\n", "component", "kind",
                "events", "wall-ms", "share");
  out += buf;
  for (const Hotspot& h : hotspots(k)) {
    std::snprintf(buf, sizeof(buf), "%-24s %-16s %12llu %12.3f %6.1f%%\n",
                  h.component.c_str(), h.kind.c_str(),
                  static_cast<unsigned long long>(h.events), h.wall_seconds * 1e3,
                  h.share * 100.0);
    out += buf;
  }
  return out;
}

void LoopProfiler::merge(const LoopProfiler& other) {
  total_events_ += other.total_events_;
  total_wall_ += other.total_wall_;
  for (const Cell& oc : other.cells_) {
    bool found = false;
    for (Cell& c : cells_) {
      if (c.component == oc.component && c.kind == oc.kind) {
        c.events += oc.events;
        c.wall += oc.wall;
        found = true;
        break;
      }
    }
    if (!found) cells_.push_back(oc);
  }
}

void LoopProfiler::reset() noexcept {
  cells_.clear();
  total_events_ = 0;
  total_wall_ = 0;
}

}  // namespace tussle::sim
