// Causal span tracing: the "why" layer of the observability stack.
//
// PR 2's flat trace events say *that* a packet was dropped or a transfer
// posted; spans say *which decision chain caused it*. A span is a named
// interval of simulated time with a parent link, so a run produces a forest
// of causal trees — flow lifetime → per-hop forwarding → policy / firewall /
// pricing / trust decisions → ledger settlements — in the style of X-Trace's
// cross-layer propagation and Shadow's causal instrumentation.
//
// Determinism contract (the same one the sweep engine enforces):
//  - span ids are dense sequence numbers in creation order, so a run's span
//    set is a pure function of its event sequence — never of wall time,
//    scheduling, or which worker executed the run (detlint's
//    span-wall-clock check statically bans wall clocks in this module);
//  - each sweep run records into its own SpanTracer and the results merge
//    in run-index order with deterministic id remapping, so exported output
//    is bit-identical at any --jobs count;
//  - an unattached tracer costs the instrumented hot paths one null-pointer
//    branch per decision point (the pointer, not this class, is the guard).
//
// Cross-event causality uses two mechanisms:
//  - an explicit *active-span stack* (push/pop, or the ScopedSpan RAII
//    helper) for synchronous call chains — a ledger transfer performed
//    inside a firewall decision lands under that decision's span;
//  - a uid-keyed registry for packets, whose lifetime crosses scheduled
//    events (enqueue → serialize → propagate → receive): each forwarding
//    hop looks the packet's span up by uid and re-establishes context.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace tussle::sim {

/// Dense 1-based span identifier; 0 means "no span" (root).
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// One node of the causal tree. Start/end are simulated time; synchronous
/// decisions are zero-length, which is fine — causality, not duration, is
/// the payload.
struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  SimTime start;
  SimTime end;
  bool closed = false;            ///< end() was called (exports clamp open spans)
  std::string component;          ///< subsystem, e.g. "net.flow", "econ.ledger"
  std::string name;               ///< short stable identifier, e.g. "hop", "transfer"
  std::vector<TraceField> attrs;  ///< typed attributes, emission order preserved
};

class SpanTracer {
 public:
  /// Opens a span as a child of the current active span (or a root when the
  /// stack is empty). Does NOT push it onto the active stack.
  SpanId begin(SimTime now, std::string_view component, std::string_view name,
               std::initializer_list<TraceField> attrs = {});

  /// Opens a span under an explicit parent (kNoSpan = root).
  SpanId begin_under(SpanId parent, SimTime now, std::string_view component,
                     std::string_view name, std::initializer_list<TraceField> attrs = {});

  /// Closes a span. Safe to call once per id; later annotate() still works.
  void end(SpanId id, SimTime now);

  /// Zero-length child of the current active span — the span analogue of a
  /// typed trace event (ledger transfers, hijack acceptances, re-routes).
  SpanId instant(SimTime now, std::string_view component, std::string_view name,
                 std::initializer_list<TraceField> attrs = {});
  /// Variant for call sites outside the simulator (ledger, BGP at setup
  /// time): stamps the tracer's last observed sim time.
  SpanId instant(std::string_view component, std::string_view name,
                 std::initializer_list<TraceField> attrs = {});

  void annotate(SpanId id, TraceField field);

  // --- active-span stack (synchronous causality) -------------------------
  SpanId current() const noexcept { return stack_.empty() ? kNoSpan : stack_.back(); }
  void push(SpanId id) { stack_.push_back(id); }
  void pop() noexcept {
    if (!stack_.empty()) stack_.pop_back();
  }

  // --- packet/flow registry (cross-event causality) ----------------------
  /// The flow-lifetime span for `flow`, created on first use as a root.
  SpanId flow_span(SimTime now, std::uint64_t flow);
  /// Registers `uid`'s packet span as a child of its flow span.
  SpanId packet_span(SimTime now, std::uint64_t uid, std::uint64_t flow);
  /// Looks up a live packet span; kNoSpan when the uid was never registered.
  SpanId find_packet(std::uint64_t uid) const noexcept;
  /// Closes a packet span (delivery or terminal drop) and stretches the
  /// owning flow span to cover it.
  void end_packet(std::uint64_t uid, SimTime now);

  /// Last sim time passed to any begin/end/instant — the "current time" for
  /// components that cannot see the simulator clock.
  SimTime last_time() const noexcept { return last_time_; }

  const std::vector<Span>& spans() const noexcept { return spans_; }
  bool empty() const noexcept { return spans_.empty(); }
  std::size_t size() const noexcept { return spans_.size(); }

  /// Folds `other`'s spans into this tracer, remapping ids by a fixed
  /// offset (ids are dense, so offset + id stays dense). The sweep engine
  /// merges per-run tracers in run-index order; the result is therefore
  /// schedule-independent.
  void merge(const SpanTracer& other);

  void clear();

 private:
  SpanId next_id() noexcept { return static_cast<SpanId>(spans_.size()) + 1; }
  Span& span_of(SpanId id) { return spans_[id - 1]; }

  std::vector<Span> spans_;       // index i holds id i+1
  std::vector<SpanId> stack_;
  std::map<std::uint64_t, SpanId> flow_spans_;
  std::map<std::uint64_t, SpanId> packet_spans_;  // live (unclosed) packets only
  SimTime last_time_;
};

/// RAII guard for synchronous decision spans: begins a span, pushes it as
/// the active span, and ends/pops on destruction at the same sim time the
/// enclosing code last stamped (synchronous code cannot advance the clock).
/// Null-tracer-safe so call sites stay one branch when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, SimTime now, std::string_view component,
             std::string_view name, std::initializer_list<TraceField> attrs = {})
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      id_ = tracer_->begin(now, component, name, attrs);
      tracer_->push(id_);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->pop();
      tracer_->end(id_, tracer_->last_time());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const noexcept { return id_; }
  void annotate(TraceField field) {
    if (tracer_ != nullptr) tracer_->annotate(id_, std::move(field));
  }

 private:
  SpanTracer* tracer_ = nullptr;
  SpanId id_ = kNoSpan;
};

// --- exporters ------------------------------------------------------------

/// Renders spans as one Chrome trace-event JSON object (loadable in
/// Perfetto / chrome://tracing): {"traceEvents": [...], ...}. Every span
/// becomes a complete ("X") event whose ts/dur are sim-time microseconds;
/// each causal tree is its own named track, so parent/child nesting shows
/// as slice containment. args carry the span/parent ids and attributes.
std::string to_chrome_trace(const std::vector<Span>& spans);

/// Indented text rendering of the causal forest — one line per span with
/// sim-time bounds and attributes; a flamegraph you can read in a terminal.
std::string span_tree_report(const std::vector<Span>& spans);

/// Walks one flow's causal tree and narrates it: the path taken hop by hop,
/// every decision for or against the flow (filters, re-routes, pricing),
/// and who was compensated as a consequence (ledger transfers found in the
/// subtree, summed by recipient). Returns a human-readable report;
/// "no spans recorded for flow N" when the flow is unknown.
std::string explain_flow(const std::vector<Span>& spans, std::uint64_t flow);

}  // namespace tussle::sim
