// Scale profiler: the PDES-readiness measurement pass.
//
// ROADMAP items 1–2 call for a million-actor data plane and in-run
// conservative parallel execution (AS-sharded, barrier-synchronized,
// link latency as lookahead). Before rebuilding the engine around that
// design, this profiler measures — on today's serial engine — exactly the
// quantities the split will live or die by:
//
//  (a) per-shard load: event counts and dispatch shares per provisional
//      shard (the AS id the ShardAuditor attributes each event to), both
//      in total and on an aligned sim-time tick grid (the shard-load
//      heatmap in the dashboard);
//  (b) the cross-shard traffic matrix: which shard schedules events into
//      which — the PDES communication graph — with the minimum observed
//      scheduling delay per (from, to) pair, plus the *static* lookahead
//      registry (min cross-shard link latency per shard pair, registered
//      by Network::connect);
//  (c) critical-path analysis over event causality: an event scheduled
//      while another event is dispatching is its causal child, so the
//      longest schedule-parent chain is the span of the event DAG and
//      work/span bounds any parallel speedup;
//  (d) memory observability: event-queue depth histograms, per-component
//      allocation counters for event/packet churn, and bytes-per-actor
//      estimates — the baseline the struct-of-arrays refactor must beat.
//
// It also *predicts* barrier-round PDES speedup at k worker shards by
// replaying the recorded per-window shard loads through a virtual
// barrier-synchronized executor: sim time is cut into lookahead windows,
// real shards are LPT-packed onto k virtual shards, and each window costs
// the maximum virtual-shard load (the barrier waits for the slowest),
// plus any unclaimed/shared events, which a conservative design must run
// with every shard quiescent. speedup(k) = work / cost(k), capped by the
// work/span causality bound; k = 1 is exactly 1.0 by construction and the
// k → ∞ entry is the pure work/span bound.
//
// Determinism contract (same as spans/timeseries/audit — detlint's
// scale-wall-clock check enforces the first rule statically):
//  - nothing here may touch a wall clock, draw randomness, or schedule:
//    every recorded quantity is a pure function of the event sequence, so
//    "dispatch share" means event-count share, never wall time;
//  - all accumulation structures that survive to a merge point are
//    ordered containers, so reports are byte-identical across runs;
//  - sweep runs record into per-run instances merged in run-index order,
//    so exports are byte-identical at any --jobs;
//  - an unattached profiler costs the simulator one null-pointer branch
//    per hook site (the pointer, not this class, is the guard).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/profiler.hpp"
#include "sim/shard_audit.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

class ScaleProfiler {
 public:
  // --- configuration (set before recording) -------------------------------
  /// Tick interval for the shard-load time grid (default 10 ms of sim
  /// time). Must be positive; applies to events recorded afterwards.
  void set_tick(Duration tick);
  Duration tick() const noexcept { return tick_; }

  // --- simulator hooks -----------------------------------------------------
  /// An event was scheduled: `id` is the EventId value, `now` the schedule
  /// time, `at` the fire time, `origin` the shard the scheduling event had
  /// claimed (kNoShard during setup). Records causal depth, origin, and
  /// event-allocation churn per component.
  void on_schedule(std::uint64_t id, SimTime now, SimTime at, const TaskTag& tag,
                   ShardId origin);
  /// A pending event was cancelled before firing.
  void on_cancel(std::uint64_t id);
  /// Dispatch is about to run event `id`; `queue_depth` is the number of
  /// events still pending (sampled into the queue-depth histogram).
  void begin_event(std::uint64_t id, SimTime now, std::size_t queue_depth,
                   const TaskTag& tag);
  /// The event's handler returned; `shard` is the shard the ShardAuditor
  /// saw claim it (kNoShard when unclaimed or no auditor is attached).
  void end_event(ShardId shard);

  // --- world-registration hooks (Network / component builders) ------------
  /// Registers a link between two provisional shards with its propagation
  /// latency; cross-shard minima become the PDES lookahead distribution.
  /// Same-shard registrations are ignored.
  void register_link(ShardId a, ShardId b, Duration latency);
  /// Counts one actor of `kind` (node, link, agent…) at an estimated
  /// resident size — the bytes-per-actor baseline for the SoA refactor.
  void register_actor(const char* kind, std::uint64_t bytes);
  /// Counts one transient allocation of `kind` (packet churn and the
  /// like). Event-control-block churn is counted automatically.
  void count_alloc(const char* kind, std::uint64_t bytes);

  // --- results -------------------------------------------------------------
  /// Total events dispatched (the "work" of the work/span bound).
  std::uint64_t work() const noexcept;
  std::uint64_t events_scheduled() const noexcept;
  std::uint64_t events_cancelled() const noexcept;
  /// Longest causal chain seen in any single merged run (the "span").
  std::uint64_t critical_path_length() const noexcept;
  /// Sum of per-run spans: the serial composition the pooled work/span
  /// ratio divides by, so replicas do not fake parallelism between runs.
  std::uint64_t span_total() const noexcept;
  /// Pooled work/span ratio: the theoretical max speedup, ∞ processors.
  double work_span_ratio() const noexcept;
  /// Runs folded into this profiler (a recording instance counts itself
  /// once work was recorded).
  std::uint64_t runs() const noexcept;

  /// Per-shard dispatched-event totals (kNoShard / kSharedShard included).
  const std::map<ShardId, std::uint64_t>& shard_events() const noexcept {
    return shard_events_;
  }
  /// max shard share / mean shard share over real shards (1.0 = perfectly
  /// balanced, 0 when fewer than one real shard saw events).
  double imbalance_ratio() const noexcept;

  struct TrafficEdge {
    std::uint64_t events = 0;
    std::int64_t min_delay_ns = 0;  ///< min (fire − schedule) time observed
  };
  const std::map<std::pair<ShardId, ShardId>, TrafficEdge>& traffic() const noexcept {
    return traffic_;
  }
  /// Dispatched events whose schedule-time origin shard differs from the
  /// dispatching shard — the PDES cross-shard message volume.
  std::uint64_t cross_shard_events() const noexcept;

  /// Min registered cross-shard link latency (ns) per normalized (a < b)
  /// shard pair — the static lookahead distribution.
  const std::map<std::pair<ShardId, ShardId>, std::int64_t>& lookahead_links() const noexcept {
    return links_;
  }
  /// Barrier-window width: the min registered cross-shard latency, else
  /// the tick interval. Fixed at the first dispatched event.
  std::int64_t window_ns() const noexcept;

  /// Queue-depth/occupancy summary; histogram buckets are power-of-two
  /// (bucket b covers depths [2^(b−1), 2^b − 1], bucket 0 = depth 0).
  struct QueueStats {
    std::uint64_t samples = 0;
    std::uint64_t max_depth = 0;
    double mean_depth = 0;
    std::map<std::uint32_t, std::uint64_t> histogram;  ///< log2 bucket -> events
  };
  QueueStats queue_stats() const;

  /// Causal-depth profile, same power-of-two bucketing as queue depth.
  const std::map<std::uint32_t, std::uint64_t>& depth_profile() const noexcept {
    return depth_hist_;
  }

  struct Tally {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };
  const std::map<std::string, Tally>& allocs() const noexcept { return allocs_; }
  const std::map<std::string, Tally>& actors() const noexcept { return actors_; }

  /// The virtual barrier-executor prediction: (k, predicted speedup) for
  /// k ∈ {1,2,3,4,6,8,12,16,24,32,48,64}, plus k = 0 meaning ∞ (the pure
  /// work/span bound). Empty when no events were recorded.
  std::vector<std::pair<std::uint64_t, double>> speedup_curve() const;
  /// Predicted speedup at one k (0 = ∞). 0 when nothing was recorded.
  double speedup_at(std::uint64_t k) const;

  /// Shard-load time grid: (tick index, shard) -> events dispatched in
  /// that tick. Tick index i covers [i·tick, (i+1)·tick).
  const std::map<std::pair<std::int64_t, ShardId>, std::uint64_t>& tick_load() const noexcept {
    return tick_load_;
  }

  /// Machine-readable report. Every container behind it is ordered, so the
  /// output is a pure function of the recorded event sequence.
  std::string report_json() const;

  /// Folds another profiler's results into this one. Speedup costs and
  /// spans are finalized per source run before pooling (Σwork / Σcost),
  /// so merging is associative and run-index-order merges are
  /// schedule-independent.
  void merge(const ScaleProfiler& other);

 private:
  struct Pending {
    std::uint64_t depth = 1;      ///< causal depth this event will run at
    ShardId origin = kNoShard;    ///< shard claimed when it was scheduled
    std::int64_t sched_ns = 0;    ///< schedule time
  };

  /// Barrier costs of *this instance's own recording* (not merged runs),
  /// keyed by k (0 = ∞).
  std::map<std::uint64_t, std::uint64_t> own_costs() const;
  /// Own + merged barrier costs.
  std::map<std::uint64_t, std::uint64_t> total_costs() const;
  const std::string& tail_label() const noexcept;
  std::int64_t tail_time_ns() const noexcept;

  // --- configuration / in-flight state ---
  Duration tick_ = Duration::millis(10);
  std::map<std::uint64_t, Pending> pending_;
  bool in_event_ = false;
  Pending cur_;                 ///< the dispatching event's pending record
  std::int64_t cur_time_ns_ = 0;
  std::int64_t frozen_window_ns_ = 0;  ///< fixed at first dispatch
  bool recorded_ = false;       ///< this instance dispatched at least one event

  // --- raw per-run recording (summed on merge) ---
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t work_ = 0;
  std::uint64_t cross_ = 0;
  std::map<ShardId, std::uint64_t> shard_events_;
  std::map<std::pair<std::int64_t, ShardId>, std::uint64_t> tick_load_;
  std::map<std::pair<std::int64_t, ShardId>, std::uint64_t> window_load_;
  std::map<std::pair<ShardId, ShardId>, TrafficEdge> traffic_;
  std::map<std::pair<ShardId, ShardId>, std::int64_t> links_;
  std::map<std::uint32_t, std::uint64_t> depth_hist_;
  std::map<std::uint32_t, std::uint64_t> queue_hist_;
  std::uint64_t queue_samples_ = 0;
  std::uint64_t queue_max_ = 0;
  std::uint64_t queue_sum_ = 0;
  std::map<std::string, Tally> allocs_;
  std::map<std::string, Tally> actors_;

  // --- own critical path (this instance's recording) ---
  std::uint64_t own_span_ = 0;
  std::string own_tail_;
  std::int64_t own_tail_ns_ = 0;

  // --- merged-run accumulators (finalized results folded by merge()) ---
  std::uint64_t merged_runs_ = 0;
  std::uint64_t merged_span_total_ = 0;
  std::uint64_t merged_span_max_ = 0;
  std::string merged_tail_;
  std::int64_t merged_tail_ns_ = 0;
  std::int64_t merged_window_ns_ = 0;
  std::map<std::uint64_t, std::uint64_t> merged_costs_;
};

/// Self-contained zero-JS HTML dashboard section: stat tiles, shard-load
/// heatmap (tick × shard), cross-shard traffic matrix, predicted
/// speedup-vs-k curve, and the queue-depth histogram. Byte-identical for a
/// given profiler state.
std::string scale_dashboard(const ScaleProfiler& sp, const std::string& title);

}  // namespace tussle::sim
