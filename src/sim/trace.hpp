// Lightweight component-tagged trace log.
//
// The tussle experiments mostly report aggregate metrics, but protocol
// debugging needs an ordered record of what happened. Two shapes coexist:
// free-text messages (TUSSLE_TRACE) and typed events with key/value fields
// (TUSSLE_TRACE_EVENT) — the latter is what the flow-provenance points
// (enqueue / forward / drop / deliver) emit, so a single packet's fate can
// be reconstructed from a JSONL trace file. Tracing is off by default and
// costs one branch per call site when disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "sim/time.hpp"

namespace tussle::sim {

enum class TraceLevel { kDebug, kInfo, kWarn, kError };

std::string_view to_string(TraceLevel level) noexcept;

/// One typed key/value attribute of a trace event. Integral values (ids,
/// counts) keep full 64-bit precision instead of decaying to double.
struct TraceField {
  using Value = std::variant<std::string, std::int64_t, double, bool>;

  TraceField(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  TraceField(std::string k, std::string_view v) : key(std::move(k)), value(std::string(v)) {}
  TraceField(std::string k, const char* v) : key(std::move(k)), value(std::string(v)) {}
  TraceField(std::string k, double v) : key(std::move(k)), value(v) {}
  TraceField(std::string k, bool v) : key(std::move(k)), value(v) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  TraceField(std::string k, T v) : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}

  std::string key;
  Value value;
};

/// Collects trace records; scenarios can attach a sink (stderr, memory, a
/// test expectation, a JSONL file) at run time.
class Tracer {
 public:
  struct Record {
    SimTime time;
    TraceLevel level;
    std::string component;
    /// Free text for message traces; the event name ("drop", "deliver")
    /// for typed events.
    std::string message;
    /// Typed attributes, in emission order; empty for message traces.
    std::vector<TraceField> fields;
  };
  using Sink = std::function<void(const Record&)>;

  void set_level(TraceLevel level) noexcept { level_ = level; }
  TraceLevel level() const noexcept { return level_; }
  void enable(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }
  bool enabled_for(TraceLevel level) const noexcept { return enabled_ && level >= level_; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  const Sink& sink() const noexcept { return sink_; }

  /// Keeps records in memory (for tests); cleared by drain().
  void keep_records(bool on) noexcept { keep_ = on; }
  std::vector<Record> drain();

  void emit(SimTime now, TraceLevel level, std::string_view component, std::string message);

  /// Typed event with fields. `event` is a short stable identifier
  /// ("enqueue", "drop"); field order is preserved into sinks.
  void emit_event(SimTime now, TraceLevel level, std::string_view component,
                  std::string_view event, std::initializer_list<TraceField> fields);

  /// Process-wide default tracer used by modules that are not handed one.
  static Tracer& global();

 private:
  void dispatch(Record rec);

  bool enabled_ = false;
  bool keep_ = false;
  TraceLevel level_ = TraceLevel::kInfo;
  Sink sink_;
  std::vector<Record> records_;
};

/// Renders one record as a single JSON line. Key order is stable:
/// t_ns, level, component, event, then each field in emission order.
std::string to_jsonl(const Tracer::Record& rec);

/// Sink that appends one JSON line per record to `os`. The stream must
/// outlive the sink's installation in the tracer.
Tracer::Sink make_jsonl_sink(std::ostream& os);

/// Convenience macro: evaluates the message expression only when tracing is
/// on for the level.
#define TUSSLE_TRACE(tracer, now, level, component, expr)                  \
  do {                                                                     \
    auto& t_ = (tracer);                                                   \
    if (t_.enabled_for(level)) {                                           \
      std::ostringstream os_;                                              \
      os_ << expr;                                                         \
      t_.emit((now), (level), (component), os_.str());                     \
    }                                                                      \
  } while (0)

/// Typed-event variant: the trailing arguments are brace-initialized
/// TraceFields, evaluated only when tracing is on for the level —
/// one branch when disabled, like TUSSLE_TRACE.
///
///   TUSSLE_TRACE_EVENT(tracer, now, TraceLevel::kInfo, "net.node", "drop",
///                      {"reason", "ttl"}, {"uid", p.uid});
#define TUSSLE_TRACE_EVENT(tracer, now, level, component, event, ...)      \
  do {                                                                     \
    auto& te_ = (tracer);                                                  \
    if (te_.enabled_for(level)) {                                          \
      te_.emit_event((now), (level), (component), (event), {__VA_ARGS__}); \
    }                                                                      \
  } while (0)

}  // namespace tussle::sim
