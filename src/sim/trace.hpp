// Lightweight component-tagged trace log.
//
// The tussle experiments mostly report aggregate metrics, but protocol
// debugging needs an ordered record of what happened. Tracing is off by
// default and costs one branch per call site when disabled.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace tussle::sim {

enum class TraceLevel { kDebug, kInfo, kWarn, kError };

std::string_view to_string(TraceLevel level) noexcept;

/// Collects trace records; scenarios can attach a sink (stderr, memory, a
/// test expectation) at run time.
class Tracer {
 public:
  struct Record {
    SimTime time;
    TraceLevel level;
    std::string component;
    std::string message;
  };
  using Sink = std::function<void(const Record&)>;

  void set_level(TraceLevel level) noexcept { level_ = level; }
  TraceLevel level() const noexcept { return level_; }
  void enable(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }
  bool enabled_for(TraceLevel level) const noexcept { return enabled_ && level >= level_; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Keeps records in memory (for tests); cleared by drain().
  void keep_records(bool on) noexcept { keep_ = on; }
  std::vector<Record> drain();

  void emit(SimTime now, TraceLevel level, std::string_view component, std::string message);

  /// Process-wide default tracer used by modules that are not handed one.
  static Tracer& global();

 private:
  bool enabled_ = false;
  bool keep_ = false;
  TraceLevel level_ = TraceLevel::kInfo;
  Sink sink_;
  std::vector<Record> records_;
};

/// Convenience macro: evaluates the message expression only when tracing is
/// on for the level.
#define TUSSLE_TRACE(tracer, now, level, component, expr)                  \
  do {                                                                     \
    auto& t_ = (tracer);                                                   \
    if (t_.enabled_for(level)) {                                           \
      std::ostringstream os_;                                              \
      os_ << expr;                                                         \
      t_.emit((now), (level), (component), os_.str());                     \
    }                                                                      \
  } while (0)

}  // namespace tussle::sim
