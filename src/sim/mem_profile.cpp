#include "sim/mem_profile.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

#include "sim/json.hpp"
#include "sim/scale_profile.hpp"

namespace tussle::sim {

namespace {

/// Power-of-two bucket: 0 -> 0, and bucket b covers [2^(b-1), 2^b - 1].
std::uint32_t log2_bucket(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(std::bit_width(v));
}

/// Negative durations cannot happen (sim time is monotone within a run),
/// but a defensive clamp keeps the bucket math total.
std::uint32_t duration_bucket(std::int64_t ns) noexcept {
  return log2_bucket(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
}

std::string shard_label(ShardId s) {
  if (s == kNoShard) return "none";
  if (s == kSharedShard) return "shared";
  return std::to_string(s);
}

std::string event_site(const TaskTag& tag) {
  return std::string("sim.event/") + (tag.component != nullptr ? tag.component : "(untagged)");
}

/// Component prefix of an allocation site: the text before the first '/'
/// ("sim.event/net.link" pools under "sim.event", "net.packet" under
/// itself), so every churner ranks as exactly one component.
std::string site_component(const std::string& site) {
  const auto slash = site.find('/');
  return slash == std::string::npos ? site : site.substr(0, slash);
}

void write_histogram(JsonWriter& w, const char* key,
                     const std::map<std::uint32_t, std::uint64_t>& hist) {
  w.key(key).begin_array();
  for (const auto& [b, n] : hist) {
    w.begin_object();
    w.key("bucket_pow2").value(static_cast<std::uint64_t>(b));
    w.key("count").value(n);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

void MemProfiler::set_tick(Duration tick) {
  if (tick.as_nanos() <= 0) {
    throw std::invalid_argument("MemProfiler: tick must be positive");
  }
  tick_ = tick;
}

void MemProfiler::sample_timeline() {
  std::int64_t& cell = timeline_[cur_time_ns_ / tick_.as_nanos()];
  cell = std::max(cell, live_);
}

void MemProfiler::add_live(std::int64_t delta) {
  live_ += delta;
  own_peak_ = std::max(own_peak_, live_);
  if (in_event_) cur_delta_ += delta;
  sample_timeline();
}

void MemProfiler::on_schedule(std::uint64_t id, SimTime now, SimTime at,
                              const TaskTag& tag) {
  (void)at;
  ++scheduled_;
  cur_time_ns_ = std::max(cur_time_ns_, now.as_nanos());
  PendingEvent p;
  p.sched_ns = now.as_nanos();
  p.site = event_site(tag);
  count_alloc(p.site, kEventControlBlockBytes);
  pending_[id] = std::move(p);
}

void MemProfiler::on_cancel(std::uint64_t id, SimTime now) {
  ++cancelled_;
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // scheduled before the profiler attached
  ev_cancelled_hist_[duration_bucket(now.as_nanos() - it->second.sched_ns)] += 1;
  count_free(it->second.site, kEventControlBlockBytes);
  pending_.erase(it);
}

void MemProfiler::begin_event(std::uint64_t id, SimTime now, std::size_t queue_depth,
                              const TaskTag& tag) {
  (void)tag;
  in_event_ = true;
  cur_time_ns_ = now.as_nanos();
  cur_delta_ = 0;
  cur_hops_ = 0;
  if (const auto it = pending_.find(id); it != pending_.end()) {
    ev_dispatched_hist_[duration_bucket(now.as_nanos() - it->second.sched_ns)] += 1;
    count_free(it->second.site, kEventControlBlockBytes);
    pending_.erase(it);
  }
  note_occupancy("sim.event_queue", static_cast<std::uint64_t>(queue_depth));
  note_hops("sim.dispatch", kDispatchChaseHops);
}

void MemProfiler::end_event(ShardId shard) {
  in_event_ = false;
  recorded_ = true;
  ++work_;
  hops_hist_[log2_bucket(cur_hops_)] += 1;
  ShardMem& sm = shard_mem_[shard];
  sm.events += 1;
  sm.live += cur_delta_;
  sm.peak_live = std::max(sm.peak_live, sm.live);
}

void MemProfiler::register_actor(const char* kind, std::uint64_t bytes) {
  Tally& t = actors_[kind];
  t.count += 1;
  t.bytes += bytes;
  // Actors enter the live-bytes account too — registration allocates a
  // long-lived object — so live-bytes-per-actor has one source of truth.
  count_alloc(kind, bytes);
}

void MemProfiler::count_alloc(const std::string& site, std::uint64_t bytes) {
  SiteStats& s = sites_[site];
  s.allocs += 1;
  s.alloc_bytes += bytes;
  s.peak_live = std::max(s.peak_live, s.live());
  ++alloc_count_;
  add_live(static_cast<std::int64_t>(bytes));
}

void MemProfiler::count_free(const std::string& site, std::uint64_t bytes) {
  SiteStats& s = sites_[site];
  s.frees += 1;
  s.freed_bytes += bytes;
  add_live(-static_cast<std::int64_t>(bytes));
}

void MemProfiler::packet_birth(std::uint64_t uid, SimTime now, std::uint64_t bytes) {
  cur_time_ns_ = std::max(cur_time_ns_, now.as_nanos());
  count_alloc("net.packet", bytes);
  // First birth wins, mirroring first-death-wins below: encapsulation and
  // mirrored copies reuse the wire uid and must not restart the lifetime.
  pending_packets_.try_emplace(uid, PendingPacket{now.as_nanos(), bytes});
}

void MemProfiler::packet_delivered(std::uint64_t uid, SimTime now) {
  const auto it = pending_packets_.find(uid);
  if (it == pending_packets_.end()) return;  // mirrored copy: first death won
  pkt_delivered_hist_[duration_bucket(now.as_nanos() - it->second.birth_ns)] += 1;
  count_free("net.packet", it->second.bytes);
  pending_packets_.erase(it);
}

void MemProfiler::packet_dropped(std::uint64_t uid, SimTime now) {
  const auto it = pending_packets_.find(uid);
  if (it == pending_packets_.end()) return;
  pkt_dropped_hist_[duration_bucket(now.as_nanos() - it->second.birth_ns)] += 1;
  count_free("net.packet", it->second.bytes);
  pending_packets_.erase(it);
}

void MemProfiler::note_hops(const char* component, std::uint64_t hops) {
  ChaseStats& c = chase_[component];
  c.calls += 1;
  c.hops += hops;
  if (in_event_) cur_hops_ += hops;
}

void MemProfiler::note_occupancy(const char* container, std::uint64_t size) {
  OccupancyStats& o = occ_[container];
  o.samples += 1;
  o.sum += size;
  o.max = std::max(o.max, size);
}

// ----------------------------------------------------------------- results

std::uint64_t MemProfiler::actor_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [kind, t] : actors_) {
    (void)kind;
    n += t.count;
  }
  return n;
}

std::uint64_t MemProfiler::actor_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const auto& [kind, t] : actors_) {
    (void)kind;
    b += t.bytes;
  }
  return b;
}

double MemProfiler::live_bytes_per_actor() const noexcept {
  const std::uint64_t n = actor_count();
  return n > 0 ? static_cast<double>(live_) / static_cast<double>(n) : 0.0;
}

double MemProfiler::allocs_per_event() const noexcept {
  return work_ > 0 ? static_cast<double>(alloc_count_) / static_cast<double>(work_) : 0.0;
}

std::vector<MemProfiler::LocalityScore> MemProfiler::locality_scores() const {
  // Ordered union of churners and chasers: the per-component roll-up the
  // arena/SoA refactor ranks its work by.
  std::map<std::string, LocalityScore> by_component;
  for (const auto& [site, s] : sites_) {
    LocalityScore& l = by_component[site_component(site)];
    l.allocs += s.allocs;
  }
  for (const auto& [component, c] : chase_) {
    LocalityScore& l = by_component[component];
    l.chase_calls += c.calls;
    l.chase_hops += c.hops;
  }
  std::vector<LocalityScore> out;
  out.reserve(by_component.size());
  for (auto& [component, l] : by_component) {
    l.component = component;
    if (work_ > 0) {
      l.arena_score = static_cast<double>(l.allocs) / static_cast<double>(work_);
      l.soa_score = static_cast<double>(l.chase_hops) / static_cast<double>(work_);
    }
    l.score = l.arena_score + l.soa_score;
    out.push_back(std::move(l));
  }
  return out;
}

// ------------------------------------------------------------------- merge

void MemProfiler::merge(const MemProfiler& other) {
  // Finalize the other side's per-run quantities *before* summing raw
  // tallies: peaks pool as the max over finalized runs (replicas reuse the
  // same footprint, they do not stack), never as a peak of summed streams.
  merged_peak_ = std::max(merged_peak_, other.peak_live_bytes());
  merged_runs_ += other.runs();

  scheduled_ += other.scheduled_;
  cancelled_ += other.cancelled_;
  work_ += other.work_;
  alloc_count_ += other.alloc_count_;
  live_ += other.live_;
  for (const auto& [site, s] : other.sites_) {
    SiteStats& mine = sites_[site];
    mine.allocs += s.allocs;
    mine.frees += s.frees;
    mine.alloc_bytes += s.alloc_bytes;
    mine.freed_bytes += s.freed_bytes;
    mine.peak_live = std::max(mine.peak_live, s.peak_live);
  }
  for (const auto& [kind, t] : other.actors_) {
    actors_[kind].count += t.count;
    actors_[kind].bytes += t.bytes;
  }
  for (const auto& [b, n] : other.pkt_delivered_hist_) pkt_delivered_hist_[b] += n;
  for (const auto& [b, n] : other.pkt_dropped_hist_) pkt_dropped_hist_[b] += n;
  for (const auto& [b, n] : other.ev_dispatched_hist_) ev_dispatched_hist_[b] += n;
  for (const auto& [b, n] : other.ev_cancelled_hist_) ev_cancelled_hist_[b] += n;
  for (const auto& [c, s] : other.chase_) {
    chase_[c].calls += s.calls;
    chase_[c].hops += s.hops;
  }
  for (const auto& [b, n] : other.hops_hist_) hops_hist_[b] += n;
  for (const auto& [c, o] : other.occ_) {
    OccupancyStats& mine = occ_[c];
    mine.samples += o.samples;
    mine.sum += o.sum;
    mine.max = std::max(mine.max, o.max);
  }
  for (const auto& [s, m] : other.shard_mem_) {
    ShardMem& mine = shard_mem_[s];
    mine.events += m.events;
    mine.live += m.live;
    mine.peak_live = std::max(mine.peak_live, m.peak_live);
  }
  for (const auto& [t, v] : other.timeline_) {
    std::int64_t& cell = timeline_[t];
    cell = std::max(cell, v);
  }
}

// ------------------------------------------------------------------ report

std::string MemProfiler::report_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("work").value(work_);
  w.key("events_scheduled").value(scheduled_);
  w.key("events_cancelled").value(cancelled_);
  w.key("runs").value(runs());

  w.key("live_bytes").begin_object();
  w.key("current").value(static_cast<std::int64_t>(live_));
  w.key("peak").value(static_cast<std::int64_t>(peak_live_bytes()));
  w.key("actor_count").value(actor_count());
  w.key("actor_bytes").value(actor_bytes());
  w.key("per_actor").value(live_bytes_per_actor());
  w.key("alloc_count").value(alloc_count_);
  w.key("allocs_per_event").value(allocs_per_event());
  w.end_object();

  w.key("sites").begin_array();
  for (const auto& [site, s] : sites_) {
    w.begin_object();
    w.key("site").value(site);
    w.key("allocs").value(s.allocs);
    w.key("frees").value(s.frees);
    w.key("alloc_bytes").value(s.alloc_bytes);
    w.key("freed_bytes").value(s.freed_bytes);
    w.key("live_bytes").value(static_cast<std::int64_t>(s.live()));
    w.key("peak_live_bytes").value(static_cast<std::int64_t>(s.peak_live));
    w.end_object();
  }
  w.end_array();

  w.key("actors").begin_array();
  for (const auto& [kind, t] : actors_) {
    w.begin_object();
    w.key("kind").value(kind);
    w.key("count").value(t.count);
    w.key("bytes").value(t.bytes);
    w.key("bytes_per_actor").value(
        t.count > 0 ? static_cast<double>(t.bytes) / static_cast<double>(t.count) : 0.0);
    w.end_object();
  }
  w.end_array();

  w.key("lifetimes").begin_object();
  w.key("unit").value("log2_ns");
  write_histogram(w, "packet_delivered", pkt_delivered_hist_);
  write_histogram(w, "packet_dropped", pkt_dropped_hist_);
  write_histogram(w, "event_dispatched", ev_dispatched_hist_);
  write_histogram(w, "event_cancelled", ev_cancelled_hist_);
  w.end_object();

  w.key("locality").begin_object();
  w.key("model").value("chase-churn-v1");
  write_histogram(w, "hops_per_dispatch", hops_hist_);
  w.key("components").begin_array();
  for (const auto& l : locality_scores()) {
    w.begin_object();
    w.key("component").value(l.component);
    w.key("allocs").value(l.allocs);
    w.key("chase_calls").value(l.chase_calls);
    w.key("chase_hops").value(l.chase_hops);
    w.key("arena_score").value(l.arena_score);
    w.key("soa_score").value(l.soa_score);
    w.key("score").value(l.score);
    w.end_object();
  }
  w.end_array();
  w.key("containers").begin_array();
  for (const auto& [container, o] : occ_) {
    w.begin_object();
    w.key("container").value(container);
    w.key("samples").value(o.samples);
    w.key("max").value(o.max);
    w.key("mean").value(o.mean());
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("shards").begin_array();
  for (const auto& [s, m] : shard_mem_) {
    w.begin_object();
    w.key("shard").value(shard_label(s));
    w.key("events").value(m.events);
    w.key("live_bytes").value(static_cast<std::int64_t>(m.live));
    w.key("peak_live_bytes").value(static_cast<std::int64_t>(m.peak_live));
    w.end_object();
  }
  w.end_array();

  w.key("timeline").begin_object();
  w.key("tick_ns").value(static_cast<std::int64_t>(tick_.as_nanos()));
  w.key("points").begin_array();
  for (const auto& [t, v] : timeline_) {
    w.begin_object();
    w.key("tick").value(static_cast<std::int64_t>(t));
    w.key("live_bytes").value(static_cast<std::int64_t>(v));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.str();
}

// ------------------------------------------------------- shared accounting

void profile_actor(ScaleProfiler* sp, MemProfiler* mp, const char* kind,
                   std::uint64_t bytes) {
  if (sp != nullptr) sp->register_actor(kind, bytes);
  if (mp != nullptr) mp->register_actor(kind, bytes);
}

void profile_alloc(ScaleProfiler* sp, MemProfiler* mp, const char* kind,
                   std::uint64_t bytes) {
  if (sp != nullptr) sp->count_alloc(kind, bytes);
  if (mp != nullptr) mp->count_alloc(kind, bytes);
}

// --------------------------------------------------------------- dashboard

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Fixed two decimals so SVG output is platform-stable.
std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fmt_compact(double v) {
  char buf[48];
  if (v == 0) return "0";
  const double a = v < 0 ? -v : v;
  if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else if (a >= 10 || a == static_cast<double>(static_cast<std::int64_t>(a))) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

void open_card(std::string& out, const std::string& heading, const std::string& note) {
  out += "<div class=\"card\">\n<h2>" + html_escape(heading) + "</h2>\n";
  if (!note.empty()) out += "<p class=\"stats\">" + note + "</p>\n";
}

/// One labelled power-of-two histogram card body (shared by the four
/// lifetime charts and the hops chart).
void histogram_svg(std::string& out, const std::map<std::uint32_t, std::uint64_t>& hist,
                   const char* unit) {
  if (hist.empty()) return;
  std::uint64_t mx = 0;
  for (const auto& [b, n] : hist) {
    (void)b;
    mx = std::max(mx, n);
  }
  if (mx == 0) return;
  const std::size_t n = hist.size();
  constexpr double kW = 760, kH = 140, kML = 46, kMB = 24;
  const double bw = (kW - kML - 14) / static_cast<double>(n);
  out += "<svg viewBox=\"0 0 " + fmt2(kW) + " " + fmt2(kH) + "\" role=\"img\">\n";
  std::size_t i = 0;
  for (const auto& [b, cnt] : hist) {
    const double h = (kH - kMB - 10) * static_cast<double>(cnt) / static_cast<double>(mx);
    const double x = kML + bw * static_cast<double>(i);
    out += "<rect class=\"bar\" x=\"" + fmt2(x + 2) + "\" y=\"" + fmt2(kH - kMB - h) +
           "\" width=\"" + fmt2(bw - 4) + "\" height=\"" + fmt2(h) + "\"><title>" +
           std::to_string(cnt) + " " + unit + "</title></rect>\n";
    const std::string label =
        b == 0 ? std::string("0")
               : "&#8804;" + fmt_compact(static_cast<double>((1ull << b) - 1));
    out += "<text class=\"tick\" x=\"" + fmt2(x + bw / 2) + "\" y=\"" + fmt2(kH - 8) +
           "\" text-anchor=\"middle\">" + label + "</text>\n";
    ++i;
  }
  out += "</svg>\n";
}

}  // namespace

std::string mem_dashboard(const MemProfiler& mp, const std::string& title) {
  std::string out;
  out +=
      "<!DOCTYPE html>\n"
      "<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n";
  out += "<title>" + html_escape(title) + "</title>\n";
  out +=
      "<style>\n"
      ".viz-root {\n"
      "  color-scheme: light;\n"
      "  --surface-1: #fcfcfb; --page: #f9f9f7;\n"
      "  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;\n"
      "  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);\n"
      "  --series-1: #2a78d6; --heat: 42,120,214;\n"
      "}\n"
      "@media (prefers-color-scheme: dark) {\n"
      "  :root:where(:not([data-theme=\"light\"])) .viz-root {\n"
      "    color-scheme: dark;\n"
      "    --surface-1: #1a1a19; --page: #0d0d0d;\n"
      "    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;\n"
      "    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);\n"
      "    --series-1: #3987e5; --heat: 57,135,229;\n"
      "  }\n"
      "}\n"
      ":root[data-theme=\"dark\"] .viz-root {\n"
      "  color-scheme: dark;\n"
      "  --surface-1: #1a1a19; --page: #0d0d0d;\n"
      "  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;\n"
      "  --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);\n"
      "  --series-1: #3987e5; --heat: 57,135,229;\n"
      "}\n"
      "body { margin: 0; font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif; }\n"
      ".viz-root { background: var(--page); color: var(--text-primary);\n"
      "  min-height: 100vh; padding: 24px; box-sizing: border-box; }\n"
      "h1 { font-size: 20px; margin: 0 0 4px; }\n"
      ".sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }\n"
      ".tiles { display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 24px; }\n"
      ".tile { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 12px 16px; min-width: 110px; }\n"
      ".tile .v { font-size: 24px; }\n"
      ".tile .k { color: var(--text-secondary); font-size: 12px; }\n"
      ".card { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 16px; margin-bottom: 16px; max-width: 820px; }\n"
      ".card h2 { font-size: 14px; margin: 0 0 4px; font-weight: 600; }\n"
      ".stats { color: var(--text-secondary); font-size: 12px; margin: 0 0 10px; }\n"
      ".stats b { color: var(--text-primary); font-weight: 600; }\n"
      "svg { display: block; width: 100%; height: auto; }\n"
      ".grid { stroke: var(--grid); stroke-width: 1; }\n"
      ".axis { stroke: var(--axis); stroke-width: 1; }\n"
      ".tick { fill: var(--muted); font-size: 10px; font-variant-numeric: tabular-nums; }\n"
      ".line { stroke: var(--series-1); stroke-width: 2; fill: none;\n"
      "  stroke-linejoin: round; stroke-linecap: round; }\n"
      ".cell { stroke: var(--grid); stroke-width: 0.5; }\n"
      ".bar { fill: var(--series-1); }\n"
      "</style>\n</head>\n<body>\n<div class=\"viz-root\">\n";

  out += "<h1>" + html_escape(title) + "</h1>\n";
  out += "<p class=\"sub\">Memory profile &#183; allocation sites, lifetimes, locality "
         "&#183; deterministic export</p>\n";

  // --- stat tiles ----------------------------------------------------------
  out += "<div class=\"tiles\">\n";
  const std::pair<const char*, std::string> tiles[] = {
      {"live bytes", fmt_compact(static_cast<double>(mp.live_bytes()))},
      {"peak bytes", fmt_compact(static_cast<double>(mp.peak_live_bytes()))},
      {"actors", fmt_compact(static_cast<double>(mp.actor_count()))},
      {"bytes / actor", fmt_compact(mp.live_bytes_per_actor())},
      {"allocs / event", fmt_compact(mp.allocs_per_event())},
      {"events (work)", fmt_compact(static_cast<double>(mp.work()))},
  };
  for (const auto& [k, v] : tiles) {
    out += "<div class=\"tile\"><div class=\"v\">" + html_escape(v) +
           "</div><div class=\"k\">" + k + "</div></div>\n";
  }
  out += "</div>\n";

  // --- live-bytes timeline -------------------------------------------------
  {
    const auto& tl = mp.timeline();
    open_card(out, "Live-bytes timeline",
              "max modeled live bytes per " +
                  html_escape(fmt_compact(static_cast<double>(mp.tick().as_nanos()) * 1e-6)) +
                  " ms tick &#183; peak <b>" +
                  html_escape(fmt_compact(static_cast<double>(mp.peak_live_bytes()))) +
                  "</b>");
    if (!tl.empty()) {
      constexpr double kW = 760, kH = 200, kML = 56, kMR = 14, kMT = 10, kMB = 26;
      const double pw = kW - kML - kMR, ph = kH - kMT - kMB;
      const std::int64_t t0 = tl.begin()->first;
      const std::int64_t t1 = tl.rbegin()->first;
      std::int64_t hi = 1;
      for (const auto& [t, v] : tl) {
        (void)t;
        hi = std::max(hi, v);
      }
      const double span = static_cast<double>(t1 - t0 + 1);
      auto sx = [&](std::int64_t t) {
        return kML + pw * (static_cast<double>(t - t0) + 0.5) / span;
      };
      auto sy = [&](std::int64_t v) {
        return kMT + (1.0 - static_cast<double>(v) / static_cast<double>(hi)) * ph;
      };
      out += "<svg viewBox=\"0 0 " + fmt2(kW) + " " + fmt2(kH) + "\" role=\"img\">\n";
      for (int g = 0; g <= 3; ++g) {
        const double v = static_cast<double>(hi) * static_cast<double>(g) / 3.0;
        const double y = kMT + (1.0 - v / static_cast<double>(hi)) * ph;
        out += "<line class=\"grid\" x1=\"" + fmt2(kML) + "\" y1=\"" + fmt2(y) +
               "\" x2=\"" + fmt2(kW - kMR) + "\" y2=\"" + fmt2(y) + "\"/>\n";
        out += "<text class=\"tick\" x=\"" + fmt2(kML - 6) + "\" y=\"" + fmt2(y) +
               "\" dy=\"0.32em\" text-anchor=\"end\">" + html_escape(fmt_compact(v)) +
               "</text>\n";
      }
      out += "<polyline class=\"line\" points=\"";
      bool first = true;
      for (const auto& [t, v] : tl) {
        if (!first) out += ' ';
        first = false;
        out += fmt2(sx(t)) + "," + fmt2(sy(v));
      }
      out += "\"/>\n";
      out += "<text class=\"tick\" x=\"" + fmt2(kML) + "\" y=\"" + fmt2(kH - 8) +
             "\">tick " + std::to_string(t0) + "</text>\n";
      out += "<text class=\"tick\" x=\"" + fmt2(kW - kMR) + "\" y=\"" + fmt2(kH - 8) +
             "\" text-anchor=\"end\">tick " + std::to_string(t1) + "</text>\n";
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  // --- allocation-site bars ------------------------------------------------
  {
    const auto& sites = mp.sites();
    open_card(out, "Allocation sites",
              "<b>" + html_escape(fmt_compact(static_cast<double>(mp.alloc_count()))) +
                  "</b> allocations across <b>" +
                  html_escape(fmt_compact(static_cast<double>(sites.size()))) +
                  "</b> sites &#183; bar = alloc bytes, darker = more live");
    if (!sites.empty()) {
      std::uint64_t mx = 0;
      for (const auto& [site, s] : sites) {
        (void)site;
        mx = std::max(mx, s.alloc_bytes);
      }
      const double rowh = 18;
      constexpr double kW = 760, kML = 210;
      const double hpx = rowh * static_cast<double>(sites.size()) + 8;
      out += "<svg viewBox=\"0 0 " + fmt2(kW) + " " + fmt2(hpx) + "\" role=\"img\">\n";
      std::size_t i = 0;
      for (const auto& [site, s] : sites) {
        const double y = rowh * static_cast<double>(i);
        const double bw =
            mx > 0 ? (kW - kML - 14) * static_cast<double>(s.alloc_bytes) /
                         static_cast<double>(mx)
                   : 0.0;
        const double op =
            s.alloc_bytes > 0
                ? 0.25 + 0.75 * static_cast<double>(s.live() > 0 ? s.live() : 0) /
                             static_cast<double>(s.alloc_bytes)
                : 0.25;
        out += "<text class=\"tick\" x=\"" + fmt2(kML - 6) + "\" y=\"" +
               fmt2(y + rowh * 0.7) + "\" text-anchor=\"end\">" + html_escape(site) +
               "</text>\n";
        out += "<rect class=\"cell\" x=\"" + fmt2(kML) + "\" y=\"" + fmt2(y + 3) +
               "\" width=\"" + fmt2(std::max(bw, 1.0)) + "\" height=\"" + fmt2(rowh - 6) +
               "\" fill=\"rgba(var(--heat)," + fmt2(op) + ")\"><title>" + html_escape(site) +
               ": " + std::to_string(s.allocs) + " allocs, " +
               fmt_compact(static_cast<double>(s.alloc_bytes)) + "B allocated, " +
               fmt_compact(static_cast<double>(s.live())) + "B live</title></rect>\n";
        ++i;
      }
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  // --- lifetime histograms -------------------------------------------------
  {
    open_card(out, "Packet lifetimes",
              "sim-time birth&#8594;death, power-of-two ns buckets &#183; delivered then "
              "dropped");
    histogram_svg(out, mp.packet_delivered_hist(), "delivered");
    histogram_svg(out, mp.packet_dropped_hist(), "dropped");
    out += "</div>\n";
    open_card(out, "Event lifetimes",
              "sim-time schedule&#8594;fire, power-of-two ns buckets &#183; dispatched "
              "then cancelled");
    histogram_svg(out, mp.event_dispatched_hist(), "dispatched");
    histogram_svg(out, mp.event_cancelled_hist(), "cancelled");
    out += "</div>\n";
  }

  // --- locality scores -----------------------------------------------------
  {
    const auto scores = mp.locality_scores();
    double mx = 0;
    for (const auto& l : scores) mx = std::max(mx, l.score);
    open_card(out, "Locality scores (chase-churn-v1)",
              "predicted arena/SoA benefit per component &#183; arena = allocs per "
              "event, SoA = chase hops per event");
    if (!scores.empty() && mx > 0) {
      const double rowh = 18;
      constexpr double kW = 760, kML = 210;
      const double hpx = rowh * static_cast<double>(scores.size()) + 8;
      out += "<svg viewBox=\"0 0 " + fmt2(kW) + " " + fmt2(hpx) + "\" role=\"img\">\n";
      std::size_t i = 0;
      for (const auto& l : scores) {
        const double y = rowh * static_cast<double>(i);
        const double bw = (kW - kML - 14) * l.score / mx;
        out += "<text class=\"tick\" x=\"" + fmt2(kML - 6) + "\" y=\"" +
               fmt2(y + rowh * 0.7) + "\" text-anchor=\"end\">" + html_escape(l.component) +
               "</text>\n";
        out += "<rect class=\"bar\" x=\"" + fmt2(kML) + "\" y=\"" + fmt2(y + 3) +
               "\" width=\"" + fmt2(std::max(bw, 1.0)) + "\" height=\"" + fmt2(rowh - 6) +
               "\"><title>" + html_escape(l.component) + ": score " + fmt_compact(l.score) +
               " (arena " + fmt_compact(l.arena_score) + ", SoA " +
               fmt_compact(l.soa_score) + ")</title></rect>\n";
        ++i;
      }
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  // --- per-shard footprint -------------------------------------------------
  {
    const auto& shards = mp.shard_mem();
    open_card(out, "Per-shard footprint",
              "live-bytes delta attributed per dispatching shard &#183; peak = max of "
              "the running per-shard delta");
    if (!shards.empty()) {
      std::int64_t mx = 1;
      for (const auto& [s, m] : shards) {
        (void)s;
        mx = std::max(mx, m.peak_live);
      }
      const double rowh = 18;
      constexpr double kW = 760, kML = 80;
      const double hpx = rowh * static_cast<double>(shards.size()) + 8;
      out += "<svg viewBox=\"0 0 " + fmt2(kW) + " " + fmt2(hpx) + "\" role=\"img\">\n";
      std::size_t i = 0;
      for (const auto& [s, m] : shards) {
        const double y = rowh * static_cast<double>(i);
        const double bw =
            (kW - kML - 14) *
            static_cast<double>(m.peak_live > 0 ? m.peak_live : 0) / static_cast<double>(mx);
        out += "<text class=\"tick\" x=\"" + fmt2(kML - 6) + "\" y=\"" +
               fmt2(y + rowh * 0.7) + "\" text-anchor=\"end\">" +
               html_escape(shard_label(s)) + "</text>\n";
        out += "<rect class=\"bar\" x=\"" + fmt2(kML) + "\" y=\"" + fmt2(y + 3) +
               "\" width=\"" + fmt2(std::max(bw, 1.0)) + "\" height=\"" + fmt2(rowh - 6) +
               "\"><title>shard " + html_escape(shard_label(s)) + ": " +
               std::to_string(m.events) + " events, peak " +
               fmt_compact(static_cast<double>(m.peak_live)) + "B</title></rect>\n";
        ++i;
      }
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  out += "</div>\n</body>\n</html>\n";
  return out;
}

}  // namespace tussle::sim
