#include "sim/scale_profile.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

#include "sim/json.hpp"
#include "sim/mem_profile.hpp"  // kEventControlBlockBytes: shared with MemProfiler

namespace tussle::sim {

namespace {

/// Power-of-two bucket: 0 -> 0, and bucket b covers [2^(b-1), 2^b - 1].
std::uint32_t log2_bucket(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(std::bit_width(v));
}

std::string shard_label(ShardId s) {
  if (s == kNoShard) return "none";
  if (s == kSharedShard) return "shared";
  return std::to_string(s);
}

std::string tag_label(const TaskTag& tag) {
  std::string out = tag.component != nullptr ? tag.component : "(untagged)";
  out += '/';
  out += tag.kind != nullptr ? tag.kind : "(untagged)";
  return out;
}

/// The k values the virtual barrier executor is evaluated at. 0 stands for
/// ∞ (the pure work/span causality bound).
constexpr std::uint64_t kCurve[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};

}  // namespace

void ScaleProfiler::set_tick(Duration tick) {
  if (tick.as_nanos() <= 0) {
    throw std::invalid_argument("ScaleProfiler: tick must be positive");
  }
  tick_ = tick;
}

void ScaleProfiler::on_schedule(std::uint64_t id, SimTime now, SimTime at,
                                const TaskTag& tag, ShardId origin) {
  ++scheduled_;
  Pending p;
  p.depth = in_event_ ? cur_.depth + 1 : 1;
  p.origin = origin;
  p.sched_ns = now.as_nanos();
  pending_[id] = p;
  (void)at;
  Tally& t = allocs_[std::string("sim.event/") +
                     (tag.component != nullptr ? tag.component : "(untagged)")];
  t.count += 1;
  t.bytes += kEventControlBlockBytes;
}

void ScaleProfiler::on_cancel(std::uint64_t id) {
  ++cancelled_;
  pending_.erase(id);
}

void ScaleProfiler::begin_event(std::uint64_t id, SimTime now, std::size_t queue_depth,
                                const TaskTag& tag) {
  // The barrier-window width freezes at the first dispatch: the world (and
  // with it every cross-shard link) is built by then.
  if (frozen_window_ns_ == 0) {
    std::int64_t w = 0;
    for (const auto& [pair, lat] : links_) {
      (void)pair;
      if (w == 0 || lat < w) w = lat;
    }
    if (w <= 0) w = tick_.as_nanos();
    frozen_window_ns_ = w;
  }
  in_event_ = true;
  cur_time_ns_ = now.as_nanos();
  if (auto it = pending_.find(id); it != pending_.end()) {
    cur_ = it->second;
    pending_.erase(it);
  } else {
    // Scheduled before the profiler attached: a causal root.
    cur_ = Pending{1, kNoShard, now.as_nanos()};
  }
  const auto depth = static_cast<std::uint64_t>(queue_depth);
  ++queue_samples_;
  queue_sum_ += depth;
  queue_max_ = std::max(queue_max_, depth);
  queue_hist_[log2_bucket(depth)] += 1;
  depth_hist_[log2_bucket(cur_.depth)] += 1;
  if (cur_.depth > own_span_) {
    own_span_ = cur_.depth;
    own_tail_ = tag_label(tag);
    own_tail_ns_ = cur_time_ns_;
  }
}

void ScaleProfiler::end_event(ShardId shard) {
  in_event_ = false;
  recorded_ = true;
  ++work_;
  shard_events_[shard] += 1;
  tick_load_[{cur_time_ns_ / tick_.as_nanos(), shard}] += 1;
  window_load_[{cur_time_ns_ / frozen_window_ns_, shard}] += 1;
  TrafficEdge& e = traffic_[{cur_.origin, shard}];
  const std::int64_t delay = cur_time_ns_ - cur_.sched_ns;
  if (e.events == 0 || delay < e.min_delay_ns) e.min_delay_ns = delay;
  e.events += 1;
  if (cur_.origin != shard && cur_.origin != kNoShard && shard != kNoShard) ++cross_;
}

void ScaleProfiler::register_link(ShardId a, ShardId b, Duration latency) {
  if (a == b) return;
  const auto key = std::make_pair(std::min(a, b), std::max(a, b));
  const std::int64_t lat = latency.as_nanos();
  auto [it, inserted] = links_.try_emplace(key, lat);
  if (!inserted && lat < it->second) it->second = lat;
}

void ScaleProfiler::register_actor(const char* kind, std::uint64_t bytes) {
  Tally& t = actors_[kind != nullptr ? kind : "(unknown)"];
  t.count += 1;
  t.bytes += bytes;
}

void ScaleProfiler::count_alloc(const char* kind, std::uint64_t bytes) {
  Tally& t = allocs_[kind != nullptr ? kind : "(unknown)"];
  t.count += 1;
  t.bytes += bytes;
}

// ----------------------------------------------------------------- results

std::uint64_t ScaleProfiler::work() const noexcept { return work_; }
std::uint64_t ScaleProfiler::events_scheduled() const noexcept { return scheduled_; }
std::uint64_t ScaleProfiler::events_cancelled() const noexcept { return cancelled_; }

std::uint64_t ScaleProfiler::critical_path_length() const noexcept {
  return std::max(merged_span_max_, own_span_);
}

std::uint64_t ScaleProfiler::span_total() const noexcept {
  return merged_span_total_ + own_span_;
}

double ScaleProfiler::work_span_ratio() const noexcept {
  const std::uint64_t span = span_total();
  if (span == 0) return 0;
  return static_cast<double>(work_) / static_cast<double>(span);
}

std::uint64_t ScaleProfiler::runs() const noexcept {
  return merged_runs_ + (recorded_ ? 1 : 0);
}

double ScaleProfiler::imbalance_ratio() const noexcept {
  std::uint64_t total = 0, mx = 0;
  std::size_t n = 0;
  for (const auto& [s, ev] : shard_events_) {
    if (s == kNoShard || s == kSharedShard) continue;
    total += ev;
    mx = std::max(mx, ev);
    ++n;
  }
  if (n == 0 || total == 0) return 0;
  const double mean = static_cast<double>(total) / static_cast<double>(n);
  return static_cast<double>(mx) / mean;
}

std::uint64_t ScaleProfiler::cross_shard_events() const noexcept { return cross_; }

std::int64_t ScaleProfiler::window_ns() const noexcept {
  return frozen_window_ns_ != 0 ? frozen_window_ns_ : merged_window_ns_;
}

ScaleProfiler::QueueStats ScaleProfiler::queue_stats() const {
  QueueStats q;
  q.samples = queue_samples_;
  q.max_depth = queue_max_;
  q.mean_depth = queue_samples_ > 0
                     ? static_cast<double>(queue_sum_) / static_cast<double>(queue_samples_)
                     : 0.0;
  q.histogram = queue_hist_;
  return q;
}

std::map<std::uint64_t, std::uint64_t> ScaleProfiler::own_costs() const {
  std::map<std::uint64_t, std::uint64_t> out;
  if (window_load_.empty()) return out;

  // Real shards ordered by (events desc, id asc): the LPT packing order.
  std::map<ShardId, std::uint64_t> totals;
  for (const auto& [key, n] : window_load_) {
    const ShardId s = key.second;
    if (s != kNoShard && s != kSharedShard) totals[s] += n;
  }
  std::vector<std::pair<std::uint64_t, ShardId>> order;
  order.reserve(totals.size());
  for (const auto& [s, n] : totals) order.emplace_back(n, s);
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  // One pass over the (window, shard) grid per k: each window costs the
  // slowest virtual shard (the barrier waits for it) plus the serial work
  // (unclaimed / shared-state events a conservative design runs with every
  // shard quiescent).
  auto replay = [&](const std::map<ShardId, std::size_t>& vshard_of,
                    std::size_t vshards) -> std::uint64_t {
    std::vector<std::uint64_t> wload(std::max<std::size_t>(vshards, 1), 0);
    std::uint64_t cost = 0, serial = 0;
    std::int64_t cur_w = window_load_.begin()->first.first;
    auto flush = [&] {
      std::uint64_t mx = 0;
      for (const std::uint64_t v : wload) mx = std::max(mx, v);
      cost += mx + serial;
      std::fill(wload.begin(), wload.end(), 0);
      serial = 0;
    };
    for (const auto& [key, n] : window_load_) {
      if (key.first != cur_w) {
        flush();
        cur_w = key.first;
      }
      const ShardId s = key.second;
      if (s == kNoShard || s == kSharedShard) {
        serial += n;
      } else {
        wload[vshard_of.at(s)] += n;
      }
    }
    flush();
    return cost;
  };

  for (const std::uint64_t k : kCurve) {
    const std::size_t vshards =
        std::max<std::size_t>(1, std::min<std::size_t>(k, std::max<std::size_t>(order.size(), 1)));
    std::map<ShardId, std::size_t> vshard_of;
    std::vector<std::uint64_t> vload(vshards, 0);
    for (const auto& [n, s] : order) {
      std::size_t best = 0;
      for (std::size_t v = 1; v < vload.size(); ++v) {
        if (vload[v] < vload[best]) best = v;
      }
      vload[best] += n;
      vshard_of[s] = best;
    }
    out[k] = replay(vshard_of, vshards);
  }

  // k = ∞: every real shard is its own worker.
  std::map<ShardId, std::size_t> identity;
  std::size_t slot = 0;
  for (const auto& [s, n] : totals) {
    (void)n;
    identity[s] = slot++;
  }
  out[0] = replay(identity, std::max<std::size_t>(identity.size(), 1));
  return out;
}

std::map<std::uint64_t, std::uint64_t> ScaleProfiler::total_costs() const {
  std::map<std::uint64_t, std::uint64_t> out = merged_costs_;
  for (const auto& [k, c] : own_costs()) out[k] += c;
  return out;
}

double ScaleProfiler::speedup_at(std::uint64_t k) const {
  if (work_ == 0) return 0;
  const double bound = work_span_ratio();
  if (k == 0) return bound;
  const auto costs = total_costs();
  const auto it = costs.find(k);
  if (it == costs.end() || it->second == 0) return 0;
  const double s = static_cast<double>(work_) / static_cast<double>(it->second);
  return std::min(s, bound);
}

std::vector<std::pair<std::uint64_t, double>> ScaleProfiler::speedup_curve() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  if (work_ == 0) return out;
  for (const std::uint64_t k : kCurve) out.emplace_back(k, speedup_at(k));
  out.emplace_back(0, speedup_at(0));
  return out;
}

const std::string& ScaleProfiler::tail_label() const noexcept {
  return merged_span_max_ > own_span_ ? merged_tail_ : own_tail_;
}

std::int64_t ScaleProfiler::tail_time_ns() const noexcept {
  return merged_span_max_ > own_span_ ? merged_tail_ns_ : own_tail_ns_;
}

// ------------------------------------------------------------------- merge

void ScaleProfiler::merge(const ScaleProfiler& other) {
  // Finalize the other side's per-run quantities *before* summing raw
  // tallies: spans and barrier costs must pool as Σ over runs, never be
  // recomputed from a combined event stream that interleaves runs.
  if (other.critical_path_length() > critical_path_length()) {
    merged_span_max_ = other.critical_path_length();
    merged_tail_ = other.tail_label();
    merged_tail_ns_ = other.tail_time_ns();
  }
  merged_span_total_ += other.span_total();
  for (const auto& [k, c] : other.total_costs()) merged_costs_[k] += c;
  merged_runs_ += other.runs();
  if (merged_window_ns_ == 0) merged_window_ns_ = other.window_ns();

  scheduled_ += other.scheduled_;
  cancelled_ += other.cancelled_;
  work_ += other.work_;
  cross_ += other.cross_;
  for (const auto& [s, n] : other.shard_events_) shard_events_[s] += n;
  for (const auto& [key, n] : other.tick_load_) tick_load_[key] += n;
  for (const auto& [key, e] : other.traffic_) {
    TrafficEdge& mine = traffic_[key];
    if (mine.events == 0 || e.min_delay_ns < mine.min_delay_ns) {
      mine.min_delay_ns = e.min_delay_ns;
    }
    mine.events += e.events;
  }
  for (const auto& [key, lat] : other.links_) {
    auto [it, inserted] = links_.try_emplace(key, lat);
    if (!inserted && lat < it->second) it->second = lat;
  }
  for (const auto& [b, n] : other.depth_hist_) depth_hist_[b] += n;
  for (const auto& [b, n] : other.queue_hist_) queue_hist_[b] += n;
  queue_samples_ += other.queue_samples_;
  queue_sum_ += other.queue_sum_;
  queue_max_ = std::max(queue_max_, other.queue_max_);
  for (const auto& [k, t] : other.allocs_) {
    allocs_[k].count += t.count;
    allocs_[k].bytes += t.bytes;
  }
  for (const auto& [k, t] : other.actors_) {
    actors_[k].count += t.count;
    actors_[k].bytes += t.bytes;
  }
}

// ------------------------------------------------------------------ report

std::string ScaleProfiler::report_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("work").value(work_);
  w.key("events_scheduled").value(scheduled_);
  w.key("events_cancelled").value(cancelled_);
  w.key("runs").value(runs());

  w.key("critical_path").begin_object();
  w.key("length").value(critical_path_length());
  w.key("span_total").value(span_total());
  w.key("work_span_ratio").value(work_span_ratio());
  w.key("tail").value(tail_label());
  w.key("tail_t_ns").value(static_cast<std::int64_t>(tail_time_ns()));
  w.end_object();

  w.key("depth_profile").begin_array();
  for (const auto& [b, n] : depth_hist_) {
    w.begin_object();
    w.key("bucket_pow2").value(static_cast<std::uint64_t>(b));
    w.key("events").value(n);
    w.end_object();
  }
  w.end_array();

  w.key("shards").begin_array();
  for (const auto& [s, n] : shard_events_) {
    w.begin_object();
    w.key("shard").value(shard_label(s));
    w.key("events").value(n);
    w.key("share").value(work_ > 0 ? static_cast<double>(n) / static_cast<double>(work_)
                                   : 0.0);
    w.end_object();
  }
  w.end_array();

  std::size_t real_shards = 0;
  for (const auto& [s, n] : shard_events_) {
    (void)n;
    if (s != kNoShard && s != kSharedShard) ++real_shards;
  }
  w.key("imbalance").begin_object();
  w.key("shards").value(static_cast<std::uint64_t>(real_shards));
  w.key("ratio").value(imbalance_ratio());
  w.end_object();

  w.key("shard_load").begin_object();
  w.key("tick_ns").value(static_cast<std::int64_t>(tick_.as_nanos()));
  w.key("cells").begin_array();
  for (const auto& [key, n] : tick_load_) {
    w.begin_object();
    w.key("tick").value(static_cast<std::int64_t>(key.first));
    w.key("shard").value(shard_label(key.second));
    w.key("events").value(n);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("traffic_matrix").begin_array();
  for (const auto& [key, e] : traffic_) {
    w.begin_object();
    w.key("from").value(shard_label(key.first));
    w.key("to").value(shard_label(key.second));
    w.key("events").value(e.events);
    w.key("min_delay_ns").value(static_cast<std::int64_t>(e.min_delay_ns));
    w.end_object();
  }
  w.end_array();
  w.key("cross_shard_events").value(cross_);

  w.key("lookahead").begin_object();
  w.key("window_ns").value(static_cast<std::int64_t>(window_ns()));
  w.key("links").begin_array();
  for (const auto& [key, lat] : links_) {
    w.begin_object();
    w.key("a").value(shard_label(key.first));
    w.key("b").value(shard_label(key.second));
    w.key("min_latency_ns").value(static_cast<std::int64_t>(lat));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const QueueStats q = queue_stats();
  w.key("queue").begin_object();
  w.key("samples").value(q.samples);
  w.key("max_depth").value(q.max_depth);
  w.key("mean_depth").value(q.mean_depth);
  w.key("histogram").begin_array();
  for (const auto& [b, n] : q.histogram) {
    w.begin_object();
    w.key("bucket_pow2").value(static_cast<std::uint64_t>(b));
    w.key("events").value(n);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("allocs").begin_array();
  for (const auto& [kind, t] : allocs_) {
    w.begin_object();
    w.key("kind").value(kind);
    w.key("count").value(t.count);
    w.key("bytes").value(t.bytes);
    w.end_object();
  }
  w.end_array();

  w.key("actors").begin_array();
  for (const auto& [kind, t] : actors_) {
    w.begin_object();
    w.key("kind").value(kind);
    w.key("count").value(t.count);
    w.key("bytes").value(t.bytes);
    w.key("bytes_per_actor").value(
        t.count > 0 ? static_cast<double>(t.bytes) / static_cast<double>(t.count) : 0.0);
    w.end_object();
  }
  w.end_array();

  const auto costs = total_costs();
  w.key("speedup").begin_object();
  w.key("model").value("barrier-window-lpt");
  w.key("bound").value(work_span_ratio());
  w.key("curve").begin_array();
  for (const auto& [k, s] : speedup_curve()) {
    w.begin_object();
    if (k == 0) {
      w.key("k").value("inf");
    } else {
      w.key("k").value(k);
    }
    if (const auto it = costs.find(k); it != costs.end()) {
      w.key("cost").value(it->second);
    }
    w.key("speedup").value(s);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.str();
}

// --------------------------------------------------------------- dashboard

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Fixed two decimals so SVG output is platform-stable.
std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fmt_compact(double v) {
  char buf[48];
  if (v == 0) return "0";
  const double a = v < 0 ? -v : v;
  if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else if (a >= 10 || a == static_cast<double>(static_cast<std::int64_t>(a))) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

void open_card(std::string& out, const std::string& heading, const std::string& note) {
  out += "<div class=\"card\">\n<h2>" + html_escape(heading) + "</h2>\n";
  if (!note.empty()) out += "<p class=\"stats\">" + note + "</p>\n";
}

}  // namespace

std::string scale_dashboard(const ScaleProfiler& sp, const std::string& title) {
  std::string out;
  out +=
      "<!DOCTYPE html>\n"
      "<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n";
  out += "<title>" + html_escape(title) + "</title>\n";
  out +=
      "<style>\n"
      ".viz-root {\n"
      "  color-scheme: light;\n"
      "  --surface-1: #fcfcfb; --page: #f9f9f7;\n"
      "  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;\n"
      "  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);\n"
      "  --series-1: #2a78d6; --heat: 42,120,214;\n"
      "}\n"
      "@media (prefers-color-scheme: dark) {\n"
      "  :root:where(:not([data-theme=\"light\"])) .viz-root {\n"
      "    color-scheme: dark;\n"
      "    --surface-1: #1a1a19; --page: #0d0d0d;\n"
      "    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;\n"
      "    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);\n"
      "    --series-1: #3987e5; --heat: 57,135,229;\n"
      "  }\n"
      "}\n"
      ":root[data-theme=\"dark\"] .viz-root {\n"
      "  color-scheme: dark;\n"
      "  --surface-1: #1a1a19; --page: #0d0d0d;\n"
      "  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;\n"
      "  --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);\n"
      "  --series-1: #3987e5; --heat: 57,135,229;\n"
      "}\n"
      "body { margin: 0; font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif; }\n"
      ".viz-root { background: var(--page); color: var(--text-primary);\n"
      "  min-height: 100vh; padding: 24px; box-sizing: border-box; }\n"
      "h1 { font-size: 20px; margin: 0 0 4px; }\n"
      ".sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }\n"
      ".tiles { display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 24px; }\n"
      ".tile { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 12px 16px; min-width: 110px; }\n"
      ".tile .v { font-size: 24px; }\n"
      ".tile .k { color: var(--text-secondary); font-size: 12px; }\n"
      ".card { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 16px; margin-bottom: 16px; max-width: 820px; }\n"
      ".card h2 { font-size: 14px; margin: 0 0 4px; font-weight: 600; }\n"
      ".stats { color: var(--text-secondary); font-size: 12px; margin: 0 0 10px; }\n"
      ".stats b { color: var(--text-primary); font-weight: 600; }\n"
      "svg { display: block; width: 100%; height: auto; }\n"
      ".grid { stroke: var(--grid); stroke-width: 1; }\n"
      ".axis { stroke: var(--axis); stroke-width: 1; }\n"
      ".tick { fill: var(--muted); font-size: 10px; font-variant-numeric: tabular-nums; }\n"
      ".line { stroke: var(--series-1); stroke-width: 2; fill: none;\n"
      "  stroke-linejoin: round; stroke-linecap: round; }\n"
      ".ann { stroke: var(--muted); stroke-width: 1; stroke-dasharray: 4 3; }\n"
      ".cell { stroke: var(--grid); stroke-width: 0.5; }\n"
      ".bar { fill: var(--series-1); }\n"
      "</style>\n</head>\n<body>\n<div class=\"viz-root\">\n";

  out += "<h1>" + html_escape(title) + "</h1>\n";
  out += "<p class=\"sub\">Scale profile &#183; PDES-readiness &#183; deterministic "
         "export</p>\n";

  // --- stat tiles ----------------------------------------------------------
  std::size_t real_shards = 0;
  for (const auto& [s, n] : sp.shard_events()) {
    (void)n;
    if (s != kNoShard && s != kSharedShard) ++real_shards;
  }
  out += "<div class=\"tiles\">\n";
  const std::pair<const char*, std::string> tiles[] = {
      {"events (work)", fmt_compact(static_cast<double>(sp.work()))},
      {"critical path", fmt_compact(static_cast<double>(sp.critical_path_length()))},
      {"work / span", fmt_compact(sp.work_span_ratio())},
      {"shards", fmt_compact(static_cast<double>(real_shards))},
      {"imbalance", fmt_compact(sp.imbalance_ratio())},
      {"cross-shard", fmt_compact(static_cast<double>(sp.cross_shard_events()))},
  };
  for (const auto& [k, v] : tiles) {
    out += "<div class=\"tile\"><div class=\"v\">" + html_escape(v) +
           "</div><div class=\"k\">" + k + "</div></div>\n";
  }
  out += "</div>\n";

  // --- shard-load heatmap --------------------------------------------------
  {
    const auto& load = sp.tick_load();
    std::vector<ShardId> shards;
    std::vector<std::int64_t> ticks;
    std::uint64_t mx = 0;
    for (const auto& [key, n] : load) {
      if (ticks.empty() || ticks.back() != key.first) ticks.push_back(key.first);
      shards.push_back(key.second);
      mx = std::max(mx, n);
    }
    std::sort(ticks.begin(), ticks.end());
    ticks.erase(std::unique(ticks.begin(), ticks.end()), ticks.end());
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
    open_card(out, "Shard load heatmap",
              "events per shard per " +
                  html_escape(fmt_compact(static_cast<double>(sp.tick().as_nanos()) * 1e-6)) +
                  " ms tick &#183; darker = busier (max <b>" +
                  html_escape(fmt_compact(static_cast<double>(mx))) + "</b>)");
    if (!load.empty() && mx > 0) {
      // Coarsen wide grids so each column stays visible.
      constexpr std::size_t kMaxCols = 120;
      const std::size_t group = (ticks.size() + kMaxCols - 1) / kMaxCols;
      std::map<std::int64_t, std::size_t> tick_col;
      for (std::size_t i = 0; i < ticks.size(); ++i) tick_col[ticks[i]] = i / group;
      const std::size_t cols = (ticks.size() + group - 1) / group;
      std::map<ShardId, std::size_t> shard_row;
      for (std::size_t i = 0; i < shards.size(); ++i) shard_row[shards[i]] = i;
      std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> cells;
      std::uint64_t cell_max = 0;
      for (const auto& [key, n] : load) {
        auto& c = cells[{shard_row[key.second], tick_col[key.first]}];
        c += n;
        cell_max = std::max(cell_max, c);
      }
      const double lw = 64, cw = std::max(6.0, 740.0 / static_cast<double>(cols));
      const double ch = 16;
      const double wpx = lw + cw * static_cast<double>(cols) + 8;
      const double hpx = ch * static_cast<double>(shards.size()) + 24;
      out += "<svg viewBox=\"0 0 " + fmt2(wpx) + " " + fmt2(hpx) + "\" role=\"img\">\n";
      for (std::size_t r = 0; r < shards.size(); ++r) {
        out += "<text class=\"tick\" x=\"" + fmt2(lw - 6) + "\" y=\"" +
               fmt2(ch * static_cast<double>(r) + ch * 0.7) +
               "\" text-anchor=\"end\">" + html_escape(shard_label(shards[r])) +
               "</text>\n";
      }
      for (const auto& [rc, n] : cells) {
        const double op = 0.08 + 0.92 * static_cast<double>(n) / static_cast<double>(cell_max);
        out += "<rect class=\"cell\" x=\"" +
               fmt2(lw + cw * static_cast<double>(rc.second)) + "\" y=\"" +
               fmt2(ch * static_cast<double>(rc.first)) + "\" width=\"" + fmt2(cw) +
               "\" height=\"" + fmt2(ch) + "\" fill=\"rgba(var(--heat)," + fmt2(op) +
               ")\"><title>shard " + html_escape(shard_label(shards[rc.first])) + ", " +
               std::to_string(n) + " events</title></rect>\n";
      }
      out += "<text class=\"tick\" x=\"" + fmt2(lw) + "\" y=\"" + fmt2(hpx - 8) +
             "\">t = 0</text>\n";
      out += "<text class=\"tick\" x=\"" + fmt2(wpx - 8) + "\" y=\"" + fmt2(hpx - 8) +
             "\" text-anchor=\"end\">" + std::to_string(ticks.size()) + " ticks</text>\n";
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  // --- traffic matrix ------------------------------------------------------
  {
    const auto& tm = sp.traffic();
    std::vector<ShardId> axes;
    std::uint64_t mx = 0;
    for (const auto& [key, e] : tm) {
      axes.push_back(key.first);
      axes.push_back(key.second);
      mx = std::max(mx, e.events);
    }
    std::sort(axes.begin(), axes.end());
    axes.erase(std::unique(axes.begin(), axes.end()), axes.end());
    open_card(out, "Cross-shard traffic matrix",
              "row schedules into column &#183; <b>" +
                  html_escape(fmt_compact(static_cast<double>(sp.cross_shard_events()))) +
                  "</b> cross-shard events");
    if (!tm.empty() && mx > 0) {
      std::map<ShardId, std::size_t> pos;
      for (std::size_t i = 0; i < axes.size(); ++i) pos[axes[i]] = i;
      const double lw = 64, cs = std::max(
          14.0, std::min(36.0, 700.0 / static_cast<double>(axes.size())));
      const double wpx = lw + cs * static_cast<double>(axes.size()) + 8;
      const double hpx = 18 + cs * static_cast<double>(axes.size()) + 8;
      out += "<svg viewBox=\"0 0 " + fmt2(wpx) + " " + fmt2(hpx) + "\" role=\"img\">\n";
      for (std::size_t i = 0; i < axes.size(); ++i) {
        out += "<text class=\"tick\" x=\"" +
               fmt2(lw + cs * static_cast<double>(i) + cs / 2) +
               "\" y=\"12\" text-anchor=\"middle\">" + html_escape(shard_label(axes[i])) +
               "</text>\n";
        out += "<text class=\"tick\" x=\"" + fmt2(lw - 6) + "\" y=\"" +
               fmt2(18 + cs * static_cast<double>(i) + cs * 0.6) +
               "\" text-anchor=\"end\">" + html_escape(shard_label(axes[i])) + "</text>\n";
      }
      for (const auto& [key, e] : tm) {
        const double op =
            0.08 + 0.92 * static_cast<double>(e.events) / static_cast<double>(mx);
        out += "<rect class=\"cell\" x=\"" +
               fmt2(lw + cs * static_cast<double>(pos[key.second])) + "\" y=\"" +
               fmt2(18 + cs * static_cast<double>(pos[key.first])) + "\" width=\"" +
               fmt2(cs) + "\" height=\"" + fmt2(cs) + "\" fill=\"rgba(var(--heat)," +
               fmt2(op) + ")\"><title>" + html_escape(shard_label(key.first)) +
               " &#8594; " + html_escape(shard_label(key.second)) + ": " +
               std::to_string(e.events) + " events, min delay " +
               fmt_compact(static_cast<double>(e.min_delay_ns) * 1e-6) +
               " ms</title></rect>\n";
      }
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  // --- speedup-vs-k curve --------------------------------------------------
  {
    const auto curve = sp.speedup_curve();
    open_card(out, "Predicted PDES speedup vs worker shards",
              "virtual barrier-round executor, lookahead window " +
                  html_escape(fmt_compact(static_cast<double>(sp.window_ns()) * 1e-6)) +
                  " ms &#183; causal bound (work/span) <b>" +
                  html_escape(fmt_compact(sp.work_span_ratio())) + "</b>");
    if (!curve.empty()) {
      constexpr double kW = 760, kH = 200, kML = 46, kMR = 14, kMT = 10, kMB = 26;
      const double pw = kW - kML - kMR, ph = kH - kMT - kMB;
      double hi = 1.0;
      for (const auto& [k, s] : curve) {
        (void)k;
        hi = std::max(hi, s);
      }
      const std::size_t n = curve.size();
      auto sx = [&](std::size_t i) {
        return kML + pw * static_cast<double>(i) / static_cast<double>(n - 1);
      };
      auto sy = [&](double v) { return kMT + (hi - v) / hi * ph; };
      out += "<svg viewBox=\"0 0 " + fmt2(kW) + " " + fmt2(kH) + "\" role=\"img\">\n";
      for (int g = 0; g <= 3; ++g) {
        const double v = hi * static_cast<double>(g) / 3.0;
        out += "<line class=\"grid\" x1=\"" + fmt2(kML) + "\" y1=\"" + fmt2(sy(v)) +
               "\" x2=\"" + fmt2(kW - kMR) + "\" y2=\"" + fmt2(sy(v)) + "\"/>\n";
        out += "<text class=\"tick\" x=\"" + fmt2(kML - 6) + "\" y=\"" + fmt2(sy(v)) +
               "\" dy=\"0.32em\" text-anchor=\"end\">" +
               html_escape(fmt_compact(v)) + "</text>\n";
      }
      // Dashed causality bound.
      out += "<line class=\"ann\" x1=\"" + fmt2(kML) + "\" y1=\"" +
             fmt2(sy(sp.work_span_ratio())) + "\" x2=\"" + fmt2(kW - kMR) + "\" y2=\"" +
             fmt2(sy(sp.work_span_ratio())) + "\"/>\n";
      out += "<polyline class=\"line\" points=\"";
      for (std::size_t i = 0; i < n; ++i) {
        if (i) out += ' ';
        out += fmt2(sx(i)) + "," + fmt2(sy(curve[i].second));
      }
      out += "\"/>\n";
      for (std::size_t i = 0; i < n; ++i) {
        const std::string label =
            curve[i].first == 0 ? std::string("inf") : std::to_string(curve[i].first);
        out += "<text class=\"tick\" x=\"" + fmt2(sx(i)) + "\" y=\"" + fmt2(kH - 8) +
               "\" text-anchor=\"middle\">" + label + "</text>\n";
      }
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  // --- queue-depth histogram ----------------------------------------------
  {
    const auto q = sp.queue_stats();
    open_card(out, "Event-queue depth",
              "max <b>" + html_escape(fmt_compact(static_cast<double>(q.max_depth))) +
                  "</b> &#183; mean <b>" + html_escape(fmt_compact(q.mean_depth)) +
                  "</b> over " + html_escape(fmt_compact(static_cast<double>(q.samples))) +
                  " dispatches");
    if (!q.histogram.empty()) {
      std::uint64_t mx = 0;
      for (const auto& [b, n] : q.histogram) {
        (void)b;
        mx = std::max(mx, n);
      }
      const std::size_t n = q.histogram.size();
      constexpr double kW = 760, kH = 140, kML = 46, kMB = 24;
      const double bw = (kW - kML - 14) / static_cast<double>(n);
      out += "<svg viewBox=\"0 0 " + fmt2(kW) + " " + fmt2(kH) + "\" role=\"img\">\n";
      std::size_t i = 0;
      for (const auto& [b, cnt] : q.histogram) {
        const double h =
            (kH - kMB - 10) * static_cast<double>(cnt) / static_cast<double>(mx);
        const double x = kML + bw * static_cast<double>(i);
        out += "<rect class=\"bar\" x=\"" + fmt2(x + 2) + "\" y=\"" +
               fmt2(kH - kMB - h) + "\" width=\"" + fmt2(bw - 4) + "\" height=\"" +
               fmt2(h) + "\"><title>" + std::to_string(cnt) + " dispatches</title></rect>\n";
        const std::string label =
            b == 0 ? std::string("0")
                   : "&#8804;" + fmt_compact(static_cast<double>((1ull << b) - 1));
        out += "<text class=\"tick\" x=\"" + fmt2(x + bw / 2) + "\" y=\"" +
               fmt2(kH - 8) + "\" text-anchor=\"middle\">" + label + "</text>\n";
        ++i;
      }
      out += "</svg>\n";
    }
    out += "</div>\n";
  }

  out += "</div>\n</body>\n</html>\n";
  return out;
}

}  // namespace tussle::sim
