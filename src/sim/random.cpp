#include "sim/random.hpp"

#include <algorithm>
#include <cassert>

namespace tussle::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  // Expand the single seed word through splitmix64, per xoshiro guidance.
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // All-zero state would be absorbing; splitmix64 cannot produce four zero
  // words from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t index) noexcept {
  // Two splitmix64 rounds over the seed, with the counter folded in between
  // through an odd multiplier so that stream(s, i) and stream(s, i + 1)
  // share no arithmetic structure. The resulting word is then expanded into
  // full xoshiro state by reseed()'s own splitmix64 pass.
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x = h ^ (index * 0xBF58476D1CE4E5B9ULL);
  return Rng(splitmix64(x));
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0);
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::pareto(double shape, double scale) noexcept {
  assert(shape > 0 && scale > 0);
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return scale / std::pow(u, 1.0 / shape);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(6.283185307179586 * u2);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  return ZipfTable(n, s).sample(*this);
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights)
    if (w > 0) total += w;
  if (total <= 0) throw std::invalid_argument("weighted_pick: no positive weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0) continue;
    x -= weights[i];
    if (x < 0) return i;
  }
  // Floating rounding can leave x ~ +0; return last positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i)
    if (weights[i - 1] > 0) return i - 1;
  return 0;  // unreachable
}

ZipfTable::ZipfTable(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfTable::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

}  // namespace tussle::sim
