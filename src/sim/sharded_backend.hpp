// Conservative barrier-synchronized parallel execution (PDES) for the
// Simulator — the engine ROADMAP item 2 calls for, shaped like Shadow's
// scheduler/worker split and sized by what sim::ScaleProfiler measured.
//
// Model
// -----
// The unit of sequential execution is the *owner* — the AS id the
// ShardAuditor already uses as the provisional shard. Every owner gets a
// logical process (Lp): its own EventQueue, its own RNG stream
// (Rng::stream(seed, owner)), and its own observability lanes. A backend
// built with k shards runs min(k, owners) worker threads; worker w
// executes the owners at positions w, w+k, ... of the ascending owner
// list. All *determinism-bearing* state is per-owner, never per-worker,
// so results are byte-identical at any shard count, including k = 1.
//
// Time is cut into barrier windows of width L = the minimum registered
// cross-owner link latency (Network::connect feeds the registry; at
// least 1 ns, so zero-latency topologies degrade to lockstep rather
// than deadlock). Within a window [W, W_end) every owner dispatches its
// own events independently: an event may affect another owner no sooner
// than one lookahead away, which lands at or beyond the window end.
//
// Cross-owner scheduling NEVER touches another owner's queue directly —
// not even at k = 1, not even between owners on the same worker. Each
// schedule_for() to a different owner appends to a per-(source, dest)
// outbox; at the window barrier every destination drains its inboxes,
// sorts arrivals by (time, source owner, source sequence), and only then
// enqueues them. The per-owner event order is therefore a pure function
// of the simulation, not of sharding. An arrival earlier than work its
// destination already executed means the producer undercut the declared
// lookahead; the drain throws.
//
// Events scheduled with no execution context (scenario setup) or from a
// control event go to a *control queue* run on the coordinator thread
// between windows, with every state lane folded first — control work
// (route installation, time-series sampling) sees fully merged state,
// matching the ShardAuditor's declare_control_event contract.
//
// Shared sinks (packet counters, id sources, auditor, profilers) never
// see concurrent writers: workers accumulate into per-owner lanes
// (shard_lane<T>, plus built-in auditor/scale/loop-profiler lanes) and
// the coordinator folds them in ascending owner order — at control
// events for state lanes, at the end of run() for observability — so
// merged output is shard-count-independent.
#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/exec_backend.hpp"
#include "sim/exec_profile.hpp"
#include "sim/mem_profile.hpp"
#include "sim/profiler.hpp"
#include "sim/random.hpp"
#include "sim/scale_profile.hpp"
#include "sim/shard_audit.hpp"
#include "sim/time.hpp"

namespace tussle::sim {

class ShardedBackend final : public ExecutionBackend {
 public:
  /// Owner-directed EventIds carry the owner in bits 40+; ids of events
  /// routed through a barrier inbox set this flag and cannot be cancelled.
  static constexpr std::uint64_t kRemoteId = 1ull << 63;

  ShardedBackend(Simulator& sim, std::size_t shards);
  ~ShardedBackend() override;

  const char* name() const noexcept override { return "sharded"; }

  EventId schedule(SimTime at, TaskTag tag, EventQueue::Action action) override;
  EventId schedule_for(ShardId owner, SimTime at, TaskTag tag,
                       EventQueue::Action action) override;

  /// Same-owner and coordinator-context cancellation only: a worker may
  /// cancel its own owner's pending events; setup/control code may cancel
  /// anything still queued. Cross-owner cancels and inbox-routed ids
  /// return false — cancellation is state the owner must own.
  bool cancel(EventId id) override;

  std::size_t pending() const override;
  void register_owner(ShardId owner) override;
  void register_lookahead(ShardId a, ShardId b, Duration latency) override;
  std::size_t run(SimTime horizon) override;
  /// Not meaningful under parallel execution; throws std::logic_error.
  bool step() override;
  void on_hooks_changed() override;
  /// Base profiler plus every owner lane. Callers must be the coordinator
  /// or a control event (workers are parked, so lane reads are ordered by
  /// the barrier).
  std::int64_t mem_live_bytes() const override;

  std::size_t shard_count() const noexcept { return shards_; }
  std::size_t owner_count() const noexcept { return lps_.size(); }
  /// The effective barrier lookahead (min registered cross-owner latency,
  /// clamped to >= 1 ns; one unbounded window when nothing is registered).
  Duration lookahead() const noexcept;
  /// Barrier windows completed across all run() calls (tests/diagnostics).
  std::size_t windows_run() const noexcept { return windows_; }

  // ----------------------------------------------------------- internals --
  /// A cross-owner message parked in a per-(src, dest) outbox until the
  /// window barrier.
  struct Msg {
    SimTime at;
    ShardId src = kNoShard;
    std::uint64_t seq = 0;  ///< per-source send counter: the canonical tiebreak
    TaskTag tag;
    EventQueue::Action action;
    ShardId origin = kNoShard;  ///< shard claimed by the sending event
    SimTime sent;
  };

  struct LaneEntry {
    void* obj = nullptr;
    void* base = nullptr;
    LaneFoldFn fold = nullptr;
    LaneDestroyFn destroy = nullptr;
  };

  /// One owner's logical process. Mutated only by its worker inside a
  /// window (or by the coordinator between barriers).
  struct Lp {
    ShardId owner = kNoShard;
    EventQueue queue;
    SimTime lp_now{};
    Rng rng{1};
    std::uint64_t out_seq = 0;
    /// outbox[i] buffers messages for lps_[i]; the last slot buffers
    /// messages for the control queue. Sized at run() start.
    std::vector<std::vector<Msg>> outbox;
    std::map<const void*, LaneEntry> lanes;  ///< shard_lane<T> storage
    ShardAuditor audit;                      ///< lane when a base auditor is attached
    ScaleProfiler scale;                     ///< lane when a base scale profiler is attached
    MemProfiler mem;                         ///< lane when a base mem profiler is attached
    LoopProfiler prof;                       ///< lane when a base loop profiler is attached
    std::size_t executed = 0;
    std::exception_ptr error;

    ~Lp();
  };

  /// Lane lookup/creation for the calling worker (see shard_lane<T>).
  void* lane(void* base, LaneMakeFn make, LaneFoldFn fold, LaneDestroyFn destroy);

 private:
  Lp& lp_for(ShardId owner);  ///< creates pre-run; throws for unknown owners mid-run
  EventId push_control(SimTime at, TaskTag tag, EventQueue::Action action);
  EventId push_direct(Lp& lp, SimTime at, TaskTag tag, EventQueue::Action action);
  /// Dispatches lp's events inside the window; returns how many ran. `xl`
  /// is the calling worker's exec-profiler lane (nullptr when detached).
  std::size_t process_lp(Lp& lp, SimTime window_end, ExecProfiler::WorkerLane* xl);
  void drain_lp(std::size_t index, Lp& dst, ExecProfiler::WorkerLane* xl);
  void drain_control_inbox();
  std::size_t run_control_at(SimTime tc);
  void fold_state_lanes();
  void merge_observability();

  std::size_t shards_ = 1;
  std::vector<std::unique_ptr<Lp>> lps_;  ///< ascending owner order
  std::map<ShardId, std::size_t> index_;  ///< owner -> position in lps_
  EventQueue control_;
  std::int64_t lookahead_ns_ = -1;  ///< min registered cross-owner latency; -1 = none
  bool running_ = false;
  bool audit_fail_fast_ = true;

  // Round state: written by the coordinator before the window barrier,
  // read by workers after it (the barrier orders the accesses).
  SimTime window_end_{};
  bool done_ = false;
  std::size_t windows_ = 0;
};

}  // namespace tussle::sim
