#include "sim/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/json.hpp"
#include "sim/metric_registry.hpp"
#include "sim/simulator.hpp"

namespace tussle::sim {

// ---------------------------------------------------------------------------
// TimeSeries

void TimeSeries::append(SimTime tick, double value) {
  if (!ticks_.empty() && tick <= ticks_.back()) {
    throw std::logic_error("TimeSeries::append: ticks must be strictly increasing");
  }
  ticks_.push_back(tick);
  values_.push_back(value);
}

// ---------------------------------------------------------------------------
// Analysis

SeriesAnalysis analyze_series(const TimeSeries& s, const ConvergenceConfig& cfg) {
  SeriesAnalysis a;
  const auto& ticks = s.ticks();
  const auto& vals = s.values();
  const std::size_t n = vals.size();
  a.samples = n;
  if (n == 0) return a;

  a.min = a.max = vals[0];
  double sum = 0;
  for (double v : vals) {
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
    sum += v;
  }
  a.mean = sum / static_cast<double>(n);
  a.final_value = vals.back();

  const double range = a.max - a.min;
  const double band = 2.0 * std::max(range * cfg.tolerance, 1e-12);

  // Stationarity: grow a suffix backwards from the end while its own
  // min..max span stays inside the tolerance band. The maximal such suffix
  // is the "settled" tail; it counts as convergence only if it is at least
  // `window` samples long.
  double smin = vals[n - 1];
  double smax = vals[n - 1];
  std::size_t start = n - 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    const double lo = std::min(smin, vals[i]);
    const double hi = std::max(smax, vals[i]);
    if (hi - lo > band) break;
    smin = lo;
    smax = hi;
    start = i;
  }
  const std::size_t suffix_len = n - start;
  if (suffix_len >= cfg.window && n >= cfg.window) {
    a.converged = true;
    a.converged_at = ticks[start];
    double ssum = 0;
    for (std::size_t i = start; i < n; ++i) ssum += vals[i];
    a.converged_value = ssum / static_cast<double>(suffix_len);
  }

  // Dominant period: autocorrelation of the mean-removed series. A series
  // that settles is not an oscillator no matter what its transient did, so
  // this runs only when the stationarity test failed.
  if (!a.converged && n >= 6) {
    const std::size_t max_lag = n / 2;
    double denom = 0;
    for (double v : vals) denom += (v - a.mean) * (v - a.mean);
    if (denom > 1e-24) {
      std::vector<double> r(max_lag + 1, 0.0);
      for (std::size_t k = 2; k <= max_lag; ++k) {
        double num = 0;
        for (std::size_t i = 0; i + k < n; ++i) {
          num += (vals[i] - a.mean) * (vals[i + k] - a.mean);
        }
        r[k] = num / denom;
      }
      std::size_t best = 0;
      for (std::size_t k = 3; k + 1 <= max_lag; ++k) {
        const bool local_max = r[k] > r[k - 1] && r[k] >= r[k + 1];
        if (local_max && r[k] >= cfg.min_autocorrelation &&
            (best == 0 || r[k] > r[best])) {
          best = k;
        }
      }
      if (best != 0) {
        const double span = static_cast<double>((ticks.back() - ticks.front()).as_nanos());
        const double dt = span / static_cast<double>(n - 1);
        a.oscillating = true;
        a.dominant_period =
            SimTime::nanos(static_cast<std::int64_t>(dt * static_cast<double>(best)));
        a.oscillation_strength = r[best];
      }
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// TimeSeriesStore

TimeSeries& TimeSeriesStore::series(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return series_[it->second].second;
  index_.emplace(name, series_.size());
  series_.emplace_back(name, TimeSeries{});
  return series_.back().second;
}

const TimeSeries* TimeSeriesStore::find(const std::string& name) const noexcept {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &series_[it->second].second;
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ts] : series_) out.push_back(name);
  return out;
}

void TimeSeriesStore::merge_prefixed(const std::string& prefix, const TimeSeriesStore& other) {
  for (const auto& [name, ts] : other.series_) {
    TimeSeries& dst = series(prefix + name);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      dst.append(ts.ticks()[i], ts.values()[i]);
    }
  }
}

std::string TimeSeriesStore::to_csv() const {
  std::string out = "series,tick_ns,value\n";
  for (const auto& [name, ts] : series_) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      out += name;
      out += ',';
      out += std::to_string(ts.ticks()[i].as_nanos());
      out += ',';
      out += json_number(ts.values()[i]);
      out += '\n';
    }
  }
  return out;
}

std::string TimeSeriesStore::to_json(const ConvergenceConfig& cfg) const {
  JsonWriter w;
  w.begin_object();
  w.key("series").begin_array();
  for (const auto& [name, ts] : series_) {
    const SeriesAnalysis a = analyze_series(ts, cfg);
    w.begin_object();
    w.key("name").value(name);
    w.key("ticks_ns").begin_array();
    for (SimTime t : ts.ticks()) w.value(t.as_nanos());
    w.end_array();
    w.key("values").begin_array();
    for (double v : ts.values()) w.value(v);
    w.end_array();
    w.key("analysis").begin_object();
    w.key("samples").value(static_cast<std::int64_t>(a.samples));
    w.key("mean").value(a.mean);
    w.key("min").value(a.min);
    w.key("max").value(a.max);
    w.key("final").value(a.final_value);
    w.key("converged").value(a.converged);
    if (a.converged) {
      w.key("converged_at_ns").value(a.converged_at.as_nanos());
      w.key("converged_value").value(a.converged_value);
    }
    w.key("oscillating").value(a.oscillating);
    if (a.oscillating) {
      w.key("dominant_period_ns").value(a.dominant_period.as_nanos());
      w.key("oscillation_strength").value(a.oscillation_strength);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

// ---------------------------------------------------------------------------
// Dashboard

namespace {

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Short deterministic number for axis labels and stat tiles.
std::string fmt_short(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// Sim-time with an auto-picked unit, e.g. "250ms", "1.2s".
std::string fmt_time(SimTime t) {
  const double ns = static_cast<double>(t.as_nanos());
  const double abs_ns = std::fabs(ns);
  if (abs_ns < 1e3) return fmt_short(ns) + "ns";
  if (abs_ns < 1e6) return fmt_short(ns * 1e-3) + "us";
  if (abs_ns < 1e9) return fmt_short(ns * 1e-6) + "ms";
  return fmt_short(ns * 1e-9) + "s";
}

/// SVG coordinate: fixed two decimals so output is platform-stable.
std::string fmt_coord(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// Chart geometry shared by every series card.
constexpr double kW = 760, kH = 200;
constexpr double kML = 56, kMR = 14, kMT = 10, kMB = 26;
constexpr double kPlotW = kW - kML - kMR;
constexpr double kPlotH = kH - kMT - kMB;

void render_chart(std::string& out, const TimeSeries& ts, const SeriesAnalysis& a) {
  const auto& ticks = ts.ticks();
  const auto& vals = ts.values();
  const std::size_t n = ts.size();

  double lo = a.min, hi = a.max;
  if (hi - lo < 1e-12) {
    lo -= 0.5;
    hi += 0.5;
  }
  const double t0 = static_cast<double>(ticks.front().as_nanos());
  const double t1 = static_cast<double>(ticks.back().as_nanos());
  const double tspan = (t1 - t0) > 0 ? (t1 - t0) : 1.0;
  auto sx = [&](SimTime t) {
    return kML + (static_cast<double>(t.as_nanos()) - t0) / tspan * kPlotW;
  };
  auto sy = [&](double v) { return kMT + (hi - v) / (hi - lo) * kPlotH; };

  out += "<svg viewBox=\"0 0 " + fmt_coord(kW) + " " + fmt_coord(kH) +
         "\" role=\"img\" aria-label=\"" + std::to_string(n) +
         " samples\">\n";

  // Hairline grid + y labels at four levels.
  for (int g = 0; g <= 3; ++g) {
    const double v = lo + (hi - lo) * static_cast<double>(g) / 3.0;
    const std::string y = fmt_coord(sy(v));
    out += "<line class=\"grid\" x1=\"" + fmt_coord(kML) + "\" y1=\"" + y + "\" x2=\"" +
           fmt_coord(kW - kMR) + "\" y2=\"" + y + "\"/>\n";
    out += "<text class=\"tick\" x=\"" + fmt_coord(kML - 6) + "\" y=\"" + y +
           "\" dy=\"0.32em\" text-anchor=\"end\">" + html_escape(fmt_short(v)) +
           "</text>\n";
  }
  // X labels: first, middle, last tick.
  const SimTime mid = SimTime::nanos((ticks.front().as_nanos() + ticks.back().as_nanos()) / 2);
  const SimTime xt[3] = {ticks.front(), mid, ticks.back()};
  const char* anchors[3] = {"start", "middle", "end"};
  for (int i = 0; i < 3; ++i) {
    out += "<text class=\"tick\" x=\"" + fmt_coord(sx(xt[i])) + "\" y=\"" +
           fmt_coord(kH - 8) + "\" text-anchor=\"" + anchors[i] + "\">" +
           html_escape(fmt_time(xt[i])) + "</text>\n";
  }
  // Baseline.
  out += "<line class=\"axis\" x1=\"" + fmt_coord(kML) + "\" y1=\"" +
         fmt_coord(kMT + kPlotH) + "\" x2=\"" + fmt_coord(kW - kMR) + "\" y2=\"" +
         fmt_coord(kMT + kPlotH) + "\"/>\n";

  // Convergence marker: dashed vertical at the start of the stable suffix.
  if (a.converged) {
    const std::string x = fmt_coord(sx(a.converged_at));
    out += "<line class=\"ann\" x1=\"" + x + "\" y1=\"" + fmt_coord(kMT) + "\" x2=\"" + x +
           "\" y2=\"" + fmt_coord(kMT + kPlotH) + "\"/>\n";
  }

  // The trajectory itself.
  out += "<polyline class=\"line\" points=\"";
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out += ' ';
    out += fmt_coord(sx(ticks[i])) + "," + fmt_coord(sy(vals[i]));
  }
  out += "\"/>\n";

  // Native tooltips on sample points: only worth the bytes when the chart
  // is sparse enough for individual points to be hoverable.
  if (n <= 240) {
    for (std::size_t i = 0; i < n; ++i) {
      out += "<circle class=\"pt\" cx=\"" + fmt_coord(sx(ticks[i])) + "\" cy=\"" +
             fmt_coord(sy(vals[i])) + "\" r=\"6\"><title>" +
             html_escape(fmt_time(ticks[i])) + " &#8594; " +
             html_escape(json_number(vals[i])) + "</title></circle>\n";
    }
  }
  out += "</svg>\n";
}

}  // namespace

std::string timeseries_dashboard(const TimeSeriesStore& store, const std::string& title,
                                 const ConvergenceConfig& cfg) {
  std::vector<SeriesAnalysis> analyses;
  analyses.reserve(store.size());
  std::size_t total_samples = 0, n_converged = 0, n_oscillating = 0;
  for (const auto& [name, ts] : store.items()) {
    analyses.push_back(analyze_series(ts, cfg));
    total_samples += analyses.back().samples;
    n_converged += analyses.back().converged ? 1 : 0;
    n_oscillating += analyses.back().oscillating ? 1 : 0;
  }

  std::string out;
  out +=
      "<!DOCTYPE html>\n"
      "<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n";
  out += "<title>" + html_escape(title) + "</title>\n";
  out +=
      "<style>\n"
      ".viz-root {\n"
      "  color-scheme: light;\n"
      "  --surface-1: #fcfcfb; --page: #f9f9f7;\n"
      "  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;\n"
      "  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);\n"
      "  --series-1: #2a78d6;\n"
      "}\n"
      "@media (prefers-color-scheme: dark) {\n"
      "  :root:where(:not([data-theme=\"light\"])) .viz-root {\n"
      "    color-scheme: dark;\n"
      "    --surface-1: #1a1a19; --page: #0d0d0d;\n"
      "    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;\n"
      "    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);\n"
      "    --series-1: #3987e5;\n"
      "  }\n"
      "}\n"
      ":root[data-theme=\"dark\"] .viz-root {\n"
      "  color-scheme: dark;\n"
      "  --surface-1: #1a1a19; --page: #0d0d0d;\n"
      "  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;\n"
      "  --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);\n"
      "  --series-1: #3987e5;\n"
      "}\n"
      "body { margin: 0; font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif; }\n"
      ".viz-root { background: var(--page); color: var(--text-primary);\n"
      "  min-height: 100vh; padding: 24px; box-sizing: border-box; }\n"
      "h1 { font-size: 20px; margin: 0 0 4px; }\n"
      ".sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }\n"
      ".tiles { display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 24px; }\n"
      ".tile { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 12px 16px; min-width: 110px; }\n"
      ".tile .v { font-size: 24px; }\n"
      ".tile .k { color: var(--text-secondary); font-size: 12px; }\n"
      ".card { background: var(--surface-1); border: 1px solid var(--border);\n"
      "  border-radius: 8px; padding: 16px; margin-bottom: 16px; max-width: 820px; }\n"
      ".card h2 { font-size: 14px; margin: 0 0 4px; font-weight: 600; }\n"
      ".stats { color: var(--text-secondary); font-size: 12px; margin: 0 0 10px; }\n"
      ".stats b { color: var(--text-primary); font-weight: 600; }\n"
      ".verdict { white-space: nowrap; }\n"
      ".dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;\n"
      "  background: var(--series-1); margin-right: 4px; }\n"
      "svg { display: block; width: 100%; height: auto; }\n"
      ".grid { stroke: var(--grid); stroke-width: 1; }\n"
      ".axis { stroke: var(--axis); stroke-width: 1; }\n"
      ".tick { fill: var(--muted); font-size: 10px; font-variant-numeric: tabular-nums; }\n"
      ".line { stroke: var(--series-1); stroke-width: 2; fill: none;\n"
      "  stroke-linejoin: round; stroke-linecap: round; }\n"
      ".ann { stroke: var(--muted); stroke-width: 1; stroke-dasharray: 4 3; }\n"
      ".pt { fill: transparent; }\n"
      ".tbl summary { color: var(--text-secondary); font-size: 12px; cursor: pointer; }\n"
      "table { border-collapse: collapse; font-size: 12px; margin-top: 8px;\n"
      "  font-variant-numeric: tabular-nums; }\n"
      "td, th { border: 1px solid var(--grid); padding: 2px 8px; text-align: right; }\n"
      "th { color: var(--text-secondary); font-weight: 600; }\n"
      ".note { color: var(--muted); font-size: 12px; }\n"
      "</style>\n</head>\n<body>\n<div class=\"viz-root\">\n";

  out += "<h1>" + html_escape(title) + "</h1>\n";
  out += "<p class=\"sub\">Simulated-time telemetry &#183; deterministic export</p>\n";

  out += "<div class=\"tiles\">\n";
  const std::pair<const char*, std::size_t> tiles[] = {
      {"series", store.size()},
      {"samples", total_samples},
      {"converged", n_converged},
      {"oscillating", n_oscillating},
  };
  for (const auto& [k, v] : tiles) {
    out += "<div class=\"tile\"><div class=\"v\">" + std::to_string(v) +
           "</div><div class=\"k\">" + k + "</div></div>\n";
  }
  out += "</div>\n";

  std::size_t idx = 0;
  for (const auto& [name, ts] : store.items()) {
    const SeriesAnalysis& a = analyses[idx++];
    out += "<div class=\"card\">\n<h2><span class=\"dot\"></span>" + html_escape(name) +
           "</h2>\n";
    out += "<p class=\"stats\">final <b>" + html_escape(fmt_short(a.final_value)) +
           "</b> &#183; mean <b>" + html_escape(fmt_short(a.mean)) + "</b> &#183; range <b>" +
           html_escape(fmt_short(a.min)) + " &#8230; " + html_escape(fmt_short(a.max)) +
           "</b> &#183; <span class=\"verdict\">";
    if (a.converged) {
      out += "converged at " + html_escape(fmt_time(a.converged_at)) + " (value " +
             html_escape(fmt_short(a.converged_value)) + ")";
    } else if (a.oscillating) {
      out += "oscillating, period " + html_escape(fmt_time(a.dominant_period)) +
             " (autocorr " + html_escape(fmt_short(a.oscillation_strength)) + ")";
    } else {
      out += "still moving";
    }
    out += "</span></p>\n";
    if (!ts.empty()) {
      render_chart(out, ts, a);
      out += "<details class=\"tbl\"><summary>Data table</summary>\n";
      if (ts.size() <= 64) {
        out += "<table><tr><th>t</th><th>value</th></tr>\n";
        for (std::size_t i = 0; i < ts.size(); ++i) {
          out += "<tr><td>" + html_escape(fmt_time(ts.ticks()[i])) + "</td><td>" +
                 html_escape(json_number(ts.values()[i])) + "</td></tr>\n";
        }
        out += "</table>\n";
      } else {
        out += "<p class=\"note\">" + std::to_string(ts.size()) +
               " samples &#8212; use the CSV export for the full table.</p>\n";
      }
      out += "</details>\n";
    }
    out += "</div>\n";
  }

  out += "</div>\n</body>\n</html>\n";
  return out;
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder

TimeSeriesRecorder::TimeSeriesRecorder(Duration interval) : interval_(interval) {
  if (interval.as_nanos() <= 0) {
    throw std::invalid_argument("TimeSeriesRecorder: interval must be positive");
  }
}

void TimeSeriesRecorder::probe(std::string name, std::function<double()> fn) {
  Source src;
  src.kind = Source::Kind::kProbe;
  src.name = std::move(name);
  src.fn = std::move(fn);
  sources_.push_back(std::move(src));
}

void TimeSeriesRecorder::track_counter(std::string name, const Counter& counter) {
  Source src;
  src.kind = Source::Kind::kCounterDelta;
  src.name = std::move(name);
  src.counter = &counter;
  src.last_count = counter.value();
  sources_.push_back(std::move(src));
}

void TimeSeriesRecorder::track_time_weighted(std::string name, const TimeWeighted& tw) {
  Source src;
  src.kind = Source::Kind::kTimeWeighted;
  src.name = std::move(name);
  src.tw = &tw;
  sources_.push_back(std::move(src));
}

void TimeSeriesRecorder::watch(MetricRegistry& registry, const std::string& name) {
  const char* kind = registry.kind(name);
  if (kind == nullptr) {
    throw std::logic_error("TimeSeriesRecorder::watch: no instrument named '" + name + "'");
  }
  const std::string k = kind;
  if (k == "counter") {
    track_counter(name, registry.counter(name));
  } else if (k == "time_weighted") {
    track_time_weighted(name, registry.time_weighted(name));
  } else if (k == "gauge") {
    probe(name, [&registry, name] { return registry.gauge_value(name); });
  } else if (k == "summary") {
    // Instrument addresses are stable for the registry's lifetime.
    const Summary& s = registry.summary(name);
    probe(name + ".mean", [&s] { return s.mean(); });
  } else {
    throw std::logic_error("TimeSeriesRecorder::watch: cannot sample a " + k +
                           " ('" + name + "')");
  }
}

void TimeSeriesRecorder::sample(SimTime tick) {
  for (Source& src : sources_) {
    switch (src.kind) {
      case Source::Kind::kProbe:
        store_.series(src.name).append(tick, src.fn());
        break;
      case Source::Kind::kCounterDelta: {
        const std::int64_t cur = src.counter->value();
        store_.series(src.name).append(tick, static_cast<double>(cur - src.last_count));
        src.last_count = cur;
        break;
      }
      case Source::Kind::kTimeWeighted:
        store_.series(src.name + ".current").append(tick, src.tw->current());
        store_.series(src.name + ".avg").append(tick, src.tw->value_at(tick));
        break;
    }
  }
  last_sampled_ = tick;
  sampled_any_ = true;
}

void TimeSeriesRecorder::maybe_sample(SimTime now) {
  while (next_due_ <= now) {
    sample(next_due_);
    next_due_ += interval_;
  }
}

void TimeSeriesRecorder::attach(Simulator& sim, SimTime horizon) {
  const SimTime start = sim.now();
  sample(start);
  const std::int64_t iv = interval_.as_nanos();
  // Pre-schedule every aligned tick up to the horizon rather than using
  // schedule_every: a self-rescheduling event would keep an otherwise-empty
  // queue alive, changing when run() drains for scenarios that run to
  // quiescence instead of to a horizon.
  for (std::int64_t k = start.as_nanos() / iv + 1; k * iv <= horizon.as_nanos(); ++k) {
    const SimTime t = SimTime::nanos(k * iv);
    sim.schedule_at(t, [this, t] { sample(t); });
  }
  next_due_ = SimTime::nanos((horizon.as_nanos() / iv + 1) * iv);
}

void TimeSeriesRecorder::finish(SimTime now) {
  if (!sampled_any_ || now > last_sampled_) sample(now);
}

}  // namespace tussle::sim
