#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace tussle::sim {

EventId EventQueue::push(SimTime at, Action action, TaskTag tag) {
  const EventId id{id_base_ + next_seq_ + 1};  // ids start at 1 so {} is "no event"
  heap_.push_back(Entry{at, next_seq_, id, std::move(action)});
  if (record_tags_ && (tag.component != nullptr || tag.kind != nullptr)) {
    tags_.emplace(next_seq_, tag);
  }
  ++next_seq_;
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventQueue::record_tags(bool on) noexcept {
  record_tags_ = on;
  if (!on) tags_.clear();
}

bool EventQueue::cancel(EventId id) {
  if (id.value <= id_base_ || id.value - id_base_ > next_seq_) return false;
  // A cancelled id may correspond to an already-fired event; the fired set
  // is implicit (ids below the heap minimum that are absent). We detect it
  // by scanning lazily: insertion succeeds, but the tombstone is only
  // meaningful if the entry is still queued. To keep cancel() truthful we
  // check membership in the live heap.
  for (const Entry& e : heap_) {
    if (e.id == id) {
      return cancelled_.insert(id.value).second;
    }
  }
  return false;
}

void EventQueue::drop_cancelled_top() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id.value);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    tags_.erase(heap_.front().seq);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const noexcept {
  // Tombstones may hide all remaining entries.
  return heap_.size() == cancelled_.size();
}

SimTime EventQueue::next_time() const {
  drop_cancelled_top();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_top();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  TaskTag tag;
  if (record_tags_) {
    if (auto it = tags_.find(e.seq); it != tags_.end()) {
      tag = it->second;
      tags_.erase(it);
    }
  }
  return Popped{e.time, std::move(e.action), tag, e.id};
}

}  // namespace tussle::sim
