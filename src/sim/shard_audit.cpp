#include "sim/shard_audit.hpp"

#include "sim/json.hpp"

namespace tussle::sim {

namespace {

std::string shard_name(ShardId s) {
  if (s == kNoShard) return "none";
  if (s == kSharedShard) return "shared";
  return std::to_string(s);
}

}  // namespace

void ShardAuditor::begin_event(SimTime now, const TaskTag& tag) {
  ++events_;
  current_ = kNoShard;
  in_event_ = true;
  in_control_ = false;
  control_name_ = nullptr;
  event_time_ = now;
  event_component_ = tag.component;
  event_kind_ = tag.kind;
}

void ShardAuditor::end_event() {
  // Without this, claims made *between* runs (phase-two scenario setup
  // after a sim.run() has drained) would be attributed to whichever shard
  // the final event of the previous run had claimed.
  in_event_ = false;
  in_control_ = false;
  control_name_ = nullptr;
  current_ = kNoShard;
}

void ShardAuditor::declare_control_event(const char* name) {
  in_control_ = true;
  control_name_ = name;
}

void ShardAuditor::register_component(std::string_view kind, std::uint64_t id,
                                      ShardId shard) {
  components_.emplace(std::make_pair(std::string(kind), id), shard);
}

ShardAccess ShardAuditor::make_access(std::string_view kind, std::uint64_t id,
                                      ShardId owner, std::string_view what) const {
  ShardAccess a;
  a.component = std::string(kind);
  a.id = id;
  a.owner = owner;
  a.accessor = current_;
  a.what = std::string(what);
  a.event_component = event_component_ != nullptr ? event_component_ : "";
  a.event_kind = event_kind_ != nullptr ? event_kind_ : "";
  a.time = event_time_;
  a.span = spans_ != nullptr ? spans_->current() : kNoSpan;
  return a;
}

std::string ShardAuditor::describe(const ShardAccess& a) const {
  std::string out = "shard-audit violation: " + a.component + " #" +
                    std::to_string(a.id) + " owned by shard " + shard_name(a.owner) +
                    " mutated from shard " + shard_name(a.accessor) +
                    " without an event-queue hop\n";
  out += "  mutator: " + a.what + "\n";
  out += "  event:   " +
         (a.event_component.empty() && a.event_kind.empty()
              ? std::string("(untagged)")
              : a.event_component + "/" + a.event_kind) +
         " at " + a.time.to_string() + "\n";
  out += "  span:    " + (a.span == kNoSpan ? std::string("(none)")
                                            : "#" + std::to_string(a.span));
  return out;
}

void ShardAuditor::claim(std::string_view kind, std::uint64_t id, ShardId shard) {
  register_component(kind, id, shard);
  if (!in_event_) return;  // setup code runs outside any shard context
  if (in_control_) {
    control_[std::make_pair(std::string(control_name_), std::string(kind) + "/enter")] += 1;
    return;
  }
  if (current_ == kNoShard) {
    current_ = shard;
    ++claims_;
    return;
  }
  if (current_ == shard || shard == kSharedShard) return;
  // A handler entered a component of another shard synchronously — the
  // same hazard as mutating its state directly.
  ShardAccess a = make_access(kind, id, shard, "enter");
  violations_.push_back(a);
  if (fail_fast_) {
    std::string report = describe(a);  // before the move: arg order is unspecified
    throw ShardViolation(report, std::move(a));
  }
}

void ShardAuditor::check_mutation(std::string_view kind, std::uint64_t id,
                                  ShardId owner, std::string_view what) {
  ++checks_;
  register_component(kind, id, owner);
  if (owner == kSharedShard) {
    record_shared_access(kind, what);
    return;
  }
  if (!in_event_) return;  // construction / topology wiring phase
  if (in_control_) {
    control_[std::make_pair(std::string(control_name_),
                            std::string(kind) + "/" + std::string(what))] += 1;
    return;
  }
  if (current_ == kNoShard) {
    // First touch claims the event for the owner's shard.
    current_ = owner;
    ++claims_;
    return;
  }
  if (current_ == owner) return;
  ShardAccess a = make_access(kind, id, owner, what);
  violations_.push_back(a);
  if (fail_fast_) {
    std::string report = describe(a);  // before the move: arg order is unspecified
    throw ShardViolation(report, std::move(a));
  }
}

void ShardAuditor::record_shared_access(std::string_view kind, std::string_view what) {
  shared_[std::make_pair(std::string(kind), std::string(what))][current_] += 1;
}

std::size_t ShardAuditor::shard_count() const {
  std::map<ShardId, bool> seen;
  for (const auto& [key, shard] : components_) {
    if (shard != kSharedShard && shard != kNoShard) seen.emplace(shard, true);
  }
  return seen.size();
}

void ShardAuditor::merge(const ShardAuditor& other) {
  events_ += other.events_;
  checks_ += other.checks_;
  claims_ += other.claims_;
  for (const auto& [key, shard] : other.components_) components_.emplace(key, shard);
  for (const auto& [key, tally] : other.shared_) {
    auto& mine = shared_[key];
    for (const auto& [shard, count] : tally) mine[shard] += count;
  }
  for (const auto& [key, count] : other.control_) control_[key] += count;
  violations_.insert(violations_.end(), other.violations_.begin(),
                     other.violations_.end());
}

std::string ShardAuditor::report_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("tool").value("shard-audit");
  w.key("events_audited").value(static_cast<std::uint64_t>(events_));
  w.key("mutations_checked").value(static_cast<std::uint64_t>(checks_));
  w.key("claims").value(static_cast<std::uint64_t>(claims_));
  w.key("shards").value(static_cast<std::uint64_t>(shard_count()));

  // Components grouped per shard, both levels in ordered-map order.
  std::map<ShardId, std::map<std::string, std::uint64_t>> per_shard;
  for (const auto& [key, shard] : components_) per_shard[shard][key.first] += 1;
  w.key("components").begin_array();
  for (const auto& [shard, kinds] : per_shard) {
    w.begin_object();
    w.key("shard").value(shard_name(shard));
    w.key("kinds").begin_object();
    for (const auto& [kind, count] : kinds) w.key(kind).value(count);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("shared_access").begin_array();
  for (const auto& [key, tally] : shared_) {
    w.begin_object();
    w.key("component").value(key.first);
    w.key("what").value(key.second);
    w.key("by_shard").begin_object();
    for (const auto& [shard, count] : tally) w.key(shard_name(shard)).value(count);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("control_events").begin_array();
  for (const auto& [key, count] : control_) {
    w.begin_object();
    w.key("event").value(key.first);
    w.key("touched").value(key.second);
    w.key("count").value(count);
    w.end_object();
  }
  w.end_array();

  w.key("violations").begin_array();
  for (const ShardAccess& a : violations_) {
    w.begin_object();
    w.key("component").value(a.component);
    w.key("id").value(a.id);
    w.key("owner").value(shard_name(a.owner));
    w.key("accessor").value(shard_name(a.accessor));
    w.key("what").value(a.what);
    w.key("event").value(a.event_component + "/" + a.event_kind);
    w.key("t_ns").value(static_cast<std::int64_t>(a.time.as_nanos()));
    w.key("span").value(static_cast<std::uint64_t>(a.span));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace tussle::sim
