// Per-node application multiplexer.
//
// A Node has one local-delivery handler; real hosts run many applications.
// The mux dispatches by application protocol so multiple app objects can
// coexist on one host.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "net/network.hpp"

namespace tussle::apps {

class AppMux {
 public:
  using Handler = std::function<void(const net::Packet&)>;

  /// Installs a mux as `node`'s local handler and returns it. The returned
  /// object is shared with the node's closure, so it stays alive as long
  /// as the network does.
  static std::shared_ptr<AppMux> install(net::Node& node);

  void set_handler(net::AppProto proto, Handler h) { handlers_[proto] = std::move(h); }
  void set_default(Handler h) { default_ = std::move(h); }

  void dispatch(const net::Packet& p) const;

 private:
  std::map<net::AppProto, Handler> handlers_;
  Handler default_;
};

}  // namespace tussle::apps
