// Packet-level reliable transport with AIMD congestion control.
//
// The fluid model in congestion.hpp sweeps the compliance tussle cheaply;
// this module grounds it on the real data plane: a Go-Back-N window
// protocol with slow start, congestion avoidance, and timeout back-off —
// and an "aggressive" variant that simply refuses to back off, which is the
// §II-B cheater made concrete. The apps_transport tests reproduce the E12
// starvation result packet by packet.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/mux.hpp"
#include "sim/stats.hpp"

namespace tussle::apps {

/// Acks segments for every flow arriving at a node. Install once per
/// receiving mux; it acknowledges cumulatively (Go-Back-N semantics:
/// out-of-order segments are dropped, the last in-order seq is re-acked).
class FlowSink {
 public:
  FlowSink(net::Network& net, net::NodeId node, net::Address addr,
           std::shared_ptr<AppMux> mux, net::AppProto proto);

  std::uint64_t segments_received() const noexcept { return received_; }
  std::uint64_t bytes_received() const noexcept { return bytes_; }

 private:
  net::Network* net_;
  net::NodeId node_;
  net::Address addr_;
  std::map<net::FlowId, std::uint64_t> rcv_next_;
  std::uint64_t received_ = 0;
  std::uint64_t bytes_ = 0;
};

struct AimdConfig {
  std::uint32_t segment_bytes = 1000;
  std::uint64_t total_segments = 200;
  double initial_ssthresh = 32;
  sim::Duration rto = sim::Duration::millis(200);
  /// Aggressive senders use a fixed window and never back off (§II-B).
  bool aggressive = false;
  double aggressive_window = 64;
};

/// One unidirectional reliable flow. Construct, then start(); completion
/// and statistics are queryable after the simulation runs.
class AimdFlow {
 public:
  AimdFlow(net::Network& net, net::NodeId node, net::Address src, net::Address dst,
           std::shared_ptr<AppMux> src_mux, net::AppProto proto, net::FlowId id,
           AimdConfig cfg);

  void start();

  bool finished() const noexcept { return base_ >= cfg_.total_segments; }
  double completion_time_s() const noexcept { return finish_time_s_; }
  /// Goodput in bytes/second over the flow's lifetime (0 if unfinished).
  double goodput_bps() const noexcept;
  std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  std::uint64_t timeouts() const noexcept { return timeouts_; }
  double final_cwnd() const noexcept { return cwnd_; }
  net::FlowId id() const noexcept { return id_; }

 private:
  void on_ack(std::uint64_t cum_seq);
  void pump();                 ///< send while the window allows
  void send_segment(std::uint64_t seq);
  void arm_timer();
  void on_timeout();

  net::Network* net_;
  net::NodeId node_;
  net::Address src_;
  net::Address dst_;
  net::AppProto proto_;
  net::FlowId id_;
  AimdConfig cfg_;

  std::uint64_t base_ = 0;      ///< lowest unacked seq
  std::uint64_t next_seq_ = 0;  ///< next seq to send
  double cwnd_ = 1;
  double ssthresh_ = 0;
  sim::EventId timer_{};
  std::uint64_t timer_epoch_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  double start_time_s_ = 0;
  double finish_time_s_ = 0;
  bool started_ = false;
};

}  // namespace tussle::apps
