#include "apps/congestion.hpp"

#include <algorithm>
#include <cmath>

namespace tussle::apps {

double jains_index(const std::vector<double>& x) {
  if (x.empty()) return 0;
  double sum = 0, sumsq = 0;
  for (double v : x) {
    sum += v;
    sumsq += v * v;
  }
  if (sumsq <= 0) return 0;
  return sum * sum / (static_cast<double>(x.size()) * sumsq);
}

CongestionResult run_congestion(const CongestionConfig& cfg) {
  const auto n_aggr = static_cast<std::size_t>(
      std::round(cfg.aggressive_fraction * static_cast<double>(cfg.senders)));
  std::vector<SenderKind> kind(cfg.senders, SenderKind::kCompliant);
  for (std::size_t i = 0; i < n_aggr; ++i) kind[i] = SenderKind::kAggressive;

  std::vector<double> rate(cfg.senders, 1.0);
  for (std::size_t i = 0; i < cfg.senders; ++i) {
    if (kind[i] == SenderKind::kAggressive) rate[i] = cfg.aggressive_rate;
  }

  std::vector<double> goodput(cfg.senders, 0.0);
  double compliant_sum = 0, aggressive_sum = 0, total_sum = 0, offered_sum = 0;
  std::size_t tail = 0;
  std::vector<double> tail_goodput(cfg.senders, 0.0);

  for (std::size_t t = 0; t < cfg.rounds; ++t) {
    double offered = 0;
    for (double r : rate) offered += r;

    const double fair_share = cfg.capacity / static_cast<double>(cfg.senders);
    double delivered_total = 0;
    if (cfg.fair_queueing) {
      // Max-min-ish: cap each flow at the fair share; unused headroom is
      // redistributed proportionally to remaining demand.
      double spare = 0;
      double excess_demand = 0;
      for (std::size_t i = 0; i < cfg.senders; ++i) {
        if (rate[i] <= fair_share) {
          goodput[i] = rate[i];
          spare += fair_share - rate[i];
        } else {
          goodput[i] = fair_share;
          excess_demand += rate[i] - fair_share;
        }
      }
      if (excess_demand > 0 && spare > 0) {
        const double grant = std::min(1.0, spare / excess_demand);
        for (std::size_t i = 0; i < cfg.senders; ++i) {
          if (rate[i] > fair_share) goodput[i] += grant * (rate[i] - fair_share);
        }
      }
      for (double g : goodput) delivered_total += g;
    } else {
      // FIFO drop-tail fluid model: everyone keeps a proportional share.
      const double scale = offered > cfg.capacity ? cfg.capacity / offered : 1.0;
      for (std::size_t i = 0; i < cfg.senders; ++i) goodput[i] = rate[i] * scale;
      delivered_total = std::min(offered, cfg.capacity);
    }

    const bool congested = offered > cfg.capacity;
    for (std::size_t i = 0; i < cfg.senders; ++i) {
      if (kind[i] == SenderKind::kCompliant) {
        // AIMD on the shared congestion signal. Under fair queueing the
        // signal is per-flow: only flows actually losing traffic back off.
        const bool my_loss = cfg.fair_queueing ? (goodput[i] < rate[i] - 1e-12) : congested;
        if (my_loss) {
          rate[i] = std::max(0.1, rate[i] * cfg.multiplicative_decrease);
        } else {
          rate[i] += cfg.additive_increase;
        }
      }
    }

    if (t >= cfg.rounds / 2) {
      ++tail;
      offered_sum += offered;
      total_sum += delivered_total;
      for (std::size_t i = 0; i < cfg.senders; ++i) {
        tail_goodput[i] += goodput[i];
        if (kind[i] == SenderKind::kCompliant) {
          compliant_sum += goodput[i];
        } else {
          aggressive_sum += goodput[i];
        }
      }
    }
  }

  CongestionResult r;
  const double ticks = static_cast<double>(tail);
  const auto n_comp = cfg.senders - n_aggr;
  if (n_comp > 0) compliant_sum /= ticks * static_cast<double>(n_comp);
  if (n_aggr > 0) aggressive_sum /= ticks * static_cast<double>(n_aggr);
  r.compliant_goodput_mean = n_comp ? compliant_sum : 0;
  r.aggressive_goodput_mean = n_aggr ? aggressive_sum : 0;
  r.utilization = total_sum / (ticks * cfg.capacity);
  r.loss_rate = offered_sum > 0 ? std::max(0.0, 1.0 - total_sum / offered_sum) : 0;
  for (double& g : tail_goodput) g /= ticks;
  r.jains_fairness = jains_index(tail_goodput);
  return r;
}

}  // namespace tussle::apps
