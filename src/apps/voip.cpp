#include "apps/voip.hpp"

#include <algorithm>
#include <cmath>

namespace tussle::apps {

VoipSession::VoipSession(net::Network& net, net::NodeId node, net::Address addr,
                         net::Address peer, net::ServiceClass tos, std::uint32_t frame_bytes)
    : net_(&net), node_(node), addr_(addr), peer_(peer), tos_(tos),
      frame_bytes_(frame_bytes) {}

void VoipSession::start(std::size_t frames, sim::Duration interval) {
  auto& sim = net_->simulator();
  for (std::size_t i = 0; i < frames; ++i) {
    sim.schedule(interval * static_cast<double>(i + 1), [this]() {
      net::Packet p;
      p.src = addr_;
      p.dst = peer_;
      p.proto = net::AppProto::kVoip;
      p.tos = tos_;
      p.size_bytes = frame_bytes_;
      p.payload_tag = "voice";
      ++sent_;
      net_->node(node_).originate(std::move(p));
    });
  }
}

void VoipSession::attach_receiver(std::shared_ptr<AppMux> mux, VoipSession& session) {
  mux->set_handler(net::AppProto::kVoip,
                   [&session](const net::Packet& p) { session.on_frame(p); });
}

void VoipSession::on_frame(const net::Packet& p) {
  ++received_;
  latency_.observe(net_->simulator().now().as_seconds() - p.sent_at_s);
}

double VoipSession::loss_rate() const noexcept {
  if (sent_ == 0) return 0;
  return 1.0 - static_cast<double>(received_) / static_cast<double>(sent_);
}

double VoipSession::mos() const noexcept {
  if (sent_ == 0) return 1.0;
  const double delay_ms = latency_.mean() * 1000.0;
  double score = 4.4;
  // Delay penalty: gentle below 150 ms, steep above.
  score -= 0.002 * std::min(delay_ms, 150.0);
  if (delay_ms > 150.0) score -= 0.01 * (delay_ms - 150.0);
  // Loss penalty: 10% loss costs about a full MOS point.
  score -= 10.0 * loss_rate();
  return std::clamp(score, 1.0, 4.4);
}

}  // namespace tussle::apps
