#include "apps/mux.hpp"

namespace tussle::apps {

std::shared_ptr<AppMux> AppMux::install(net::Node& node) {
  auto mux = std::make_shared<AppMux>();
  node.set_local_handler([mux](const net::Packet& p) { mux->dispatch(p); });
  return mux;
}

void AppMux::dispatch(const net::Packet& p) const {
  auto it = handlers_.find(p.proto);
  if (it != handlers_.end()) {
    it->second(p);
  } else if (default_) {
    default_(p);
  }
}

}  // namespace tussle::apps
