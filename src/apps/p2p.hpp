// Napster-shaped peer-to-peer file sharing (§IV-C).
//
// "Napster is a nonmonetary example that illustrates the 'mutual aid'
// aspect of peer-to-peer networking" — value flows as upload contribution,
// not money. A central index maps content to holders and tracks each
// peer's contribution; transfers are peer-to-peer packets. This is also
// the traffic class the rights-holder/ISP tussles act on.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/mux.hpp"

namespace tussle::apps {

/// The central index (the part the rights holders sued). Also the
/// bookkeeper of mutual aid: contributed upload bytes per holder.
class P2pIndex {
 public:
  void publish(const std::string& content, const net::Address& holder);
  void unpublish_all(const std::string& content);  ///< injunction strikes the index
  std::vector<net::Address> holders(const std::string& content) const;
  std::size_t catalog_size() const noexcept { return catalog_.size(); }

  void record_contribution(const net::Address& holder, std::uint64_t bytes);
  std::uint64_t contribution(const net::Address& holder) const;
  /// Holder of `content` with the smallest contribution so far — the
  /// mutual-aid balancing rule. nullopt when unlisted.
  std::optional<net::Address> least_loaded_holder(const std::string& content) const;

 private:
  std::map<std::string, std::vector<net::Address>> catalog_;
  std::map<net::Address, std::uint64_t> contributed_;
};

class P2pPeer {
 public:
  P2pPeer(net::Network& net, net::NodeId node, net::Address addr, P2pIndex& index,
          std::shared_ptr<AppMux> mux, std::uint32_t chunk_bytes = 64000);

  /// Makes content available and registers it with the index.
  void share(const std::string& content);

  /// Requests content from the least-loaded holder. Returns the holder
  /// asked, or nullopt when the index has none (e.g. after an injunction).
  std::optional<net::Address> fetch(const std::string& content);

  bool has(const std::string& content) const { return library_.count(content) != 0; }
  std::uint64_t uploads() const noexcept { return uploads_; }
  std::uint64_t downloads() const noexcept { return downloads_; }
  const net::Address& address() const noexcept { return addr_; }

 private:
  net::Network* net_;
  net::NodeId node_;
  net::Address addr_;
  P2pIndex* index_;
  std::uint32_t chunk_bytes_ = 0;
  std::map<std::string, bool> library_;
  std::uint64_t uploads_ = 0;
  std::uint64_t downloads_ = 0;
};

}  // namespace tussle::apps
