// Steganographic escalation (§VI-A footnote 17).
//
// "The next step in this sort of escalation is steganography — the hiding
// of information inside some other form of data. It is a signal of a coming
// tussle that this topic is receiving attention right now."
//
// Helpers to (a) wrap real traffic in an innocent cover and (b) build the
// provider's counter-move: a statistical traffic classifier that catches a
// fraction of covert flows at the price of false positives on innocent
// ones — the inevitable collateral-damage trade-off, now with no visible
// policy at all.
#pragma once

#include <memory>

#include "net/network.hpp"
#include "sim/random.hpp"

namespace tussle::apps {

/// Disguises `real` traffic as `cover`. The wire shows `cover`; the
/// receiving endpoint reads `covert_proto`.
net::Packet steganographize(net::Packet real, net::AppProto cover);

/// What a receiving application should treat the packet as.
net::AppProto effective_proto(const net::Packet& p);

/// A statistical detector: flags steganographic packets with probability
/// `true_positive_rate`, and innocent packets of the same cover protocol
/// with probability `false_positive_rate`. Draws come from the simulation
/// RNG so runs stay deterministic per seed.
struct StegoDetectorStats {
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t missed = 0;
};
net::PacketFilter make_stego_detector(net::Network& net, std::string name,
                                      net::AppProto cover, double true_positive_rate,
                                      double false_positive_rate,
                                      std::shared_ptr<StegoDetectorStats> stats = {});

}  // namespace tussle::apps
