#include "apps/stego.hpp"

namespace tussle::apps {

net::Packet steganographize(net::Packet real, net::AppProto cover) {
  real.steganographic = true;
  real.covert_proto = real.proto;
  real.proto = cover;
  real.encrypted = false;  // encryption would make the hiding visible again
  return real;
}

net::AppProto effective_proto(const net::Packet& p) {
  return p.steganographic ? p.covert_proto : p.proto;
}

net::PacketFilter make_stego_detector(net::Network& net, std::string name,
                                      net::AppProto cover, double true_positive_rate,
                                      double false_positive_rate,
                                      std::shared_ptr<StegoDetectorStats> stats) {
  if (!stats) stats = std::make_shared<StegoDetectorStats>();
  net::PacketFilter f;
  f.name = std::move(name);
  f.disclosed = false;  // a statistical censor never admits what it does
  f.fn = [&net, cover, true_positive_rate, false_positive_rate, stats,
          fname = f.name](const net::Packet& p) -> net::FilterDecision {
    if (p.observable_proto() != cover) return net::FilterDecision::accept();
    auto& rng = net.simulator().rng();
    if (p.steganographic) {
      if (rng.bernoulli(true_positive_rate)) {
        ++stats->true_positives;
        return net::FilterDecision::drop(fname + ":classified-covert");
      }
      ++stats->missed;
      return net::FilterDecision::accept();
    }
    if (rng.bernoulli(false_positive_rate)) {
      ++stats->false_positives;
      return net::FilterDecision::drop(fname + ":false-positive");
    }
    return net::FilterDecision::accept();
  };
  return f;
}

}  // namespace tussle::apps
