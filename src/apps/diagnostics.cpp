#include "apps/diagnostics.hpp"

#include <cstdlib>

namespace tussle::apps {

FaultProbe::FaultProbe(net::Network& net, net::NodeId src, std::shared_ptr<AppMux> src_mux,
                       std::shared_ptr<AppMux> dst_mux)
    : net_(&net), src_(src), state_(std::make_shared<State>()) {
  // Error reports from disclosed control points arrive as kControl packets
  // tagged "err:<node>:<reason>".
  src_mux->set_handler(net::AppProto::kControl, [s = state_](const net::Packet& p) {
    if (p.payload_tag.rfind("err:", 0) != 0) {
      if (p.payload_tag.rfind("echo:", 0) == 0 && p.payload_tag.substr(5) == s->expect_tag) {
        s->echoed = true;
      }
      return;
    }
    const std::string rest = p.payload_tag.substr(4);
    const auto sep = rest.find(':');
    if (sep == std::string::npos) return;
    s->error_seen = true;
    s->reporter = static_cast<net::NodeId>(std::strtoul(rest.substr(0, sep).c_str(), nullptr, 10));
    s->reason = rest.substr(sep + 1);
  });
  // The destination echoes probes back (in the control plane, so the echo
  // itself is not subject to application-keyed filtering).
  dst_mux->set_default([this, s = state_](const net::Packet& p) {
    if (p.payload_tag.rfind("probe:", 0) != 0) return;
    net::Packet echo;
    echo.src = p.dst;
    echo.dst = p.src;
    echo.proto = net::AppProto::kControl;
    echo.size_bytes = 80;
    echo.payload_tag = "echo:" + p.payload_tag.substr(6);
    // Reply from whichever node owns the probed address.
    for (net::NodeId n = 0; n < static_cast<net::NodeId>(net_->node_count()); ++n) {
      if (net_->node(n).owns(p.dst)) {
        net_->node(n).originate(std::move(echo));
        return;
      }
    }
  });
}

FaultProbe::Diagnosis FaultProbe::probe(const net::Address& from, const net::Address& to,
                                        net::AppProto proto, bool encrypted) {
  state_->echoed = false;
  state_->error_seen = false;
  state_->reporter = net::kNoNode;
  state_->reason.clear();
  state_->expect_tag = std::to_string(++seq_);

  net::Packet p;
  p.src = from;
  p.dst = to;
  p.proto = proto;
  p.encrypted = encrypted;
  p.size_bytes = 120;
  p.payload_tag = "probe:" + state_->expect_tag;
  net_->node(src_).originate(std::move(p));
  net_->simulator().run();

  Diagnosis d;
  if (state_->echoed) {
    d.outcome = Outcome::kDelivered;
  } else if (state_->error_seen) {
    d.outcome = Outcome::kFilteredReported;
    d.reporting_node = state_->reporter;
    d.reason = state_->reason;
  } else {
    d.outcome = Outcome::kSilentLoss;
  }
  return d;
}

}  // namespace tussle::apps
