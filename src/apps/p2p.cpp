#include "apps/p2p.hpp"

#include <algorithm>

namespace tussle::apps {

void P2pIndex::publish(const std::string& content, const net::Address& holder) {
  auto& hs = catalog_[content];
  if (std::find(hs.begin(), hs.end(), holder) == hs.end()) hs.push_back(holder);
}

void P2pIndex::unpublish_all(const std::string& content) { catalog_.erase(content); }

std::vector<net::Address> P2pIndex::holders(const std::string& content) const {
  auto it = catalog_.find(content);
  return it == catalog_.end() ? std::vector<net::Address>{} : it->second;
}

void P2pIndex::record_contribution(const net::Address& holder, std::uint64_t bytes) {
  contributed_[holder] += bytes;
}

std::uint64_t P2pIndex::contribution(const net::Address& holder) const {
  auto it = contributed_.find(holder);
  return it == contributed_.end() ? 0 : it->second;
}

std::optional<net::Address> P2pIndex::least_loaded_holder(const std::string& content) const {
  auto hs = holders(content);
  if (hs.empty()) return std::nullopt;
  return *std::min_element(hs.begin(), hs.end(),
                           [this](const net::Address& a, const net::Address& b) {
                             return contribution(a) < contribution(b);
                           });
}

P2pPeer::P2pPeer(net::Network& net, net::NodeId node, net::Address addr, P2pIndex& index,
                 std::shared_ptr<AppMux> mux, std::uint32_t chunk_bytes)
    : net_(&net), node_(node), addr_(addr), index_(&index), chunk_bytes_(chunk_bytes) {
  mux->set_handler(net::AppProto::kP2p, [this](const net::Packet& msg) {
    if (msg.payload_tag.rfind("get:", 0) == 0) {
      const std::string content = msg.payload_tag.substr(4);
      if (!library_.count(content)) return;  // index was stale
      net::Packet data;
      data.src = addr_;
      data.dst = msg.src;
      data.proto = net::AppProto::kP2p;
      data.size_bytes = chunk_bytes_;
      data.payload_tag = "data:" + content;
      ++uploads_;
      index_->record_contribution(addr_, chunk_bytes_);
      net_->node(node_).originate(std::move(data));
    } else if (msg.payload_tag.rfind("data:", 0) == 0) {
      const std::string content = msg.payload_tag.substr(5);
      if (!library_.count(content)) {
        library_[content] = true;
        ++downloads_;
        // Mutual aid: a downloader becomes a holder.
        index_->publish(content, addr_);
      }
    }
  });
}

void P2pPeer::share(const std::string& content) {
  library_[content] = true;
  index_->publish(content, addr_);
}

std::optional<net::Address> P2pPeer::fetch(const std::string& content) {
  auto holder = index_->least_loaded_holder(content);
  if (!holder) return std::nullopt;
  net::Packet req;
  req.src = addr_;
  req.dst = *holder;
  req.proto = net::AppProto::kP2p;
  req.size_bytes = 200;
  req.payload_tag = "get:" + content;
  net_->node(node_).originate(std::move(req));
  return holder;
}

}  // namespace tussle::apps
