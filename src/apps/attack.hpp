// The bad guys (§V-B): DoS flooders and scanners.
//
// "Most users would prefer to have nothing to do with the bad guys. They
// would like protection from system penetration attacks, DoS attacks, and
// so on." These generators supply the hostile traffic the trust/firewall
// experiments defend against.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "sim/random.hpp"

namespace tussle::apps {

/// Floods a victim with traffic from one or many compromised sources.
class DosFlooder {
 public:
  DosFlooder(net::Network& net, std::vector<net::NodeId> zombies, net::Address victim)
      : net_(&net), zombies_(std::move(zombies)), victim_(victim) {}

  /// Schedules `packets_per_zombie` packets per zombie, paced by
  /// `interval`, starting now. Sources are spoofable: when `spoof` is set,
  /// the src addresses are randomized garbage (defeats address blocklists).
  void launch(std::size_t packets_per_zombie, sim::Duration interval, bool spoof = false);

  std::size_t packets_launched() const noexcept { return launched_; }

 private:
  net::Network* net_;
  std::vector<net::NodeId> zombies_;
  net::Address victim_;
  std::size_t launched_ = 0;
};

/// Probes a set of target addresses (reconnaissance); each probe is one
/// small packet. The trust experiments treat a scanner's identity/address
/// as the thing reputation systems learn to block.
class Scanner {
 public:
  Scanner(net::Network& net, net::NodeId node, net::Address addr)
      : net_(&net), node_(node), addr_(addr) {}

  void probe(const std::vector<net::Address>& targets);
  std::size_t probes_sent() const noexcept { return probes_; }

 private:
  net::Network* net_;
  net::NodeId node_;
  net::Address addr_;
  std::size_t probes_ = 0;
};

}  // namespace tussle::apps
