// Mail with server choice (§IV-B).
//
// "The design of the mail system allows the user to select his SMTP server
// and his POP server. A user can pick among servers, perhaps to avoid an
// unreliable one or pick one with desirable features, such as spam
// filters." MailRelay models a relay with a reliability and a spam-filter
// quality; MailUser holds a *choice point*: it can be re-pointed at any
// relay, and its outcomes (delivered mail, spam received) depend on the
// choice — the raw material of the E2/choice experiments.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/mux.hpp"
#include "sim/random.hpp"

namespace tussle::apps {

class MailRelay {
 public:
  /// `reliability` in [0,1]: chance a message is forwarded rather than
  /// lost; `spam_filter` in [0,1]: chance spam is caught.
  MailRelay(net::Network& net, net::NodeId node, net::Address addr,
            std::shared_ptr<AppMux> mux, double reliability, double spam_filter);

  const net::Address& address() const noexcept { return addr_; }
  double reliability() const noexcept { return reliability_; }
  double spam_filter() const noexcept { return spam_filter_; }
  std::uint64_t relayed() const noexcept { return relayed_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t spam_blocked() const noexcept { return spam_blocked_; }

 private:
  net::Network* net_;
  net::NodeId node_;
  net::Address addr_;
  double reliability_ = 0;
  double spam_filter_ = 0;
  std::uint64_t relayed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t spam_blocked_ = 0;
};

class MailUser {
 public:
  MailUser(net::Network& net, net::NodeId node, net::Address addr,
           std::shared_ptr<AppMux> mux);

  /// The choice point: which relay carries this user's outbound mail.
  void choose_relay(const net::Address& relay) { relay_ = relay; }
  const net::Address& chosen_relay() const noexcept { return relay_; }

  /// Sends a message (possibly spam) to another user through the chosen
  /// relay. Relay semantics: the relay either forwards or loses it.
  void send(const net::Address& to, bool spam = false);

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t spam_received() const noexcept { return spam_received_; }

 private:
  net::Network* net_;
  net::NodeId node_;
  net::Address addr_;
  net::Address relay_;
  std::uint64_t received_ = 0;
  std::uint64_t spam_received_ = 0;
};

}  // namespace tussle::apps
