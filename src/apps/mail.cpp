#include "apps/mail.hpp"

#include <cstdio>

namespace tussle::apps {
namespace {

std::string encode_addr(const net::Address& a) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u", a.provider, a.subscriber, a.host);
  return buf;
}

bool decode_addr(const std::string& s, net::Address& out) {
  unsigned p = 0, sub = 0, h = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u", &p, &sub, &h) != 3) return false;
  out = net::Address{.provider = p, .subscriber = sub, .host = h};
  return true;
}

}  // namespace

MailRelay::MailRelay(net::Network& net, net::NodeId node, net::Address addr,
                     std::shared_ptr<AppMux> mux, double reliability, double spam_filter)
    : net_(&net), node_(node), addr_(addr), reliability_(reliability),
      spam_filter_(spam_filter) {
  mux->set_handler(net::AppProto::kMail, [this](const net::Packet& msg) {
    // Envelope: "mail:<spam|ham>:<final-destination>".
    if (msg.payload_tag.rfind("mail:", 0) != 0) return;
    const std::string rest = msg.payload_tag.substr(5);
    const auto sep = rest.find(':');
    if (sep == std::string::npos) return;
    const bool is_spam = rest.substr(0, sep) == "spam";
    net::Address final_dst;
    if (!decode_addr(rest.substr(sep + 1), final_dst)) return;

    auto& rng = net_->simulator().rng();
    if (is_spam && rng.bernoulli(spam_filter_)) {
      ++spam_blocked_;
      return;
    }
    if (!rng.bernoulli(reliability_)) {
      ++dropped_;  // the unreliable relay the user wants to avoid
      return;
    }
    net::Packet fwd = msg;
    fwd.src = addr_;
    fwd.dst = final_dst;
    ++relayed_;
    net_->node(node_).originate(std::move(fwd));
  });
}

MailUser::MailUser(net::Network& net, net::NodeId node, net::Address addr,
                   std::shared_ptr<AppMux> mux)
    : net_(&net), node_(node), addr_(addr) {
  mux->set_handler(net::AppProto::kMail, [this](const net::Packet& msg) {
    if (msg.payload_tag.rfind("mail:", 0) != 0) return;
    ++received_;
    if (msg.payload_tag.rfind("mail:spam:", 0) == 0) ++spam_received_;
  });
}

void MailUser::send(const net::Address& to, bool spam) {
  net::Packet p;
  p.src = addr_;
  p.dst = relay_.valid() ? relay_ : to;  // no relay chosen: direct delivery
  p.proto = net::AppProto::kMail;
  p.size_bytes = 1200;
  p.payload_tag = std::string("mail:") + (spam ? "spam" : "ham") + ":" + encode_addr(to);
  net_->node(node_).originate(std::move(p));
}

}  // namespace tussle::apps
