#include "apps/attack.hpp"

namespace tussle::apps {

void DosFlooder::launch(std::size_t packets_per_zombie, sim::Duration interval, bool spoof) {
  auto& sim = net_->simulator();
  for (net::NodeId z : zombies_) {
    for (std::size_t i = 0; i < packets_per_zombie; ++i) {
      sim.schedule(interval * static_cast<double>(i), [this, z, spoof]() {
        net::Packet p;
        auto& rng = net_->simulator().rng();
        if (spoof) {
          p.src = net::Address{
              .provider = static_cast<net::AsId>(rng.uniform_int(1, 1 << 16)),
              .subscriber = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 16)),
              .host = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 16))};
        } else {
          const auto& addrs = net_->node(z).addresses();
          if (!addrs.empty()) p.src = addrs.front();
        }
        p.dst = victim_;
        p.proto = net::AppProto::kUnknown;
        p.size_bytes = 1400;
        p.payload_tag = "flood";
        ++launched_;
        net_->node(z).originate(std::move(p));
      });
    }
  }
}

void Scanner::probe(const std::vector<net::Address>& targets) {
  for (const net::Address& t : targets) {
    net::Packet p;
    p.src = addr_;
    p.dst = t;
    p.proto = net::AppProto::kUnknown;
    p.size_bytes = 60;
    p.payload_tag = "probe";
    ++probes_;
    net_->node(node_).originate(std::move(p));
  }
}

}  // namespace tussle::apps
