// VoIP-like constant-bit-rate flow with a quality score.
//
// The paper's QoS discussion needs an application whose *user-visible*
// quality depends on the service class it gets: VoIP quality collapses
// with queueing delay and loss, so the premium class is worth paying for —
// which is exactly the value the E5/E11 experiments move around.
#pragma once

#include <memory>

#include "apps/mux.hpp"
#include "sim/stats.hpp"

namespace tussle::apps {

class VoipSession {
 public:
  /// A one-way CBR stream from `node` to `peer`, `packets` frames at
  /// `interval`, in the given service class.
  VoipSession(net::Network& net, net::NodeId node, net::Address addr, net::Address peer,
              net::ServiceClass tos, std::uint32_t frame_bytes = 200);

  /// Schedules the stream on the simulator.
  void start(std::size_t frames, sim::Duration interval);

  /// Receiver side: installs the quality meter on the peer's mux.
  static void attach_receiver(std::shared_ptr<AppMux> mux, VoipSession& session);

  std::size_t frames_sent() const noexcept { return sent_; }
  std::size_t frames_received() const noexcept { return received_; }
  double loss_rate() const noexcept;
  const sim::Summary& latency_s() const noexcept { return latency_; }

  /// Mean-opinion-score-flavoured quality in [1, 4.4]: penalizes one-way
  /// delay (ITU-ish knee at 150 ms) and loss. Not a calibrated E-model —
  /// a monotone proxy the experiments compare across service classes.
  double mos() const noexcept;

 private:
  void on_frame(const net::Packet& p);

  net::Network* net_;
  net::NodeId node_;
  net::Address addr_;
  net::Address peer_;
  net::ServiceClass tos_;
  std::uint32_t frame_bytes_ = 0;
  std::size_t sent_ = 0;
  std::size_t received_ = 0;
  sim::Summary latency_;
};

}  // namespace tussle::apps
