#include "apps/web.hpp"

namespace tussle::apps {

WebServer::WebServer(net::Network& net, net::NodeId node, net::Address addr,
                     std::shared_ptr<AppMux> mux, std::uint32_t response_bytes)
    : net_(&net), node_(node), addr_(addr), response_bytes_(response_bytes) {
  mux->set_handler(net::AppProto::kWeb, [this](const net::Packet& req) {
    // Only requests (tagged "req:") get answered; responses pass through.
    if (req.payload_tag.rfind("req:", 0) != 0) return;
    net::Packet resp;
    resp.src = addr_;
    resp.dst = req.src;
    resp.proto = net::AppProto::kWeb;
    resp.size_bytes = response_bytes_;
    resp.encrypted = req.encrypted;  // answer in kind
    resp.payload_tag = "resp:" + req.payload_tag.substr(4);
    resp.flow = req.flow;
    ++served_;
    net_->node(node_).originate(std::move(resp));
  });
}

WebClient::WebClient(net::Network& net, net::NodeId node, net::Address addr,
                     std::shared_ptr<AppMux> mux)
    : net_(&net), node_(node), addr_(addr) {
  mux->set_handler(net::AppProto::kWeb, [this](const net::Packet& resp) {
    if (resp.payload_tag.rfind("resp:", 0) != 0) return;
    auto it = pending_.find(resp.payload_tag.substr(5));
    if (it == pending_.end()) return;  // duplicate or stray
    latency_.observe(net_->simulator().now().as_seconds() - it->second);
    pending_.erase(it);
    ++responses_;
  });
}

void WebClient::request(const net::Address& server, bool encrypted) {
  const std::string id = std::to_string(node_) + "-" + std::to_string(next_req_++);
  net::Packet p;
  p.src = addr_;
  p.dst = server;
  p.proto = net::AppProto::kWeb;
  p.size_bytes = 400;
  p.encrypted = encrypted;
  p.payload_tag = "req:" + id;
  pending_[id] = net_->simulator().now().as_seconds();
  ++sent_;
  net_->node(node_).originate(std::move(p));
}

}  // namespace tussle::apps
