// Fault isolation tools (§VI-A: "Failures of transparency will occur —
// design what happens then" — and §IV-C lists "tools to resolve and isolate
// faults and failures" among the properties tussle interfaces need).
//
// A FaultProbe is ping-with-forensics: it sends a probe and classifies the
// outcome as delivered, *reported* filtering (a disclosed control point sent
// an error naming itself and its reason — the sophisticated user's
// traceroute), or silent loss (an undisclosed device "intentionally gives no
// error information", which the probe can detect but not attribute).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "apps/mux.hpp"

namespace tussle::apps {

class FaultProbe {
 public:
  enum class Outcome {
    kDelivered,
    kFilteredReported,  ///< a disclosed filter named itself
    kSilentLoss,        ///< dropped with no attribution (covert control, congestion...)
  };

  struct Diagnosis {
    Outcome outcome = Outcome::kSilentLoss;
    net::NodeId reporting_node = net::kNoNode;  ///< who reported (if reported)
    std::string reason;                         ///< the filter's stated reason
    /// §IV-C "visibility of choices made": whether the user ended up with
    /// an actionable explanation.
    bool actionable() const noexcept { return outcome != Outcome::kSilentLoss; }
  };

  /// Installs handlers on both endpoints' muxes. The probe owns the
  /// kControl slot of the source mux and an echo responder keyed on the
  /// probe's payload tag at the destination.
  FaultProbe(net::Network& net, net::NodeId src, std::shared_ptr<AppMux> src_mux,
             std::shared_ptr<AppMux> dst_mux);

  /// Sends one probe packet dressed as `proto` (DPI sees what a real
  /// packet of that application would show) and runs the simulation to
  /// quiescence. Deterministic: one probe at a time.
  Diagnosis probe(const net::Address& from, const net::Address& to, net::AppProto proto,
                  bool encrypted = false);

 private:
  struct State {
    bool echoed = false;
    bool error_seen = false;
    net::NodeId reporter = net::kNoNode;
    std::string reason;
    std::string expect_tag;
  };

  net::Network* net_;
  net::NodeId src_;
  std::shared_ptr<State> state_;
  std::uint64_t seq_ = 0;
};

}  // namespace tussle::apps
