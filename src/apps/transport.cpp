#include "apps/transport.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace tussle::apps {
namespace {

// Segment tag: "seg:<flow>:<seq>"; ack tag: "ack:<flow>:<cumseq>".
std::string seg_tag(net::FlowId f, std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg:%llu:%llu", static_cast<unsigned long long>(f),
                static_cast<unsigned long long>(seq));
  return buf;
}

bool parse_two(const std::string& tag, const char* prefix, std::uint64_t& a,
               std::uint64_t& b) {
  const std::size_t plen = std::string(prefix).size();
  if (tag.rfind(prefix, 0) != 0) return false;
  const char* s = tag.c_str() + plen;
  char* end = nullptr;
  a = std::strtoull(s, &end, 10);
  if (!end || *end != ':') return false;
  b = std::strtoull(end + 1, nullptr, 10);
  return true;
}

}  // namespace

FlowSink::FlowSink(net::Network& net, net::NodeId node, net::Address addr,
                   std::shared_ptr<AppMux> mux, net::AppProto proto)
    : net_(&net), node_(node), addr_(addr) {
  mux->set_handler(proto, [this](const net::Packet& p) {
    std::uint64_t flow = 0, seq = 0;
    if (!parse_two(p.payload_tag, "seg:", flow, seq)) return;
    auto& next = rcv_next_[flow];
    if (seq == next) {
      ++next;
      ++received_;
      bytes_ += p.size_bytes;
    }
    // Cumulative ack (even for out-of-order arrivals: re-ack the frontier).
    if (next == 0) return;  // nothing in order yet; GBN stays silent
    net::Packet ack;
    ack.src = addr_;
    ack.dst = p.src;
    ack.proto = net::AppProto::kControl;
    ack.size_bytes = 60;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "ack:%llu:%llu", static_cast<unsigned long long>(flow),
                  static_cast<unsigned long long>(next - 1));
    ack.payload_tag = buf;
    net_->node(node_).originate(std::move(ack));
  });
}

AimdFlow::AimdFlow(net::Network& net, net::NodeId node, net::Address src, net::Address dst,
                   std::shared_ptr<AppMux> src_mux, net::AppProto proto, net::FlowId id,
                   AimdConfig cfg)
    : net_(&net), node_(node), src_(src), dst_(dst), proto_(proto), id_(id), cfg_(cfg),
      ssthresh_(cfg.initial_ssthresh) {
  if (cfg_.aggressive) cwnd_ = cfg_.aggressive_window;
  src_mux->set_handler(net::AppProto::kControl, [this](const net::Packet& p) {
    std::uint64_t flow = 0, cum = 0;
    if (!parse_two(p.payload_tag, "ack:", flow, cum)) return;
    if (flow != id_) return;
    on_ack(cum);
  });
}

void AimdFlow::start() {
  started_ = true;
  start_time_s_ = net_->simulator().now().as_seconds();
  pump();
  arm_timer();
}

void AimdFlow::send_segment(std::uint64_t seq) {
  net::Packet p;
  p.src = src_;
  p.dst = dst_;
  p.proto = proto_;
  p.size_bytes = cfg_.segment_bytes;
  p.flow = id_;
  p.payload_tag = seg_tag(id_, seq);
  net_->node(node_).originate(std::move(p));
}

void AimdFlow::pump() {
  const double window = cfg_.aggressive ? cfg_.aggressive_window : cwnd_;
  while (next_seq_ < cfg_.total_segments &&
         static_cast<double>(next_seq_ - base_) < window) {
    send_segment(next_seq_);
    ++next_seq_;
  }
}

void AimdFlow::on_ack(std::uint64_t cum_seq) {
  if (cum_seq + 1 <= base_) return;  // duplicate/old
  base_ = cum_seq + 1;
  if (!cfg_.aggressive) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
  }
  if (finished()) {
    finish_time_s_ = net_->simulator().now().as_seconds();
    net_->simulator().cancel(timer_);
    return;
  }
  arm_timer();
  pump();
}

void AimdFlow::arm_timer() {
  net_->simulator().cancel(timer_);
  const std::uint64_t epoch = ++timer_epoch_;
  timer_ = net_->simulator().schedule(cfg_.rto, [this, epoch]() {
    if (epoch != timer_epoch_ || finished()) return;
    on_timeout();
  });
}

void AimdFlow::on_timeout() {
  ++timeouts_;
  if (!cfg_.aggressive) {
    ssthresh_ = std::max(2.0, cwnd_ / 2.0);  // multiplicative decrease
    cwnd_ = 1;
  }
  // Go-Back-N: resend the window from base.
  const auto unacked = next_seq_ - base_;
  next_seq_ = base_;
  retransmissions_ += unacked;
  pump();
  arm_timer();
}

double AimdFlow::goodput_bps() const noexcept {
  if (!finished() || finish_time_s_ <= start_time_s_) return 0;
  const double bytes = static_cast<double>(cfg_.total_segments) * cfg_.segment_bytes;
  return bytes / (finish_time_s_ - start_time_s_);
}

}  // namespace tussle::apps
