// Request/response (web-like) application over the packet network.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "apps/mux.hpp"
#include "sim/stats.hpp"

namespace tussle::apps {

/// Serves content: answers every web request with a response packet of the
/// configured size, echoing the request's payload tag so clients can match
/// responses to requests.
class WebServer {
 public:
  WebServer(net::Network& net, net::NodeId node, net::Address addr,
            std::shared_ptr<AppMux> mux, std::uint32_t response_bytes = 8000);

  std::uint64_t requests_served() const noexcept { return served_; }
  const net::Address& address() const noexcept { return addr_; }

 private:
  net::Network* net_;
  net::NodeId node_;
  net::Address addr_;
  std::uint32_t response_bytes_ = 0;
  std::uint64_t served_ = 0;
};

/// Issues requests and measures full response latency.
class WebClient {
 public:
  WebClient(net::Network& net, net::NodeId node, net::Address addr,
            std::shared_ptr<AppMux> mux);

  /// Sends one request to `server`; optionally end-to-end encrypted.
  void request(const net::Address& server, bool encrypted = false);

  std::uint64_t responses() const noexcept { return responses_; }
  std::uint64_t outstanding() const noexcept { return sent_ - responses_; }
  const sim::Summary& latency_s() const noexcept { return latency_; }

 private:
  net::Network* net_;
  net::NodeId node_;
  net::Address addr_;
  std::uint64_t sent_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t next_req_ = 0;
  std::map<std::string, double> pending_;  ///< tag → send time (seconds)
  sim::Summary latency_;
};

}  // namespace tussle::apps
