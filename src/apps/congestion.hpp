// The congestion-control compliance tussle (§II-B, experiment E12).
//
// "TCP congestion control 'works' when and only when the majority of
// end-systems both participate and follow a common set of rules. ... Should
// this balance change, the technical design of the system will do nothing
// to bound or guide the resulting shift."
//
// The arena is a fluid-flow model of one bottleneck: compliant senders run
// AIMD against the shared congestion signal; aggressive senders ignore it.
// Sweeping the cheater fraction reproduces the collapse the paper warns
// about — and an optional enforcement knob (fair queueing at the
// bottleneck) shows what a *technical* bound on the tussle changes.
#pragma once

#include <cstddef>
#include <vector>

namespace tussle::apps {

enum class SenderKind { kCompliant, kAggressive };

struct CongestionConfig {
  double capacity = 100.0;        ///< bottleneck capacity (units/round)
  std::size_t senders = 20;
  double aggressive_fraction = 0; ///< share of senders that ignore the rules
  double aggressive_rate = 50.0;  ///< what a cheater pumps, regardless
  double additive_increase = 1.0;
  double multiplicative_decrease = 0.5;
  std::size_t rounds = 2000;
  /// Per-flow fair queueing at the bottleneck: each flow's share is capped
  /// at capacity / senders (the router-enforced alternative to voluntary
  /// compliance).
  bool fair_queueing = false;
};

struct CongestionResult {
  double compliant_goodput_mean = 0;  ///< per compliant flow, last-half mean
  double aggressive_goodput_mean = 0;
  double utilization = 0;             ///< total goodput / capacity
  double loss_rate = 0;               ///< offered load shed at the bottleneck
  double jains_fairness = 0;          ///< across all flows, in (0, 1]
};

CongestionResult run_congestion(const CongestionConfig& cfg);

/// Jain's fairness index: (Σx)² / (n·Σx²). 1 = perfectly fair.
double jains_index(const std::vector<double>& x);

}  // namespace tussle::apps
