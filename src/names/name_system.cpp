#include "names/name_system.hpp"

#include <stdexcept>

namespace tussle::names {

// -------------------------------------------------------------- entangled

std::string EntangledNameSystem::register_service(const std::string& brand,
                                                  const net::Address& host,
                                                  const std::string& mailbox) {
  if (records_.count(brand)) throw std::invalid_argument("name already registered: " + brand);
  records_[brand] = Record{host, mailbox, false};
  return brand;  // the brand IS the machine name — that's the entanglement
}

std::optional<std::string> EntangledNameSystem::lookup_brand(const std::string& brand) const {
  auto it = records_.find(brand);
  if (it == records_.end() || it->second.suspended) return std::nullopt;
  return brand;
}

std::optional<net::Address> EntangledNameSystem::resolve_machine(
    const std::string& machine) const {
  auto it = records_.find(machine);
  if (it == records_.end() || it->second.suspended) return std::nullopt;
  return it->second.host;
}

std::optional<std::string> EntangledNameSystem::resolve_mailbox(
    const std::string& machine) const {
  auto it = records_.find(machine);
  if (it == records_.end() || it->second.suspended) return std::nullopt;
  return it->second.mailbox;
}

DisputeImpact EntangledNameSystem::dispute_trademark(const std::string& brand) {
  DisputeImpact impact;
  auto it = records_.find(brand);
  if (it == records_.end()) return impact;
  it->second.suspended = true;
  // One suspension breaks all three roles at once.
  impact.brand_suspended = true;
  impact.machine_resolution_broken = true;
  impact.mailbox_routing_broken = true;
  return impact;
}

// ---------------------------------------------------------------- modular

std::string ModularNameSystem::register_service(const std::string& brand,
                                                const net::Address& host,
                                                const std::string& mailbox) {
  if (directory_.count(brand)) throw std::invalid_argument("brand already registered: " + brand);
  const std::string machine = "m-" + std::to_string(next_id_++);
  machines_[machine] = host;
  mailboxes_[machine] = mailbox;
  directory_[brand] = BrandEntry{machine, false};
  return machine;
}

std::optional<std::string> ModularNameSystem::lookup_brand(const std::string& brand) const {
  auto it = directory_.find(brand);
  if (it == directory_.end() || it->second.suspended) return std::nullopt;
  return it->second.machine;
}

std::optional<net::Address> ModularNameSystem::resolve_machine(const std::string& machine) const {
  auto it = machines_.find(machine);
  if (it == machines_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> ModularNameSystem::resolve_mailbox(const std::string& machine) const {
  auto it = mailboxes_.find(machine);
  if (it == mailboxes_.end()) return std::nullopt;
  return it->second;
}

DisputeImpact ModularNameSystem::dispute_trademark(const std::string& brand) {
  DisputeImpact impact;
  auto it = directory_.find(brand);
  if (it == directory_.end()) return impact;
  it->second.suspended = true;
  impact.brand_suspended = true;
  // Machine and mailbox planes are untouched: existing users keep working.
  return impact;
}

}  // namespace tussle::names
