// Naming, done twice (§IV-A).
//
// The paper's worked example of "modularize along tussle boundaries" is the
// DNS: "DNS names are used both to name machines and to express trademark
// ... names that express trademarks should be used for as little else as
// possible." This module ships both designs so experiment E8 can measure
// the difference:
//
//  - EntangledNameSystem: one record carries brand + machine location +
//    mailbox routing, like today's DNS. A trademark dispute suspends the
//    whole record.
//  - ModularNameSystem: three planes — an opaque machine-name plane, a
//    mailbox plane keyed on machine names, and a brand directory mapping
//    trademarks to machine names. Disputes suspend only directory entries.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/address.hpp"

namespace tussle::names {

/// Outcome of one trademark dispute.
struct DisputeImpact {
  bool brand_suspended = false;
  bool machine_resolution_broken = false;  ///< collateral damage
  bool mailbox_routing_broken = false;     ///< collateral damage
};

/// Common interface over both designs. "Brand" is the trademark string;
/// "machine name" is whatever string the design uses to reach a host.
class NameSystem {
 public:
  virtual ~NameSystem() = default;
  virtual std::string design() const = 0;

  /// Registers a service: brand string, host address, mailbox label.
  /// Returns the machine name the design hands back (in the entangled
  /// design this *is* the brand; in the modular design it is opaque).
  virtual std::string register_service(const std::string& brand, const net::Address& host,
                                       const std::string& mailbox) = 0;

  /// Brand → machine name (what a new user types).
  virtual std::optional<std::string> lookup_brand(const std::string& brand) const = 0;
  /// Machine name → address (what caches/bookmarks/links use).
  virtual std::optional<net::Address> resolve_machine(const std::string& machine) const = 0;
  /// Machine name → mailbox label (mail delivery).
  virtual std::optional<std::string> resolve_mailbox(const std::string& machine) const = 0;

  /// A rights-holder wins a trademark action against `brand`.
  virtual DisputeImpact dispute_trademark(const std::string& brand) = 0;

  virtual std::size_t registered_count() const = 0;
};

/// Today's DNS shape: one name, three roles.
class EntangledNameSystem final : public NameSystem {
 public:
  std::string design() const override { return "entangled"; }
  std::string register_service(const std::string& brand, const net::Address& host,
                               const std::string& mailbox) override;
  std::optional<std::string> lookup_brand(const std::string& brand) const override;
  std::optional<net::Address> resolve_machine(const std::string& machine) const override;
  std::optional<std::string> resolve_mailbox(const std::string& machine) const override;
  DisputeImpact dispute_trademark(const std::string& brand) override;
  std::size_t registered_count() const override { return records_.size(); }

 private:
  struct Record {
    net::Address host;
    std::string mailbox;
    bool suspended = false;
  };
  std::map<std::string, Record> records_;
};

/// The paper's recommendation: separate planes per tussle.
class ModularNameSystem final : public NameSystem {
 public:
  std::string design() const override { return "modular"; }
  std::string register_service(const std::string& brand, const net::Address& host,
                               const std::string& mailbox) override;
  std::optional<std::string> lookup_brand(const std::string& brand) const override;
  std::optional<net::Address> resolve_machine(const std::string& machine) const override;
  std::optional<std::string> resolve_mailbox(const std::string& machine) const override;
  DisputeImpact dispute_trademark(const std::string& brand) override;
  std::size_t registered_count() const override { return machines_.size(); }

 private:
  std::map<std::string, net::Address> machines_;   ///< opaque id → address
  std::map<std::string, std::string> mailboxes_;   ///< opaque id → mailbox
  struct BrandEntry {
    std::string machine;
    bool suspended = false;
  };
  std::map<std::string, BrandEntry> directory_;    ///< trademark plane
  std::size_t next_id_ = 0;
};

}  // namespace tussle::names
