#include "names/workload.hpp"

namespace tussle::names {

double WorkloadResult::brand_failure_rate() const {
  return brand_lookups ? static_cast<double>(brand_failures) / brand_lookups : 0.0;
}
double WorkloadResult::machine_failure_rate() const {
  return machine_lookups ? static_cast<double>(machine_failures) / machine_lookups : 0.0;
}
double WorkloadResult::mailbox_failure_rate() const {
  return mailbox_lookups ? static_cast<double>(mailbox_failures) / mailbox_lookups : 0.0;
}
double WorkloadResult::spillover_rate() const {
  const std::size_t outside = machine_lookups + mailbox_lookups;
  const std::size_t failures = machine_failures + mailbox_failures;
  return outside ? static_cast<double>(failures) / outside : 0.0;
}

WorkloadResult run_workload(NameSystem& system, const WorkloadConfig& cfg, sim::Rng& rng) {
  // Register services; remember brand and machine name per service.
  std::vector<std::string> brands;
  std::vector<std::string> machines;
  brands.reserve(cfg.services);
  machines.reserve(cfg.services);
  for (std::size_t i = 0; i < cfg.services; ++i) {
    const std::string brand = "brand-" + std::to_string(i);
    net::Address host{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
    machines.push_back(system.register_service(brand, host, "postmaster@" + brand));
    brands.push_back(brand);
  }

  // Dispute the most popular brands (rank 0..k): valuable names attract
  // trademark actions.
  const auto disputed =
      static_cast<std::size_t>(cfg.disputed_fraction * static_cast<double>(cfg.services));
  for (std::size_t i = 0; i < disputed; ++i) system.dispute_trademark(brands[i]);

  sim::ZipfTable zipf(cfg.services, cfg.zipf_exponent);
  WorkloadResult r;
  for (std::size_t t = 0; t < cfg.lookups; ++t) {
    const std::size_t svc = zipf.sample(rng) - 1;
    const double kind = rng.uniform();
    if (kind < cfg.brand_lookup_fraction) {
      ++r.brand_lookups;
      if (!system.lookup_brand(brands[svc])) ++r.brand_failures;
    } else if (kind < cfg.brand_lookup_fraction + cfg.machine_lookup_fraction) {
      ++r.machine_lookups;
      auto m = system.resolve_machine(machines[svc]);
      if (!m) ++r.machine_failures;
    } else {
      ++r.mailbox_lookups;
      if (!system.resolve_mailbox(machines[svc])) ++r.mailbox_failures;
    }
  }
  return r;
}

}  // namespace tussle::names
