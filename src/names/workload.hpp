// Lookup workload for the naming ablation (E8).
//
// Users hit a name system three ways: new users type brands, returning
// users follow cached machine names (bookmarks, links), and mail flows to
// mailboxes. The workload replays that mix against either design, with a
// configurable set of names under trademark dispute, and reports failure
// rates per category — the spillover measurement.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "names/name_system.hpp"
#include "sim/random.hpp"

namespace tussle::names {

struct WorkloadConfig {
  std::size_t services = 100;
  std::size_t lookups = 10000;
  double brand_lookup_fraction = 0.2;    ///< new users (type the brand)
  double machine_lookup_fraction = 0.5;  ///< returning users (cached name)
  // remainder: mailbox lookups
  double disputed_fraction = 0.1;        ///< services hit by trademark action
  double zipf_exponent = 0.9;            ///< popularity skew of services
};

struct WorkloadResult {
  std::size_t brand_lookups = 0;
  std::size_t brand_failures = 0;
  std::size_t machine_lookups = 0;
  std::size_t machine_failures = 0;
  std::size_t mailbox_lookups = 0;
  std::size_t mailbox_failures = 0;

  double brand_failure_rate() const;
  double machine_failure_rate() const;
  double mailbox_failure_rate() const;
  /// Spillover: failures among lookups *outside* the trademark tussle
  /// (machine + mailbox) as a fraction of those lookups. The paper's claim:
  /// ~0 for the modular design, large for the entangled one.
  double spillover_rate() const;
};

/// Registers `services` names, disputes the configured fraction (the most
/// popular ones — trademark fights happen over valuable names), replays the
/// lookup mix, and reports.
WorkloadResult run_workload(NameSystem& system, const WorkloadConfig& cfg, sim::Rng& rng);

}  // namespace tussle::names
