// Provider-rooted addressing.
//
// The paper's economics section (§V-A-1) hinges on the fact that Internet
// addresses encode the provider that assigned them: moving to a new ISP
// means renumbering, which creates lock-in, while provider-independent
// addresses avoid lock-in but bloat core routing tables. The address type
// here makes that tension explicit: an address is (provider AS, subscriber
// site, host), plus a portability flag recording whether it is topologically
// significant.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace tussle::net {

/// Autonomous-system identifier (a provider or customer network).
using AsId = std::uint32_t;
/// Node identifier within the simulation, unique across the whole network.
using NodeId = std::uint32_t;
/// End-to-end flow identifier.
using FlowId = std::uint64_t;

inline constexpr AsId kNoAs = 0;
inline constexpr NodeId kNoNode = ~NodeId{0};

/// A network-layer address.
struct Address {
  AsId provider = kNoAs;         ///< AS whose block the address came from.
  std::uint32_t subscriber = 0;  ///< Customer site within the provider.
  std::uint32_t host = 0;        ///< Host within the site.
  /// Provider-independent ("portable") addresses do not change when the
  /// subscriber switches providers, but each one adds an entry to every
  /// core forwarding table (experiment E1 measures both costs).
  bool portable = false;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

  bool valid() const noexcept { return provider != kNoAs || portable; }
  std::string to_string() const;
};

/// The routable prefix of an address: what core routers match on.
struct Prefix {
  AsId provider = kNoAs;
  std::uint32_t subscriber = 0;
  bool portable = false;

  friend bool operator==(const Prefix&, const Prefix&) = default;
  friend auto operator<=>(const Prefix&, const Prefix&) = default;

  std::string to_string() const;
};

inline Prefix prefix_of(const Address& a) noexcept {
  return Prefix{a.provider, a.subscriber, a.portable};
}

}  // namespace tussle::net

template <>
struct std::hash<tussle::net::Address> {
  std::size_t operator()(const tussle::net::Address& a) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(a.provider) << 32) | a.subscriber);
    return h ^ (std::hash<std::uint32_t>{}(a.host) + 0x9e3779b9 + (h << 6) + (h >> 2) +
                (a.portable ? 0x55555555u : 0u));
  }
};

template <>
struct std::hash<tussle::net::Prefix> {
  std::size_t operator()(const tussle::net::Prefix& p) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.provider) << 32) | p.subscriber);
    return p.portable ? ~h : h;
  }
};
