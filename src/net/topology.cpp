#include "net/topology.hpp"

#include <cmath>

namespace tussle::net {
namespace {

void connect_with(Network& net, NodeId a, NodeId b, const LinkSpec& s) {
  net.connect(a, b, s.bandwidth_bps, s.propagation, s.queue, s.queue_capacity);
}

}  // namespace

std::vector<NodeId> build_line(Network& net, std::size_t n, AsId as, const LinkSpec& spec) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(net.add_node(as));
  for (std::size_t i = 1; i < n; ++i) connect_with(net, ids[i - 1], ids[i], spec);
  return ids;
}

std::vector<NodeId> build_star(Network& net, std::size_t leaves, AsId as, const LinkSpec& spec) {
  std::vector<NodeId> ids;
  ids.reserve(leaves + 1);
  ids.push_back(net.add_node(as));
  for (std::size_t i = 0; i < leaves; ++i) {
    ids.push_back(net.add_node(as));
    connect_with(net, ids[0], ids.back(), spec);
  }
  return ids;
}

Dumbbell build_dumbbell(Network& net, std::size_t pairs, const LinkSpec& edge,
                        const LinkSpec& bottleneck) {
  Dumbbell d;
  d.left_router = net.add_node(1);
  d.right_router = net.add_node(1);
  d.bottleneck = net
                     .connect(d.left_router, d.right_router, bottleneck.bandwidth_bps,
                              bottleneck.propagation, bottleneck.queue,
                              bottleneck.queue_capacity)
                     .id();
  for (std::size_t i = 0; i < pairs; ++i) {
    const NodeId src = net.add_node(1);
    const NodeId sink = net.add_node(1);
    connect_with(net, src, d.left_router, edge);
    connect_with(net, d.right_router, sink, edge);
    d.sources.push_back(src);
    d.sinks.push_back(sink);
  }
  return d;
}

std::vector<NodeId> build_random(Network& net, std::size_t n, AsId as, sim::Rng& rng,
                                 double alpha, double beta, const LinkSpec& spec) {
  std::vector<NodeId> ids;
  std::vector<std::pair<double, double>> pos;
  ids.reserve(n);
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(net.add_node(as));
    pos.emplace_back(rng.uniform(), rng.uniform());
  }
  // Spanning chain keeps the graph connected regardless of random draws.
  for (std::size_t i = 1; i < n; ++i) connect_with(net, ids[i - 1], ids[i], spec);
  const double l_max = std::sqrt(2.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {  // skip chain edges
      const double dx = pos[i].first - pos[j].first;
      const double dy = pos[i].second - pos[j].second;
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double p = alpha * std::exp(-dist / (beta * l_max));
      if (rng.bernoulli(p)) connect_with(net, ids[i], ids[j], spec);
    }
  }
  return ids;
}

}  // namespace tussle::net
