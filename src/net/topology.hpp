// Topology builders.
//
// Scenario code should describe *shape* ("a dumbbell", "a 20-AS transit
// hierarchy"), not hand-wire links. These builders return the node ids they
// created so scenarios can attach actors to them.
#pragma once

#include <cstddef>
#include <vector>

#include "net/network.hpp"
#include "sim/random.hpp"

namespace tussle::net {

struct LinkSpec {
  double bandwidth_bps = 10e6;
  sim::Duration propagation = sim::Duration::millis(5);
  QueueKind queue = QueueKind::kDropTail;
  std::size_t queue_capacity = 64;
};

/// A straight chain of `n` nodes: n0 - n1 - ... - n(k-1), all in AS `as`.
std::vector<NodeId> build_line(Network& net, std::size_t n, AsId as, const LinkSpec& spec);

/// Star: one hub plus `leaves` spokes, all in AS `as`. Returns {hub, leaf...}.
std::vector<NodeId> build_star(Network& net, std::size_t leaves, AsId as, const LinkSpec& spec);

/// Classic dumbbell: `pairs` sources on the left, `pairs` sinks on the
/// right, a single bottleneck in the middle.
struct Dumbbell {
  std::vector<NodeId> sources;
  std::vector<NodeId> sinks;
  NodeId left_router = 0;
  NodeId right_router = 0;
  LinkId bottleneck = 0;
};
Dumbbell build_dumbbell(Network& net, std::size_t pairs, const LinkSpec& edge,
                        const LinkSpec& bottleneck);

/// Connected Waxman-style random graph over `n` nodes in AS `as`: nodes are
/// scattered on a unit square, edge probability decays with distance; a
/// spanning chain guarantees connectivity.
std::vector<NodeId> build_random(Network& net, std::size_t n, AsId as, sim::Rng& rng,
                                 double alpha, double beta, const LinkSpec& spec);

}  // namespace tussle::net
