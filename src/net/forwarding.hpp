// Per-node forwarding state.
//
// Two lookup planes coexist, mirroring the paper's routing-control tussle
// (§V-A-4): destination prefixes (provider-controlled routing fills these)
// and AS-level next hops (user-controlled source routing consults these).
// Table *size* is itself a measured quantity — portable addresses inflate
// it, which is the cost side of experiment E1.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "net/address.hpp"

namespace tussle::net {

/// Interface index within a node; -1 means "no route".
using IfIndex = int;
inline constexpr IfIndex kNoIface = -1;

class ForwardingTable {
 public:
  void set_prefix_route(const Prefix& p, IfIndex iface) { prefixes_[p] = iface; }
  void erase_prefix_route(const Prefix& p) { prefixes_.erase(p); }
  void set_as_route(AsId as, IfIndex iface) { as_routes_[as] = iface; }
  void set_default_route(IfIndex iface) noexcept { default_ = iface; }
  void clear() {
    prefixes_.clear();
    as_routes_.clear();
    default_ = kNoIface;
  }

  /// Longest-match equivalent for our two-level hierarchy: exact prefix
  /// first, then the address's provider AS, then the default route.
  std::optional<IfIndex> lookup(const Address& a) const;

  /// Next hop toward a given AS (source-route forwarding).
  std::optional<IfIndex> lookup_as(AsId as) const;

  /// Number of installed prefix entries — the "core table bloat" metric.
  std::size_t prefix_entries() const noexcept { return prefixes_.size(); }
  std::size_t as_entries() const noexcept { return as_routes_.size(); }

 private:
  std::unordered_map<Prefix, IfIndex> prefixes_;
  std::unordered_map<AsId, IfIndex> as_routes_;
  IfIndex default_ = kNoIface;
};

}  // namespace tussle::net
