// Per-node forwarding state.
//
// Two lookup planes coexist, mirroring the paper's routing-control tussle
// (§V-A-4): destination prefixes (provider-controlled routing fills these)
// and AS-level next hops (user-controlled source routing consults these).
// Table *size* is itself a measured quantity — portable addresses inflate
// it, which is the cost side of experiment E1.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "net/address.hpp"
#include "sim/mem_profile.hpp"

namespace tussle::net {

/// Interface index within a node; -1 means "no route".
using IfIndex = int;
inline constexpr IfIndex kNoIface = -1;

/// Modeled heap footprint of one installed route: the hash-map node (key,
/// value, bucket link) — a fixed model constant, like
/// sim::kEventControlBlockBytes, so route accounting never depends on a
/// library's container layout.
inline constexpr std::uint64_t kFibEntryBytes = 64;

class ForwardingTable {
 public:
  void set_prefix_route(const Prefix& p, IfIndex iface) {
    auto [it, inserted] = prefixes_.try_emplace(p, iface);
    if (!inserted) {
      it->second = iface;
    } else if (mem_ != nullptr) {
      mem_->count_alloc("net.fib_entry", kFibEntryBytes);
    }
  }
  void erase_prefix_route(const Prefix& p) {
    if (prefixes_.erase(p) != 0 && mem_ != nullptr) {
      mem_->count_free("net.fib_entry", kFibEntryBytes);
    }
  }
  void set_as_route(AsId as, IfIndex iface) {
    auto [it, inserted] = as_routes_.try_emplace(as, iface);
    if (!inserted) {
      it->second = iface;
    } else if (mem_ != nullptr) {
      mem_->count_alloc("net.fib_entry", kFibEntryBytes);
    }
  }
  void set_default_route(IfIndex iface) noexcept { default_ = iface; }
  void clear() {
    if (mem_ != nullptr) {
      const std::uint64_t n = prefixes_.size() + as_routes_.size();
      if (n > 0) mem_->count_free("net.fib_entry", n * kFibEntryBytes);
    }
    prefixes_.clear();
    as_routes_.clear();
    default_ = kNoIface;
  }

  /// Attach-or-null route accounting (Node::forwarding() refreshes this on
  /// every mutating access, so the pointer tracks the executing context's
  /// profiler lane under sharded execution).
  void set_mem_profiler(sim::MemProfiler* mem) noexcept { mem_ = mem; }

  /// Longest-match equivalent for our two-level hierarchy: exact prefix
  /// first, then the address's provider AS, then the default route.
  std::optional<IfIndex> lookup(const Address& a) const;

  /// Next hop toward a given AS (source-route forwarding).
  std::optional<IfIndex> lookup_as(AsId as) const;

  /// Number of installed prefix entries — the "core table bloat" metric.
  std::size_t prefix_entries() const noexcept { return prefixes_.size(); }
  std::size_t as_entries() const noexcept { return as_routes_.size(); }

 private:
  std::unordered_map<Prefix, IfIndex> prefixes_;
  std::unordered_map<AsId, IfIndex> as_routes_;
  IfIndex default_ = kNoIface;
  sim::MemProfiler* mem_ = nullptr;
};

}  // namespace tussle::net
