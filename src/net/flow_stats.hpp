// Per-flow delivery accounting.
//
// Experiments often need "what did flow F actually get" rather than global
// counters; the tracker subscribes to the network's delivery observers and
// aggregates per FlowId (and per service class).
#pragma once

#include <map>

#include "net/network.hpp"
#include "sim/stats.hpp"

namespace tussle::net {

class FlowTracker {
 public:
  /// Subscribes to `net`. The tracker must outlive the simulation run.
  explicit FlowTracker(Network& net);

  FlowTracker(const FlowTracker&) = delete;
  FlowTracker& operator=(const FlowTracker&) = delete;

  std::uint64_t delivered(FlowId flow) const;
  std::uint64_t delivered_bytes(FlowId flow) const;
  /// End-to-end latency summary of a flow's delivered packets.
  const sim::Summary& latency_s(FlowId flow) const;
  const sim::Summary& class_latency_s(ServiceClass c) const {
    return per_class_[static_cast<std::size_t>(c)];
  }
  std::size_t flows_seen() const noexcept { return flows_.size(); }

 private:
  struct PerFlow {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    sim::Summary latency;
  };
  std::map<FlowId, PerFlow> flows_;
  sim::Summary per_class_[3];
  sim::Summary empty_;
};

}  // namespace tussle::net
