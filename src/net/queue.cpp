#include "net/queue.hpp"

namespace tussle::net {

bool DropTailQueue::enqueue(Packet p) {
  if (q_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  bytes_ += p.size_bytes;
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

PriorityQueue::PriorityQueue(std::size_t per_class_capacity)
    : classes_{DropTailQueue(per_class_capacity), DropTailQueue(per_class_capacity),
               DropTailQueue(per_class_capacity)} {}

bool PriorityQueue::enqueue(Packet p) {
  const auto cls = static_cast<std::size_t>(p.tos);
  if (!classes_[cls].enqueue(std::move(p))) {
    ++drops_;
    ++class_drops_[cls];
    return false;
  }
  return true;
}

std::optional<Packet> PriorityQueue::dequeue() {
  // Highest class index = highest priority.
  for (std::size_t c = classes_.size(); c > 0; --c) {
    if (auto p = classes_[c - 1].dequeue()) return p;
  }
  return std::nullopt;
}

std::size_t PriorityQueue::packets() const noexcept {
  std::size_t n = 0;
  for (const auto& q : classes_) n += q.packets();
  return n;
}

std::uint64_t PriorityQueue::bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& q : classes_) n += q.bytes();
  return n;
}

DrrQueue::DrrQueue(std::size_t per_class_capacity, std::array<double, 3> weights)
    : classes_{DropTailQueue(per_class_capacity), DropTailQueue(per_class_capacity),
               DropTailQueue(per_class_capacity)},
      weights_(weights) {}

bool DrrQueue::enqueue(Packet p) {
  const auto cls = static_cast<std::size_t>(p.tos);
  if (!classes_[cls].enqueue(std::move(p))) {
    ++drops_;
    return false;
  }
  return true;
}

void DrrQueue::advance_round() noexcept {
  // An emptied class forfeits its residual deficit (standard DRR), and the
  // next visit to any class replenishes exactly once.
  if (classes_[round_].packets() == 0) deficit_[round_] = 0;
  fresh_visit_[round_] = true;
  round_ = (round_ + 1) % classes_.size();
}

std::optional<Packet> DrrQueue::dequeue() {
  if (packets() == 0) return std::nullopt;
  // Classic deficit round robin: on each fresh visit to a backlogged class,
  // add one quantum; serve head-of-line packets while they fit the deficit;
  // move on when the head no longer fits. Bounded: every full sweep adds a
  // quantum to at least one backlogged class, so some head eventually fits.
  for (int guard = 0; guard < 100000; ++guard) {
    DropTailQueue& q = classes_[round_];
    if (q.packets() == 0) {
      advance_round();
      continue;
    }
    if (fresh_visit_[round_]) {
      deficit_[round_] += weights_[round_] * kQuantumBase;
      fresh_visit_[round_] = false;
    }
    const auto head = q.head_size();
    if (head && static_cast<double>(*head) <= deficit_[round_]) {
      deficit_[round_] -= static_cast<double>(*head);
      return q.dequeue();
    }
    advance_round();
  }
  return std::nullopt;
}

std::size_t DrrQueue::packets() const noexcept {
  std::size_t n = 0;
  for (const auto& q : classes_) n += q.packets();
  return n;
}

std::uint64_t DrrQueue::bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& q : classes_) n += q.bytes();
  return n;
}

std::unique_ptr<Queue> make_queue(QueueKind kind, std::size_t capacity) {
  switch (kind) {
    case QueueKind::kDropTail: return std::make_unique<DropTailQueue>(capacity);
    case QueueKind::kPriority: return std::make_unique<PriorityQueue>(capacity);
    case QueueKind::kDrr:
      return std::make_unique<DrrQueue>(capacity, std::array<double, 3>{1.0, 2.0, 4.0});
  }
  return std::make_unique<DropTailQueue>(capacity);
}

}  // namespace tussle::net
