#include "net/node.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "sim/mem_profile.hpp"
#include "sim/scale_profile.hpp"
#include "sim/shard_audit.hpp"

namespace tussle::net {

namespace {

const char* filter_action_name(FilterAction a) noexcept {
  switch (a) {
    case FilterAction::kAccept: return "accept";
    case FilterAction::kDrop: return "drop";
    case FilterAction::kRedirect: return "redirect";
    case FilterAction::kBypass: return "bypass";
    case FilterAction::kMirror: return "mirror";
  }
  return "?";
}

/// Re-establishes a packet's lifetime span as the active context for one
/// node visit. Each hop is a separately scheduled event, so the active
/// stack is empty on entry and must be re-seeded from the uid registry.
class PacketSpanScope {
 public:
  PacketSpanScope(sim::SpanTracer* sp, std::uint64_t uid) : sp_(sp) {
    if (sp_ != nullptr) sp_->push(sp_->find_packet(uid));
  }
  ~PacketSpanScope() {
    if (sp_ != nullptr) sp_->pop();
  }
  PacketSpanScope(const PacketSpanScope&) = delete;
  PacketSpanScope& operator=(const PacketSpanScope&) = delete;

 private:
  sim::SpanTracer* sp_;
};

/// Terminal node-level drop: a zero-length span under the current context
/// (the hop that decided) or, failing that, the packet span; then the
/// packet's causal tree is closed.
void span_node_drop(sim::SpanTracer* sp, sim::SimTime now, const Packet& p, NodeId node,
                    std::string reason) {
  if (sp == nullptr) return;
  sim::SpanId parent = sp->current();
  if (parent == sim::kNoSpan) parent = sp->find_packet(p.uid);
  const sim::SpanId id = sp->begin_under(parent, now, "net.node", "drop",
                                         {{"reason", std::move(reason)}, {"node", node}});
  sp->end(id, now);
  sp->end_packet(p.uid, now);
}

}  // namespace

bool Node::owns(const Address& a) const {
  return std::find(addresses_.begin(), addresses_.end(), a) != addresses_.end();
}

void Node::audit_mutation(const char* what) const {
  if (auto* au = net_->auditor()) au->check_mutation("net.node", id_, as_, what);
}

void Node::add_address(const Address& a) {
  audit_mutation("add_address");
  addresses_.push_back(a);
}

void Node::renumber(std::vector<Address> addrs) {
  audit_mutation("renumber");
  addresses_ = std::move(addrs);
}

ForwardingTable& Node::forwarding() {
  audit_mutation("forwarding");
  // Refresh the route-accounting hook from the executing context (base
  // profiler during setup, the owner's lane inside a sharded worker event).
  fib_.set_mem_profiler(net_->mem_profiler());
  return fib_;
}

void Node::add_filter(PacketFilter f) {
  audit_mutation("add_filter");
  filters_.push_back(std::move(f));
}

void Node::set_local_handler(LocalHandler h) {
  audit_mutation("set_local_handler");
  local_handler_ = std::move(h);
}

bool Node::remove_filter(const std::string& name) {
  audit_mutation("remove_filter");
  auto it = std::find_if(filters_.begin(), filters_.end(),
                         [&](const PacketFilter& f) { return f.name == name; });
  if (it == filters_.end()) return false;
  filters_.erase(it);
  return true;
}

std::vector<std::string> Node::disclosed_filter_names() const {
  std::vector<std::string> out;
  for (const auto& f : filters_) {
    if (f.disclosed) out.push_back(f.name);
  }
  return out;
}

void Node::originate(Packet p) {
  if (auto* au = net_->auditor()) {
    // Originating is the node acting: claim its shard. The uid source is
    // process-shared state the PDES refactor must split into per-shard
    // ranges — tally it so the report says who draws from it.
    au->claim("net.node", id_, as_);
    au->record_shared_access("net.packet_ids", "next");
  }
  p.uid = net_->packet_ids().next();
  p.sent_at_s = net_->simulator().now().as_seconds();
  net_->counters().originated.add();
  if (auto* sp = net_->scale_profiler()) {
    sp->count_alloc("net.packet", sizeof(Packet) + p.size_bytes);
  }
  if (auto* mp = net_->mem_profiler()) {
    // Birth of the packet's one identity: encapsulation and mirroring keep
    // the uid, so the lifetime closes exactly once, at deliver or drop.
    mp->packet_birth(p.uid, net_->simulator().now(), sizeof(Packet) + p.size_bytes);
  }
  if (auto* sp = net_->spans()) {
    const sim::SpanId ps = sp->packet_span(net_->simulator().now(), p.uid, p.flow);
    sp->annotate(ps, {"origin", id_});
  }
  forward(std::move(p));
}

bool Node::run_filters(const Packet& p, FilterDecision& out, bool& disclosed,
                       std::vector<Address>* taps, sim::SpanTracer* spans,
                       sim::SimTime now) const {
  for (const auto& f : filters_) {
    FilterDecision d;
    if (spans != nullptr) {
      // The decision span is the causal anchor for everything the filter
      // does — a pricing filter's ledger transfer lands underneath it, so
      // the settlement is attributed to this verdict on this packet.
      sim::ScopedSpan decision(spans, now, "net.filter", "decision",
                               {{"filter", f.name}, {"node", id_}, {"disclosed", f.disclosed}});
      d = f.fn(p);
      decision.annotate({"action", filter_action_name(d.action)});
      if (!d.reason.empty()) decision.annotate({"reason", d.reason});
    } else {
      d = f.fn(p);
    }
    if (d.action == FilterAction::kBypass) {
      // A negotiated permit pre-empts everything installed after it.
      return false;
    }
    if (d.action == FilterAction::kMirror) {
      // Taps copy and step aside; the chain keeps running.
      if (taps && d.redirect_to) taps->push_back(*d.redirect_to);
      continue;
    }
    if (d.action != FilterAction::kAccept) {
      out = std::move(d);
      disclosed = f.disclosed;
      return true;
    }
  }
  return false;
}

void Node::receive(Packet p, IfIndex /*iface*/) {
  // A packet arriving is this node's shard running: claim the event.
  if (auto* au = net_->auditor()) au->claim("net.node", id_, as_);
  sim::SpanTracer* sp = net_->spans();
  const sim::SimTime now = net_->simulator().now();
  // Span context for this visit: packet span re-activated from the uid
  // registry, then a hop span covering everything this node does to the
  // packet (filters, delivery, forwarding). Declaration order matters —
  // the hop span must close before the packet context pops.
  PacketSpanScope pscope(sp, p.uid);
  std::optional<sim::ScopedSpan> hop;
  if (sp != nullptr) {
    hop.emplace(sp, now, "net.node", "hop",
                std::initializer_list<sim::TraceField>{{"node", id_}, {"as", as_}});
  }
  // Tussle hooks run on everything that crosses the node, before the node
  // even decides whether the packet is for itself — exactly where real
  // middleboxes sit.
  FilterDecision decision;
  bool decided_by_disclosed = false;
  std::vector<Address> taps;
  const bool blocked = run_filters(p, decision, decided_by_disclosed, &taps, sp, now);
  // Mirrored copies go out even for packets that are then dropped — the
  // tap sees what the censor saw.
  for (const Address& tap : taps) {
    Packet copy = p;
    copy.dst = tap;
    copy.source_route.reset();
    net_->counters().mirrored.add();
    forward(std::move(copy));
  }
  if (blocked) {
    if (decision.action == FilterAction::kDrop) {
      net_->counters().dropped_filter.add();
      if (auto* mp = net_->mem_profiler()) mp->packet_dropped(p.uid, now);
      TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                         "net.node", "drop", {"reason", "filter:" + decision.reason},
                         {"uid", p.uid}, {"flow", p.flow}, {"node", id_},
                         {"disclosed", decided_by_disclosed});
      span_node_drop(sp, now, p, id_, "filter:" + decision.reason);
      // §VI-A "design what happens then": a *disclosed* control point
      // reports the failure to the sender; an undisclosed one is silent
      // loss, which is exactly what makes covert controls hard to debug.
      if (net_->fault_reporting() && decided_by_disclosed && p.proto != AppProto::kControl &&
          p.src.valid()) {
        Packet err;
        err.src = addresses_.empty() ? Address{} : addresses_.front();
        err.dst = p.src;
        err.proto = AppProto::kControl;
        err.size_bytes = 100;
        err.payload_tag = "err:" + std::to_string(id_) + ":" + decision.reason;
        err.flow = p.flow;
        originate(std::move(err));
      }
      return;
    }
    if (decision.action == FilterAction::kRedirect && decision.redirect_to) {
      net_->counters().redirected.add();
      TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                         "net.node", "redirect", {"uid", p.uid}, {"flow", p.flow},
                         {"node", id_});
      if (sp != nullptr) sp->instant(now, "net.node", "redirect", {{"node", id_}});
      p.dst = *decision.redirect_to;
    }
  }

  if (owns(p.dst)) {
    // Tunnel endpoint: unwrap and keep going with the inner packet.
    if (p.inner) {
      if (auto inner = p.decapsulate()) {
        if (auto* mp = net_->mem_profiler()) {
          // Decapsulation copies the inner packet out of its shared_ptr:
          // transient churn, allocated and freed within the event. The
          // packet identity (uid) survives, so no lifetime closes here.
          mp->count_alloc("net.packet.decap", sizeof(Packet));
          mp->count_free("net.packet.decap", sizeof(Packet));
        }
        forward(std::move(*inner));
        return;
      }
    }
    if (local_handler_) local_handler_(p);
    net_->notify_delivered(p, id_);
    return;
  }

  if (p.ttl == 0) {
    net_->counters().dropped_ttl.add();
    if (auto* mp = net_->mem_profiler()) mp->packet_dropped(p.uid, now);
    TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                       "net.node", "drop", {"reason", "ttl"}, {"uid", p.uid},
                       {"flow", p.flow}, {"node", id_});
    span_node_drop(sp, now, p, id_, "ttl");
    return;
  }
  p.ttl -= 1;
  net_->counters().forwarded.add();
  TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kDebug,
                     "net.node", "forward", {"uid", p.uid}, {"flow", p.flow},
                     {"node", id_}, {"ttl", p.ttl});
  forward(std::move(p));
}

void Node::forward(Packet p) {
  // Local delivery first: a decapsulated or originated packet may already be
  // at its destination, and the FIB's default route must not bounce it away.
  if (owns(p.dst)) {
    if (p.inner) {
      if (auto inner = p.decapsulate()) {
        if (auto* mp = net_->mem_profiler()) {
          mp->count_alloc("net.packet.decap", sizeof(Packet));
          mp->count_free("net.packet.decap", sizeof(Packet));
        }
        forward(std::move(*inner));
        return;
      }
    }
    if (local_handler_) local_handler_(p);
    net_->notify_delivered(p, id_);
    return;
  }

  if (auto* mp = net_->mem_profiler()) {
    // One FIB lookup chases node -> fib -> prefix bucket -> entry ->
    // interface: the pointer-chase the SoA/arena refactor would flatten.
    mp->note_hops("net.forward", 4);
    mp->note_occupancy("net.fib", fib_.prefix_entries() + fib_.as_entries());
  }

  std::optional<IfIndex> iface;

  if (p.source_route) {
    // Advance the source route when we reach the head AS.
    auto& sr = *p.source_route;
    while (!sr.exhausted() && sr.hops[sr.next] == as_) sr.next += 1;
    if (auto hop = sr.next_hop()) {
      iface = fib_.lookup_as(*hop);
    } else {
      iface = fib_.lookup(p.dst);  // route exhausted: normal forwarding
    }
  } else {
    iface = fib_.lookup(p.dst);
  }

  if (!iface) {
    net_->counters().dropped_no_route.add();
    TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                       "net.node", "drop", {"reason", "no-route"}, {"uid", p.uid},
                       {"flow", p.flow}, {"node", id_});
    span_node_drop(net_->spans(), net_->simulator().now(), p, id_, "no-route");
    return;
  }
  net_->link(link_of(*iface)).transmit_from(id_, std::move(p));
}

}  // namespace tussle::net
