#include "net/node.hpp"

#include <algorithm>

#include "net/network.hpp"

namespace tussle::net {

bool Node::owns(const Address& a) const {
  return std::find(addresses_.begin(), addresses_.end(), a) != addresses_.end();
}

bool Node::remove_filter(const std::string& name) {
  auto it = std::find_if(filters_.begin(), filters_.end(),
                         [&](const PacketFilter& f) { return f.name == name; });
  if (it == filters_.end()) return false;
  filters_.erase(it);
  return true;
}

std::vector<std::string> Node::disclosed_filter_names() const {
  std::vector<std::string> out;
  for (const auto& f : filters_) {
    if (f.disclosed) out.push_back(f.name);
  }
  return out;
}

void Node::originate(Packet p) {
  p.uid = net_->packet_ids().next();
  p.sent_at_s = net_->simulator().now().as_seconds();
  net_->counters().originated.add();
  forward(std::move(p));
}

bool Node::run_filters(const Packet& p, FilterDecision& out, bool& disclosed,
                       std::vector<Address>* taps) const {
  for (const auto& f : filters_) {
    FilterDecision d = f.fn(p);
    if (d.action == FilterAction::kBypass) {
      // A negotiated permit pre-empts everything installed after it.
      return false;
    }
    if (d.action == FilterAction::kMirror) {
      // Taps copy and step aside; the chain keeps running.
      if (taps && d.redirect_to) taps->push_back(*d.redirect_to);
      continue;
    }
    if (d.action != FilterAction::kAccept) {
      out = std::move(d);
      disclosed = f.disclosed;
      return true;
    }
  }
  return false;
}

void Node::receive(Packet p, IfIndex /*iface*/) {
  // Tussle hooks run on everything that crosses the node, before the node
  // even decides whether the packet is for itself — exactly where real
  // middleboxes sit.
  FilterDecision decision;
  bool decided_by_disclosed = false;
  std::vector<Address> taps;
  const bool blocked = run_filters(p, decision, decided_by_disclosed, &taps);
  // Mirrored copies go out even for packets that are then dropped — the
  // tap sees what the censor saw.
  for (const Address& tap : taps) {
    Packet copy = p;
    copy.dst = tap;
    copy.source_route.reset();
    net_->counters().mirrored.add();
    forward(std::move(copy));
  }
  if (blocked) {
    if (decision.action == FilterAction::kDrop) {
      net_->counters().dropped_filter.add();
      TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                         "net.node", "drop", {"reason", "filter:" + decision.reason},
                         {"uid", p.uid}, {"flow", p.flow}, {"node", id_},
                         {"disclosed", decided_by_disclosed});
      // §VI-A "design what happens then": a *disclosed* control point
      // reports the failure to the sender; an undisclosed one is silent
      // loss, which is exactly what makes covert controls hard to debug.
      if (net_->fault_reporting() && decided_by_disclosed && p.proto != AppProto::kControl &&
          p.src.valid()) {
        Packet err;
        err.src = addresses_.empty() ? Address{} : addresses_.front();
        err.dst = p.src;
        err.proto = AppProto::kControl;
        err.size_bytes = 100;
        err.payload_tag = "err:" + std::to_string(id_) + ":" + decision.reason;
        err.flow = p.flow;
        originate(std::move(err));
      }
      return;
    }
    if (decision.action == FilterAction::kRedirect && decision.redirect_to) {
      net_->counters().redirected.add();
      TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                         "net.node", "redirect", {"uid", p.uid}, {"flow", p.flow},
                         {"node", id_});
      p.dst = *decision.redirect_to;
    }
  }

  if (owns(p.dst)) {
    // Tunnel endpoint: unwrap and keep going with the inner packet.
    if (p.inner) {
      if (auto inner = p.decapsulate()) {
        forward(std::move(*inner));
        return;
      }
    }
    if (local_handler_) local_handler_(p);
    net_->notify_delivered(p, id_);
    return;
  }

  if (p.ttl == 0) {
    net_->counters().dropped_ttl.add();
    TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                       "net.node", "drop", {"reason", "ttl"}, {"uid", p.uid},
                       {"flow", p.flow}, {"node", id_});
    return;
  }
  p.ttl -= 1;
  net_->counters().forwarded.add();
  TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kDebug,
                     "net.node", "forward", {"uid", p.uid}, {"flow", p.flow},
                     {"node", id_}, {"ttl", p.ttl});
  forward(std::move(p));
}

void Node::forward(Packet p) {
  // Local delivery first: a decapsulated or originated packet may already be
  // at its destination, and the FIB's default route must not bounce it away.
  if (owns(p.dst)) {
    if (p.inner) {
      if (auto inner = p.decapsulate()) {
        forward(std::move(*inner));
        return;
      }
    }
    if (local_handler_) local_handler_(p);
    net_->notify_delivered(p, id_);
    return;
  }

  std::optional<IfIndex> iface;

  if (p.source_route) {
    // Advance the source route when we reach the head AS.
    auto& sr = *p.source_route;
    while (!sr.exhausted() && sr.hops[sr.next] == as_) sr.next += 1;
    if (auto hop = sr.next_hop()) {
      iface = fib_.lookup_as(*hop);
    } else {
      iface = fib_.lookup(p.dst);  // route exhausted: normal forwarding
    }
  } else {
    iface = fib_.lookup(p.dst);
  }

  if (!iface) {
    net_->counters().dropped_no_route.add();
    TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                       "net.node", "drop", {"reason", "no-route"}, {"uid", p.uid},
                       {"flow", p.flow}, {"node", id_});
    return;
  }
  net_->link(link_of(*iface)).transmit_from(id_, std::move(p));
}

}  // namespace tussle::net
