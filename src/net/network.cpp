#include "net/network.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/exec_backend.hpp"
#include "sim/mem_profile.hpp"
#include "sim/scale_profile.hpp"
#include "sim/shard_audit.hpp"

namespace tussle::sim {

/// Per-owner packet-id lanes draw from disjoint namespaces — (owner+1)<<40,
/// the event-id scheme — so uids are unique and per-owner deterministic
/// without any cross-thread coordination. Nothing merges back: the base
/// source keeps namespace 0 for serial/setup draws.
template <>
struct LaneTraits<net::PacketIdSource> {
  static net::PacketIdSource* make(const net::PacketIdSource& base, ShardId owner) {
    (void)base;
    auto* lane = new net::PacketIdSource();
    lane->set_namespace((static_cast<std::uint64_t>(owner) + 1) << 40);
    return lane;
  }
  static void fold(net::PacketIdSource& base, net::PacketIdSource& lane) {
    (void)base;
    (void)lane;  // namespaced counters never collide; there is nothing to fold
  }
};

template <>
struct LaneTraits<net::NetCounters> {
  static net::NetCounters* make(const net::NetCounters& base, ShardId owner) {
    (void)base;
    (void)owner;
    return new net::NetCounters();
  }
  static void fold(net::NetCounters& base, net::NetCounters& lane) {
    base.merge(lane);
    lane.reset();
  }
};

}  // namespace tussle::sim

namespace tussle::net {

namespace {

/// Provisional shard owner of a link: same-AS links belong to that AS,
/// cross-AS links are the boundary channels the PDES design shards across,
/// so both sides may touch them (tallied, never a violation).
sim::ShardId link_shard(const Network& net, NodeId a, NodeId b) {
  const AsId as_a = net.node(a).as();
  const AsId as_b = net.node(b).as();
  return as_a == as_b ? static_cast<sim::ShardId>(as_a) : sim::kSharedShard;
}

/// Records a link-level drop as a zero-length span under the packet's
/// lifetime span (link code runs outside any hop context) and closes the
/// packet span — a dropped packet's causal tree ends here.
void span_link_drop(sim::SpanTracer* sp, sim::SimTime now, std::uint64_t uid,
                    const char* reason, LinkId link, NodeId sender) {
  if (sp == nullptr) return;
  const sim::SpanId id =
      sp->begin_under(sp->find_packet(uid), now, "net.link", "drop",
                      {{"reason", reason}, {"link", link}, {"node", sender}});
  sp->end(id, now);
  sp->end_packet(uid, now);
}

}  // namespace

// ---------------------------------------------------------------- Link ----

Link::Link(Network& net, LinkId id, NodeId a, NodeId b, double bits_per_second,
           sim::Duration propagation, QueueKind kind, std::size_t queue_capacity)
    : net_(&net), id_(id), bps_(bits_per_second), prop_(propagation) {
  if (bits_per_second <= 0) throw std::invalid_argument("link bandwidth must be positive");
  dirs_[0].from = a;
  dirs_[0].to = b;
  dirs_[1].from = b;
  dirs_[1].to = a;
  dirs_[0].queue = make_queue(kind, queue_capacity);
  dirs_[1].queue = make_queue(kind, queue_capacity);
}

NodeId Link::peer_of(NodeId n) const {
  if (n == dirs_[0].from) return dirs_[0].to;
  if (n == dirs_[1].from) return dirs_[1].to;
  throw std::invalid_argument("node is not an endpoint of this link");
}

std::size_t Link::dir_index_for(NodeId from) const {
  if (from == dirs_[0].from) return 0;
  if (from == dirs_[1].from) return 1;
  throw std::invalid_argument("node is not an endpoint of this link");
}

bool Link::transmit_from(NodeId sender, Packet p) {
  // The egress queue being mutated lives with the sender: transmitting is
  // an action of the sender's shard, whichever shard the link registered
  // under.
  if (auto* au = net_->auditor()) {
    au->check_mutation("net.link", id_, net_->node(sender).as(), "transmit");
  }
  if (!up_) {
    net_->counters().dropped_link_down.add();
    if (auto* mp = net_->mem_profiler()) {
      mp->packet_dropped(p.uid, net_->simulator().now());
    }
    TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                       "net.link", "drop", {"reason", "link-down"}, {"uid", p.uid},
                       {"flow", p.flow}, {"link", id_}, {"node", sender});
    span_link_drop(net_->spans(), net_->simulator().now(), p.uid, "link-down", id_, sender);
    return false;
  }
  Direction& d = dir_for(sender);
  const std::uint64_t uid = p.uid;
  const FlowId flow = p.flow;
  if (!d.queue->enqueue(std::move(p))) {
    net_->counters().dropped_queue.add();
    if (auto* mp = net_->mem_profiler()) {
      mp->packet_dropped(uid, net_->simulator().now());
    }
    TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kInfo,
                       "net.link", "drop", {"reason", "queue-full"}, {"uid", uid},
                       {"flow", flow}, {"link", id_}, {"node", sender});
    span_link_drop(net_->spans(), net_->simulator().now(), uid, "queue-full", id_, sender);
    return false;
  }
  if (auto* mp = net_->mem_profiler()) {
    // Link-queue occupancy after the enqueue: the container the arena/SoA
    // refactor would turn into a ring buffer.
    mp->note_occupancy("net.link_queue", d.queue->packets());
  }
  TUSSLE_TRACE_EVENT(net_->tracer(), net_->simulator().now(), sim::TraceLevel::kDebug,
                     "net.link", "enqueue", {"uid", uid}, {"flow", flow}, {"link", id_},
                     {"node", sender}, {"queued", d.queue->packets()});
  if (!d.transmitting) start_transmission(d);
  return true;
}

void Link::start_transmission(Direction& d) {
  auto p = d.queue->dequeue();
  if (!p) return;
  d.transmitting = true;
  const auto serialization =
      sim::Duration::seconds(static_cast<double>(p->size_bytes) * 8.0 / bps_);
  auto& sim = net_->simulator();
  // Serialization completes first; then the packet propagates while the
  // transmitter moves on to the next queued packet.
  sim.schedule(serialization, sim::TaskTag{"net.link", "serialize"},
               [this, &d, pkt = std::move(*p)]() mutable {
    // Serialization completion is the transmitting shard's own event.
    if (auto* au = net_->auditor()) au->claim("net.link", id_, net_->node(d.from).as());
    d.transmitting = false;
    d.tx_packets += 1;
    d.tx_bytes += pkt.size_bytes;
    const NodeId to = d.to;
    // Propagation hands the packet to the receiving node's owner: on the
    // sharded backend a cross-AS hop rides the barrier inbox (propagation
    // delay >= the registered lookahead makes that legal), while a same-AS
    // hop stays on the owner's own queue. Serial execution is unaffected.
    net_->simulator().schedule_for(static_cast<sim::ShardId>(net_->node(to).as()), prop_,
                                   sim::TaskTag{"net.link", "propagate"},
                                   [this, to, pkt = std::move(pkt)]() mutable {
      if (!up_) {
        net_->counters().dropped_link_down.add();
        if (auto* mp = net_->mem_profiler()) {
          mp->packet_dropped(pkt.uid, net_->simulator().now());
        }
        span_link_drop(net_->spans(), net_->simulator().now(), pkt.uid, "link-down", id_, to);
        return;
      }
      Node& dst = net_->node(to);
      // Find the interface on the destination that corresponds to this link.
      for (IfIndex i = 0; i < static_cast<IfIndex>(dst.interface_count()); ++i) {
        if (dst.link_of(i) == id_) {
          dst.receive(std::move(pkt), i);
          return;
        }
      }
      assert(false && "link endpoint has no matching interface");
    });
    if (!d.queue->empty()) start_transmission(d);
  });
}

void Link::set_up(bool up) {
  if (auto* au = net_->auditor()) {
    au->check_mutation("net.link", id_, link_shard(*net_, dirs_[0].from, dirs_[1].from),
                       "set_up");
  }
  up_ = up;
}

// ---------------------------------------------------------- NetCounters --

void NetCounters::reset() {
  originated.reset();
  delivered.reset();
  dropped_filter.reset();
  dropped_ttl.reset();
  dropped_no_route.reset();
  dropped_queue.reset();
  dropped_link_down.reset();
  redirected.reset();
  mirrored.reset();
  forwarded.reset();
  delivery_latency_s.reset();
}

void NetCounters::merge(const NetCounters& other) {
  originated.add(other.originated.value());
  delivered.add(other.delivered.value());
  dropped_filter.add(other.dropped_filter.value());
  dropped_ttl.add(other.dropped_ttl.value());
  dropped_no_route.add(other.dropped_no_route.value());
  dropped_queue.add(other.dropped_queue.value());
  dropped_link_down.add(other.dropped_link_down.value());
  redirected.add(other.redirected.value());
  mirrored.add(other.mirrored.value());
  forwarded.add(other.forwarded.value());
  delivery_latency_s.merge(other.delivery_latency_s);
}

// -------------------------------------------------------------- Network --

NetCounters& Network::counters() noexcept {
  if (auto* lane = sim::shard_lane(*sim_, counters_)) return *lane;
  return counters_;
}

PacketIdSource& Network::packet_ids() noexcept {
  if (auto* lane = sim::shard_lane(*sim_, ids_)) return *lane;
  return ids_;
}

NodeId Network::add_node(AsId as) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, id, as));
  // Each AS is an execution owner: the sharded backend pre-creates its
  // logical process (a no-op on the serial backend).
  sim_->register_owner(static_cast<sim::ShardId>(as));
  if (auto* au = auditor()) au->register_component("net.node", id, as);
  sim::profile_actor(scale_profiler(), mem_profiler(), "net.node", sizeof(Node));
  return id;
}

Link& Network::connect(NodeId a, NodeId b, double bits_per_second, sim::Duration propagation,
                       QueueKind kind, std::size_t queue_capacity) {
  if (a == b) throw std::invalid_argument("self-links are not supported");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(std::make_unique<Link>(*this, id, a, b, bits_per_second, propagation, kind,
                                          queue_capacity));
  node(a).attach_interface(id);
  node(b).attach_interface(id);
  // Cross-AS propagation delays bound how early one owner can affect
  // another: the minimum becomes the sharded backend's barrier lookahead
  // (a no-op for same-AS pairs and on the serial backend).
  sim_->register_lookahead(static_cast<sim::ShardId>(node(a).as()),
                           static_cast<sim::ShardId>(node(b).as()), propagation);
  if (auto* au = auditor()) au->register_component("net.link", id, link_shard(*this, a, b));
  sim::profile_actor(scale_profiler(), mem_profiler(), "net.link", sizeof(Link));
  if (auto* sp = scale_profiler()) {
    // Cross-AS propagation delays are the PDES lookahead; same-AS pairs are
    // ignored by register_link.
    sp->register_link(node(a).as(), node(b).as(), propagation);
  }
  return *links_.back();
}

void Network::notify_delivered(const Packet& p, NodeId at) {
  // Network-wide counters are deliberately shared across shards today; the
  // tally marks them as a merge point the PDES refactor must make
  // shard-local-then-merge.
  if (auto* au = auditor()) au->record_shared_access("net.counters", "deliver");
  NetCounters& ctr = counters();  // owner lane under sharded execution
  ctr.delivered.add();
  if (auto* mp = mem_profiler()) mp->packet_delivered(p.uid, sim_->now());
  const double latency_s = sim_->now().as_seconds() - p.sent_at_s;
  ctr.delivery_latency_s.observe(latency_s);
  TUSSLE_TRACE_EVENT(tracer(), sim_->now(), sim::TraceLevel::kInfo, "net.node", "deliver",
                     {"uid", p.uid}, {"flow", p.flow}, {"node", at},
                     {"latency_s", latency_s});
  if (spans_ != nullptr) {
    // Delivery can happen inside a hop span (forwarded packet) or with no
    // active context (origination straight to a local address); adopt the
    // packet span in the latter case so the deliver span never floats free.
    const bool adopt = spans_->current() == sim::kNoSpan;
    if (adopt) spans_->push(spans_->find_packet(p.uid));
    {
      // Settlements posted by delivery observers (e.g. PaidTransit::settle)
      // nest under this span: "who was compensated because it arrived".
      sim::ScopedSpan deliver(spans_, sim_->now(), "net.node", "deliver",
                              {{"node", at}, {"latency_s", latency_s}});
      for (const auto& obs : observers_) obs(p, at);
    }
    if (adopt) spans_->pop();
    spans_->end_packet(p.uid, sim_->now());
  } else {
    for (const auto& obs : observers_) obs(p, at);
  }
}

std::vector<std::pair<NodeId, IfIndex>> Network::neighbors(NodeId n) const {
  std::vector<std::pair<NodeId, IfIndex>> out;
  const Node& nd = node(n);
  for (IfIndex i = 0; i < static_cast<IfIndex>(nd.interface_count()); ++i) {
    const Link& l = link(nd.link_of(i));
    out.emplace_back(l.peer_of(n), i);
  }
  return out;
}

}  // namespace tussle::net
