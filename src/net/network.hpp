// The Network: owns nodes and links, provides the data-plane fabric that the
// routing, trust, and economics layers program.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "sim/span.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace tussle::net {

using LinkId = std::uint32_t;

/// A full-duplex point-to-point link. Each direction has its own output
/// queue and transmitter; serialization time is size/bandwidth and
/// propagation delay is fixed.
class Link {
 public:
  Link(Network& net, LinkId id, NodeId a, NodeId b, double bits_per_second,
       sim::Duration propagation, QueueKind kind, std::size_t queue_capacity);

  LinkId id() const noexcept { return id_; }
  NodeId endpoint_a() const noexcept { return dirs_[0].from; }
  NodeId endpoint_b() const noexcept { return dirs_[1].from; }
  NodeId peer_of(NodeId n) const;

  /// Queues a packet for transmission from `sender` toward the other end.
  /// Returns false if the packet was dropped (queue full or link down).
  bool transmit_from(NodeId sender, Packet p);

  /// Failure injection: a down link silently discards traffic. Audited:
  /// same-AS links belong to that AS's shard, cross-AS links are shared
  /// boundary channels, so either shard may fail them.
  void set_up(bool up);
  bool up() const noexcept { return up_; }

  double bandwidth_bps() const noexcept { return bps_; }
  sim::Duration propagation() const noexcept { return prop_; }

  std::uint64_t tx_packets(NodeId from) const { return dir_for(from).tx_packets; }
  std::uint64_t tx_bytes(NodeId from) const { return dir_for(from).tx_bytes; }
  std::uint64_t queue_drops() const noexcept {
    return dirs_[0].queue->drops() + dirs_[1].queue->drops();
  }
  /// Instantaneous utilization proxy: queued bytes in both directions.
  std::uint64_t backlog_bytes() const noexcept {
    return dirs_[0].queue->bytes() + dirs_[1].queue->bytes();
  }

 private:
  struct Direction {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::unique_ptr<Queue> queue;
    bool transmitting = false;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
  };

  std::size_t dir_index_for(NodeId from) const;
  Direction& dir_for(NodeId from) { return dirs_[dir_index_for(from)]; }
  const Direction& dir_for(NodeId from) const { return dirs_[dir_index_for(from)]; }
  void start_transmission(Direction& d);

  Network* net_;
  LinkId id_ = 0;
  double bps_ = 0;
  sim::Duration prop_;
  bool up_ = true;
  Direction dirs_[2];
};

/// Aggregate data-plane counters, with drop causes broken out — several
/// experiments report *why* traffic died (filtered vs. congested vs.
/// unroutable), since each cause belongs to a different tussle.
struct NetCounters {
  sim::Counter originated;
  sim::Counter delivered;
  sim::Counter dropped_filter;
  sim::Counter dropped_ttl;
  sim::Counter dropped_no_route;
  sim::Counter dropped_queue;
  sim::Counter dropped_link_down;
  sim::Counter redirected;
  sim::Counter mirrored;
  sim::Counter forwarded;
  sim::Summary delivery_latency_s;  ///< end-to-end, seconds

  void reset();
  /// Folds another counter set into this one (sharded per-owner lanes merge
  /// through here; Summary merging pools moments, so merged stats equal the
  /// single-stream result).
  void merge(const NetCounters& other);
};

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(&sim), tracer_(&sim.tracer()) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node(AsId as);
  Link& connect(NodeId a, NodeId b, double bits_per_second, sim::Duration propagation,
                QueueKind kind = QueueKind::kDropTail, std::size_t queue_capacity = 64);

  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  Link& link(LinkId id) { return *links_.at(id); }
  const Link& link(LinkId id) const { return *links_.at(id); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }

  sim::Simulator& simulator() noexcept { return *sim_; }

  /// Data-plane counter sink. Inside a sharded worker event this resolves
  /// to the owner's private lane (folded into the base in owner order at
  /// barriers), so hot-path counting never crosses threads; everywhere else
  /// it is the base object. Read merged results through the const overload
  /// after run() (or from a control event, which runs post-fold).
  NetCounters& counters() noexcept;
  const NetCounters& counters() const noexcept { return counters_; }

  /// Packet-id source, lane-routed like counters(); sharded lanes draw from
  /// per-owner namespaces so uids stay globally unique.
  PacketIdSource& packet_ids() noexcept;

  /// Tracer receiving this network's flow-provenance events (enqueue,
  /// forward, drop-with-reason, deliver). Defaults to the owning
  /// simulator's tracer, so two concurrent runs never share trace state;
  /// it is disabled unless someone turns it on — the data plane pays one
  /// branch per decision point either way.
  sim::Tracer& tracer() noexcept { return *tracer_; }
  void set_tracer(sim::Tracer& tracer) noexcept { tracer_ = &tracer; }

  /// Causal span tracer, or nullptr (the default — the data plane then pays
  /// exactly one branch per decision point). When attached, every packet
  /// gets a lifetime span under its flow span, every node visit a hop span,
  /// and every filter verdict a decision span, so downstream effects
  /// (ledger transfers, drops) are causally attributed.
  sim::SpanTracer* spans() noexcept { return spans_; }
  void set_spans(sim::SpanTracer* spans) noexcept { spans_ = spans; }

  /// Cross-shard access auditor, read through the owning simulator so a
  /// single Simulator::set_auditor call covers the whole topology. Null
  /// (the default) costs one pointer load + branch per instrumented
  /// mutation — the same contract as spans().
  sim::ShardAuditor* auditor() const noexcept { return sim_->auditor(); }

  /// Scale profiler, read through the owning simulator like the auditor.
  /// add_node/connect register actors and lookahead links with it, and
  /// Node::originate counts packet churn. Null (the default) costs one
  /// pointer load + branch per registration point.
  sim::ScaleProfiler* scale_profiler() const noexcept { return sim_->scale_profiler(); }

  /// Memory profiler, read through the owning simulator like the auditor.
  /// add_node/connect register actor footprints, the data plane records
  /// packet birth/death lifetimes, drop sites, link-queue occupancy, and
  /// FIB pointer-chase depth. Null (the default) costs one pointer load +
  /// branch per hook point.
  sim::MemProfiler* mem_profiler() const noexcept { return sim_->mem_profiler(); }

  /// Observers invoked on every successful local delivery, after the node's
  /// own handler. Scenarios use them for global accounting; several can
  /// coexist (a FlowTracker plus a scenario counter, say).
  using DeliveryObserver = std::function<void(const Packet&, NodeId at)>;
  /// Replaces all observers with one (legacy behaviour).
  void set_delivery_observer(DeliveryObserver obs) {
    observers_.clear();
    if (obs) observers_.push_back(std::move(obs));
  }
  void add_delivery_observer(DeliveryObserver obs) {
    if (obs) observers_.push_back(std::move(obs));
  }
  void notify_delivered(const Packet& p, NodeId at);

  /// All (neighbor, interface) pairs of a node — used by routing protocols.
  std::vector<std::pair<NodeId, IfIndex>> neighbors(NodeId n) const;

  /// §VI-A fault reporting: when enabled, a drop by a *disclosed* filter
  /// makes the dropping node send a control-plane error to the packet's
  /// source naming itself and the rule. Undisclosed filters stay silent
  /// either way. Off by default (it is a deployable mechanism, not a law
  /// of nature — which is rather the point).
  void enable_fault_reporting(bool on) noexcept { fault_reporting_ = on; }
  bool fault_reporting() const noexcept { return fault_reporting_; }

 private:
  sim::Simulator* sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  NetCounters counters_;
  PacketIdSource ids_;
  std::vector<DeliveryObserver> observers_;
  sim::Tracer* tracer_ = nullptr;
  sim::SpanTracer* spans_ = nullptr;
  bool fault_reporting_ = false;
};

}  // namespace tussle::net
