// Nodes: hosts and routers.
//
// A node is deliberately programmable at the points where the paper says
// tussle happens on the data path: an ordered chain of packet filters
// (firewalls, DPI boxes, pricing enforcers, government taps) runs on every
// packet, and each filter can accept, drop, or redirect. The filters are
// installed by whichever actor controls the node — who gets to install them
// is decided by the scenario, which is exactly the paper's point.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/forwarding.hpp"
#include "net/packet.hpp"
#include "sim/span.hpp"

namespace tussle::net {

class Network;

/// What a packet filter decided.
enum class FilterAction {
  kAccept,    ///< no objection; later filters still run
  kDrop,      ///< discard (counted, with reason)
  kRedirect,  ///< rewrite the destination and continue (e.g. SMTP capture)
  kBypass,    ///< affirmative permit: skip the REST of the filter chain
              ///< (negotiated pinholes, §V-B MIDCOM)
  kMirror,    ///< deliver a copy to a tap address and continue processing
              ///< (§VI-A: "the desire of third parties to observe a data
              ///< flow (e.g. wiretap) calls for data capture sites")
};

struct FilterDecision {
  FilterAction action = FilterAction::kAccept;
  std::optional<Address> redirect_to;  ///< required when action == kRedirect
  std::string reason;                  ///< for the visibility/disclosure machinery

  static FilterDecision accept() { return {}; }
  static FilterDecision drop(std::string why) {
    return FilterDecision{FilterAction::kDrop, std::nullopt, std::move(why)};
  }
  static FilterDecision redirect(Address to, std::string why) {
    return FilterDecision{FilterAction::kRedirect, to, std::move(why)};
  }
  static FilterDecision bypass(std::string why) {
    return FilterDecision{FilterAction::kBypass, std::nullopt, std::move(why)};
  }
  static FilterDecision mirror(Address tap, std::string why) {
    return FilterDecision{FilterAction::kMirror, tap, std::move(why)};
  }
};

/// An on-path packet inspector/controller.
struct PacketFilter {
  std::string name;      ///< identifies the controlling actor, for disclosure
  bool disclosed = true; ///< does the device reveal that it imposes limits? (§V-B)
  std::function<FilterDecision(const Packet&)> fn;
};

class Node {
 public:
  Node(Network& net, NodeId id, AsId as) : net_(&net), id_(id), as_(as) {}

  NodeId id() const noexcept { return id_; }
  AsId as() const noexcept { return as_; }

  void add_address(const Address& a);
  const std::vector<Address>& addresses() const noexcept { return addresses_; }
  bool owns(const Address& a) const;
  /// Replaces all addresses (renumbering when switching providers, E1).
  void renumber(std::vector<Address> addrs);

  /// Mutable FIB access is a state mutation of this node — route
  /// installation from another shard's handler is exactly the hazard the
  /// shard auditor exists to catch.
  ForwardingTable& forwarding();
  const ForwardingTable& forwarding() const noexcept { return fib_; }

  // --- tussle hooks -------------------------------------------------------
  void add_filter(PacketFilter f);
  bool remove_filter(const std::string& name);
  const std::vector<PacketFilter>& filters() const noexcept { return filters_; }
  /// The disclosure rule (§V-B): which filters admit their existence to an
  /// endpoint that asks. Undisclosed filters are invisible here.
  std::vector<std::string> disclosed_filter_names() const;

  /// Handler invoked when a packet addressed to this node arrives.
  using LocalHandler = std::function<void(const Packet&)>;
  void set_local_handler(LocalHandler h);

  // --- data path ----------------------------------------------------------
  /// Originates a packet from this node (stamps uid/send time, then routes).
  void originate(Packet p);

  /// Called by the attached link when a packet arrives on `iface`.
  void receive(Packet p, IfIndex iface);

  // --- wiring (used by Network) -------------------------------------------
  IfIndex attach_interface(std::uint32_t link_id) {
    iface_links_.push_back(link_id);
    return static_cast<IfIndex>(iface_links_.size() - 1);
  }
  std::uint32_t link_of(IfIndex iface) const { return iface_links_.at(static_cast<std::size_t>(iface)); }
  std::size_t interface_count() const noexcept { return iface_links_.size(); }

 private:
  /// Audits one mutation of this node's state (one null-pointer branch
  /// when no auditor is attached to the owning simulator).
  void audit_mutation(const char* what) const;
  void forward(Packet p);
  bool run_filters(const Packet& p, FilterDecision& out, bool& disclosed,
                   std::vector<Address>* taps, sim::SpanTracer* spans,
                   sim::SimTime now) const;

  Network* net_;
  NodeId id_ = 0;
  AsId as_ = 0;
  std::vector<Address> addresses_;
  ForwardingTable fib_;
  std::vector<PacketFilter> filters_;
  LocalHandler local_handler_;
  std::vector<std::uint32_t> iface_links_;
};

}  // namespace tussle::net
