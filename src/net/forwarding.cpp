#include "net/forwarding.hpp"

namespace tussle::net {

std::optional<IfIndex> ForwardingTable::lookup(const Address& a) const {
  if (auto it = prefixes_.find(prefix_of(a)); it != prefixes_.end()) return it->second;
  if (!a.portable) {
    if (auto it = as_routes_.find(a.provider); it != as_routes_.end()) return it->second;
  }
  if (default_ != kNoIface) return default_;
  return std::nullopt;
}

std::optional<IfIndex> ForwardingTable::lookup_as(AsId as) const {
  if (auto it = as_routes_.find(as); it != as_routes_.end()) return it->second;
  if (default_ != kNoIface) return default_;
  return std::nullopt;
}

}  // namespace tussle::net
