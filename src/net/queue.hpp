// Output-queue disciplines.
//
// The QoS experiments need at least two schedulers: plain drop-tail FIFO
// (the classless Internet) and a class-aware scheduler that actually honours
// the ToS bits (strict priority plus a weighted variant so "assured" cannot
// be starved). The choice of discipline is itself a tussle knob: an ISP
// that deploys QoS switches its routers from FIFO to one of these.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "net/packet.hpp"

namespace tussle::net {

/// Abstract output queue. Implementations are FIFO within a traffic class.
class Queue {
 public:
  virtual ~Queue() = default;

  /// Returns false if the packet was dropped (queue full).
  virtual bool enqueue(Packet p) = 0;
  virtual std::optional<Packet> dequeue() = 0;
  virtual std::size_t packets() const noexcept = 0;
  virtual std::uint64_t bytes() const noexcept = 0;
  bool empty() const noexcept { return packets() == 0; }

  std::uint64_t drops() const noexcept { return drops_; }

 protected:
  std::uint64_t drops_ = 0;
};

/// Classic drop-tail FIFO bounded by packet count.
class DropTailQueue final : public Queue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets) : capacity_(capacity_packets) {}

  bool enqueue(Packet p) override;
  std::optional<Packet> dequeue() override;
  std::size_t packets() const noexcept override { return q_.size(); }
  std::uint64_t bytes() const noexcept override { return bytes_; }
  /// Size of the head-of-line packet, if any (used by DRR scheduling).
  std::optional<std::uint32_t> head_size() const noexcept {
    if (q_.empty()) return std::nullopt;
    return q_.front().size_bytes;
  }

 private:
  std::size_t capacity_ = 0;
  std::deque<Packet> q_;
  std::uint64_t bytes_ = 0;
};

/// Strict-priority scheduler over the three service classes. Premium is
/// always served first; within a class, FIFO. Each class has its own
/// drop-tail bound so best-effort bursts cannot push out premium traffic.
class PriorityQueue final : public Queue {
 public:
  explicit PriorityQueue(std::size_t per_class_capacity);

  bool enqueue(Packet p) override;
  std::optional<Packet> dequeue() override;
  std::size_t packets() const noexcept override;
  std::uint64_t bytes() const noexcept override;

  std::uint64_t class_drops(ServiceClass c) const noexcept {
    return class_drops_[static_cast<std::size_t>(c)];
  }

 private:
  std::array<DropTailQueue, 3> classes_;
  std::array<std::uint64_t, 3> class_drops_{};
};

/// Deficit-round-robin scheduler: classes share bandwidth in proportion to
/// their weights, so lower classes degrade gracefully instead of starving.
class DrrQueue final : public Queue {
 public:
  /// `weights` are relative shares for {best-effort, assured, premium}.
  DrrQueue(std::size_t per_class_capacity, std::array<double, 3> weights);

  bool enqueue(Packet p) override;
  std::optional<Packet> dequeue() override;
  std::size_t packets() const noexcept override;
  std::uint64_t bytes() const noexcept override;

 private:
  void advance_round() noexcept;

  static constexpr std::uint32_t kQuantumBase = 1500;
  std::array<DropTailQueue, 3> classes_;
  std::array<double, 3> weights_;
  std::array<double, 3> deficit_{};
  std::array<bool, 3> fresh_visit_{true, true, true};
  std::size_t round_ = 0;
};

/// Factory selecting the discipline by name; used by scenario configs.
enum class QueueKind { kDropTail, kPriority, kDrr };
std::unique_ptr<Queue> make_queue(QueueKind kind, std::size_t capacity);

}  // namespace tussle::net
