#include "net/flow_stats.hpp"

namespace tussle::net {

FlowTracker::FlowTracker(Network& net) {
  net.add_delivery_observer([this, &net](const Packet& p, NodeId) {
    PerFlow& f = flows_[p.flow];
    f.packets += 1;
    f.bytes += p.size_bytes;
    const double latency = net.simulator().now().as_seconds() - p.sent_at_s;
    f.latency.observe(latency);
    per_class_[static_cast<std::size_t>(p.tos)].observe(latency);
  });
}

std::uint64_t FlowTracker::delivered(FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.packets;
}

std::uint64_t FlowTracker::delivered_bytes(FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.bytes;
}

const sim::Summary& FlowTracker::latency_s(FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? empty_ : it->second.latency;
}

}  // namespace tussle::net
