#include "net/address.hpp"

#include <cstdio>

namespace tussle::net {

std::string Address::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%u.%u.%u", portable ? "pi:" : "", provider, subscriber,
                host);
  return buf;
}

std::string Prefix::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%u.%u/*", portable ? "pi:" : "", provider, subscriber);
  return buf;
}

}  // namespace tussle::net
