#include "net/packet.hpp"

namespace tussle::net {

std::string to_string(ServiceClass c) {
  switch (c) {
    case ServiceClass::kBestEffort: return "best-effort";
    case ServiceClass::kAssured: return "assured";
    case ServiceClass::kPremium: return "premium";
  }
  return "?";
}

std::string to_string(AppProto p) {
  switch (p) {
    case AppProto::kUnknown: return "unknown";
    case AppProto::kWeb: return "web";
    case AppProto::kMail: return "mail";
    case AppProto::kVoip: return "voip";
    case AppProto::kP2p: return "p2p";
    case AppProto::kDns: return "dns";
    case AppProto::kVpn: return "vpn";
    case AppProto::kControl: return "control";
  }
  return "?";
}

Packet Packet::encapsulate(Address tunnel_src, Address gateway) const {
  Packet outer;
  outer.src = tunnel_src;
  outer.dst = gateway;
  outer.tos = tos;  // outer keeps the service class so QoS still works
  outer.proto = AppProto::kVpn;
  outer.size_bytes = size_bytes + 40;  // encapsulation overhead
  outer.ttl = ttl;
  outer.flow = flow;
  outer.encrypted = false;  // the tunnel itself is visible; contents are not
  outer.inner = std::make_shared<Packet>(*this);
  outer.uid = uid;
  outer.sent_at_s = sent_at_s;
  return outer;
}

std::optional<Packet> Packet::decapsulate() const {
  if (!inner) return std::nullopt;
  Packet p = *inner;
  p.sent_at_s = sent_at_s;  // latency is end-to-end across the tunnel
  // The unwrapped packet continues the same journey: keep the wire uid so
  // tracing (and the span registry keyed on it) follows one identity
  // end-to-end. Inner packets encapsulated before origination have uid 0.
  if (p.uid == 0) p.uid = uid;
  return p;
}

}  // namespace tussle::net
