// The self-describing datagram.
//
// Everything a middlebox could possibly peek at is an explicit header field,
// because "peeking is irresistible" (§VI-A): the simulator's firewalls, DPI
// boxes and value-pricing enforcers read exactly these fields, and
// end-to-end encryption works by making the application-visible ones opaque.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"

namespace tussle::net {

/// Differentiated-service class carried in the ToS bits. Deliberately a
/// separate dimension from the application type (§IV-A: binding QoS to
/// port numbers would entangle the QoS tussle with the what-may-I-run
/// tussle).
enum class ServiceClass : std::uint8_t {
  kBestEffort = 0,
  kAssured = 1,   ///< better-than-best-effort, paper's diffserv analogue
  kPremium = 2,   ///< low-latency class (VoIP-grade)
};

std::string to_string(ServiceClass c);

/// Application protocol tag — what a DPI box sees if the packet is not
/// encrypted. Plays the role of the port number.
enum class AppProto : std::uint8_t {
  kUnknown = 0,
  kWeb,
  kMail,
  kVoip,
  kP2p,
  kDns,
  kVpn,      ///< tunnel framing; inner traffic invisible
  kControl,  ///< routing / signalling
};

std::string to_string(AppProto p);

/// A provider-level loose source route: the list of ASes the sender asks
/// the network to traverse, in order (§V-A-4).
struct SourceRoute {
  std::vector<AsId> hops;
  std::size_t next = 0;  ///< index of the next unvisited hop

  bool exhausted() const noexcept { return next >= hops.size(); }
  std::optional<AsId> next_hop() const noexcept {
    return exhausted() ? std::nullopt : std::optional<AsId>(hops[next]);
  }
};

/// One simulated datagram.
///
/// Copyable value type; tunnelled payloads are shared (a tunnel decap and
/// the encapsulating packet may both be alive momentarily).
struct Packet {
  // --- addressing ---
  Address src;
  Address dst;

  // --- self-description ---
  ServiceClass tos = ServiceClass::kBestEffort;
  AppProto proto = AppProto::kUnknown;
  std::uint32_t size_bytes = 1000;
  std::uint8_t ttl = 64;
  FlowId flow = 0;

  // --- end-to-end security ---
  /// End-to-end encrypted: on-path boxes can see src/dst/tos/size but not
  /// the application protocol or payload tag.
  bool encrypted = false;
  /// Steganographic: the real content hides inside an innocent-looking
  /// cover protocol (fn.17's "next step in this sort of escalation").
  /// Unlike encryption, hiding is NOT visible: observable_proto() returns
  /// the cover and visibly_opaque() stays false. On-path boxes can only
  /// guess statistically (see apps::make_stego_detector).
  bool steganographic = false;
  /// The protocol actually being carried when steganographic is set.
  AppProto covert_proto = AppProto::kUnknown;

  // --- options ---
  std::optional<SourceRoute> source_route;
  /// Encapsulated inner packet (tunnel / VPN). Outer proto should be kVpn.
  std::shared_ptr<const Packet> inner;

  // --- bookkeeping (not "on the wire") ---
  std::uint64_t uid = 0;           ///< unique packet id for tracing
  double sent_at_s = 0;            ///< stamped by the sender, for latency stats
  std::string payload_tag;         ///< free-form content label for apps

  /// What an on-path observer can tell about the application. Encryption
  /// collapses everything to kUnknown; a VPN tunnel shows only kVpn.
  AppProto observable_proto() const noexcept {
    if (encrypted) return AppProto::kUnknown;
    return proto;
  }

  /// True when an observer can positively detect that the sender is hiding
  /// the payload (the paper: "if you are trying to act in an anonymous way,
  /// it should be hard to disguise this fact").
  bool visibly_opaque() const noexcept { return encrypted || proto == AppProto::kVpn; }

  /// Builds a tunnel packet that carries this one to `gateway`.
  Packet encapsulate(Address tunnel_src, Address gateway) const;

  /// Unwraps one layer of tunnelling. Returns nullopt if not a tunnel.
  std::optional<Packet> decapsulate() const;
};

/// Source of unique packet ids (monotone per simulation). Under sharded
/// execution each owner draws from its own namespaced lane (see
/// set_namespace), so ids stay unique and per-owner deterministic at any
/// shard count.
class PacketIdSource {
 public:
  std::uint64_t next() noexcept { return ns_ | ++last_; }

  /// Partitions the id space: ids become `ns | counter`. The sharded
  /// backend's per-owner lanes use (owner + 1) << 40, matching the event-id
  /// scheme; the base source keeps namespace 0, so serial runs are
  /// unchanged.
  void set_namespace(std::uint64_t ns) noexcept { ns_ = ns; }

 private:
  std::uint64_t ns_ = 0;
  std::uint64_t last_ = 0;
};

}  // namespace tussle::net
