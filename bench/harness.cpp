#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "core/report.hpp"
#include "sim/json.hpp"
#include "sim/timeseries.hpp"

namespace tussle::bench {

namespace {

struct Flags {
  std::string json_path;
  std::string trace_path;
  std::string chrome_trace_path;
  std::string span_tree_path;
  std::optional<std::uint64_t> explain_flow;
  sim::TraceLevel trace_level = sim::TraceLevel::kInfo;
  bool profile = false;
  double heartbeat_seconds = 0;
  double timeseries_seconds = 0;
  std::string ts_csv_path;
  std::string ts_json_path;
  std::string dashboard_path;
  bool audit = false;
  std::string audit_json_path;
  bool scale = false;
  std::string scale_json_path;
  std::string scale_dashboard_path;
  bool exec = false;
  std::string exec_json_path;
  std::string exec_trace_path;
  std::string exec_dashboard_path;
  bool mem = false;
  std::string mem_json_path;
  std::string mem_dashboard_path;
  bool list = false;
  std::string case_filter;
  // Parallelism/reproducibility knobs stay unset here; ParallelOptions
  // applies the flag > environment > default ladder in one place.
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> jobs;
  std::optional<std::size_t> replicas;
  std::optional<std::size_t> shards;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--case <name>] [--replicas <n>] [--seed <s>]\n"
               "          [--jobs <n>] [--shards <k>] [--json <path>] [--trace <path>]\n"
               "          [--trace-level debug|info|warn|error] [--profile]\n"
               "          [--heartbeat <seconds>] [--chrome-trace <path>]\n"
               "          [--span-tree <path>|-] [--explain <flow-id>]\n"
               "          [--timeseries <seconds>] [--ts-csv <path>]\n"
               "          [--ts-json <path>] [--dashboard <path>]\n"
               "          [--audit] [--audit-json <path>] [--scale-profile]\n"
               "          [--scale-json <path>] [--scale-dashboard <path>]\n"
               "          [--exec-profile] [--exec-json <path>]\n"
               "          [--exec-trace <path>] [--exec-dashboard <path>]\n"
               "          [--mem-profile] [--mem-json <path>]\n"
               "          [--mem-dashboard <path>]\n",
               argv0);
}

std::optional<sim::TraceLevel> parse_level(const std::string& s) {
  if (s == "debug") return sim::TraceLevel::kDebug;
  if (s == "info") return sim::TraceLevel::kInfo;
  if (s == "warn") return sim::TraceLevel::kWarn;
  if (s == "error") return sim::TraceLevel::kError;
  return std::nullopt;
}

std::optional<Flags> parse_flags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--json") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.json_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.trace_path = v;
    } else if (arg == "--trace-level") {
      const char* v = next();
      if (!v) return std::nullopt;
      auto lvl = parse_level(v);
      if (!lvl) return std::nullopt;
      f.trace_level = *lvl;
    } else if (arg == "--chrome-trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.chrome_trace_path = v;
    } else if (arg == "--span-tree") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.span_tree_path = v;
    } else if (arg == "--explain") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.explain_flow = std::strtoull(v, nullptr, 10);
    } else if (arg == "--timeseries") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.timeseries_seconds = std::atof(v);
      if (f.timeseries_seconds <= 0) return std::nullopt;
    } else if (arg == "--ts-csv") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.ts_csv_path = v;
    } else if (arg == "--ts-json") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.ts_json_path = v;
    } else if (arg == "--dashboard") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.dashboard_path = v;
    } else if (arg == "--audit") {
      f.audit = true;
    } else if (arg == "--audit-json") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.audit_json_path = v;
      f.audit = true;
    } else if (arg == "--scale-profile") {
      f.scale = true;
    } else if (arg == "--scale-json") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.scale_json_path = v;
      f.scale = true;
    } else if (arg == "--scale-dashboard") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.scale_dashboard_path = v;
      f.scale = true;
    } else if (arg == "--exec-profile") {
      f.exec = true;
    } else if (arg == "--exec-json") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.exec_json_path = v;
      f.exec = true;
    } else if (arg == "--exec-trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.exec_trace_path = v;
      f.exec = true;
    } else if (arg == "--exec-dashboard") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.exec_dashboard_path = v;
      f.exec = true;
    } else if (arg == "--mem-profile") {
      f.mem = true;
    } else if (arg == "--mem-json") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.mem_json_path = v;
      f.mem = true;
    } else if (arg == "--mem-dashboard") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.mem_dashboard_path = v;
      f.mem = true;
    } else if (arg == "--profile") {
      f.profile = true;
    } else if (arg == "--heartbeat") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.heartbeat_seconds = std::atof(v);
      if (f.heartbeat_seconds <= 0) return std::nullopt;
    } else if (arg == "--list") {
      f.list = true;
    } else if (arg == "--case") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.case_filter = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      f.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return std::nullopt;
      const long n = std::atol(v);
      if (n <= 0) return std::nullopt;
      f.jobs = static_cast<std::size_t>(n);
    } else if (arg == "--replicas") {
      const char* v = next();
      if (!v) return std::nullopt;
      const long n = std::atol(v);
      if (n < 0) return std::nullopt;
      f.replicas = static_cast<std::size_t>(n);
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return std::nullopt;
      const long n = std::atol(v);
      if (n < 0) return std::nullopt;
      f.shards = static_cast<std::size_t>(n);
    } else {
      return std::nullopt;
    }
  }
  return f;
}

void write_json_report(const std::string& path, const Experiment& exp,
                       const sim::MetricSnapshot& snap, std::uint64_t total_events,
                       double wall_seconds, const std::string& hotspots_json) {
  sim::JsonWriter w;
  w.begin_object();
  w.key("experiment").begin_object();
  w.key("id").value(exp.id);
  w.key("section").value(exp.section);
  w.end_object();
  w.key("wall_seconds").value(wall_seconds);
  w.key("total_events").value(total_events);
  // Sim-less model benches legitimately dispatch zero events; null marks
  // them explicitly so tooling never mistakes "no simulator" for "zero
  // throughput" (bench_compare skips throughput gating on null).
  if (total_events > 0) {
    w.key("sim_events").value(total_events);
    w.key("events_per_sec")
        .value(wall_seconds > 0 ? static_cast<double>(total_events) / wall_seconds : 0.0);
  } else {
    w.key("sim_events").null();
    w.key("events_per_sec").null();
  }
  w.key("metrics").raw(snap.to_json());
  w.key("hotspots").raw(hotspots_json);
  w.end_object();

  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "harness: cannot write %s\n", path.c_str());
    return;
  }
  os << w.str() << "\n";
}

}  // namespace

core::SweepResult Harness::scenario(const core::ScenarioSpec& spec, const Render& render) {
  cases_.push_back({spec.name, spec.description});
  if (list_) return {};
  if (!case_filter_.empty() && case_filter_ != spec.name) return {};
  case_matched_ = true;

  core::SweepOptions opts;
  opts.base_seed = parallel_.seed;
  opts.jobs = parallel_.sweep_jobs(serial_required_);
  opts.replicas = parallel_.replicas;
  opts.profile = profile_to_stderr_ || json_requested();
  opts.spans = spans_requested_;
  opts.heartbeat_seconds = heartbeat_seconds_;
  opts.timeseries_seconds = timeseries_seconds_;
  opts.audit = audit_requested_;
  opts.scale = scale_requested_;
  opts.exec = exec_requested_;
  opts.mem = mem_requested_;
  // Trace/span collection assumes the serial backend's single dispatch
  // thread and forces the sharded backend off; --heartbeat does not (the
  // sharded coordinator ticks it between barrier windows).
  opts.shards = parallel_.run_shards(shards_blocked_);

  core::SweepResult result = core::run_sweep(spec, opts);

  sweep_events_ += result.total_events();
  for (const auto& r : result.runs) {
    if (r.profiler) profiler_.merge(*r.profiler);
    // runs are in run-index order whatever --jobs was, so the merged span
    // archive (and every export derived from it) is schedule-independent.
    if (r.spans) spans_.merge(*r.spans);
    if (r.audit) audit_.merge(*r.audit);
    if (r.scale) scale_.merge(*r.scale);
    if (r.exec) exec_.merge(*r.exec);
    if (r.mem) mem_.merge(*r.mem);
    if (r.timeseries && !r.timeseries->store().empty()) {
      std::string prefix = spec.name;
      const std::string label = result.points[r.point_index].label();
      if (!label.empty()) prefix += "." + label;
      if (result.replicas > 1) prefix += ".r" + std::to_string(r.replica);
      timeseries_.merge_prefixed(prefix + ".", r.timeseries->store());
    }
  }
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    std::string prefix = spec.name;
    const std::string label = result.points[p].label();
    if (!label.empty()) prefix += "." + label;
    const sim::MetricSet agg = result.aggregate(p);
    for (const auto& [key, value] : agg.items()) {
      metrics_.gauge(prefix + "." + key, value);
    }
  }
  if (render) render(result);
  return result;
}

int run(int argc, char** argv, const Experiment& exp,
        const std::function<void(Harness&)>& body) {
  auto flags = parse_flags(argc, argv);
  if (!flags) {
    usage(argv[0]);
    return 2;
  }

  Harness h;
  h.json_path_ = flags->json_path;
  h.profile_to_stderr_ = flags->profile;
  h.heartbeat_seconds_ = flags->heartbeat_seconds;
  h.list_ = flags->list;
  h.case_filter_ = flags->case_filter;
  h.parallel_ =
      ParallelOptions::resolve(flags->seed, flags->jobs, flags->replicas, flags->shards);
  h.audit_requested_ = flags->audit;
  if (const char* env = std::getenv("TUSSLE_AUDIT")) {
    if (*env != '\0' && std::string(env) != "0") h.audit_requested_ = true;
  }
  h.scale_requested_ = flags->scale;
  h.exec_requested_ = flags->exec;
  h.mem_requested_ = flags->mem;
  h.spans_requested_ = !flags->chrome_trace_path.empty() || !flags->span_tree_path.empty() ||
                       flags->explain_flow.has_value();
  // An export flag without an explicit interval still needs samples.
  h.timeseries_seconds_ = flags->timeseries_seconds;
  if (h.timeseries_seconds_ <= 0 &&
      (!flags->ts_csv_path.empty() || !flags->ts_json_path.empty() ||
       !flags->dashboard_path.empty())) {
    h.timeseries_seconds_ = 0.02;
  }
  // The global tracer and the heartbeat's stderr stream are shared sinks;
  // concurrent runs would interleave their writes, so either forces
  // --jobs 1. Only trace/span collection additionally forces the serial
  // *backend* — the sharded coordinator ticks the heartbeat itself.
  h.serial_required_ = !flags->trace_path.empty() || flags->heartbeat_seconds > 0;
  h.shards_blocked_ = !flags->trace_path.empty() || h.spans_requested_;
  if (h.parallel_.shards > 0 && h.shards_blocked_) {
    std::fprintf(stderr,
                 "harness: --shards ignored: --trace/span flags need the serial "
                 "backend\n");
  }

  if (h.list_) {
    // Declaration pass only: scenario() records names without running.
    body(h);
    for (const auto& c : h.cases_) {
      std::printf("%-28s %s\n", c.name.c_str(), c.description.c_str());
    }
    return 0;
  }

  // JSONL trace sink on the global tracer: every subsystem that emits to
  // the default tracer lands in the file, whatever Network or module the
  // bench wires up.
  std::ofstream trace_os;
  if (!flags->trace_path.empty()) {
    trace_os.open(flags->trace_path);
    if (!trace_os) {
      std::fprintf(stderr, "harness: cannot write %s\n", flags->trace_path.c_str());
      return 2;
    }
    auto& tracer = sim::Tracer::global();
    tracer.enable(true);
    tracer.set_level(flags->trace_level);
    tracer.set_sink(sim::make_jsonl_sink(trace_os));
  }

  core::print_experiment_header(std::cout, exp.id, exp.section, exp.claim);

  const double wall_start = sim::wall_now_seconds();
  try {
    body(h);
  } catch (const sim::ShardViolation& v) {
    // Fail fast with the causal report: which component, owned by which
    // shard, was mutated from which shard, inside which event. The audit
    // report is still written so CI can collect it; tallies from sweep
    // slots that had not merged when the violation fired are absent, but
    // the violation itself is guaranteed present.
    std::fprintf(stderr, "%s\n", v.what());
    if (!flags->audit_json_path.empty()) {
      h.audit_.record_violation(v.access());
      std::ofstream os(flags->audit_json_path);
      if (os) os << h.audit_.report_json() << "\n";
    }
    return 1;
  }
  const double wall_seconds = sim::wall_now_seconds() - wall_start;

  if (!flags->trace_path.empty()) {
    auto& tracer = sim::Tracer::global();
    tracer.set_sink(nullptr);
    tracer.enable(false);
  }

  if (!h.case_filter_.empty() && !h.case_matched_) {
    std::fprintf(stderr, "%s: no case named '%s'; available:\n", argv[0],
                 h.case_filter_.c_str());
    for (const auto& c : h.cases_) std::fprintf(stderr, "  %s\n", c.name.c_str());
    return 2;
  }

  const std::uint64_t total_events = h.sweep_events_ + h.extra_events_;

  if (!flags->chrome_trace_path.empty()) {
    std::ofstream os(flags->chrome_trace_path);
    if (!os) {
      std::fprintf(stderr, "harness: cannot write %s\n", flags->chrome_trace_path.c_str());
      return 2;
    }
    os << sim::to_chrome_trace(h.spans_.spans()) << "\n";
    std::printf("chrome trace: %zu spans -> %s\n", h.spans_.size(),
                flags->chrome_trace_path.c_str());
  }

  if (!flags->span_tree_path.empty()) {
    const std::string report = sim::span_tree_report(h.spans_.spans());
    if (flags->span_tree_path == "-") {
      std::fputs(report.c_str(), stdout);
    } else {
      std::ofstream os(flags->span_tree_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n", flags->span_tree_path.c_str());
        return 2;
      }
      os << report;
    }
  }

  if (flags->explain_flow) {
    std::fputs(sim::explain_flow(h.spans_.spans(), *flags->explain_flow).c_str(), stdout);
  }

  if (h.timeseries_requested()) {
    std::size_t samples = 0;
    for (const auto& [name, ts] : h.timeseries_.items()) samples += ts.size();
    auto write_file = [](const std::string& path, const std::string& content) {
      std::ofstream os(path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n", path.c_str());
        return false;
      }
      os << content;
      return true;
    };
    if (!flags->ts_csv_path.empty() &&
        !write_file(flags->ts_csv_path, h.timeseries_.to_csv())) {
      return 2;
    }
    if (!flags->ts_json_path.empty() &&
        !write_file(flags->ts_json_path, h.timeseries_.to_json() + "\n")) {
      return 2;
    }
    if (!flags->dashboard_path.empty() &&
        !write_file(flags->dashboard_path,
                    sim::timeseries_dashboard(h.timeseries_, exp.id + " \xc2\xb7 " +
                                                                 exp.section))) {
      return 2;
    }
    std::printf("time series: %zu series, %zu samples\n", h.timeseries_.size(), samples);
  }

  if (h.audit_requested_) {
    std::printf("shard audit: %zu events, %zu mutations checked, %zu components, "
                "%zu shards, %zu violations\n",
                h.audit_.events_audited(), h.audit_.mutations_checked(),
                h.audit_.component_count(), h.audit_.shard_count(),
                h.audit_.violations().size());
    if (!flags->audit_json_path.empty()) {
      std::ofstream os(flags->audit_json_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n", flags->audit_json_path.c_str());
        return 2;
      }
      os << h.audit_.report_json() << "\n";
    }
    if (!h.audit_.violations().empty()) {
      std::fprintf(stderr, "%s\n", h.audit_.describe(h.audit_.violations().front()).c_str());
      return 1;
    }
  }

  if (h.scale_requested_) {
    std::size_t real_shards = 0;
    for (const auto& [shard, n] : h.scale_.shard_events()) {
      (void)n;
      if (shard != sim::kNoShard && shard != sim::kSharedShard) ++real_shards;
    }
    std::printf("scale profile: %llu events over %llu runs, critical path %llu "
                "(work/span %.1f), %zu shards, imbalance %.2f, cross-shard %llu, "
                "speedup(k=8) %.2f\n",
                static_cast<unsigned long long>(h.scale_.work()),
                static_cast<unsigned long long>(h.scale_.runs()),
                static_cast<unsigned long long>(h.scale_.critical_path_length()),
                h.scale_.work_span_ratio(), real_shards, h.scale_.imbalance_ratio(),
                static_cast<unsigned long long>(h.scale_.cross_shard_events()),
                h.scale_.speedup_at(8));
    if (!flags->scale_json_path.empty()) {
      sim::JsonWriter w;
      w.begin_object();
      w.key("experiment").begin_object();
      w.key("id").value(exp.id);
      w.key("section").value(exp.section);
      w.end_object();
      w.key("scale").raw(h.scale_.report_json());
      w.end_object();
      std::ofstream os(flags->scale_json_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n", flags->scale_json_path.c_str());
        return 2;
      }
      os << w.str() << "\n";
    }
    if (!flags->scale_dashboard_path.empty()) {
      std::ofstream os(flags->scale_dashboard_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n",
                     flags->scale_dashboard_path.c_str());
        return 2;
      }
      os << sim::scale_dashboard(h.scale_, exp.id + " \xc2\xb7 " + exp.section);
    }
  }

  if (h.exec_requested_) {
    // Wall-clock observability: these numbers (and the files below) are
    // expected to differ run to run — they are exempt from the
    // byte-identity contract and never fold into the .metrics object.
    const sim::ExecProfiler::Validation val = h.exec_.validate();
    std::printf("exec profile: %zu runs, %zu windows, %zu workers, wall %.3fs, "
                "speedup %.2f measured / %.2f predicted, barrier overhead %.1f%%, "
                "dominant loss %s\n",
                h.exec_.runs(), h.exec_.windows(), val.workers,
                h.exec_.elapsed_seconds(), val.measured_speedup, val.predicted_speedup,
                val.barrier_overhead_fraction * 100, val.dominant_loss);
    if (!flags->exec_json_path.empty()) {
      sim::JsonWriter w;
      w.begin_object();
      w.key("experiment").begin_object();
      w.key("id").value(exp.id);
      w.key("section").value(exp.section);
      w.end_object();
      w.key("exec").raw(h.exec_.report_json());
      w.end_object();
      std::ofstream os(flags->exec_json_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n", flags->exec_json_path.c_str());
        return 2;
      }
      os << w.str() << "\n";
    }
    if (!flags->exec_trace_path.empty()) {
      std::ofstream os(flags->exec_trace_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n", flags->exec_trace_path.c_str());
        return 2;
      }
      os << sim::exec_chrome_trace(h.exec_) << "\n";
      std::printf("exec trace: %zu runs -> %s\n", h.exec_.runs(),
                  flags->exec_trace_path.c_str());
    }
    if (!flags->exec_dashboard_path.empty()) {
      std::ofstream os(flags->exec_dashboard_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n",
                     flags->exec_dashboard_path.c_str());
        return 2;
      }
      os << sim::exec_dashboard(h.exec_, exp.id + " \xc2\xb7 " + exp.section);
    }
  }

  if (h.mem_requested_) {
    std::printf("mem profile: %llu events over %llu runs, peak %lld bytes "
                "(%.1f/actor over %llu actors), %llu allocs (%.2f/event), "
                "%zu sites\n",
                static_cast<unsigned long long>(h.mem_.work()),
                static_cast<unsigned long long>(h.mem_.runs()),
                static_cast<long long>(h.mem_.peak_live_bytes()),
                h.mem_.live_bytes_per_actor(),
                static_cast<unsigned long long>(h.mem_.actor_count()),
                static_cast<unsigned long long>(h.mem_.alloc_count()),
                h.mem_.allocs_per_event(), h.mem_.sites().size());
    if (!flags->mem_json_path.empty()) {
      sim::JsonWriter w;
      w.begin_object();
      w.key("experiment").begin_object();
      w.key("id").value(exp.id);
      w.key("section").value(exp.section);
      w.end_object();
      w.key("mem").raw(h.mem_.report_json());
      w.end_object();
      std::ofstream os(flags->mem_json_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n", flags->mem_json_path.c_str());
        return 2;
      }
      os << w.str() << "\n";
    }
    if (!flags->mem_dashboard_path.empty()) {
      std::ofstream os(flags->mem_dashboard_path);
      if (!os) {
        std::fprintf(stderr, "harness: cannot write %s\n",
                     flags->mem_dashboard_path.c_str());
        return 2;
      }
      os << sim::mem_dashboard(h.mem_, exp.id + " \xc2\xb7 " + exp.section);
    }
  }

  if (flags->profile) {
    std::fprintf(stderr, "\nEvent-loop hotspots (%llu events, %.3f ms profiled)\n%s",
                 static_cast<unsigned long long>(h.profiler_.total_events()),
                 h.profiler_.total_wall_seconds() * 1e3, h.profiler_.report().c_str());
  }

  if (!flags->json_path.empty()) {
    write_json_report(flags->json_path, exp, h.metrics_.snapshot(), total_events,
                      wall_seconds, h.profiler_.hotspots_json());
  }
  return 0;
}

}  // namespace tussle::bench
