// Unified resolution of the parallelism / reproducibility knobs every
// experiment binary shares. Each knob resolves flag > environment > default,
// in one place — previously --seed, --jobs, and --replicas each had an
// ad-hoc code path (and only --jobs consulted its environment variable):
//
//   knob        flag         environment       default
//   seed        --seed       TUSSLE_SEED       1
//   jobs        --jobs       TUSSLE_JOBS       0 = auto (hardware threads)
//   replicas    --replicas   TUSSLE_REPLICAS   0 = keep each spec's count
//   shards      --shards     TUSSLE_SHARDS     0 = serial backend
//
// `jobs` is across-run parallelism (sweep worker threads); `shards` is
// in-run parallelism (the sharded execution backend's worker threads, see
// sim/sharded_backend.hpp). The two multiply, so sweep_jobs() resolves
// them together instead of letting a k-sharded simulator times an
// auto-sized pool oversubscribe the machine.
#pragma once

#include <cstdint>
#include <optional>

namespace tussle::bench {

struct ParallelOptions {
  std::uint64_t seed = 1;
  std::size_t jobs = 0;      ///< 0 = auto-size to the machine at sweep time
  std::size_t replicas = 0;  ///< 0 = keep each ScenarioSpec's own count
  std::size_t shards = 0;    ///< 0 = serial execution backend

  /// Applies the flag > environment > default ladder. Pass nullopt for any
  /// flag the command line did not set. Environment values must be positive
  /// integers; anything else is ignored (the default stands).
  static ParallelOptions resolve(std::optional<std::uint64_t> seed_flag,
                                 std::optional<std::size_t> jobs_flag,
                                 std::optional<std::size_t> replicas_flag,
                                 std::optional<std::size_t> shards_flag);

  /// Sweep worker threads to request, given whether a serial-only sink
  /// (--trace's shared file, --heartbeat's stderr stream) is active:
  /// serial sinks force 1; otherwise an *auto* jobs request combined with
  /// in-run sharding resolves to 1 (each run's k shard workers already
  /// fill the machine), while an explicit --jobs always wins.
  std::size_t sweep_jobs(bool serial_sinks) const noexcept;

  /// In-run shard count to request, given whether serial-only
  /// instrumentation (trace or span collection, which assume the serial
  /// backend's single dispatch thread) is active: that forces 0 (serial
  /// backend); otherwise the resolved shards value. Heartbeats do NOT
  /// block sharding — the sharded coordinator ticks them between barrier
  /// windows (they still force --jobs 1 via sweep_jobs, a shared stderr
  /// stream).
  std::size_t run_shards(bool serial_only_instrumentation) const noexcept;
};

}  // namespace tussle::bench
