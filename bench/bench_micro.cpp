// Micro-benchmarks: engine and substrate throughput.
//
// Not a paper table — the systems-performance numbers a release ships with
// so users can size their experiments.
#include <benchmark/benchmark.h>

#include "core/tussle.hpp"

using namespace tussle;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(sim::SimTime::nanos(static_cast<std::int64_t>((i * 2654435761u) % 1000000)),
             [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int sink = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule(sim::Duration::micros(i), [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_PacketForwardingLine(benchmark::State& state) {
  const auto hops = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    net::LinkSpec spec;
    spec.bandwidth_bps = 1e12;  // effectively free links: measure CPU path
    spec.propagation = sim::Duration::nanos(1);
    auto ids = net::build_line(net, hops, 1, spec);
    net::Address dst{.provider = 1, .subscriber = 9, .host = 9};
    net.node(ids.back()).add_address(dst);
    for (auto id : ids) net.node(id).forwarding().set_default_route(
        id == ids.front() ? 0 : static_cast<net::IfIndex>(net.node(id).interface_count() - 1));
    for (int i = 0; i < 100; ++i) {
      net::Packet p;
      p.dst = dst;
      p.ttl = 255;
      net.node(ids.front()).originate(std::move(p));
    }
    sim.run();
    benchmark::DoNotOptimize(net.counters().delivered.value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_PacketForwardingLine)->Arg(8)->Arg(32);

void BM_PolicyEval(benchmark::State& state) {
  auto onto = policy::standard_packet_ontology();
  auto expr = policy::Expr::compile(
      "proto == 'p2p' or (size > 1200 and tos == 'premium') or opaque", onto);
  net::Packet p;
  p.proto = net::AppProto::kWeb;
  p.size_bytes = 1400;
  p.tos = net::ServiceClass::kPremium;
  auto ctx = policy::context_for_packet(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.test(ctx));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PolicyEval);

void BM_PolicyCompile(benchmark::State& state) {
  auto onto = policy::standard_packet_ontology();
  for (auto _ : state) {
    auto e = policy::Expr::compile("proto in ['p2p','vpn'] and size > 100 and not opaque",
                                   onto);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_PolicyCompile);

void BM_DijkstraSpf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::Network net(sim);
  sim::Rng rng(1);
  auto ids = net::build_random(net, n, 1, rng, 0.3, 0.3, net::LinkSpec{});
  routing::LinkState ls(net);
  for (auto _ : state) {
    auto tree = ls.spf(ids[0]);
    benchmark::DoNotOptimize(tree.dist.size());
  }
}
BENCHMARK(BM_DijkstraSpf)->Arg(50)->Arg(200);

void BM_PathVectorConvergence(benchmark::State& state) {
  sim::Rng rng(2);
  auto h = routing::make_hierarchy(rng, 3, 10, static_cast<std::size_t>(state.range(0)));
  routing::PathVector pv(h.graph);
  for (auto _ : state) {
    auto out = pv.compute(h.stubs[0]);
    benchmark::DoNotOptimize(out.rounds);
  }
}
BENCHMARK(BM_PathVectorConvergence)->Arg(20)->Arg(80);

void BM_MarketPeriod(benchmark::State& state) {
  sim::Rng rng(3);
  econ::MarketConfig cfg;
  cfg.consumers = 1000;
  std::vector<econ::ProviderConfig> providers(4);
  for (std::size_t i = 0; i < providers.size(); ++i) {
    providers[i].name = "p" + std::to_string(i);
  }
  econ::Market market(cfg, providers, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(market.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_MarketPeriod);

void BM_RegretMatchingRound(benchmark::State& state) {
  auto g = game::congestion_compliance_game();
  game::RegretMatching a(game::row_payoff_matrix(g));
  game::RegretMatching b(game::col_payoff_matrix(g));
  sim::Rng rng(4);
  for (auto _ : state) {
    auto out = game::play_repeated(g, a, b, 100, rng);
    benchmark::DoNotOptimize(out.row_mean_payoff);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_RegretMatchingRound);

void BM_NameLookup(benchmark::State& state) {
  names::ModularNameSystem s;
  std::vector<std::string> machines;
  for (int i = 0; i < 1000; ++i) {
    machines.push_back(s.register_service(
        "brand-" + std::to_string(i),
        net::Address{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1},
        "mb"));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.resolve_machine(machines[i % machines.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NameLookup);

}  // namespace

BENCHMARK_MAIN();
