#include "parallel_options.hpp"

#include <cstdlib>

namespace tussle::bench {

namespace {

/// A positive integer from the environment, or nullopt (unset, empty,
/// non-numeric, zero, and negative all mean "not configured").
std::optional<std::uint64_t> env_positive(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || n == 0) return std::nullopt;
  return static_cast<std::uint64_t>(n);
}

}  // namespace

ParallelOptions ParallelOptions::resolve(std::optional<std::uint64_t> seed_flag,
                                         std::optional<std::size_t> jobs_flag,
                                         std::optional<std::size_t> replicas_flag,
                                         std::optional<std::size_t> shards_flag) {
  ParallelOptions o;
  if (seed_flag) {
    o.seed = *seed_flag;
  } else if (auto e = env_positive("TUSSLE_SEED")) {
    o.seed = *e;
  }
  if (jobs_flag) {
    o.jobs = *jobs_flag;
  } else if (auto e = env_positive("TUSSLE_JOBS")) {
    o.jobs = static_cast<std::size_t>(*e);
  }
  if (replicas_flag) {
    o.replicas = *replicas_flag;
  } else if (auto e = env_positive("TUSSLE_REPLICAS")) {
    o.replicas = static_cast<std::size_t>(*e);
  }
  if (shards_flag) {
    o.shards = *shards_flag;
  } else if (auto e = env_positive("TUSSLE_SHARDS")) {
    o.shards = static_cast<std::size_t>(*e);
  }
  return o;
}

std::size_t ParallelOptions::sweep_jobs(bool serial_sinks) const noexcept {
  if (serial_sinks) return 1;
  if (shards > 0 && jobs == 0) return 1;
  return jobs;
}

std::size_t ParallelOptions::run_shards(bool serial_only_instrumentation) const noexcept {
  return serial_only_instrumentation ? 0 : shards;
}

}  // namespace tussle::bench
