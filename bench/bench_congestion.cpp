// E12 — TCP congestion control as an unresolved tussle (§II-B).
//
// Paper claim: voluntary compliance holds only while the social balance
// holds; "should this balance change, the technical design of the system
// will do nothing to bound or guide the resulting shift." The cheater
// sweep shows the collapse under FIFO; the fair-queueing columns show what
// a design that *does* bound the tussle looks like.
#include <iostream>

#include "apps/congestion.hpp"
#include "core/report.hpp"
#include "harness.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E12", "SII-B congestion-control compliance",
       "Sweep the fraction of aggressive (non-backing-off) senders.\n"
       "FIFO: compliant flows starve. Fair queueing: the tussle is bounded."},
      [](bench::Harness& h) {
  core::Table t({"cheater-frac", "fifo:compliant", "fifo:cheater", "fifo:jain",
                 "fq:compliant", "fq:cheater", "fq:jain"});
  for (double f : {0.0, 0.05, 0.1, 0.25, 0.5, 0.75}) {
    apps::CongestionConfig fifo;
    fifo.aggressive_fraction = f;
    auto rf = apps::run_congestion(fifo);
    apps::CongestionConfig fq = fifo;
    fq.fair_queueing = true;
    auto rq = apps::run_congestion(fq);
    t.add_row({f, rf.compliant_goodput_mean, rf.aggressive_goodput_mean, rf.jains_fairness,
               rq.compliant_goodput_mean, rq.aggressive_goodput_mean, rq.jains_fairness});
    if (f == 0.25) {
      h.metrics().gauge("cheat25.fifo_jain", rf.jains_fairness);
      h.metrics().gauge("cheat25.fq_jain", rq.jains_fairness);
    }
  }
  t.print(std::cout);

  std::cout << "\nUtilization / loss under full defection\n\n";
  core::Table u({"scenario", "utilization", "loss-rate"});
  for (double f : {0.0, 1.0}) {
    apps::CongestionConfig cfg;
    cfg.aggressive_fraction = f;
    auto r = apps::run_congestion(cfg);
    u.add_row({f == 0.0 ? std::string("all compliant") : std::string("all aggressive"),
               r.utilization, r.loss_rate});
  }
  u.print(std::cout);
      });
}
