// E12 — TCP congestion control as an unresolved tussle (§II-B).
//
// Paper claim: voluntary compliance holds only while the social balance
// holds; "should this balance change, the technical design of the system
// will do nothing to bound or guide the resulting shift." The cheater
// sweep shows the collapse under FIFO; the fair-queueing columns show what
// a design that *does* bound the tussle looks like.
#include <iostream>

#include "apps/congestion.hpp"
#include "core/report.hpp"
#include "harness.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E12", "SII-B congestion-control compliance",
       "Sweep the fraction of aggressive (non-backing-off) senders.\n"
       "FIFO: compliant flows starve. Fair queueing: the tussle is bounded."},
      [](bench::Harness& h) {
        core::ScenarioSpec sweep;
        sweep.name = "cheater-sweep";
        sweep.description = "FIFO vs fair-queueing goodput as cheaters grow";
        sweep.grid.axis("cheater_frac", {0.0, 0.05, 0.1, 0.25, 0.5, 0.75});
        sweep.body = [](core::RunContext& ctx) {
          apps::CongestionConfig fifo;
          fifo.aggressive_fraction = ctx.param("cheater_frac");
          auto rf = apps::run_congestion(fifo);
          apps::CongestionConfig fq = fifo;
          fq.fair_queueing = true;
          auto rq = apps::run_congestion(fq);
          ctx.put("fifo_compliant", rf.compliant_goodput_mean);
          ctx.put("fifo_cheater", rf.aggressive_goodput_mean);
          ctx.put("fifo_jain", rf.jains_fairness);
          ctx.put("fq_compliant", rq.compliant_goodput_mean);
          ctx.put("fq_cheater", rq.aggressive_goodput_mean);
          ctx.put("fq_jain", rq.jains_fairness);
        };
        h.scenario(sweep, [](const core::SweepResult& res) {
          core::Table t({"cheater-frac", "fifo:compliant", "fifo:cheater", "fifo:jain",
                         "fq:compliant", "fq:cheater", "fq:jain"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({res.points[p].get("cheater_frac"), res.mean(p, "fifo_compliant"),
                       res.mean(p, "fifo_cheater"), res.mean(p, "fifo_jain"),
                       res.mean(p, "fq_compliant"), res.mean(p, "fq_cheater"),
                       res.mean(p, "fq_jain")});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec defect;
        defect.name = "full-defection";
        defect.description = "utilization and loss, all-compliant vs all-aggressive";
        defect.grid.axis("aggressive", {0.0, 1.0});
        defect.body = [](core::RunContext& ctx) {
          apps::CongestionConfig cfg;
          cfg.aggressive_fraction = ctx.param("aggressive");
          auto r = apps::run_congestion(cfg);
          ctx.put("utilization", r.utilization);
          ctx.put("loss_rate", r.loss_rate);
        };
        h.scenario(defect, [](const core::SweepResult& res) {
          std::cout << "\nUtilization / loss under full defection\n\n";
          core::Table t({"scenario", "utilization", "loss-rate"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({res.points[p].get("aggressive") == 0.0
                           ? std::string("all compliant")
                           : std::string("all aggressive"),
                       res.mean(p, "utilization"), res.mean(p, "loss_rate")});
          }
          t.print(std::cout);
        });
      });
}
