// X2 — Actor-network churn vs. freezing (§II-C).
//
// "When new applications and user groups cease to come to the Internet, and
// the set of actors ... becomes fixed, then ... the tensions and tussles in
// the network will begin to be resolved, and this will imply a freezing of
// the actor network, and a freezing of the Internet. So we should look for
// a time when innovation slows, not just as a signal but also as a
// pre-condition of a durably formed and unchangeable Internet."
//
// We anneal an actor network (alignments harden over time) while injecting
// new entrants at different rates, and report durability trajectories.
#include <iostream>

#include "core/actor.hpp"
#include "core/report.hpp"
#include "harness.hpp"

using namespace tussle;

namespace {

core::ActorNetwork seed_network() {
  core::ActorNetwork n;
  n.add(core::Actor{"users", core::ActorKind::kUser, {{"openness", 1.0}, {"privacy", 1.0}}});
  n.add(core::Actor{"isps", core::ActorKind::kCommercialIsp,
                    {{"revenue", 1.0}, {"openness", -0.5}}});
  n.add(core::Actor{"gov", core::ActorKind::kGovernment,
                    {{"privacy", -1.0}, {"security", 1.0}}});
  n.add(core::Actor{"riaa", core::ActorKind::kRightsHolder, {{"openness", -1.0}}});
  n.add(core::Actor{"cdn", core::ActorKind::kContentProvider, {{"revenue", 1.0}}});
  n.add(core::Actor{"ietf", core::ActorKind::kDesigner, {{"openness", 1.0}}});
  n.add(core::Actor{"the-protocols", core::ActorKind::kTechnology, {}});
  return n;
}

double run_to_horizon(double entry_every_n_rounds, std::size_t rounds, double anneal_rate) {
  core::ActorNetwork n = seed_network();
  int entrants = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    n.anneal(anneal_rate, 1);
    if (entry_every_n_rounds > 0 &&
        r % static_cast<std::size_t>(entry_every_n_rounds) == 0) {
      ++entrants;
      n.enter(core::Actor{"app-" + std::to_string(entrants),
                          core::ActorKind::kContentProvider,
                          {{"openness", 1.0}}},
              /*disruption=*/0.25);
    }
  }
  return n.durability();
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"X2", "SII-C why run-time tussle is possible (extension)",
       "Actor alignments anneal toward lock-in; a stream of new entrants\n"
       "keeps durability bounded away from 1 — innovation as the\n"
       "pre-condition of changeability."},
      [](bench::Harness& h) {
  core::Table t({"entry-rate", "durability@25", "durability@50", "durability@100"});
  struct Row {
    const char* label;
    double every;
  };
  const Row rows[] = {
      {"no new entrants (frozen)", 0},
      {"one entrant / 20 rounds", 20},
      {"one entrant / 8 rounds", 8},
      {"one entrant / 3 rounds (boom)", 3},
  };
  for (const Row& r : rows) {
    const double d100 = run_to_horizon(r.every, 100, 0.08);
    t.add_row({std::string(r.label), run_to_horizon(r.every, 25, 0.08),
               run_to_horizon(r.every, 50, 0.08), d100});
    if (r.every == 0) h.metrics().gauge("frozen.durability_100", d100);
    if (r.every == 3) h.metrics().gauge("boom.durability_100", d100);
  }
  t.print(std::cout);

  std::cout << "\nAdverse-interest drag: pairs with opposed stakes anneal at half\n"
               "speed, so a network full of unresolved tussle stays pliable longer\n"
               "— 'the tussles ... have not been driven out of it.'\n\n";

  core::ActorNetwork n = seed_network();
  core::Table adverse({"metric", "value"});
  adverse.add_row({std::string("actors"), static_cast<long long>(n.size())});
  adverse.add_row({std::string("adverse pairs"), static_cast<long long>(n.adverse_pairs())});
  n.anneal(0.08, 50);
  adverse.add_row({std::string("durability after 50 quiet rounds"), n.durability()});
  adverse.print(std::cout);
      });
}
