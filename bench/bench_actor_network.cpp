// X2 — Actor-network churn vs. freezing (§II-C).
//
// "When new applications and user groups cease to come to the Internet, and
// the set of actors ... becomes fixed, then ... the tensions and tussles in
// the network will begin to be resolved, and this will imply a freezing of
// the actor network, and a freezing of the Internet. So we should look for
// a time when innovation slows, not just as a signal but also as a
// pre-condition of a durably formed and unchangeable Internet."
//
// We anneal an actor network (alignments harden over time) while injecting
// new entrants at different rates, and report durability trajectories.
#include <iostream>

#include "core/actor.hpp"
#include "core/report.hpp"
#include "harness.hpp"

using namespace tussle;

namespace {

core::ActorNetwork seed_network() {
  core::ActorNetwork n;
  n.add(core::Actor{"users", core::ActorKind::kUser, {{"openness", 1.0}, {"privacy", 1.0}}});
  n.add(core::Actor{"isps", core::ActorKind::kCommercialIsp,
                    {{"revenue", 1.0}, {"openness", -0.5}}});
  n.add(core::Actor{"gov", core::ActorKind::kGovernment,
                    {{"privacy", -1.0}, {"security", 1.0}}});
  n.add(core::Actor{"riaa", core::ActorKind::kRightsHolder, {{"openness", -1.0}}});
  n.add(core::Actor{"cdn", core::ActorKind::kContentProvider, {{"revenue", 1.0}}});
  n.add(core::Actor{"ietf", core::ActorKind::kDesigner, {{"openness", 1.0}}});
  n.add(core::Actor{"the-protocols", core::ActorKind::kTechnology, {}});
  return n;
}

double run_to_horizon(double entry_every_n_rounds, std::size_t rounds, double anneal_rate) {
  core::ActorNetwork n = seed_network();
  int entrants = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    n.anneal(anneal_rate, 1);
    if (entry_every_n_rounds > 0 &&
        r % static_cast<std::size_t>(entry_every_n_rounds) == 0) {
      ++entrants;
      n.enter(core::Actor{"app-" + std::to_string(entrants),
                          core::ActorKind::kContentProvider,
                          {{"openness", 1.0}}},
              /*disruption=*/0.25);
    }
  }
  return n.durability();
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"X2", "SII-C why run-time tussle is possible (extension)",
       "Actor alignments anneal toward lock-in; a stream of new entrants\n"
       "keeps durability bounded away from 1 — innovation as the\n"
       "pre-condition of changeability."},
      [](bench::Harness& h) {
        core::ScenarioSpec entry;
        entry.name = "entry-rate-sweep";
        entry.description = "durability trajectory per entrant rate, 3 horizons";
        entry.grid.axis("entry_every", {0, 20, 8, 3});
        entry.body = [](core::RunContext& ctx) {
          const double every = ctx.param("entry_every");
          ctx.put("durability_25", run_to_horizon(every, 25, 0.08));
          ctx.put("durability_50", run_to_horizon(every, 50, 0.08));
          ctx.put("durability_100", run_to_horizon(every, 100, 0.08));
        };
        h.scenario(entry, [&h](const core::SweepResult& res) {
          const char* labels[] = {"no new entrants (frozen)", "one entrant / 20 rounds",
                                  "one entrant / 8 rounds", "one entrant / 3 rounds (boom)"};
          core::Table t({"entry-rate", "durability@25", "durability@50", "durability@100"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            const double d100 = res.mean(p, "durability_100");
            t.add_row({std::string(labels[p]), res.mean(p, "durability_25"),
                       res.mean(p, "durability_50"), d100});
            if (res.points[p].get("entry_every") == 0) {
              h.metrics().gauge("frozen.durability_100", d100);
            }
            if (res.points[p].get("entry_every") == 3) {
              h.metrics().gauge("boom.durability_100", d100);
            }
          }
          t.print(std::cout);
        });

        core::ScenarioSpec drag;
        drag.name = "adverse-drag";
        drag.description = "adverse-pair count and quiet-anneal durability";
        drag.body = [](core::RunContext& ctx) {
          core::ActorNetwork n = seed_network();
          ctx.put("actors", static_cast<double>(n.size()));
          ctx.put("adverse_pairs", static_cast<double>(n.adverse_pairs()));
          n.anneal(0.08, 50);
          ctx.put("durability_after_50", n.durability());
        };
        h.scenario(drag, [](const core::SweepResult& res) {
          std::cout
              << "\nAdverse-interest drag: pairs with opposed stakes anneal at half\n"
                 "speed, so a network full of unresolved tussle stays pliable longer\n"
                 "— 'the tussles ... have not been driven out of it.'\n\n";
          core::Table adverse({"metric", "value"});
          adverse.add_row({std::string("actors"),
                           static_cast<long long>(res.mean(0, "actors"))});
          adverse.add_row({std::string("adverse pairs"),
                           static_cast<long long>(res.mean(0, "adverse_pairs"))});
          adverse.add_row({std::string("durability after 50 quiet rounds"),
                           res.mean(0, "durability_after_50")});
          adverse.print(std::cout);
        });
      });
}
