// E3 — Residential broadband access (§V-A-3).
//
// Paper claim: the feared endgame is a facility duopoly (telco + cable)
// with high prices; open access at the facility/service tussle boundary
// restores retail competition; municipal fiber is the cleanest split
// (neutral wire, all competition in services) but repays the wire investor
// least.
#include <iostream>

#include "core/report.hpp"
#include "econ/open_access.hpp"
#include "harness.hpp"

using namespace tussle;

namespace {

constexpr econ::AccessRegime kRegimes[] = {econ::AccessRegime::kFacilityDuopoly,
                                           econ::AccessRegime::kOpenAccess,
                                           econ::AccessRegime::kMunicipalFiber};

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E3", "SV-A-3 residential broadband access",
       "Duopoly wires -> high price, high HHI. Open access / municipal fiber\n"
       "modularize along the facility|service tussle boundary and restore\n"
       "competition — but pay the wire owner progressively less."},
      [](bench::Harness& h) {
        core::ScenarioSpec regimes;
        regimes.name = "access-regimes";
        regimes.description = "duopoly vs open access vs municipal fiber, 6 service ISPs";
        regimes.grid.axis("regime", {0, 1, 2});
        regimes.body = [](core::RunContext& ctx) {
          econ::BroadbandConfig cfg;
          cfg.regime = kRegimes[static_cast<std::size_t>(ctx.param("regime"))];
          cfg.service_isps = 6;
          auto r = econ::run_broadband(cfg, ctx.rng());
          ctx.put("retail_isps", static_cast<double>(r.retail_competitors));
          ctx.put("mean_price", r.market.mean_price);
          ctx.put("hhi", r.market.hhi);
          ctx.put("consumer_surplus", r.market.consumer_surplus);
          ctx.put("facility_margin", r.facility_margin);
        };
        h.scenario(regimes, [](const core::SweepResult& res) {
          core::Table t({"regime", "retail-isps", "mean-price", "hhi", "consumer-surplus",
                         "facility-margin"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({to_string(kRegimes[p]),
                       static_cast<long long>(res.mean(p, "retail_isps")),
                       res.mean(p, "mean_price"), res.mean(p, "hhi"),
                       res.mean(p, "consumer_surplus"), res.mean(p, "facility_margin")});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec sweep;
        sweep.name = "service-isp-sweep";
        sweep.description = "open-access outcome vs number of service ISPs";
        sweep.grid.axis("service_isps", {2, 3, 4, 6, 10});
        sweep.body = [](core::RunContext& ctx) {
          econ::BroadbandConfig cfg;
          cfg.regime = econ::AccessRegime::kOpenAccess;
          cfg.service_isps = static_cast<std::size_t>(ctx.param("service_isps"));
          auto r = econ::run_broadband(cfg, ctx.rng());
          ctx.put("mean_price", r.market.mean_price);
          ctx.put("hhi", r.market.hhi);
        };
        h.scenario(sweep, [](const core::SweepResult& res) {
          std::cout << "\nSweep: how many service ISPs does open access need?\n\n";
          core::Table t({"service-isps", "mean-price", "hhi"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({static_cast<long long>(res.points[p].get("service_isps")),
                       res.mean(p, "mean_price"), res.mean(p, "hhi")});
          }
          t.print(std::cout);
        });
      });
}
