// E3 — Residential broadband access (§V-A-3).
//
// Paper claim: the feared endgame is a facility duopoly (telco + cable)
// with high prices; open access at the facility/service tussle boundary
// restores retail competition; municipal fiber is the cleanest split
// (neutral wire, all competition in services) but repays the wire investor
// least.
#include <iostream>

#include "core/report.hpp"
#include "econ/open_access.hpp"
#include "harness.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E3", "SV-A-3 residential broadband access",
       "Duopoly wires -> high price, high HHI. Open access / municipal fiber\n"
       "modularize along the facility|service tussle boundary and restore\n"
       "competition — but pay the wire owner progressively less."},
      [](bench::Harness& h) {
  core::Table t({"regime", "retail-isps", "mean-price", "hhi", "consumer-surplus",
                 "facility-margin"});
  for (auto regime : {econ::AccessRegime::kFacilityDuopoly, econ::AccessRegime::kOpenAccess,
                      econ::AccessRegime::kMunicipalFiber}) {
    econ::BroadbandConfig cfg;
    cfg.regime = regime;
    cfg.service_isps = 6;
    sim::Rng rng(21);
    auto r = econ::run_broadband(cfg, rng);
    t.add_row({to_string(regime), static_cast<long long>(r.retail_competitors),
               r.market.mean_price, r.market.hhi, r.market.consumer_surplus,
               r.facility_margin});
    h.metrics().gauge(to_string(regime) + ".mean_price", r.market.mean_price);
    h.metrics().gauge(to_string(regime) + ".hhi", r.market.hhi);
  }
  t.print(std::cout);

  std::cout << "\nSweep: how many service ISPs does open access need?\n\n";
  core::Table sweep({"service-isps", "mean-price", "hhi"});
  for (std::size_t k : {2u, 3u, 4u, 6u, 10u}) {
    econ::BroadbandConfig cfg;
    cfg.regime = econ::AccessRegime::kOpenAccess;
    cfg.service_isps = k;
    sim::Rng rng(22);
    auto r = econ::run_broadband(cfg, rng);
    sweep.add_row({static_cast<long long>(k), r.market.mean_price, r.market.hhi});
  }
  sweep.print(std::cout);
      });
}
