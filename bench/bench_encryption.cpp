// E11 — "Peeking is irresistible" and the encryption escalation (§VI-A).
//
// Paper claims: (a) anything visible in the packet will be inspected and
// acted on (here: an ISP throttling P2P); (b) end-to-end encryption defeats
// the peek; (c) the provider's only counter-escalation is to punish opacity
// itself, which is indiscriminate — it hits the VPN-using business customer
// too — and, crucially, *visible* ("forcing the choice to be public ... is
// about all that technology can do").
#include <iostream>

#include "apps/stego.hpp"
#include "core/report.hpp"
#include "harness.hpp"
#include "net/topology.hpp"
#include "policy/packet_adapter.hpp"
#include "routing/link_state.hpp"

using namespace tussle;
using net::Address;
using net::NodeId;

namespace {

void run_stage(int stage, core::RunContext& ctx) {
  sim::Simulator sim(ctx.rng().next_u64());
  ctx.instrument(sim);
  net::Network net(sim);
  auto ids = net::build_star(net, 4, 1, net::LinkSpec{});
  std::vector<Address> addrs;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
    net.node(ids[i]).add_address(a);
    addrs.push_back(a);
  }
  routing::LinkState ls(net);
  ls.install_routes(ids);

  // ISP policy ladder at the hub.
  if (stage >= 1) {
    policy::PolicySet ps(policy::standard_packet_ontology(), policy::Effect::kPermit);
    ps.add("throttle-p2p", policy::Effect::kDeny, "proto == 'p2p'", "application");
    if (stage >= 2) {
      // Escalation: refuse anything it cannot read. This rule is
      // *necessarily* visible in effect — it kills paying VPN customers.
      ps.add("no-opacity", policy::Effect::kDeny, "opaque", "security");
    }
    net.node(ids[0]).add_filter(
        policy::make_packet_filter("isp-dpi", /*disclosed=*/stage >= 2, std::move(ps)));
  }
  if (stage >= 3) {
    // fn.17: steganography is invisible to both rules above, so the ISP's
    // only remaining counter is a statistical classifier — 70% catch rate,
    // 5% false positives on innocent web.
    net.node(ids[0]).add_filter(
        apps::make_stego_detector(net, "traffic-classifier", net::AppProto::kWeb, 0.7, 0.05));
  }

  int p2p_plain = 0, p2p_encrypted = 0, p2p_stego = 0, business_vpn = 0, web = 0;
  net.set_delivery_observer([&](const net::Packet& p, NodeId) {
    if (p.payload_tag == "p2p-plain") ++p2p_plain;
    if (p.payload_tag == "p2p-enc") ++p2p_encrypted;
    if (p.payload_tag == "p2p-stego") ++p2p_stego;
    if (p.payload_tag == "biz-vpn") ++business_vpn;
    if (p.payload_tag == "web") ++web;
  });

  int seq = 0;
  auto send = [&](int from, int to, net::AppProto proto, bool enc, const char* tag,
                  bool tunnel) {
    sim.schedule(sim::Duration::millis(1) * static_cast<double>(++seq), [&, from, to, proto,
                                                                         enc, tag, tunnel]() {
      net::Packet p;
      p.src = addrs[static_cast<std::size_t>(from)];
      p.dst = addrs[static_cast<std::size_t>(to)];
      p.proto = proto;
      p.encrypted = enc;
      p.payload_tag = tag;
      if (tunnel) {
        // VPN to the destination's address (decapsulated there).
        p = p.encapsulate(p.src, addrs[static_cast<std::size_t>(to)]);
        p.payload_tag = tag;
      }
      net.node(ids[static_cast<std::size_t>(from)]).originate(std::move(p));
    });
  };
  auto send_stego = [&]() {
    sim.schedule(sim::Duration::millis(1) * static_cast<double>(++seq), [&]() {
      net::Packet p;
      p.src = addrs[1];
      p.dst = addrs[2];
      p.proto = net::AppProto::kP2p;
      p.payload_tag = "p2p-stego";
      net.node(ids[1]).originate(apps::steganographize(std::move(p), net::AppProto::kWeb));
    });
  };
  for (int k = 0; k < 50; ++k) {
    send(1, 2, net::AppProto::kP2p, false, "p2p-plain", false);
    send(1, 2, net::AppProto::kP2p, true, "p2p-enc", false);
    send_stego();
    send(3, 4, net::AppProto::kWeb, false, "web", false);
    send(3, 4, net::AppProto::kMail, false, "biz-vpn", true);  // telework tunnel
  }

  // Telemetry: cumulative deliveries per traffic class. The last of the
  // 250 sends goes out at 250ms; 300ms covers the tail in flight.
  if (auto* rec = ctx.timeseries()) {
    rec->probe("p2p_plain", [&] { return p2p_plain; });
    rec->probe("p2p_encrypted", [&] { return p2p_encrypted; });
    rec->probe("p2p_stego", [&] { return p2p_stego; });
    rec->probe("business_vpn", [&] { return business_vpn; });
    rec->probe("web", [&] { return web; });
    rec->attach(sim, sim::SimTime::millis(300));
  }
  ctx.add_events(sim.run());
  ctx.put("p2p_plain", p2p_plain);
  ctx.put("p2p_encrypted", p2p_encrypted);
  ctx.put("p2p_stego", p2p_stego);
  ctx.put("business_vpn", business_vpn);
  ctx.put("web", web);
  ctx.put("policy_visible",
          net.node(ids[0]).disclosed_filter_names().empty() ? 0.0 : 1.0);
}

/// The escalation ladder as coupled adaptive dynamics instead of four fixed
/// stages: users re-weight their strategies (plain / encrypted / stego) by
/// replicator dynamics on realized payoff each round, while the ISP reviews
/// its enforcement stage every kReview rounds — escalating while too much
/// P2P still gets through, de-escalating once enforcement + collateral cost
/// more than blocking earns. Neither side's optimum stays put while the
/// other moves, so the coupled system settles into a limit cycle: "the
/// tussle is not resolved, it is ongoing" made literal. One round is one
/// simulated millisecond; the dynamics are fully deterministic.
void run_arms_race(core::RunContext& ctx) {
  constexpr std::size_t kRounds = 2000;
  constexpr std::size_t kReview = 25;  // ISP policy latency, in rounds
  constexpr double kEta = 1.2;         // user adaptation rate
  constexpr double kFloor = 1e-3;      // strategies never quite die out
  // Indexed by ISP stage: block probability per strategy, enforcement
  // cost, collateral damage to innocent traffic (fn.17's false positives).
  constexpr double kBlock[4][3] = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {1, 1, 0.7}};
  constexpr double kStageCost[4] = {0, 0.15, 0.30, 0.45};
  constexpr double kCollateral[4] = {0, 0, 0.25, 0.35};
  constexpr double kStratCost[3] = {0, 0.10, 0.25};  // plain, encrypted, stego

  double share[3] = {0.90, 0.09, 0.01};
  int stage = 0;
  int stage_changes = 0;
  double blocked_frac = 0, user_welfare = 0, isp_utility = 0;
  double tunnel = share[1] + share[2];

  auto* rec = ctx.timeseries();
  if (rec != nullptr) {
    rec->probe("tunnel_adoption", [&] { return tunnel; });
    rec->probe("block_rate", [&] { return blocked_frac; });
    rec->probe("isp_stage", [&] { return static_cast<double>(stage); });
    rec->probe("user_welfare", [&] { return user_welfare; });
    rec->probe("isp_utility", [&] { return isp_utility; });
    rec->probe("collateral", [&] { return kCollateral[stage]; });
    rec->maybe_sample(sim::SimTime::zero());
  }

  sim::Summary stage_hist;
  for (std::size_t t = 0; t < kRounds; ++t) {
    double payoff[3];
    blocked_frac = 0;
    user_welfare = 0;
    for (int i = 0; i < 3; ++i) {
      payoff[i] = (1.0 - kBlock[stage][i]) - kStratCost[i];
      blocked_frac += share[i] * kBlock[stage][i];
      user_welfare += share[i] * payoff[i];
    }
    isp_utility = blocked_frac - kStageCost[stage] - 1.5 * kCollateral[stage];

    if ((t + 1) % kReview == 0) {
      // Escalation is forward-looking: the ISP moves up when too much P2P
      // still gets through AND the next tier would pay for itself against
      // the user mix it can currently see. Failing that, a tier that costs
      // more than it blocks is abandoned. The forward-looking caution is
      // what gives users room to drift back to plain at low stages, which
      // re-arms the escalation: a full multi-tier cycle.
      double next_blocked = 0;
      if (stage < 3) {
        for (int i = 0; i < 3; ++i) next_blocked += share[i] * kBlock[stage + 1][i];
      }
      if (stage < 3 && 1.0 - blocked_frac > 0.5 &&
          next_blocked > kStageCost[stage + 1] + kCollateral[stage + 1] + 0.25) {
        ++stage;
        ++stage_changes;
      } else if (stage > 0 && blocked_frac < kStageCost[stage] + kCollateral[stage]) {
        --stage;
        ++stage_changes;
      }
    }

    double total = 0;
    for (int i = 0; i < 3; ++i) {
      share[i] *= std::exp(kEta * payoff[i]);
      total += share[i];
    }
    for (double& s : share) s = std::max(s / total, kFloor);
    total = share[0] + share[1] + share[2];
    for (double& s : share) s /= total;

    tunnel = share[1] + share[2];
    stage_hist.observe(stage);
    if (rec != nullptr) {
      rec->maybe_sample(sim::SimTime::millis(static_cast<std::int64_t>(t) + 1));
    }
  }
  if (rec != nullptr) rec->finish(sim::SimTime::millis(kRounds));

  ctx.put("stage_changes", stage_changes);
  ctx.put("mean_stage", stage_hist.mean());
  ctx.put("final_tunnel_adoption", tunnel);
  ctx.put("final_block_rate", blocked_frac);
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E11", "SVI-A end-to-end arguments & encryption",
       "Stage 0: transparent carriage. Stage 1: ISP peeks and drops P2P —\n"
       "users encrypt and win. Stage 2: ISP punishes opacity itself —\n"
       "indiscriminate collateral damage, and the policy becomes visible."},
      [](bench::Harness& h) {
        core::ScenarioSpec esc;
        esc.name = "escalation-ladder";
        esc.description = "delivery per traffic class at each ISP policy stage";
        esc.grid.axis("stage", {0, 1, 2, 3});
        esc.body = [](core::RunContext& ctx) {
          run_stage(static_cast<int>(ctx.param("stage")), ctx);
        };
        h.scenario(esc, [](const core::SweepResult& res) {
          const char* stages[] = {"0: transparent network", "1: DPI drops visible p2p",
                                  "2: drop everything opaque", "3: + statistical stego hunt"};
          core::Table t({"isp-policy", "p2p-plain/50", "p2p-enc/50", "p2p-stego/50",
                         "business-vpn/50", "web/50", "policy-visible"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({std::string(stages[p]),
                       static_cast<long long>(res.mean(p, "p2p_plain")),
                       static_cast<long long>(res.mean(p, "p2p_encrypted")),
                       static_cast<long long>(res.mean(p, "p2p_stego")),
                       static_cast<long long>(res.mean(p, "business_vpn")),
                       static_cast<long long>(res.mean(p, "web")),
                       std::string(res.mean(p, "policy_visible") > 0.5 ? "yes" : "no")});
          }
          t.print(std::cout);

          std::cout << "\nShape check (paper): encryption defeats stage 1; stage 2 'wins'\n"
                       "only by also destroying the opaque traffic of paying customers.\n"
                       "Stage 3 (fn.17): steganography sails through stages 1-2 untouched;\n"
                       "the statistical hunt catches most of it but now drops innocent\n"
                       "web too (false positives) — escalation never ends, it only\n"
                       "relocates the collateral damage.\n";
        });

        core::ScenarioSpec race;
        race.name = "arms-race";
        race.description = "adaptive users vs adaptive ISP: the escalation limit cycle";
        race.body = run_arms_race;
        h.scenario(race, [](const core::SweepResult& res) {
          std::cout << "\nAdaptive arms race (2000 rounds, ISP reviews every 25)\n\n";
          core::Table t({"stage-changes", "mean-stage", "final-tunnel-share",
                         "final-block-rate"});
          t.add_row({static_cast<long long>(res.mean(0, "stage_changes")),
                     res.mean(0, "mean_stage"), res.mean(0, "final_tunnel_adoption"),
                     res.mean(0, "final_block_rate")});
          t.print(std::cout);
          std::cout << "\n(Neither side converges: each enforcement tier is abandoned as\n"
                       "users adapt around it, then rebuilt when they drift back. Run with\n"
                       "--dashboard to watch the cycle.)\n";
        });
      });
}
