// X1 — Byzantine routing: prefix hijack and origin validation (§II-B).
//
// The paper's second "system design perspective on tussle" is building
// systems "more resistant to those that perceive the answer differently"
// (Perlman's byzantine robustness, Savage's uncooperative-Internet work).
// This extension experiment quantifies that school on our path-vector
// substrate: a hijacker falsely originates a victim's prefix, and an
// RPKI-style origin-validation deployment is the technical bound.
#include <iostream>

#include "core/report.hpp"
#include "harness.hpp"
#include "routing/path_vector.hpp"

using namespace tussle;
using routing::AsId;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"X1", "SII-B byzantine actors in routing (extension)",
       "A false-origin announcement captures a large share of the network\n"
       "under plain Gao-Rexford; origin validation eliminates the capture.\n"
       "Capture grows with the hijacker's position in the hierarchy."},
      [](bench::Harness& bh) {
        core::ScenarioSpec tiers;
        tiers.name = "hijack-by-tier";
        tiers.description = "capture by hijacker tier; validation on/off on one graph";
        tiers.grid.axis("tier", {0, 1, 2});
        // Both validation variants run against the same sampled hierarchy, so
        // the on/off rows stay a paired comparison.
        tiers.body = [](core::RunContext& ctx) {
          auto h = routing::make_hierarchy(ctx.rng(), 3, 8, 24);
          const AsId victim = h.stubs[0];
          const AsId attackers[] = {h.stubs.back(), h.tier2[0], h.tier1[0]};
          const AsId attacker = attackers[static_cast<std::size_t>(ctx.param("tier"))];
          for (bool validation : {false, true}) {
            auto r = routing::simulate_hijack(h.graph, victim, attacker, validation);
            const std::string k = validation ? "on." : "off.";
            ctx.put(k + "captured", static_cast<double>(r.captured));
            ctx.put(k + "legitimate", static_cast<double>(r.legitimate));
            ctx.put(k + "unreachable", static_cast<double>(r.unreachable));
            ctx.put(k + "capture_fraction", r.capture_fraction);
          }
        };
        bh.scenario(tiers, [](const core::SweepResult& res) {
          const char* labels[] = {"stub", "tier-2 transit", "tier-1 backbone"};
          core::Table t({"hijacker-tier", "validation", "captured", "legitimate",
                         "unreachable", "capture-fraction"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            for (const char* k : {"off", "on"}) {
              const std::string pre = std::string(k) + ".";
              t.add_row({std::string(labels[p]), std::string(k),
                         static_cast<long long>(res.mean(p, pre + "captured")),
                         static_cast<long long>(res.mean(p, pre + "legitimate")),
                         static_cast<long long>(res.mean(p, pre + "unreachable")),
                         res.mean(p, pre + "capture_fraction")});
            }
          }
          t.print(std::cout);
        });

        core::ScenarioSpec pairs;
        pairs.name = "stub-pair-sweep";
        pairs.description = "mean capture across 10 random victim/attacker stub pairs";
        pairs.body = [](core::RunContext& ctx) {
          auto h = routing::make_hierarchy(ctx.rng(), 3, 8, 24);
          for (bool validation : {false, true}) {
            double total = 0;
            int n = 0;
            for (std::size_t i = 0; i + 1 < h.stubs.size() && n < 10; i += 2, ++n) {
              auto r =
                  routing::simulate_hijack(h.graph, h.stubs[i], h.stubs[i + 1], validation);
              total += r.capture_fraction;
            }
            ctx.put(std::string("mean_capture.validation_") + (validation ? "on" : "off"),
                    total / n);
          }
        };
        bh.scenario(pairs, [&bh](const core::SweepResult& res) {
          std::cout << "\nMean capture across 10 random victim/attacker stub pairs\n\n";
          core::Table t({"validation", "mean-capture-fraction"});
          for (const char* k : {"off", "on"}) {
            const std::string key = std::string("mean_capture.validation_") + k;
            t.add_row({std::string(k), res.mean(0, key)});
            bh.metrics().gauge(key, res.mean(0, key));
          }
          t.print(std::cout);

          std::cout << "\nReading: the 'one right answer' design school works — when the\n"
                       "right answer (the legitimate origin) can be authenticated. The\n"
                       "tussle moves to who runs the trust anchor.\n";
        });
      });
}
