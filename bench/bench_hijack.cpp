// X1 — Byzantine routing: prefix hijack and origin validation (§II-B).
//
// The paper's second "system design perspective on tussle" is building
// systems "more resistant to those that perceive the answer differently"
// (Perlman's byzantine robustness, Savage's uncooperative-Internet work).
// This extension experiment quantifies that school on our path-vector
// substrate: a hijacker falsely originates a victim's prefix, and an
// RPKI-style origin-validation deployment is the technical bound.
#include <iostream>

#include "core/report.hpp"
#include "harness.hpp"
#include "routing/path_vector.hpp"

using namespace tussle;
using routing::AsId;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"X1", "SII-B byzantine actors in routing (extension)",
       "A false-origin announcement captures a large share of the network\n"
       "under plain Gao-Rexford; origin validation eliminates the capture.\n"
       "Capture grows with the hijacker's position in the hierarchy."},
      [](bench::Harness& bh) {
  sim::Rng rng(81);
  auto h = routing::make_hierarchy(rng, 3, 8, 24);
  const AsId victim = h.stubs[0];

  core::Table t({"hijacker-tier", "validation", "captured", "legitimate", "unreachable",
                 "capture-fraction"});
  struct Case {
    const char* label;
    AsId attacker;
  };
  const Case cases[] = {
      {"stub", h.stubs.back()},
      {"tier-2 transit", h.tier2[0]},
      {"tier-1 backbone", h.tier1[0]},
  };
  for (const Case& c : cases) {
    for (bool validation : {false, true}) {
      auto r = routing::simulate_hijack(h.graph, victim, c.attacker, validation);
      t.add_row({std::string(c.label), std::string(validation ? "on" : "off"),
                 static_cast<long long>(r.captured), static_cast<long long>(r.legitimate),
                 static_cast<long long>(r.unreachable), r.capture_fraction});
    }
  }
  t.print(std::cout);

  std::cout << "\nMean capture across 10 random victim/attacker stub pairs\n\n";
  core::Table sweep({"validation", "mean-capture-fraction"});
  for (bool validation : {false, true}) {
    double total = 0;
    int n = 0;
    for (std::size_t i = 0; i + 1 < h.stubs.size() && n < 10; i += 2, ++n) {
      auto r = routing::simulate_hijack(h.graph, h.stubs[i], h.stubs[i + 1], validation);
      total += r.capture_fraction;
    }
    sweep.add_row({std::string(validation ? "on" : "off"), total / n});
    bh.metrics().gauge(std::string("mean_capture.validation_") + (validation ? "on" : "off"),
                       total / n);
  }
  sweep.print(std::cout);

  std::cout << "\nReading: the 'one right answer' design school works — when the\n"
               "right answer (the legitimate origin) can be authenticated. The\n"
               "tussle moves to who runs the trust anchor.\n";
      });
}
