// X1 — Byzantine routing: prefix hijack and origin validation (§II-B).
//
// The paper's second "system design perspective on tussle" is building
// systems "more resistant to those that perceive the answer differently"
// (Perlman's byzantine robustness, Savage's uncooperative-Internet work).
// This extension experiment quantifies that school on our path-vector
// substrate: a hijacker falsely originates a victim's prefix, and an
// RPKI-style origin-validation deployment is the technical bound.
#include <algorithm>
#include <iostream>
#include <map>

#include "core/report.hpp"
#include "harness.hpp"
#include "net/network.hpp"
#include "routing/path_vector.hpp"

using namespace tussle;
using routing::AsId;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"X1", "SII-B byzantine actors in routing (extension)",
       "A false-origin announcement captures a large share of the network\n"
       "under plain Gao-Rexford; origin validation eliminates the capture.\n"
       "Capture grows with the hijacker's position in the hierarchy."},
      [](bench::Harness& bh) {
        core::ScenarioSpec tiers;
        tiers.name = "hijack-by-tier";
        tiers.description = "capture by hijacker tier; validation on/off on one graph";
        tiers.grid.axis("tier", {0, 1, 2});
        // Both validation variants run against the same sampled hierarchy, so
        // the on/off rows stay a paired comparison.
        tiers.body = [](core::RunContext& ctx) {
          auto h = routing::make_hierarchy(ctx.rng(), 3, 8, 24);
          const AsId victim = h.stubs[0];
          const AsId attackers[] = {h.stubs.back(), h.tier2[0], h.tier1[0]};
          const AsId attacker = attackers[static_cast<std::size_t>(ctx.param("tier"))];
          for (bool validation : {false, true}) {
            auto r = routing::simulate_hijack(h.graph, victim, attacker, validation);
            const std::string k = validation ? "on." : "off.";
            ctx.put(k + "captured", static_cast<double>(r.captured));
            ctx.put(k + "legitimate", static_cast<double>(r.legitimate));
            ctx.put(k + "unreachable", static_cast<double>(r.unreachable));
            ctx.put(k + "capture_fraction", r.capture_fraction);
          }
        };
        bh.scenario(tiers, [](const core::SweepResult& res) {
          const char* labels[] = {"stub", "tier-2 transit", "tier-1 backbone"};
          core::Table t({"hijacker-tier", "validation", "captured", "legitimate",
                         "unreachable", "capture-fraction"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            for (const char* k : {"off", "on"}) {
              const std::string pre = std::string(k) + ".";
              t.add_row({std::string(labels[p]), std::string(k),
                         static_cast<long long>(res.mean(p, pre + "captured")),
                         static_cast<long long>(res.mean(p, pre + "legitimate")),
                         static_cast<long long>(res.mean(p, pre + "unreachable")),
                         res.mean(p, pre + "capture_fraction")});
            }
          }
          t.print(std::cout);
        });

        // Incremental RPKI-style rollout: validation deploys one AS at a
        // time and the hijacked share of the network is re-measured after
        // each step. Telemetry: 1 deployment step = 10 simulated ms, so the
        // adoption curve lands on the recorder's tick grid.
        core::ScenarioSpec rollout;
        rollout.name = "validation-rollout";
        rollout.description = "hijacked fraction vs validation deployment, AS by AS";
        rollout.grid.axis("order", {0, 1});  // 0 = top-down, 1 = bottom-up
        rollout.body = [](core::RunContext& ctx) {
          auto h = routing::make_hierarchy(ctx.rng(), 3, 8, 24);
          const AsId victim = h.stubs[0];
          const AsId attacker = h.stubs.back();
          std::vector<AsId> order;
          auto append = [&order](const std::vector<AsId>& v) {
            order.insert(order.end(), v.begin(), v.end());
          };
          if (ctx.param("order") == 0) {
            append(h.tier1), append(h.tier2), append(h.stubs);
          } else {
            append(h.stubs), append(h.tier2), append(h.tier1);
          }
          // The attacker won't deploy a defense against itself.
          order.erase(std::remove(order.begin(), order.end(), attacker), order.end());

          auto* rec = ctx.timeseries();
          routing::HijackOutcome cur;
          double share = 0;
          if (rec != nullptr) {
            rec->probe("hijacked_fraction", [&cur] { return cur.capture_fraction; });
            rec->probe("unreachable_fraction", [&cur] {
              return cur.total_ases == 0 ? 0.0
                                         : static_cast<double>(cur.unreachable) /
                                               static_cast<double>(cur.total_ases);
            });
            rec->probe("validator_share", [&share] { return share; });
          }
          std::vector<AsId> validators;
          double initial = 0, half_step = -1;
          for (std::size_t step = 0; step <= order.size(); ++step) {
            if (step > 0) {
              validators.push_back(order[step - 1]);
              std::sort(validators.begin(), validators.end());
            }
            share = static_cast<double>(validators.size()) /
                    static_cast<double>(order.size());
            cur = routing::simulate_hijack_partial(h.graph, victim, attacker, validators);
            if (step == 0) initial = cur.capture_fraction;
            if (half_step < 0 && cur.capture_fraction <= initial / 2) {
              half_step = static_cast<double>(step);
            }
            if (rec != nullptr) {
              rec->maybe_sample(sim::SimTime::millis(10 * (static_cast<std::int64_t>(step) + 1)));
            }
          }
          if (rec != nullptr) {
            // Hold the fully-deployed state so the flat tail is visible to
            // the convergence detector.
            rec->maybe_sample(sim::SimTime::millis(600));
            rec->finish(sim::SimTime::millis(600));
          }
          ctx.put("capture_initial", initial);
          ctx.put("capture_final", cur.capture_fraction);
          ctx.put("steps_to_halve", half_step);
        };
        bh.scenario(rollout, [](const core::SweepResult& res) {
          std::cout << "\nIncremental origin-validation rollout (one AS per step)\n\n";
          const char* names[] = {"top-down (tier-1 first)", "bottom-up (stubs first)"};
          core::Table t({"deploy-order", "initial-capture", "final-capture",
                         "steps-to-halve"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({std::string(names[p]), res.mean(p, "capture_initial"),
                       res.mean(p, "capture_final"), res.mean(p, "steps_to_halve")});
          }
          t.print(std::cout);
          std::cout << "\nDeployment order is itself a tussle outcome: the same validator\n"
                       "count protects far more of the network when the transit core\n"
                       "moves first.\n";
        });

        core::ScenarioSpec pairs;
        pairs.name = "stub-pair-sweep";
        pairs.description = "mean capture across 10 random victim/attacker stub pairs";
        pairs.body = [](core::RunContext& ctx) {
          auto h = routing::make_hierarchy(ctx.rng(), 3, 8, 24);
          for (bool validation : {false, true}) {
            double total = 0;
            int n = 0;
            for (std::size_t i = 0; i + 1 < h.stubs.size() && n < 10; i += 2, ++n) {
              auto r =
                  routing::simulate_hijack(h.graph, h.stubs[i], h.stubs[i + 1], validation);
              total += r.capture_fraction;
            }
            ctx.put(std::string("mean_capture.validation_") + (validation ? "on" : "off"),
                    total / n);
          }
        };
        bh.scenario(pairs, [&bh](const core::SweepResult& res) {
          std::cout << "\nMean capture across 10 random victim/attacker stub pairs\n\n";
          core::Table t({"validation", "mean-capture-fraction"});
          for (const char* k : {"off", "on"}) {
            const std::string key = std::string("mean_capture.validation_") + k;
            t.add_row({std::string(k), res.mean(0, key)});
            bh.metrics().gauge(key, res.mean(0, key));
          }
          t.print(std::cout);

          std::cout << "\nReading: the 'one right answer' design school works — when the\n"
                       "right answer (the legitimate origin) can be authenticated. The\n"
                       "tussle moves to who runs the trust anchor.\n";
        });

        // Data-plane realization of the same tussle: install the converged
        // (possibly hijacked) forwarding state on a real Network — one node
        // per AS, one link per graph edge — and let probe packets vote with
        // their feet. This is the case the scale profiler measures: each AS
        // is a provisional PDES shard, the inter-AS links carry its
        // lookahead, and probe fan-in is its cross-shard traffic.
        core::ScenarioSpec capture;
        capture.name = "data-plane-capture";
        capture.description = "probe packets routed under hijacked vs validated FIBs";
        capture.body = [](core::RunContext& ctx) {
          auto h = routing::make_hierarchy(ctx.rng(), 3, 8, 24);
          const AsId victim = h.stubs[0];
          const AsId attacker = h.stubs.back();
          const net::Address victim_addr{victim, 1, 1, false};
          for (bool validation : {false, true}) {
            sim::Simulator sim(ctx.rng().next_u64());
            ctx.instrument(sim);
            net::Network net(sim);

            std::map<AsId, net::NodeId> node_of;
            auto add_all = [&](const std::vector<AsId>& ases) {
              for (const AsId as : ases) node_of[as] = net.add_node(as);
            };
            add_all(h.tier1), add_all(h.tier2), add_all(h.stubs);
            // Peering links are longer than customer hauls, so the PDES
            // lookahead distribution has two modes.
            for (const auto& [as, nid] : node_of) {
              for (const auto& [nbr, rel] : h.graph.neighbors(as)) {
                if (as < nbr) {
                  net.connect(nid, node_of.at(nbr), 1e9,
                              sim::Duration::millis(rel == routing::Rel::kPeer ? 3 : 1));
                }
              }
            }
            std::map<AsId, std::map<AsId, net::IfIndex>> iface;
            for (const auto& [as, nid] : node_of) {
              for (const auto& [peer, ifx] : net.neighbors(nid)) {
                iface[as][net.node(peer).as()] = ifx;
              }
            }

            routing::PathVector pv(h.graph);
            const auto out = pv.compute_with_origins({victim, attacker}, validation, victim);
            for (const auto& [as, route] : out.routes) {
              if (!route.valid() || as == victim || as == attacker) continue;
              net.node(node_of.at(as))
                  .forwarding()
                  .set_prefix_route(net::prefix_of(victim_addr),
                                    iface.at(as).at(route.next_hop));
            }

            // The hijacker answers for the stolen prefix exactly like the
            // victim does — capture is indistinguishable at the endpoint.
            std::size_t to_victim = 0, to_attacker = 0;
            net.node(node_of.at(victim)).add_address(victim_addr);
            net.node(node_of.at(attacker)).add_address(victim_addr);
            net.node(node_of.at(victim))
                .set_local_handler([&to_victim](const net::Packet&) { ++to_victim; });
            net.node(node_of.at(attacker))
                .set_local_handler([&to_attacker](const net::Packet&) { ++to_attacker; });

            // Each stub sends a probe train toward the stolen prefix. The
            // trains are injected with schedule_for(stub AS) so every probe
            // executes on its source's logical process: under --shards the
            // stubs originate concurrently and only the packets cross shard
            // boundaries, which is exactly the workload shape the sharded
            // backend is built for (~300 events per 1 ms lookahead window).
            std::size_t sent = 0;
            int stagger = 0;
            for (const AsId s : h.stubs) {
              if (s == victim || s == attacker) continue;
              const net::NodeId nid = node_of.at(s);
              for (int k = 0; k < 256; ++k) {
                sim.schedule_for(static_cast<sim::ShardId>(s),
                                 sim::Duration::micros(500 + 100 * (stagger % 7) +
                                                       500 * k),
                                 sim::TaskTag{"bench.hijack", "probe"},
                                 [&net, nid, victim_addr, s] {
                                   net::Packet p;
                                   p.src = net::Address{s, 1, 1, false};
                                   p.dst = victim_addr;
                                   p.proto = net::AppProto::kWeb;
                                   net.node(nid).originate(p);
                                 });
                ++sent;
              }
              ++stagger;
            }
            ctx.add_events(sim.run());

            const std::string k = validation ? "on." : "off.";
            ctx.put(k + "probes", static_cast<double>(sent));
            ctx.put(k + "to_attacker", static_cast<double>(to_attacker));
            ctx.put(k + "to_victim", static_cast<double>(to_victim));
            ctx.put(k + "capture_fraction",
                    sent > 0 ? static_cast<double>(to_attacker) / static_cast<double>(sent)
                             : 0.0);
          }
        };
        bh.scenario(capture, [](const core::SweepResult& res) {
          std::cout << "\nData-plane capture: probes from every stub toward the victim "
                       "prefix\n\n";
          core::Table t({"validation", "probes", "to-victim", "to-attacker",
                         "capture-fraction"});
          for (const char* k : {"off", "on"}) {
            const std::string pre = std::string(k) + ".";
            t.add_row({std::string(k),
                       static_cast<long long>(res.mean(0, pre + "probes")),
                       static_cast<long long>(res.mean(0, pre + "to_victim")),
                       static_cast<long long>(res.mean(0, pre + "to_attacker")),
                       res.mean(0, pre + "capture_fraction")});
          }
          t.print(std::cout);
        });
      });
}
