// X3 — The highest-level principle, measured (§IV).
//
// "Design for tussle — for variation in outcome — so that the outcome can
// be different in different places ... Rigid designs will be broken;
// designs that permit variation will flex under pressure and survive."
//
// Two designs of the same application protocol cross three regulatory
// regions. Design A is rigid: cleartext mandated, no knobs. Design B has a
// run-time choice point (encrypt or not). Same code, same regions — we
// measure per-region delivery, the outcome-variation index, and survival.
#include <iostream>

#include "core/choice.hpp"
#include "core/report.hpp"
#include "harness.hpp"
#include "net/topology.hpp"
#include "policy/packet_adapter.hpp"
#include "routing/link_state.hpp"

using namespace tussle;
using net::Address;
using net::NodeId;

namespace {

/// Region regime: 0 = liberal (no filtering), 1 = commercial DPI (drops
/// visible p2p), 2 = strict (drops visible p2p AND all visible opacity...
/// but commercial pressure caps enforcement at 80% of links).
double run_region(int regime, bool design_has_choice, core::ChoicePoint* choices,
                  const std::string& region_name, core::RunContext& ctx) {
  sim::Simulator sim(ctx.rng().next_u64());
  ctx.instrument(sim);
  net::Network net(sim);
  auto ids = net::build_star(net, 2, 1, net::LinkSpec{});
  std::vector<Address> addrs;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
    net.node(ids[i]).add_address(a);
    addrs.push_back(a);
  }
  routing::LinkState ls(net);
  ls.install_routes(ids);

  if (regime >= 1) {
    policy::PolicySet ps(policy::standard_packet_ontology(), policy::Effect::kPermit);
    ps.add("no-p2p", policy::Effect::kDeny, "proto == 'p2p'", "application");
    if (regime >= 2) ps.add("no-opacity", policy::Effect::kDeny, "opaque", "security");
    net.node(ids[0]).add_filter(policy::make_packet_filter("regulator", false, ps));
  }

  // Users adapt *within the design*: with the choice point they encrypt
  // exactly when the regime punishes cleartext (and in regime 2, where
  // opacity is also punished, they choose cleartext again as the less-bad
  // option — rational adaptation, not magic).
  const bool encrypt = design_has_choice && regime == 1;
  if (choices) {
    choices->select("users-of-" + region_name, encrypt ? "encrypted" : "cleartext");
  }

  const int n = 100;
  for (int i = 0; i < n; ++i) {
    sim.schedule(sim::Duration::millis(2 * i), [&net, &addrs, &ids, encrypt]() {
      net::Packet p;
      p.src = addrs[1];
      p.dst = addrs[2];
      p.proto = net::AppProto::kP2p;
      p.encrypted = encrypt;
      net.node(ids[1]).originate(std::move(p));
    });
  }
  ctx.add_events(sim.run());
  return static_cast<double>(net.counters().delivered.value()) / n;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"X3", "SIV design for choice (extension)",
       "The same application crosses three regulatory regions. The rigid\n"
       "design breaks wherever pressure exists; the design with a run-time\n"
       "choice point flexes — variation in outcome is the survival margin."},
      [](bench::Harness& h) {
        // One run per design: the ChoicePoint accumulates each region's
        // selection, so the three regions stay inside a single body.
        core::ScenarioSpec regions;
        regions.name = "three-regions";
        regions.description = "rigid vs choice-ful design across three regimes";
        regions.grid.axis("has_choice", {0, 1});
        regions.body = [](core::RunContext& ctx) {
          const char* region_names[] = {"liberal", "commercial-dpi", "strict"};
          const bool has_choice = ctx.param("has_choice") > 0.5;
          core::ChoicePoint cp("transport-privacy", {"cleartext", "encrypted"});
          std::vector<double> per_region;
          for (int regime = 0; regime < 3; ++regime) {
            per_region.push_back(
                run_region(regime, has_choice, &cp, region_names[regime], ctx));
          }
          ctx.put("liberal_delivery", per_region[0]);
          ctx.put("commercial_delivery", per_region[1]);
          ctx.put("strict_delivery", per_region[2]);
          ctx.put("mean_delivery", (per_region[0] + per_region[1] + per_region[2]) / 3.0);
          ctx.put("outcome_variation", core::outcome_variation(per_region));
          ctx.put("choice_index", cp.choice_index());
        };
        h.scenario(regions, [&h](const core::SweepResult& res) {
          core::Table t({"design", "liberal", "commercial-dpi", "strict", "mean-delivery",
                         "outcome-variation", "choice-index"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            const bool has_choice = res.points[p].get("has_choice") > 0.5;
            t.add_row({std::string(has_choice ? "with choice point"
                                              : "rigid (cleartext only)"),
                       res.mean(p, "liberal_delivery"), res.mean(p, "commercial_delivery"),
                       res.mean(p, "strict_delivery"), res.mean(p, "mean_delivery"),
                       res.mean(p, "outcome_variation"), res.mean(p, "choice_index")});
            h.metrics().gauge(std::string(has_choice ? "choice" : "rigid") +
                                  ".mean_delivery",
                              res.mean(p, "mean_delivery"));
            h.metrics().gauge(std::string(has_choice ? "choice" : "rigid") +
                                  ".outcome_variation",
                              res.mean(p, "outcome_variation"));
          }
          t.print(std::cout);

          std::cout << "\nReading: the flexible design survives the commercial region\n"
                       "outright (delivery 1.0 vs 0.0) because users could adapt inside\n"
                       "the protocol. Against the strict regime both designs lose —\n"
                       "'policy will probably trump technology in any case' (SVI-A) —\n"
                       "but the choice-ful design made the regime *pay the visibility\n"
                       "cost* of banning opacity outright.\n";
        });
      });
}
