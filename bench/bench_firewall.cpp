// E6 — Trust-mediated transparency (§V-B).
//
// Paper claims: (a) users demand protection, so firewalls exist and won't
// go away; (b) classic "that which is not permitted is forbidden" firewalls
// also kill new applications — the innovation cost purists bemoan;
// (c) a *trust-aware* firewall keys on who is communicating instead of what
// protocol is run, recovering new-app transparency for trusted peers.
#include <iostream>
#include <map>

#include "apps/mux.hpp"
#include "core/report.hpp"
#include "harness.hpp"
#include "net/topology.hpp"
#include "policy/packet_adapter.hpp"
#include "routing/link_state.hpp"
#include "trust/firewall.hpp"

using namespace tussle;
using net::Address;
using net::NodeId;

namespace {

/// Star: hub router, leaf 1 = server; leaves 2-4 good users; leaf 5 attacker.
void run_variant(int variant, core::RunContext& ctx) {
  sim::Simulator sim(ctx.rng().next_u64());
  ctx.instrument(sim);
  net::Network net(sim);
  auto ids = net::build_star(net, 5, 1, net::LinkSpec{});
  std::vector<Address> addrs;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
    net.node(ids[i]).add_address(a);
    addrs.push_back(a);
  }
  routing::LinkState ls(net);
  ls.install_routes(ids);

  // Identity & reputation substrate shared by the trust firewall variants.
  trust::IdentityFramework framework;
  trust::ReputationSystem reputation;
  std::map<Address, trust::Identity> bindings;
  for (int u = 2; u <= 4; ++u) {
    bindings[addrs[static_cast<std::size_t>(u)]] =
        trust::Identity{trust::IdentityScheme::kPseudonymous, "user" + std::to_string(u), ""};
    for (int k = 0; k < 10; ++k) reputation.record("peer", "user" + std::to_string(u), true);
  }
  bindings[addrs[5]] = trust::Identity{trust::IdentityScheme::kPseudonymous, "attacker", ""};
  for (int k = 0; k < 10; ++k) reputation.record("victims", "attacker", false);

  std::unique_ptr<trust::TrustFirewall> fw_storage;  // must outlive sim.run()

  if (variant == 1) {
    // Protocol firewall: permit web+mail, default deny. The paper's
    // "that which is not permitted is forbidden".
    policy::PolicySet ps(policy::standard_packet_ontology(), policy::Effect::kDeny);
    ps.add("allow-web", policy::Effect::kPermit, "proto == 'web'", "application");
    ps.add("allow-mail", policy::Effect::kPermit, "proto == 'mail'", "application");
    net.node(ids[0]).add_filter(
        policy::make_packet_filter("protocol-fw", true, std::move(ps)));
  } else if (variant >= 2) {
    trust::TrustFirewallConfig cfg;
    cfg.min_reputation = 0.3;
    cfg.accept_unknown = true;
    cfg.authority = variant == 3 ? trust::PolicyAuthority::kEndUser
                                 : trust::PolicyAuthority::kNetworkAdmin;
    fw_storage = std::make_unique<trust::TrustFirewall>(
        "trust-fw", cfg, framework, reputation,
        [&bindings](const Address& a) -> std::optional<trust::Identity> {
          auto it = bindings.find(a);
          if (it == bindings.end()) return std::nullopt;
          return it->second;
        });
    if (variant == 3) fw_storage->user_whitelist("attacker");  // user's own call
    fw_storage->set_trace_clock([&sim]() { return sim.now(); });
    net.node(ids[0]).add_filter(fw_storage->as_filter());
  }

  int attack_delivered = 0, known_app_delivered = 0, novel_app_delivered = 0;
  auto mux = apps::AppMux::install(net.node(ids[1]));
  mux->set_handler(net::AppProto::kWeb, [&](const net::Packet&) { ++known_app_delivered; });
  mux->set_default([&](const net::Packet& p) {
    if (p.payload_tag == "novel") ++novel_app_delivered;
    if (p.payload_tag == "attack") ++attack_delivered;
  });

  int seq = 0;
  int attack_sent = 0, novel_sent = 0, web_sent = 0;
  auto send = [&](int leaf, net::AppProto proto, const char* tag) {
    // Paced so the access queues never congest: this experiment is about
    // filtering policy, not queueing.
    sim.schedule(sim::Duration::millis(2) * static_cast<double>(++seq),
                 [&net, &addrs, &ids, &attack_sent, &novel_sent, &web_sent, leaf, proto,
                  tag]() {
      const std::string_view t(tag);
      if (t == "attack") ++attack_sent;
      else if (t == "novel") ++novel_sent;
      else ++web_sent;
      net::Packet p;
      p.src = addrs[static_cast<std::size_t>(leaf)];
      p.dst = addrs[1];
      p.proto = proto;
      p.payload_tag = tag;
      net.node(ids[static_cast<std::size_t>(leaf)]).originate(std::move(p));
    });
  };
  for (int u = 2; u <= 4; ++u) {
    for (int k = 0; k < 20; ++k) send(u, net::AppProto::kWeb, "browsing");
    // The unproven new application (§VI-A: new apps need transparency).
    for (int k = 0; k < 10; ++k) send(u, net::AppProto::kUnknown, "novel");
  }
  for (int k = 0; k < 60; ++k) send(5, net::AppProto::kUnknown, "attack");

  // Telemetry: the filtering tussle as it unfolds — cumulative deliveries
  // and the block rate each traffic class experiences. The last send goes
  // out at 540ms; 600ms covers delivery of everything in flight.
  if (auto* rec = ctx.timeseries()) {
    auto block_rate = [](const int& sent, const int& delivered) {
      return sent == 0 ? 0.0 : 1.0 - static_cast<double>(delivered) / sent;
    };
    rec->probe("attack_delivered", [&] { return attack_delivered; });
    rec->probe("novel_app_delivered", [&] { return novel_app_delivered; });
    rec->probe("known_app_delivered", [&] { return known_app_delivered; });
    rec->probe("attack_block_rate",
               [&, block_rate] { return block_rate(attack_sent, attack_delivered); });
    rec->probe("novel_block_rate",
               [&, block_rate] { return block_rate(novel_sent, novel_app_delivered); });
    rec->attach(sim, sim::SimTime::millis(600));
  }
  ctx.add_events(sim.run());
  ctx.put("attack_delivered", attack_delivered);
  ctx.put("known_app_delivered", known_app_delivered);
  ctx.put("novel_app_delivered", novel_app_delivered);
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E6", "SV-B trust (firewalls)",
       "Protocol firewalls stop attacks but also the next new application;\n"
       "trust-mediated firewalls key on WHO, recovering innovation for\n"
       "reputable peers. Who holds the whitelist is a governance knob."},
      [](bench::Harness& h) {
        core::ScenarioSpec fw;
        fw.name = "firewall-variants";
        fw.description = "attack vs known-app vs novel-app delivery per firewall design";
        fw.grid.axis("variant", {0, 1, 2, 3});
        fw.body = [](core::RunContext& ctx) {
          run_variant(static_cast<int>(ctx.param("variant")), ctx);
        };
        h.scenario(fw, [&h](const core::SweepResult& res) {
          const char* names[] = {"no firewall", "protocol firewall (default-deny)",
                                 "trust-aware firewall", "trust-aware + user whitelist"};
          core::Table t({"variant", "attack-delivered/60", "known-app/60", "novel-app/30"});
          double attacks = 0, novel = 0;
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({std::string(names[p]),
                       static_cast<long long>(res.mean(p, "attack_delivered")),
                       static_cast<long long>(res.mean(p, "known_app_delivered")),
                       static_cast<long long>(res.mean(p, "novel_app_delivered"))});
            attacks += res.mean(p, "attack_delivered");
            novel += res.mean(p, "novel_app_delivered");
          }
          h.metrics().counter("attack.delivered").add(attacks);
          h.metrics().counter("novel.delivered").add(novel);
          t.print(std::cout);
          std::cout << "\nRow 4 shows the governance tussle: the end user CAN choose to\n"
                       "accept the attacker's traffic when the user holds authority.\n";
        });
      });
}
