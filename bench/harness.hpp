// Shared experiment-binary harness.
//
// A bench declares its cases once, as core::ScenarioSpec values, and the
// harness supplies the entire command-line surface every experiment binary
// shares:
//
//   --list              print the declared cases and exit
//   --case <name>       run only the named case
//   --replicas <n>      override every case's replica count
//   --seed <s>          base seed for the run-index RNG streams (default 1)
//   --jobs <n>          worker threads for the sweep engine
//                       (default: $TUSSLE_JOBS, else hardware_concurrency)
//   --shards <k>        in-run parallel execution: run each simulator on a
//                       k-worker sharded PDES backend (sim/
//                       sharded_backend.hpp; default $TUSSLE_SHARDS, else 0
//                       = serial). Auto --jobs drops to 1 under --shards so
//                       the two parallelism axes do not multiply; --trace
//                       and the span flags force the serial backend.
//                       --heartbeat works under --shards: the coordinator
//                       reports per-window progress between barriers.
//   --json <path>       write metrics + wall time + event totals + hotspots
//                       as one JSON object (the BENCH_*.json trajectory)
//   --trace <path>      stream flow/decision trace events as JSONL
//   --trace-level <lvl> debug|info|warn|error (default info)
//   --profile           print the top-k event-loop hotspot table to stderr
//   --heartbeat <sec>   periodic progress line on instrumented simulators
//   --chrome-trace <p>  write causal spans as Chrome trace-event JSON
//                       (loadable in Perfetto / chrome://tracing)
//   --span-tree <path>  write the causal span forest as an indented text
//                       report ("-" = stdout)
//   --explain <flow>    narrate one flow's causal tree to stdout: path
//                       taken, decisions made, who was compensated
//   --timeseries <sec>  sample instrumented time series every <sec> of
//                       simulated time (default 0.02 when an export flag
//                       below is given without --timeseries)
//   --ts-csv <path>     write the merged time series as long-format CSV
//   --ts-json <path>    write the merged time series + per-series
//                       convergence/oscillation analysis as JSON
//   --dashboard <path>  write a self-contained HTML dashboard (inline SVG,
//                       no external assets or scripts)
//   --audit             run every simulator under the cross-shard access
//                       auditor (sim/shard_audit.hpp); a handler mutating
//                       another shard's state fails the bench with a
//                       causal report. TUSSLE_AUDIT=1 does the same.
//   --audit-json <p>    also write the merged shard-audit report as JSON
//                       (implies --audit)
//   --scale-profile     run every simulator under the PDES-readiness scale
//                       profiler (sim/scale_profile.hpp): per-shard load,
//                       cross-shard traffic, critical path, queue/memory
//                       churn, predicted barrier-round speedup. Attaches a
//                       fail-soft auditor for shard attribution when
//                       --audit was not also given.
//   --scale-json <p>    write the merged scale report as JSON (implies
//                       --scale-profile); byte-identical at any --jobs
//   --scale-dashboard <p>  write the scale report as a self-contained HTML
//                       dashboard (implies --scale-profile)
//   --exec-profile      run every simulator under the execution profiler
//                       (sim/exec_profile.hpp): wall-clock barrier-window
//                       and per-worker dispatch/drain/barrier timings,
//                       outbox volumes, measured-vs-predicted speedup.
//                       Wall-clock data — NOT byte-identical across runs.
//   --exec-json <p>     write the exec report (with its validation block)
//                       as JSON (implies --exec-profile)
//   --exec-trace <p>    write worker wall-time tracks as Chrome trace-event
//                       JSON, loadable in Perfetto (implies --exec-profile)
//   --exec-dashboard <p>  write the exec report as a self-contained HTML
//                       dashboard (implies --exec-profile)
//   --mem-profile       run every simulator under the memory profiler
//                       (sim/mem_profile.hpp): per-component allocation
//                       sites and live bytes, object lifetimes in sim
//                       time, pointer-chase/locality scores, per-shard
//                       footprint. Sim-deterministic units only, so the
//                       report is byte-identical at any --jobs/--shards.
//                       Attaches a fail-soft auditor for footprint
//                       attribution when --audit was not also given.
//   --mem-json <p>      write the merged memory report as JSON (implies
//                       --mem-profile); byte-identical at any --jobs
//   --mem-dashboard <p> write the memory report as a self-contained HTML
//                       dashboard (implies --mem-profile)
//
// Determinism contract: metric output is bit-identical for a given
// (--seed, --replicas) at any --jobs, because each run draws from
// sim::Rng::stream(seed, run_index) and results merge in run-index order
// (see core/sweep.hpp). Likewise at any --shards k >= 1: all per-owner
// state (queues, RNG streams, counter lanes) is keyed by owner and merged
// in owner order, never by worker. Sharded (k >= 1) and serial (k = 0)
// runs use different event interleavings and id namespaces, so their
// outputs are each internally stable but not comparable to each other. --trace and --heartbeat force --jobs 1: both write
// to shared sinks mid-run. --profile, the span flags, and the time-series
// flags do not — each run profiles/records into its own
// LoopProfiler/SpanTracer/TimeSeriesRecorder and the harness merges them
// in run order, so those exports too are --jobs-independent.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "parallel_options.hpp"
#include "sim/metric_registry.hpp"
#include "sim/profiler.hpp"
#include "sim/shard_audit.hpp"
#include "sim/trace.hpp"

namespace tussle::bench {

/// The experiment banner, unchanged from core::print_experiment_header.
struct Experiment {
  std::string id;
  std::string section;
  std::string claim;
};

class Harness {
 public:
  using Render = std::function<void(const core::SweepResult&)>;

  /// Declares one case and — unless --list is active or --case selects a
  /// different one — runs it through the sweep engine with the harness's
  /// seed/replicas/jobs, publishes per-point aggregates into metrics() as
  /// gauges named "<case>[.<params>].<key>[.<stat>]", then hands the full
  /// result to `render` for table/prose output. Returns the result (empty
  /// when the case was skipped).
  core::SweepResult scenario(const core::ScenarioSpec& spec, const Render& render = nullptr);

  /// Scenario metrics destined for the JSON report. scenario() fills this
  /// automatically; benches may add extra gauges of their own.
  sim::MetricRegistry& metrics() noexcept { return metrics_; }

  /// The merged event-loop profile across every profiled run.
  sim::LoopProfiler& profiler() noexcept { return profiler_; }

  /// The merged causal-span archive (runs folded in run-index order);
  /// empty unless a span flag was given. Scenario bodies opt in by wiring
  /// ctx.spans() into the components they build.
  sim::SpanTracer& spans() noexcept { return spans_; }
  /// True when --chrome-trace/--span-tree/--explain asked for spans.
  bool spans_requested() const noexcept { return spans_requested_; }

  /// The merged time-series store: every run's recorder folded in
  /// run-index order under "<case>[.<params>][.r<replica>]." prefixes;
  /// empty unless a time-series flag was given. Scenario bodies opt in via
  /// ctx.timeseries().
  sim::TimeSeriesStore& timeseries() noexcept { return timeseries_; }
  /// True when --timeseries/--ts-csv/--ts-json/--dashboard was given.
  bool timeseries_requested() const noexcept { return timeseries_seconds_ > 0; }

  /// The merged shard-audit across every audited run (run-index order);
  /// empty unless --audit / TUSSLE_AUDIT was given. Scenario bodies opt in
  /// by calling ctx.instrument(sim) — the same call that wires the
  /// profiler — and by handing ctx.audit() to shared components.
  sim::ShardAuditor& audit() noexcept { return audit_; }
  /// True when --audit/--audit-json or TUSSLE_AUDIT=1 asked for auditing.
  bool audit_requested() const noexcept { return audit_requested_; }

  /// The merged scale profile across every profiled run (run-index order);
  /// empty unless a --scale flag was given. Like the auditor, scenario
  /// bodies opt in via ctx.instrument(sim).
  sim::ScaleProfiler& scale() noexcept { return scale_; }
  /// True when --scale-profile/--scale-json/--scale-dashboard was given.
  bool scale_requested() const noexcept { return scale_requested_; }

  /// The merged execution (wall-clock) profile across every profiled run
  /// (run-index order); empty unless an --exec flag was given. Scenario
  /// bodies opt in via ctx.instrument(sim). Exec reports are exempt from
  /// the byte-identity contract — the harness writes them to their own
  /// files, never into the .metrics object.
  sim::ExecProfiler& exec() noexcept { return exec_; }
  /// True when --exec-profile/--exec-json/--exec-trace/--exec-dashboard
  /// was given.
  bool exec_requested() const noexcept { return exec_requested_; }

  /// The merged memory profile across every profiled run (run-index
  /// order); empty unless a --mem flag was given. Scenario bodies opt in
  /// via ctx.instrument(sim). Sim-deterministic throughout, so the merged
  /// report is byte-identical at any --jobs and --shards.
  sim::MemProfiler& mem() noexcept { return mem_; }
  /// True when --mem-profile/--mem-json/--mem-dashboard was given.
  bool mem_requested() const noexcept { return mem_requested_; }

  /// Adds to the run's total simulated-event count for engines that run
  /// outside the sweep bodies (sweep runs report via ctx.add_events()).
  void add_events(std::size_t n) noexcept { extra_events_ += n; }

  bool json_requested() const noexcept { return !json_path_.empty(); }
  bool list_requested() const noexcept { return list_; }

  std::uint64_t seed() const noexcept { return parallel_.seed; }
  std::size_t jobs() const noexcept { return parallel_.jobs; }
  /// Requested in-run shard count (0 = serial backend). Serial-only sinks
  /// (--trace/span flags) override it per scenario; --heartbeat does not.
  std::size_t shards() const noexcept { return parallel_.shards; }

 private:
  friend int run(int argc, char** argv, const Experiment& exp,
                 const std::function<void(Harness&)>& body);

  struct Case {
    std::string name;
    std::string description;
  };

  sim::MetricRegistry metrics_;
  sim::LoopProfiler profiler_;
  sim::SpanTracer spans_;
  sim::TimeSeriesStore timeseries_;
  sim::ShardAuditor audit_;
  sim::ScaleProfiler scale_;
  sim::ExecProfiler exec_;
  sim::MemProfiler mem_;
  double timeseries_seconds_ = 0;  ///< 0 = no recorders
  bool spans_requested_ = false;
  bool audit_requested_ = false;
  bool scale_requested_ = false;
  bool exec_requested_ = false;
  bool mem_requested_ = false;
  std::vector<Case> cases_;
  std::size_t extra_events_ = 0;
  std::size_t sweep_events_ = 0;
  bool profile_to_stderr_ = false;
  bool serial_required_ = false;  ///< --trace/--heartbeat share global sinks (forces --jobs 1)
  bool shards_blocked_ = false;   ///< --trace/span flags need the serial backend
  double heartbeat_seconds_ = 0;
  std::string json_path_;
  bool list_ = false;
  std::string case_filter_;
  bool case_matched_ = false;
  /// Resolved seed/jobs/replicas/shards (flag > env > default); see
  /// bench/parallel_options.hpp for the ladder and the jobs-x-shards rule.
  ParallelOptions parallel_;
};

/// Parses flags, prints the banner, runs `body` (which declares cases via
/// Harness::scenario), then emits whatever machine-readable output was
/// requested. Returns the process exit code.
int run(int argc, char** argv, const Experiment& exp,
        const std::function<void(Harness&)>& body);

}  // namespace tussle::bench
