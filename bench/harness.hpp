// Shared experiment-binary harness.
//
// Every table bench used to carry its own main(): print the banner, build
// tables, exit. The harness keeps that human output byte-for-byte identical
// (stdout is untouched unless a flag asks for more) and adds the
// machine-readable layer on top:
//
//   --json <path>       write metrics + wall time + event totals + hotspots
//                       as one JSON object (the BENCH_*.json trajectory)
//   --trace <path>      stream flow/decision trace events as JSONL
//   --trace-level <lvl> debug|info|warn|error (default info)
//   --profile           print the top-k event-loop hotspot table to stderr
//   --heartbeat <sec>   periodic progress line (sim-time, events/s) on
//                       instrumented simulators, every <sec> of sim-time
//
// A bench wires its simulators in with h.instrument(sim) and publishes
// result values through h.metrics(); both are no-ops costing one branch
// when no observability flag is given.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "sim/metric_registry.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace tussle::bench {

/// The experiment banner, unchanged from core::print_experiment_header.
struct Experiment {
  std::string id;
  std::string section;
  std::string claim;
};

class Harness {
 public:
  /// Scenario metrics destined for the JSON report. Counters, summaries,
  /// gauges — anything the bench wants CI to track over time.
  sim::MetricRegistry& metrics() noexcept { return metrics_; }

  /// The shared event-loop profiler (attached to simulators on demand).
  sim::LoopProfiler& profiler() noexcept { return profiler_; }

  /// Attaches the observability hooks requested on the command line to a
  /// simulator: the profiler when JSON/profile output was asked for, the
  /// heartbeat when --heartbeat was given. Without flags this does
  /// nothing, so the default run is exactly the pre-harness binary.
  void instrument(sim::Simulator& sim);

  /// Adds to the run's total simulated-event count. instrument()ed
  /// simulators are counted automatically (via the profiler); benches
  /// whose engines bypass the Simulator can add their own totals.
  void add_events(std::size_t n) noexcept { extra_events_ += n; }

  bool json_requested() const noexcept { return !json_path_.empty(); }

 private:
  friend int run(int argc, char** argv, const Experiment& exp,
                 const std::function<void(Harness&)>& body);

  sim::MetricRegistry metrics_;
  sim::LoopProfiler profiler_;
  std::size_t extra_events_ = 0;
  bool profile_to_stderr_ = false;
  double heartbeat_seconds_ = 0;
  std::string json_path_;
};

/// Parses flags, prints the banner, runs `body`, then emits whatever
/// machine-readable output was requested. Returns the process exit code.
int run(int argc, char** argv, const Experiment& exp,
        const std::function<void(Harness&)>& body);

}  // namespace tussle::bench
