// E8 — Modularize along tussle boundaries: the DNS ablation (§IV-A).
//
// Paper claim: because DNS names express trademark AND locate machines AND
// route mail, the trademark tussle distorts unrelated functions. Separating
// the planes confines disputes to the brand directory. We replay identical
// lookup workloads against both designs and sweep the dispute rate.
#include <iostream>

#include "core/report.hpp"
#include "core/tussle_space.hpp"
#include "harness.hpp"
#include "names/name_system.hpp"
#include "names/workload.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E8", "SIV-A modularize along tussle boundaries (DNS)",
       "Entangled naming lets trademark disputes break machine lookups and\n"
       "mail; modularized naming confines the damage to brand lookups."},
      [](bench::Harness& h) {
        core::ScenarioSpec ablation;
        ablation.name = "dns-ablation";
        ablation.description = "spillover vs dispute rate, entangled vs modular naming";
        ablation.grid.axis("disputed_frac", {0.05, 0.10, 0.20, 0.40})
            .axis("design", {0, 1});
        ablation.body = [](core::RunContext& ctx) {
          names::WorkloadConfig cfg;
          cfg.disputed_fraction = ctx.param("disputed_frac");
          names::WorkloadResult r;
          if (ctx.param("design") == 0) {
            names::EntangledNameSystem s;
            r = names::run_workload(s, cfg, ctx.rng());
            ctx.note(s.design());
          } else {
            names::ModularNameSystem s;
            r = names::run_workload(s, cfg, ctx.rng());
            ctx.note(s.design());
          }
          ctx.put("brand_fail", r.brand_failure_rate());
          ctx.put("machine_fail", r.machine_failure_rate());
          ctx.put("mailbox_fail", r.mailbox_failure_rate());
          ctx.put("spillover", r.spillover_rate());
        };
        h.scenario(ablation, [](const core::SweepResult& res) {
          core::Table t({"design", "disputed-frac", "brand-fail", "machine-fail",
                         "mailbox-fail", "SPILLOVER"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({res.run(p, 0).notes.at(0), res.points[p].get("disputed_frac"),
                       res.mean(p, "brand_fail"), res.mean(p, "machine_fail"),
                       res.mean(p, "mailbox_fail"), res.mean(p, "spillover")});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec audit;
        audit.name = "mechanism-audit";
        audit.description = "TussleMap entanglement audit of both naming designs";
        audit.body = [](core::RunContext& ctx) {
          // Architecture-level audit via the TussleMap: which design's
          // mechanisms touch multiple tussle spaces?
          core::TussleMap entangled_map;
          entangled_map.add_mechanism("dns-record",
                                      {"trademark", "machine-location", "mail-routing"});
          core::TussleMap modular_map;
          modular_map.add_mechanism("brand-directory", {"trademark"});
          modular_map.add_mechanism("machine-names", {"machine-location"});
          modular_map.add_mechanism("mailbox-plane", {"mail-routing"});
          ctx.put("entangled.mechanisms",
                  static_cast<double>(entangled_map.mechanisms().size()));
          ctx.put("entangled.multi_space",
                  static_cast<double>(entangled_map.entangled_mechanisms().size()));
          ctx.put("entangled.ratio", entangled_map.entanglement_ratio());
          ctx.put("modular.mechanisms", static_cast<double>(modular_map.mechanisms().size()));
          ctx.put("modular.multi_space",
                  static_cast<double>(modular_map.entangled_mechanisms().size()));
          ctx.put("modular.ratio", modular_map.entanglement_ratio());
        };
        h.scenario(audit, [](const core::SweepResult& res) {
          std::cout << "\nMechanism audit (spaces touched per mechanism)\n\n";
          core::Table t(
              {"design", "mechanisms", "entangled-mechanisms", "entanglement-ratio"});
          for (const char* design : {"entangled", "modular"}) {
            const std::string d = design;
            t.add_row({d, static_cast<long long>(res.mean(0, d + ".mechanisms")),
                       static_cast<long long>(res.mean(0, d + ".multi_space")),
                       res.mean(0, d + ".ratio")});
          }
          t.print(std::cout);

          std::cout << "\nNote the cost asymmetry the paper accepts: the modular design\n"
                       "spends three mechanisms where one 'efficient' mechanism sufficed\n"
                       "(SIV-A: 'solutions that are less efficient from a technical\n"
                       "perspective may do a better job of isolating tussle').\n";
        });
      });
}
