// E8 — Modularize along tussle boundaries: the DNS ablation (§IV-A).
//
// Paper claim: because DNS names express trademark AND locate machines AND
// route mail, the trademark tussle distorts unrelated functions. Separating
// the planes confines disputes to the brand directory. We replay identical
// lookup workloads against both designs and sweep the dispute rate.
#include <iostream>

#include "core/report.hpp"
#include "core/tussle_space.hpp"
#include "harness.hpp"
#include "names/name_system.hpp"
#include "names/workload.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E8", "SIV-A modularize along tussle boundaries (DNS)",
       "Entangled naming lets trademark disputes break machine lookups and\n"
       "mail; modularized naming confines the damage to brand lookups."},
      [](bench::Harness& h) {
  core::Table t({"design", "disputed-frac", "brand-fail", "machine-fail", "mailbox-fail",
                 "SPILLOVER"});
  for (double frac : {0.05, 0.10, 0.20, 0.40}) {
    for (int design = 0; design < 2; ++design) {
      names::WorkloadConfig cfg;
      cfg.disputed_fraction = frac;
      sim::Rng rng(41);
      names::WorkloadResult r;
      std::string label;
      if (design == 0) {
        names::EntangledNameSystem s;
        r = names::run_workload(s, cfg, rng);
        label = s.design();
      } else {
        names::ModularNameSystem s;
        r = names::run_workload(s, cfg, rng);
        label = s.design();
      }
      t.add_row({label, frac, r.brand_failure_rate(), r.machine_failure_rate(),
                 r.mailbox_failure_rate(), r.spillover_rate()});
      if (frac == 0.20) h.metrics().gauge(label + ".spillover", r.spillover_rate());
    }
  }
  t.print(std::cout);

  // Architecture-level audit via the TussleMap: which design's mechanisms
  // touch multiple tussle spaces?
  std::cout << "\nMechanism audit (spaces touched per mechanism)\n\n";
  core::TussleMap entangled_map;
  entangled_map.add_mechanism("dns-record", {"trademark", "machine-location", "mail-routing"});
  core::TussleMap modular_map;
  modular_map.add_mechanism("brand-directory", {"trademark"});
  modular_map.add_mechanism("machine-names", {"machine-location"});
  modular_map.add_mechanism("mailbox-plane", {"mail-routing"});

  core::Table audit({"design", "mechanisms", "entangled-mechanisms", "entanglement-ratio"});
  audit.add_row({std::string("entangled"),
                 static_cast<long long>(entangled_map.mechanisms().size()),
                 static_cast<long long>(entangled_map.entangled_mechanisms().size()),
                 entangled_map.entanglement_ratio()});
  audit.add_row({std::string("modular"),
                 static_cast<long long>(modular_map.mechanisms().size()),
                 static_cast<long long>(modular_map.entangled_mechanisms().size()),
                 modular_map.entanglement_ratio()});
  audit.print(std::cout);

  std::cout << "\nNote the cost asymmetry the paper accepts: the modular design\n"
               "spends three mechanisms where one 'efficient' mechanism sufficed\n"
               "(SIV-A: 'solutions that are less efficient from a technical\n"
               "perspective may do a better job of isolating tussle').\n";
      });
}
