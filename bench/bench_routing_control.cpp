// E4 — Competitive wide-area access: who controls routing (§V-A-4).
//
// Paper claims reproduced here:
//  1. Provider control (BGP/Gao-Rexford) and user control (source routes)
//     have "rough equivalence in the set of expressible policies" — both
//     find paths for the same reachable pairs — "yet very different
//     consequences": users can reach exits providers refuse to expose.
//  2. Source routes fail without payment: off-contract ASes refuse to
//     carry them. Adding a value-flow (PaidTransit) makes them viable.
//  3. Path-vector hides internal choices (visibility comparison).
#include <iostream>

#include "core/report.hpp"
#include "econ/value_flow.hpp"
#include "harness.hpp"
#include "routing/path_vector.hpp"
#include "routing/source_route.hpp"
#include "sim/stats.hpp"

using namespace tussle;
using routing::AsId;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E4", "SV-A-4 competitive wide-area access",
       "Provider routing vs user source routing: similar expressiveness,\n"
       "different tussle outcomes; user routes need payment to be carried."},
      [](bench::Harness& bh) {
        core::ScenarioSpec wide;
        wide.name = "wide-area-access";
        wide.description = "provider vs user routing over a sampled AS hierarchy";
        wide.body = [](core::RunContext& ctx) {
          auto h = routing::make_hierarchy(ctx.rng(), 3, 8, 20);
          routing::PathVector pv(h.graph);
          routing::SourceRouteBuilder builder(h.graph);
          econ::Ledger ledger;
          econ::PaidTransit transit(h.graph, ledger);

          // Sample src-dst stub pairs.
          std::vector<std::pair<AsId, AsId>> pairs;
          for (std::size_t i = 0; i + 1 < h.stubs.size(); i += 2) {
            pairs.emplace_back(h.stubs[i], h.stubs[i + 1]);
          }

          std::size_t provider_reaches = 0, user_reaches = 0, user_extra_choice = 0;
          std::size_t free_routes = 0, refused_unpaid = 0, viable_paid = 0;
          double paid_total = 0;
          sim::Summary provider_len, user_len;

          for (auto [src, dst] : pairs) {
            auto outcome = pv.compute(dst);
            const bool provider_ok = outcome.routes.count(src) != 0;
            if (provider_ok) {
              ++provider_reaches;
              provider_len.observe(
                  static_cast<double>(outcome.routes.at(src).as_path.size()));
            }
            auto paths = builder.k_shortest_paths(src, dst, 4);
            if (!paths.empty()) {
              ++user_reaches;
              user_len.observe(static_cast<double>(paths[0].size()));
              if (paths.size() > 1) ++user_extra_choice;
              for (const auto& p : paths) {
                auto off = builder.off_contract_ases(p);
                if (off.empty()) {
                  ++free_routes;
                } else {
                  ++refused_unpaid;  // without value flow, these are dead letters
                  auto q = transit.quote(p);
                  paid_total += transit.settle("user:" + std::to_string(src), q);
                  ++viable_paid;
                }
              }
            }
          }

          auto vis = routing::compare_visibility(h.graph, pv);
          ctx.put("provider.reachable_pairs", static_cast<double>(provider_reaches));
          ctx.put("user.reachable_pairs", static_cast<double>(user_reaches));
          ctx.put("provider.mean_path_len", provider_len.mean());
          ctx.put("user.mean_path_len", user_len.mean());
          ctx.put("user.extra_choice_pairs", static_cast<double>(user_extra_choice));
          ctx.put("routes.free", static_cast<double>(free_routes));
          ctx.put("routes.refused_unpaid", static_cast<double>(refused_unpaid));
          ctx.put("routes.viable_paid", static_cast<double>(viable_paid));
          ctx.put("user.paid_total", paid_total);
          ctx.put("vis.edges_total", static_cast<double>(vis.edges_total));
          ctx.put("vis.pv_edges_visible", vis.mean_edges_visible_pv);
          ctx.put("vis.ratio", vis.visibility_ratio);
          ctx.put("ledger.total", ledger.total());
        };
        bh.scenario(wide, [&bh](const core::SweepResult& res) {
          core::Table t({"metric", "provider-routing", "user-source-routing"});
          t.add_row({std::string("reachable sample pairs"),
                     static_cast<long long>(res.mean(0, "provider.reachable_pairs")),
                     static_cast<long long>(res.mean(0, "user.reachable_pairs"))});
          t.add_row({std::string("mean path length (ASes)"),
                     res.mean(0, "provider.mean_path_len"),
                     res.mean(0, "user.mean_path_len")});
          t.add_row({std::string("pairs with >1 usable path"), 0LL,
                     static_cast<long long>(res.mean(0, "user.extra_choice_pairs"))});
          t.print(std::cout);

          std::cout << "\nValue flow: candidate user routes by payment status\n\n";
          core::Table pay({"status", "routes", "total-paid"});
          pay.add_row({std::string("valley-free (free of charge)"),
                       static_cast<long long>(res.mean(0, "routes.free")), 0.0});
          pay.add_row({std::string("off-contract, unpaid (refused)"),
                       static_cast<long long>(res.mean(0, "routes.refused_unpaid")), 0.0});
          pay.add_row({std::string("off-contract, settled via ledger"),
                       static_cast<long long>(res.mean(0, "routes.viable_paid")),
                       res.mean(0, "user.paid_total")});
          pay.print(std::cout);

          std::cout << "\nVisibility of internal choices (SIV-C)\n\n";
          core::Table v({"design", "edges-visible-per-AS", "fraction-of-topology"});
          v.add_row({std::string("link-state (exports all costs)"),
                     res.mean(0, "vis.edges_total"), 1.0});
          v.add_row({std::string("path-vector (chosen paths only)"),
                     res.mean(0, "vis.pv_edges_visible"), res.mean(0, "vis.ratio")});
          v.print(std::cout);

          std::cout << "\nLedger conservation check: " << res.mean(0, "ledger.total")
                    << " (should be 0)\n";
          bh.metrics().gauge("provider.reachable_pairs",
                             res.mean(0, "provider.reachable_pairs"));
          bh.metrics().gauge("user.reachable_pairs", res.mean(0, "user.reachable_pairs"));
          bh.metrics().gauge("user.paid_total", res.mean(0, "user.paid_total"));
        });
      });
}
