// E10 — Overlays as tools in the tussle (§V-A-4 fn.7).
//
// Paper claim: "End-users try to over-rule constrained routing with tunnels
// and overlay networks." We block a growing set of direct paths at a
// provider chokepoint and measure how much connectivity an overlay of
// cooperating members restores, and at what latency stretch.
#include <iostream>

#include "apps/mux.hpp"
#include "core/report.hpp"
#include "harness.hpp"
#include "net/topology.hpp"
#include "routing/link_state.hpp"
#include "routing/overlay.hpp"

using namespace tussle;
using net::Address;
using net::NodeId;

namespace {

struct TrialResult {
  double direct_delivery = 0;
  double overlay_delivery = 0;
  double latency_stretch = 1.0;
};

TrialResult run_trial(double blocked_fraction, std::size_t members_used,
                      bench::Harness& h) {
  sim::Simulator sim(61);
  h.instrument(sim);
  net::Network net(sim);
  // Two provider hubs in a line; 8 leaves split across them.
  auto left = net::build_star(net, 4, 1, net::LinkSpec{});
  auto right = net::build_star(net, 4, 2, net::LinkSpec{});
  net.connect(left[0], right[0], 10e6, sim::Duration::millis(10));
  std::vector<NodeId> leaves;
  std::vector<Address> addrs;
  std::vector<NodeId> all = {left[0], right[0]};
  for (std::size_t i = 1; i < left.size(); ++i) all.push_back(left[i]);
  for (std::size_t i = 1; i < right.size(); ++i) all.push_back(right[i]);
  std::uint32_t sub = 0;
  for (NodeId n : all) {
    Address a{.provider = net.node(n).as(), .subscriber = sub++, .host = 1};
    net.node(n).add_address(a);
    if (n != left[0] && n != right[0]) {
      leaves.push_back(n);
      addrs.push_back(a);
    }
  }
  routing::LinkState ls(net);
  std::vector<NodeId> everyone = all;
  ls.install_routes(everyone);

  // The chokepoint blocks direct traffic between a fraction of leaf pairs.
  std::vector<std::pair<Address, Address>> blocked;
  std::size_t pair_idx = 0;
  const auto total_pairs = leaves.size() * (leaves.size() - 1);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (std::size_t j = 0; j < leaves.size(); ++j) {
      if (i == j) continue;
      if (static_cast<double>(pair_idx) <
          blocked_fraction * static_cast<double>(total_pairs)) {
        blocked.emplace_back(addrs[i], addrs[j]);
      }
      ++pair_idx;
    }
  }
  auto censor = [blocked](const net::Packet& p) {
    if (p.proto != net::AppProto::kWeb) return net::FilterDecision::accept();
    for (const auto& [s, d] : blocked) {
      if (p.src == s && p.dst == d) return net::FilterDecision::drop("blocked-pair");
    }
    return net::FilterDecision::accept();
  };
  net.node(left[0]).add_filter(net::PacketFilter{"censor-l", false, censor});
  net.node(right[0]).add_filter(net::PacketFilter{"censor-r", false, censor});

  // Direct sends across every ordered pair of (future) overlay members, so
  // the direct and overlay legs measure the same population.
  const std::size_t member_count = std::min(members_used, leaves.size());
  int sent = 0;
  for (std::size_t i = 0; i < member_count; ++i) {
    for (std::size_t j = 0; j < member_count; ++j) {
      if (i == j) continue;
      net::Packet p;
      p.src = addrs[i];
      p.dst = addrs[j];
      p.proto = net::AppProto::kWeb;
      net.node(leaves[i]).originate(std::move(p));
      ++sent;
    }
  }
  sim.run();
  TrialResult out;
  out.direct_delivery =
      static_cast<double>(net.counters().delivered.value()) / static_cast<double>(sent);
  const double direct_latency = net.counters().delivery_latency_s.mean();
  net.counters().reset();

  // Overlay among the first `members_used` leaves (full mesh, unit cost —
  // except edges corresponding to blocked pairs are probed out).
  std::map<NodeId, Address> members;
  for (std::size_t i = 0; i < member_count; ++i) {
    members[leaves[i]] = addrs[i];
  }
  routing::Overlay overlay(net, members);
  for (const auto& [a, aa] : members) {
    for (const auto& [b, bb] : members) {
      if (a == b) continue;
      bool edge_blocked = false;
      for (const auto& [s, d] : blocked) {
        if (s == aa && d == bb) edge_blocked = true;
      }
      if (!edge_blocked) overlay.set_edge_cost(a, b, 1.0);
    }
  }

  int osent = 0;
  for (const auto& [a, aa] : members) {
    for (const auto& [b, bb] : members) {
      if (a == b) continue;
      net::Packet p;
      p.src = aa;
      p.dst = bb;
      p.proto = net::AppProto::kWeb;
      if (!overlay.send(a, b, std::move(p)).empty()) ++osent;
    }
  }
  sim.run();
  out.overlay_delivery = osent == 0 ? 0.0
                                    : static_cast<double>(net.counters().delivered.value()) /
                                          static_cast<double>(osent);
  const double overlay_latency = net.counters().delivery_latency_s.mean();
  if (direct_latency > 0 && overlay_latency > 0) {
    out.latency_stretch = overlay_latency / direct_latency;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E10", "SV-A-4 overlays as tussle tools",
       "Providers block pairs at chokepoints; an overlay of cooperating\n"
       "members tunnels around the policy at a latency cost."},
      [](bench::Harness& h) {
  core::Table t({"blocked-pairs", "direct-delivery", "overlay-delivery", "latency-stretch"});
  for (double frac : {0.0, 0.2, 0.4, 0.6}) {
    auto r = run_trial(frac, 6, h);
    t.add_row({frac, r.direct_delivery, r.overlay_delivery, r.latency_stretch});
    if (frac == 0.4) {
      h.metrics().gauge("blocked40.direct_delivery", r.direct_delivery);
      h.metrics().gauge("blocked40.overlay_delivery", r.overlay_delivery);
      h.metrics().gauge("blocked40.latency_stretch", r.latency_stretch);
    }
  }
  t.print(std::cout);

  std::cout << "\nOverlay membership sweep at 40% blocking\n\n";
  core::Table m({"members", "overlay-delivery"});
  for (std::size_t k : {2u, 3u, 4u, 6u}) {
    auto r = run_trial(0.4, k, h);
    m.add_row({static_cast<long long>(k), r.overlay_delivery});
  }
  m.print(std::cout);
      });
}
