// E10 — Overlays as tools in the tussle (§V-A-4 fn.7).
//
// Paper claim: "End-users try to over-rule constrained routing with tunnels
// and overlay networks." We block a growing set of direct paths at a
// provider chokepoint and measure how much connectivity an overlay of
// cooperating members restores, and at what latency stretch.
#include <iostream>

#include "apps/mux.hpp"
#include "core/report.hpp"
#include "harness.hpp"
#include "net/topology.hpp"
#include "routing/link_state.hpp"
#include "routing/overlay.hpp"

using namespace tussle;
using net::Address;
using net::NodeId;

namespace {

void run_trial(double blocked_fraction, std::size_t members_used, core::RunContext& ctx) {
  sim::Simulator sim(ctx.rng().next_u64());
  ctx.instrument(sim);
  net::Network net(sim);
  // Two provider hubs in a line; 8 leaves split across them.
  auto left = net::build_star(net, 4, 1, net::LinkSpec{});
  auto right = net::build_star(net, 4, 2, net::LinkSpec{});
  net.connect(left[0], right[0], 10e6, sim::Duration::millis(10));
  std::vector<NodeId> leaves;
  std::vector<Address> addrs;
  std::vector<NodeId> all = {left[0], right[0]};
  for (std::size_t i = 1; i < left.size(); ++i) all.push_back(left[i]);
  for (std::size_t i = 1; i < right.size(); ++i) all.push_back(right[i]);
  std::uint32_t sub = 0;
  for (NodeId n : all) {
    Address a{.provider = net.node(n).as(), .subscriber = sub++, .host = 1};
    net.node(n).add_address(a);
    if (n != left[0] && n != right[0]) {
      leaves.push_back(n);
      addrs.push_back(a);
    }
  }
  routing::LinkState ls(net);
  std::vector<NodeId> everyone = all;
  ls.install_routes(everyone);

  // The chokepoint blocks direct traffic between a fraction of leaf pairs.
  std::vector<std::pair<Address, Address>> blocked;
  std::size_t pair_idx = 0;
  const auto total_pairs = leaves.size() * (leaves.size() - 1);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (std::size_t j = 0; j < leaves.size(); ++j) {
      if (i == j) continue;
      if (static_cast<double>(pair_idx) <
          blocked_fraction * static_cast<double>(total_pairs)) {
        blocked.emplace_back(addrs[i], addrs[j]);
      }
      ++pair_idx;
    }
  }
  auto censor = [blocked](const net::Packet& p) {
    if (p.proto != net::AppProto::kWeb) return net::FilterDecision::accept();
    for (const auto& [s, d] : blocked) {
      if (p.src == s && p.dst == d) return net::FilterDecision::drop("blocked-pair");
    }
    return net::FilterDecision::accept();
  };
  net.node(left[0]).add_filter(net::PacketFilter{"censor-l", false, censor});
  net.node(right[0]).add_filter(net::PacketFilter{"censor-r", false, censor});

  // Direct sends across every ordered pair of (future) overlay members, so
  // the direct and overlay legs measure the same population.
  const std::size_t member_count = std::min(members_used, leaves.size());
  int sent = 0;
  for (std::size_t i = 0; i < member_count; ++i) {
    for (std::size_t j = 0; j < member_count; ++j) {
      if (i == j) continue;
      net::Packet p;
      p.src = addrs[i];
      p.dst = addrs[j];
      p.proto = net::AppProto::kWeb;
      net.node(leaves[i]).originate(std::move(p));
      ++sent;
    }
  }
  ctx.add_events(sim.run());
  const double direct_delivery =
      static_cast<double>(net.counters().delivered.value()) / static_cast<double>(sent);
  const double direct_latency = net.counters().delivery_latency_s.mean();
  net.counters().reset();

  // Overlay among the first `members_used` leaves (full mesh, unit cost —
  // except edges corresponding to blocked pairs are probed out).
  std::map<NodeId, Address> members;
  for (std::size_t i = 0; i < member_count; ++i) {
    members[leaves[i]] = addrs[i];
  }
  routing::Overlay overlay(net, members);
  for (const auto& [a, aa] : members) {
    for (const auto& [b, bb] : members) {
      if (a == b) continue;
      bool edge_blocked = false;
      for (const auto& [s, d] : blocked) {
        if (s == aa && d == bb) edge_blocked = true;
      }
      if (!edge_blocked) overlay.set_edge_cost(a, b, 1.0);
    }
  }

  int osent = 0;
  for (const auto& [a, aa] : members) {
    for (const auto& [b, bb] : members) {
      if (a == b) continue;
      net::Packet p;
      p.src = aa;
      p.dst = bb;
      p.proto = net::AppProto::kWeb;
      if (!overlay.send(a, b, std::move(p)).empty()) ++osent;
    }
  }
  ctx.add_events(sim.run());
  const double overlay_delivery =
      osent == 0 ? 0.0
                 : static_cast<double>(net.counters().delivered.value()) /
                       static_cast<double>(osent);
  const double overlay_latency = net.counters().delivery_latency_s.mean();
  double stretch = 1.0;
  if (direct_latency > 0 && overlay_latency > 0) {
    stretch = overlay_latency / direct_latency;
  }
  ctx.put("direct_delivery", direct_delivery);
  ctx.put("overlay_delivery", overlay_delivery);
  ctx.put("latency_stretch", stretch);
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E10", "SV-A-4 overlays as tussle tools",
       "Providers block pairs at chokepoints; an overlay of cooperating\n"
       "members tunnels around the policy at a latency cost."},
      [](bench::Harness& h) {
        core::ScenarioSpec blocking;
        blocking.name = "blocking-sweep";
        blocking.description = "delivery vs blocked-pair fraction, 6 overlay members";
        blocking.grid.axis("blocked_frac", {0.0, 0.2, 0.4, 0.6});
        blocking.body = [](core::RunContext& ctx) {
          run_trial(ctx.param("blocked_frac"), 6, ctx);
        };
        h.scenario(blocking, [](const core::SweepResult& res) {
          core::Table t({"blocked-pairs", "direct-delivery", "overlay-delivery",
                         "latency-stretch"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({res.points[p].get("blocked_frac"), res.mean(p, "direct_delivery"),
                       res.mean(p, "overlay_delivery"), res.mean(p, "latency_stretch")});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec membership;
        membership.name = "membership-sweep";
        membership.description = "overlay delivery vs member count at 40% blocking";
        membership.grid.axis("members", {2, 3, 4, 6});
        membership.body = [](core::RunContext& ctx) {
          run_trial(0.4, static_cast<std::size_t>(ctx.param("members")), ctx);
        };
        h.scenario(membership, [](const core::SweepResult& res) {
          std::cout << "\nOverlay membership sweep at 40% blocking\n\n";
          core::Table m({"members", "overlay-delivery"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            m.add_row({static_cast<long long>(res.points[p].get("members")),
                       res.mean(p, "overlay_delivery")});
          }
          m.print(std::cout);
        });
      });
}
