// E1 — Provider lock-in from IP addressing (§V-A-1).
//
// Paper claim: provider-rooted static addresses lock customers in, which
// softens competition (higher prices, fewer switches); mechanisms that ease
// renumbering (DHCP + dynamic DNS) favor the consumer; provider-independent
// addresses eliminate lock-in entirely but bloat core forwarding tables.
#include <iostream>

#include "core/report.hpp"
#include "econ/lock_in.hpp"
#include "econ/market.hpp"
#include "harness.hpp"
#include "net/forwarding.hpp"

using namespace tussle;

namespace {

econ::MarketResult market_under(double switching_cost, std::uint64_t seed) {
  econ::MarketConfig cfg;
  cfg.consumers = 600;
  cfg.periods = 600;
  cfg.switching_cost = switching_cost;
  std::vector<econ::ProviderConfig> providers;
  for (int i = 0; i < 3; ++i) {
    econ::ProviderConfig p;
    p.name = "isp-" + std::to_string(i);
    p.marginal_cost = 2.0;
    p.initial_price = 6.0;
    providers.push_back(p);
  }
  sim::Rng rng(seed);
  econ::Market market(cfg, providers, rng);
  return market.run();
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E1", "SV-A-1 provider lock-in from IP addressing",
       "Easy renumbering -> lower lock-in -> lower prices & more switching;\n"
       "portable addresses free the consumer but inflate core routing tables."},
      [](bench::Harness& h) {
  econ::LockInModel model;
  const std::size_t hosts_per_site = 8;
  const std::size_t sites = 600;

  core::Table t({"addressing", "switch-cost", "mean-price", "hhi", "consumer-surplus",
                 "switches", "core-prefixes"});
  for (auto mode : {econ::AddressingMode::kStaticProviderAssigned,
                    econ::AddressingMode::kDhcpDynamicDns,
                    econ::AddressingMode::kProviderIndependent}) {
    const double sc = model.switching_cost(mode, hosts_per_site);
    auto r = market_under(sc, 42);

    // Core-table cost: install the portable prefixes into a core router FIB
    // and count entries (the data-plane side of the dilemma).
    net::ForwardingTable core_fib;
    const std::size_t extra = model.core_table_entries(mode, sites);
    for (std::size_t s = 0; s < extra; ++s) {
      core_fib.set_prefix_route(
          net::Prefix{.provider = 1, .subscriber = static_cast<std::uint32_t>(s),
                      .portable = true},
          0);
    }
    t.add_row({to_string(mode), sc, r.mean_price, r.hhi, r.consumer_surplus,
               static_cast<long long>(r.total_switches),
               static_cast<long long>(core_fib.prefix_entries())});
    h.metrics().gauge(to_string(mode) + ".mean_price", r.mean_price);
    h.metrics().gauge(to_string(mode) + ".hhi", r.hhi);
    h.metrics().gauge(to_string(mode) + ".core_prefixes",
                      static_cast<double>(core_fib.prefix_entries()));
  }
  t.print(std::cout);

  std::cout << "\nSweep: switching cost vs market outcome (3 ISPs)\n\n";
  core::Table sweep({"switching-cost", "mean-price", "provider-profit", "switches"});
  for (double sc : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    auto r = market_under(sc, 7);
    sweep.add_row({sc, r.mean_price, r.provider_profit,
                   static_cast<long long>(r.total_switches)});
  }
  sweep.print(std::cout);
      });
}
