// E1 — Provider lock-in from IP addressing (§V-A-1).
//
// Paper claim: provider-rooted static addresses lock customers in, which
// softens competition (higher prices, fewer switches); mechanisms that ease
// renumbering (DHCP + dynamic DNS) favor the consumer; provider-independent
// addresses eliminate lock-in entirely but bloat core forwarding tables.
#include <iostream>

#include "core/report.hpp"
#include "econ/lock_in.hpp"
#include "econ/market.hpp"
#include "harness.hpp"
#include "net/forwarding.hpp"

using namespace tussle;

namespace {

econ::MarketResult market_under(double switching_cost, sim::Rng& rng) {
  econ::MarketConfig cfg;
  cfg.consumers = 600;
  cfg.periods = 600;
  cfg.switching_cost = switching_cost;
  std::vector<econ::ProviderConfig> providers;
  for (int i = 0; i < 3; ++i) {
    econ::ProviderConfig p;
    p.name = "isp-" + std::to_string(i);
    p.marginal_cost = 2.0;
    p.initial_price = 6.0;
    providers.push_back(p);
  }
  econ::Market market(cfg, providers, rng);
  return market.run();
}

constexpr econ::AddressingMode kModes[] = {econ::AddressingMode::kStaticProviderAssigned,
                                           econ::AddressingMode::kDhcpDynamicDns,
                                           econ::AddressingMode::kProviderIndependent};

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E1", "SV-A-1 provider lock-in from IP addressing",
       "Easy renumbering -> lower lock-in -> lower prices & more switching;\n"
       "portable addresses free the consumer but inflate core routing tables."},
      [](bench::Harness& h) {
        core::ScenarioSpec modes;
        modes.name = "addressing-modes";
        modes.description = "market outcome + core FIB cost per addressing mode";
        modes.grid.axis("mode", {0, 1, 2});
        modes.body = [](core::RunContext& ctx) {
          econ::LockInModel model;
          const std::size_t hosts_per_site = 8;
          const std::size_t sites = 600;
          const auto mode = kModes[static_cast<std::size_t>(ctx.param("mode"))];
          const double sc = model.switching_cost(mode, hosts_per_site);
          auto r = market_under(sc, ctx.rng());

          // Core-table cost: install the portable prefixes into a core router
          // FIB and count entries (the data-plane side of the dilemma).
          net::ForwardingTable core_fib;
          const std::size_t extra = model.core_table_entries(mode, sites);
          for (std::size_t s = 0; s < extra; ++s) {
            core_fib.set_prefix_route(
                net::Prefix{.provider = 1, .subscriber = static_cast<std::uint32_t>(s),
                            .portable = true},
                0);
          }
          ctx.put("switch_cost", sc);
          ctx.put("mean_price", r.mean_price);
          ctx.put("hhi", r.hhi);
          ctx.put("consumer_surplus", r.consumer_surplus);
          ctx.put("switches", static_cast<double>(r.total_switches));
          ctx.put("core_prefixes", static_cast<double>(core_fib.prefix_entries()));
        };
        h.scenario(modes, [](const core::SweepResult& res) {
          core::Table t({"addressing", "switch-cost", "mean-price", "hhi",
                         "consumer-surplus", "switches", "core-prefixes"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({to_string(kModes[p]), res.mean(p, "switch_cost"),
                       res.mean(p, "mean_price"), res.mean(p, "hhi"),
                       res.mean(p, "consumer_surplus"),
                       static_cast<long long>(res.mean(p, "switches")),
                       static_cast<long long>(res.mean(p, "core_prefixes"))});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec sweep;
        sweep.name = "switching-cost-sweep";
        sweep.description = "market outcome vs switching cost, 3 ISPs";
        sweep.grid.axis("switching_cost", {0.0, 0.5, 1.0, 2.0, 4.0, 8.0});
        sweep.body = [](core::RunContext& ctx) {
          auto r = market_under(ctx.param("switching_cost"), ctx.rng());
          ctx.put("mean_price", r.mean_price);
          ctx.put("provider_profit", r.provider_profit);
          ctx.put("switches", static_cast<double>(r.total_switches));
        };
        h.scenario(sweep, [](const core::SweepResult& res) {
          std::cout << "\nSweep: switching cost vs market outcome (3 ISPs)\n\n";
          core::Table t({"switching-cost", "mean-price", "provider-profit", "switches"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({res.points[p].get("switching_cost"), res.mean(p, "mean_price"),
                       res.mean(p, "provider_profit"),
                       static_cast<long long>(res.mean(p, "switches"))});
          }
          t.print(std::cout);
        });
      });
}
