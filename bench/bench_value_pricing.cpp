// E2 — Value pricing vs. tunnelling (§V-A-2).
//
// Paper claim: value pricing (server surcharge) invites the tunnelling
// counter-move; whether the ISP can sustain value pricing "depends strongly
// on whether one perceives competition as currently healthy". We compute
// the tussle game's learned equilibrium across a competition sweep, then
// confirm the mechanism at packet level: DPI sees servers unless they
// tunnel.
#include <iostream>

#include "core/report.hpp"
#include "econ/pricing.hpp"
#include "econ/value_flow.hpp"
#include "game/canonical.hpp"
#include "game/solvers.hpp"
#include "harness.hpp"
#include "routing/inter_domain.hpp"

using namespace tussle;

namespace {

/// The 8-AS reference topology used across the routing tests: tier-1 peers
/// 1-2, their customers 3/4/5, leaves 6/7, and peer-only AS 8.
routing::AsGraph canonical_graph() {
  routing::AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(3, 1);
  g.add_customer_provider(4, 1);
  g.add_customer_provider(5, 2);
  g.add_customer_provider(6, 3);
  g.add_customer_provider(7, 4);
  g.add_customer_provider(7, 5);
  g.add_as(8);
  g.add_peering(7, 8);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E2", "SV-A-2 value pricing",
       "Tiered 'no servers at home' pricing triggers tunnelling; competition\n"
       "(user choice of ISP) disciplines the pricing itself."},
      [](bench::Harness& h) {
        core::ScenarioSpec comp;
        comp.name = "competition-sweep";
        comp.description = "learned tussle equilibrium vs ISP competition level";
        comp.grid.axis("competition", {0.0, 0.25, 0.5, 0.75, 1.0});
        comp.body = [](core::RunContext& ctx) {
          auto g = game::value_pricing_game(/*tunnel_cost=*/1.0, ctx.param("competition"));
          auto eq = game::learn_equilibrium(g, 30000, ctx.rng());
          const auto [up, ip] = g.expected_payoff(eq.row, eq.col);
          ctx.put("tunnel_rate", eq.row[1]);
          ctx.put("value_price_rate", eq.col[1]);
          ctx.put("user_payoff", up);
          ctx.put("isp_payoff", ip);
        };
        h.scenario(comp, [](const core::SweepResult& res) {
          core::Table t({"competition", "user-tunnel-rate", "isp-value-price-rate",
                         "user-payoff", "isp-payoff"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({res.points[p].get("competition"), res.mean(p, "tunnel_rate"),
                       res.mean(p, "value_price_rate"), res.mean(p, "user_payoff"),
                       res.mean(p, "isp_payoff")});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec bills;
        bills.name = "billing-visibility";
        bills.description = "what the billing system can see per usage profile";
        bills.body = [](core::RunContext& ctx) {
          econ::ValuePricing pricing(4.0, 3.0);
          econ::UsageProfile honest{.runs_server = true, .runs_server_visible = true};
          econ::UsageProfile tunneler{.runs_server = true, .runs_server_visible = false};
          econ::UsageProfile plain{};
          ctx.put("honest_bill", pricing.charge(honest));
          ctx.put("tunneler_bill", pricing.charge(tunneler));
          ctx.put("plain_bill", pricing.charge(plain));
        };
        h.scenario(bills, [](const core::SweepResult& res) {
          std::cout << "\nMechanism check: what the billing system can see\n\n";
          core::Table t({"customer", "runs-server", "visible-on-wire", "monthly-bill"});
          t.add_row({std::string("honest-server"), std::string("yes"), std::string("yes"),
                     res.mean(0, "honest_bill")});
          t.add_row({std::string("tunneling-server"), std::string("yes"), std::string("no"),
                     res.mean(0, "tunneler_bill")});
          t.add_row({std::string("no-server"), std::string("no"), std::string("no"),
                     res.mean(0, "plain_bill")});
          t.print(std::cout);

          std::cout << "\nInterpretation: as competition rises the ISP retreats from value\n"
                       "pricing (column 3 falls), and users stop needing tunnels.\n";
        });

        // Packet-level settlement, causally traced. Run with --chrome-trace
        // or --explain 1/2/3 to see every ledger transfer hang off the
        // decision that caused it: the DPI verdict (surcharge), or the
        // delivery of a paid source-routed packet (transit settlement).
        core::ScenarioSpec pkt;
        pkt.name = "packet-settlement";
        pkt.description = "DPI surcharge + paid source route on real packets, span-traced";
        pkt.body = [](core::RunContext& ctx) {
          sim::Simulator sim{67};
          ctx.instrument(sim);
          net::Network net{sim};
          net.set_spans(ctx.spans());
          auto g = canonical_graph();
          auto topo = routing::build_inter_domain(net, g, net::LinkSpec{});
          routing::PathVector pv(g);
          pv.set_span_tracer(ctx.spans());
          routing::install_path_vector_routes(net, topo, pv);

          econ::Ledger ledger;
          ledger.set_span_tracer(ctx.spans());
          // The ledger is declared shared: value must flow between shards
          // by design, so under --audit its transfers are tallied per
          // accessing shard instead of checked.
          ledger.set_auditor(ctx.audit());

          // AS 3 (AS 6's provider) value-prices: visibly-server traffic
          // leaving its customer pays a per-packet surcharge. Tunnelled
          // traffic shows kVpn on the wire and evades — the §V-A-2 arms
          // race, at packet granularity.
          const double surcharge = 0.25;
          net.node(topo.router_of.at(3))
              .add_filter({"isp3-value-pricing", /*disclosed=*/true,
                           [&ledger, surcharge](const net::Packet& p) {
                             if (p.src.provider == 6 &&
                                 p.observable_proto() == net::AppProto::kWeb) {
                               ledger.transfer("user:6", "isp:3", surcharge,
                                               "value-surcharge");
                             }
                             return net::FilterDecision::accept();
                           }});

          // Paid loose source route (§V-A-4 + §IV-C): AS 8 has no policy
          // route to 6, so it buys carriage along 8-7-4-1-3-6 and settles
          // with every off-contract AS when the packet is delivered.
          econ::PaidTransit transit(g, ledger);
          const econ::PaidTransit::Quote quote = transit.quote({8, 7, 4, 1, 3, 6});
          net.add_delivery_observer([&transit, &quote](const net::Packet& p, net::NodeId) {
            if (p.flow == 3) transit.settle("user:8", quote);
          });

          auto send = [&](net::FlowId flow, routing::AsId from, routing::AsId to,
                          bool tunneled, sim::Duration at) {
            sim.schedule(at, sim::TaskTag{"bench", "inject"}, [&, flow, from, to, tunneled]() {
              net::Packet p;
              p.src = topo.address_of.at(from);
              p.dst = topo.address_of.at(to);
              p.proto = net::AppProto::kWeb;
              p.flow = flow;
              if (flow == 3) p.source_route = net::SourceRoute{{7, 4, 1, 3, 6}, 0};
              if (tunneled) p = p.encapsulate(p.src, topo.address_of.at(to));
              net.node(topo.router_of.at(from)).originate(std::move(p));
            });
          };
          // Flow 1: visible web server at AS 6 — every packet surcharged.
          send(1, 6, 5, false, sim::Duration::millis(1));
          send(1, 6, 5, false, sim::Duration::millis(5));
          // Flow 2: the same traffic tunnelled — DPI sees kVpn, no charge.
          send(2, 6, 5, true, sim::Duration::millis(2));
          send(2, 6, 5, true, sim::Duration::millis(6));
          // Flow 3: paid source route from the policy-blackholed AS 8.
          send(3, 8, 6, false, sim::Duration::millis(3));

          ctx.add_events(sim.run());
          ctx.put("delivered", static_cast<double>(net.counters().delivered.value()));
          ctx.put("surcharge_revenue", ledger.balance("isp:3"));
          ctx.put("tunneler_charged", -ledger.balance("user:6") - 2 * surcharge);
          ctx.put("transit_paid", -ledger.balance("user:8"));
          ctx.put("ledger_total", ledger.total());
          ctx.put("transfers", static_cast<double>(ledger.log().size()));
        };
        h.scenario(pkt, [](const core::SweepResult& res) {
          std::cout << "\nPacket-level mechanism: who paid, and why\n\n";
          core::Table t({"metric", "value"});
          t.add_row({std::string("packets delivered"), res.mean(0, "delivered")});
          t.add_row({std::string("isp:3 surcharge revenue"), res.mean(0, "surcharge_revenue")});
          t.add_row({std::string("extra paid by tunneler"), res.mean(0, "tunneler_charged")});
          t.add_row({std::string("as8 transit settlement"), res.mean(0, "transit_paid")});
          t.add_row({std::string("ledger conservation"), res.mean(0, "ledger_total")});
          t.print(std::cout);
          std::cout << "\nRe-run with --chrome-trace out.json (Perfetto) or --explain 1|2|3\n"
                       "to see each transfer attached to the decision that caused it.\n";
        });
      });
}
