// E2 — Value pricing vs. tunnelling (§V-A-2).
//
// Paper claim: value pricing (server surcharge) invites the tunnelling
// counter-move; whether the ISP can sustain value pricing "depends strongly
// on whether one perceives competition as currently healthy". We compute
// the tussle game's learned equilibrium across a competition sweep, then
// confirm the mechanism at packet level: DPI sees servers unless they
// tunnel.
#include <iostream>

#include "core/report.hpp"
#include "econ/pricing.hpp"
#include "game/canonical.hpp"
#include "game/solvers.hpp"
#include "harness.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E2", "SV-A-2 value pricing",
       "Tiered 'no servers at home' pricing triggers tunnelling; competition\n"
       "(user choice of ISP) disciplines the pricing itself."},
      [](bench::Harness& h) {
        core::ScenarioSpec comp;
        comp.name = "competition-sweep";
        comp.description = "learned tussle equilibrium vs ISP competition level";
        comp.grid.axis("competition", {0.0, 0.25, 0.5, 0.75, 1.0});
        comp.body = [](core::RunContext& ctx) {
          auto g = game::value_pricing_game(/*tunnel_cost=*/1.0, ctx.param("competition"));
          auto eq = game::learn_equilibrium(g, 30000, ctx.rng());
          const auto [up, ip] = g.expected_payoff(eq.row, eq.col);
          ctx.put("tunnel_rate", eq.row[1]);
          ctx.put("value_price_rate", eq.col[1]);
          ctx.put("user_payoff", up);
          ctx.put("isp_payoff", ip);
        };
        h.scenario(comp, [](const core::SweepResult& res) {
          core::Table t({"competition", "user-tunnel-rate", "isp-value-price-rate",
                         "user-payoff", "isp-payoff"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({res.points[p].get("competition"), res.mean(p, "tunnel_rate"),
                       res.mean(p, "value_price_rate"), res.mean(p, "user_payoff"),
                       res.mean(p, "isp_payoff")});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec bills;
        bills.name = "billing-visibility";
        bills.description = "what the billing system can see per usage profile";
        bills.body = [](core::RunContext& ctx) {
          econ::ValuePricing pricing(4.0, 3.0);
          econ::UsageProfile honest{.runs_server = true, .runs_server_visible = true};
          econ::UsageProfile tunneler{.runs_server = true, .runs_server_visible = false};
          econ::UsageProfile plain{};
          ctx.put("honest_bill", pricing.charge(honest));
          ctx.put("tunneler_bill", pricing.charge(tunneler));
          ctx.put("plain_bill", pricing.charge(plain));
        };
        h.scenario(bills, [](const core::SweepResult& res) {
          std::cout << "\nMechanism check: what the billing system can see\n\n";
          core::Table t({"customer", "runs-server", "visible-on-wire", "monthly-bill"});
          t.add_row({std::string("honest-server"), std::string("yes"), std::string("yes"),
                     res.mean(0, "honest_bill")});
          t.add_row({std::string("tunneling-server"), std::string("yes"), std::string("no"),
                     res.mean(0, "tunneler_bill")});
          t.add_row({std::string("no-server"), std::string("no"), std::string("no"),
                     res.mean(0, "plain_bill")});
          t.print(std::cout);

          std::cout << "\nInterpretation: as competition rises the ISP retreats from value\n"
                       "pricing (column 3 falls), and users stop needing tunnels.\n";
        });
      });
}
