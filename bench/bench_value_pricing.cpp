// E2 — Value pricing vs. tunnelling (§V-A-2).
//
// Paper claim: value pricing (server surcharge) invites the tunnelling
// counter-move; whether the ISP can sustain value pricing "depends strongly
// on whether one perceives competition as currently healthy". We compute
// the tussle game's learned equilibrium across a competition sweep, then
// confirm the mechanism at packet level: DPI sees servers unless they
// tunnel.
#include <iostream>

#include "core/report.hpp"
#include "econ/pricing.hpp"
#include "game/canonical.hpp"
#include "game/solvers.hpp"
#include "harness.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E2", "SV-A-2 value pricing",
       "Tiered 'no servers at home' pricing triggers tunnelling; competition\n"
       "(user choice of ISP) disciplines the pricing itself."},
      [](bench::Harness& h) {
  core::Table t({"competition", "user-tunnel-rate", "isp-value-price-rate", "user-payoff",
                 "isp-payoff"});
  for (double competition : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto g = game::value_pricing_game(/*tunnel_cost=*/1.0, competition);
    sim::Rng rng(11);
    auto eq = game::learn_equilibrium(g, 30000, rng);
    const auto [up, ip] = g.expected_payoff(eq.row, eq.col);
    t.add_row({competition, eq.row[1], eq.col[1], up, ip});
    if (competition == 0.0 || competition == 1.0) {
      const std::string k = competition == 0.0 ? "monopoly" : "competitive";
      h.metrics().gauge(k + ".tunnel_rate", eq.row[1]);
      h.metrics().gauge(k + ".value_price_rate", eq.col[1]);
    }
  }
  t.print(std::cout);

  std::cout << "\nMechanism check: what the billing system can see\n\n";
  econ::ValuePricing pricing(4.0, 3.0);
  core::Table bills({"customer", "runs-server", "visible-on-wire", "monthly-bill"});
  econ::UsageProfile honest{.runs_server = true, .runs_server_visible = true};
  econ::UsageProfile tunneler{.runs_server = true, .runs_server_visible = false};
  econ::UsageProfile plain{};
  bills.add_row({std::string("honest-server"), std::string("yes"), std::string("yes"),
                 pricing.charge(honest)});
  bills.add_row({std::string("tunneling-server"), std::string("yes"), std::string("no"),
                 pricing.charge(tunneler)});
  bills.add_row({std::string("no-server"), std::string("no"), std::string("no"),
                 pricing.charge(plain)});
  bills.print(std::cout);

  std::cout << "\nInterpretation: as competition rises the ISP retreats from value\n"
               "pricing (column 3 falls), and users stop needing tunnels.\n";
      });
}
