// E7 — The role of identity (§V-B-1).
//
// Paper claims: (a) no global namespace — a *framework* of schemes;
// (b) anonymity remains possible, but "many people will choose not to
// communicate with you if you do"; (c) hiding should be hard to disguise
// (anonymity is visible); (d) accountability accrues only to schemes that
// support it — certified actors build reputation fastest.
#include <algorithm>
#include <iostream>

#include "core/report.hpp"
#include "harness.hpp"
#include "sim/random.hpp"
#include "trust/certificates.hpp"
#include "trust/reputation.hpp"

using namespace tussle;

namespace {

constexpr trust::IdentityScheme kSchemes[] = {
    trust::IdentityScheme::kAnonymous, trust::IdentityScheme::kSelfAsserted,
    trust::IdentityScheme::kPseudonymous, trust::IdentityScheme::kCertified};

std::string metric_key(trust::IdentityScheme scheme) {
  return to_string(scheme) + ".success_rate";
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E7", "SV-B-1 the role of identity",
       "Population picks identity schemes; peers gate interactions on\n"
       "verification/accountability. Anonymity stays possible but costly."},
      [](bench::Harness& h) {
        core::ScenarioSpec id;
        id.name = "identity-schemes";
        id.description = "interaction success per identity scheme, 200 rounds";
        id.body = [](core::RunContext& ctx) {
          trust::CertificateAuthority ca("root-ca");
          trust::CaRegistry registry;
          registry.trust(&ca);
          trust::IdentityFramework framework;
          framework.set_verifier(trust::IdentityScheme::kCertified, registry.verifier());

          trust::ReputationSystem reputation;

          struct Cohort {
            trust::IdentityScheme scheme;
            int size;
            int accepted = 0;
            int attempted = 0;
          };
          std::vector<Cohort> cohorts;
          for (auto scheme : kSchemes) cohorts.push_back({scheme, 30});

          // Enroll the certified cohort.
          for (int i = 0; i < 30; ++i) {
            registry.enroll(ca.issue("cert-" + std::to_string(i)));
          }

          // Interaction model: a peer accepts a counterparty with probability
          // that rises with verification, accountability, and (for linkable
          // schemes) accumulated reputation. Good behaviour is reported when
          // linkable.
          const int rounds = 200;
          for (int t = 0; t < rounds; ++t) {
            for (auto& c : cohorts) {
              for (int i = 0; i < c.size; ++i) {
                std::string name;
                switch (c.scheme) {
                  case trust::IdentityScheme::kAnonymous: name = ""; break;
                  case trust::IdentityScheme::kSelfAsserted:
                    name = "self-" + std::to_string(i);
                    break;
                  case trust::IdentityScheme::kPseudonymous:
                    name = "pseud-" + std::to_string(i);
                    break;
                  default: name = "cert-" + std::to_string(i); break;
                }
                trust::Identity ident{c.scheme, name,
                                      c.scheme == trust::IdentityScheme::kCertified
                                          ? "root-ca"
                                          : ""};
                const auto v = framework.verify(ident);
                double accept_p = 0.15;  // hard floor: some peers talk to anyone
                if (v.verified) accept_p += 0.25;
                if (v.accountable) accept_p += 0.25;
                if (v.linkable && !name.empty()) {
                  accept_p += 0.35 * (reputation.score(name) - 0.5) * 2.0;
                }
                ++c.attempted;
                if (ctx.rng().bernoulli(std::min(1.0, std::max(0.0, accept_p)))) {
                  ++c.accepted;
                  if (v.linkable && !name.empty()) reputation.record("peer", name, true);
                }
              }
            }
          }

          for (const auto& c : cohorts) {
            ctx.put(metric_key(c.scheme),
                    static_cast<double>(c.accepted) / static_cast<double>(c.attempted));
          }
        };
        h.scenario(id, [](const core::SweepResult& res) {
          // The verification flags are a pure property of the framework, so
          // the render recomputes them; only the success rates are sampled.
          trust::CertificateAuthority ca("root-ca");
          trust::CaRegistry registry;
          registry.trust(&ca);
          registry.enroll(ca.issue("cert-0"));
          trust::IdentityFramework framework;
          framework.set_verifier(trust::IdentityScheme::kCertified, registry.verifier());

          core::Table t({"scheme", "visibly-anonymous", "verified", "accountable",
                         "interaction-success"});
          for (auto scheme : kSchemes) {
            trust::Identity sample{scheme,
                                   scheme == trust::IdentityScheme::kAnonymous ? "" : "cert-0",
                                   scheme == trust::IdentityScheme::kCertified ? "root-ca"
                                                                               : ""};
            const auto v = framework.verify(sample);
            t.add_row({to_string(scheme),
                       std::string(sample.visibly_anonymous() ? "yes" : "no"),
                       std::string(v.verified ? "yes" : "no"),
                       std::string(v.accountable ? "yes" : "no"),
                       res.mean(0, metric_key(scheme))});
          }
          t.print(std::cout);

          std::cout << "\nCompromise outcome (paper): anonymity possible (nonzero success)\n"
                       "but visibly and persistently penalized; accountable identity\n"
                       "compounds through reputation.\n";
        });
      });
}
