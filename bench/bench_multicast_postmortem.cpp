// X4 — The multicast post-mortem, i.e. footnote 19's exercise (§VII).
//
// "The case study of the failure to deploy multicast is left as an
// exercise for the reader." Solution, in the paper's own framework:
//
//   1. Multicast saves real link transmissions (the technical win).
//   2. But, like QoS, it shipped with no value-flow: ISPs pay for router
//      upgrades; content providers pocket the bandwidth savings. The
//      investment game says skip.
//   3. CDNs capture most of the same savings while being unilaterally
//      deployable by the party that profits — so the market built CDNs.
#include <iostream>

#include "core/report.hpp"
#include "econ/investment.hpp"
#include "harness.hpp"
#include "net/topology.hpp"
#include "routing/multicast.hpp"

using namespace tussle;
using net::NodeId;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"X4", "SVII fn.19 — the multicast exercise (extension)",
       "Multicast's technical savings are real; its deployment game is the\n"
       "QoS game with zero revenue. CDNs monetize the same savings\n"
       "unilaterally — which is why the reader lives in a CDN world."},
      [](bench::Harness& bh) {
        core::ScenarioSpec dist;
        dist.name = "distribution-cost";
        dist.description = "unicast vs multicast vs CDN link transmissions per group size";
        dist.grid.axis("group_size", {4, 8, 16, 32});
        dist.body = [](core::RunContext& ctx) {
          // A two-level distribution topology: backbone ring of 4 hubs, each
          // hub serving 8 access leaves. Source at hub 0's first leaf.
          sim::Simulator sim(ctx.rng().next_u64());
          ctx.instrument(sim);
          net::Network net(sim);
          std::vector<NodeId> hubs;
          std::vector<NodeId> leaves;
          for (int h = 0; h < 4; ++h) hubs.push_back(net.add_node(1));
          for (int h = 0; h < 4; ++h) {
            net.connect(hubs[static_cast<std::size_t>(h)],
                        hubs[static_cast<std::size_t>((h + 1) % 4)], 100e6,
                        sim::Duration::millis(5));
          }
          for (NodeId h : hubs) {
            for (int l = 0; l < 8; ++l) {
              NodeId leaf = net.add_node(1);
              net.connect(h, leaf, 10e6, sim::Duration::millis(2));
              leaves.push_back(leaf);
            }
          }
          const NodeId source = leaves[0];
          const auto n = static_cast<std::size_t>(ctx.param("group_size"));
          std::vector<NodeId> members(leaves.begin() + 1,
                                      leaves.begin() + 1 +
                                          static_cast<std::ptrdiff_t>(
                                              std::min(n, leaves.size() - 1)));
          auto cost = routing::compare_distribution(net, source, members, hubs);
          ctx.put("members", static_cast<double>(members.size()));
          ctx.put("unicast", static_cast<double>(cost.unicast));
          ctx.put("multicast", static_cast<double>(cost.multicast));
          ctx.put("cdn", static_cast<double>(cost.cdn));
          ctx.put("multicast_savings", cost.multicast_savings());
          ctx.put("cdn_savings", cost.cdn_savings());
        };
        bh.scenario(dist, [&bh](const core::SweepResult& res) {
          std::cout << "Link-transmission cost of delivering one item to N members\n\n";
          core::Table t({"group-size", "unicast", "multicast", "cdn(4-caches)",
                         "multicast-saves", "cdn-saves"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({static_cast<long long>(res.mean(p, "members")),
                       static_cast<long long>(res.mean(p, "unicast")),
                       static_cast<long long>(res.mean(p, "multicast")),
                       static_cast<long long>(res.mean(p, "cdn")),
                       res.mean(p, "multicast_savings"), res.mean(p, "cdn_savings")});
            if (res.points[p].get("group_size") == 32) {
              bh.metrics().gauge("group32.multicast_savings",
                                 res.mean(p, "multicast_savings"));
              bh.metrics().gauge("group32.cdn_savings", res.mean(p, "cdn_savings"));
            }
          }
          t.print(std::cout);
        });

        core::ScenarioSpec game;
        game.name = "deployment-game";
        game.description = "E5's investment game with multicast vs CDN parameters";
        game.grid.axis("design", {0, 1});  // 0 = IP multicast, 1 = CDN
        game.body = [](core::RunContext& ctx) {
          econ::InvestmentConfig cfg;
          cfg.deploy_cost = 2.0;
          if (ctx.param("design") == 0) {
            // Historical multicast: router cost, no inter-provider billing.
            cfg.value_flow = false;
            cfg.user_choice = false;
          } else {
            // CDN: the deployer bills for delivery — value flows to the
            // investor, and content providers pick CDNs competitively.
            cfg.value_flow = true;
            cfg.qos_revenue = 3.0;
            cfg.user_choice = true;
          }
          auto res = econ::run_investment(cfg, ctx.rng());
          ctx.put("deploy_fraction", res.final_deploy_fraction);
        };
        bh.scenario(game, [](const core::SweepResult& res) {
          std::cout << "\nDeployment game (same engine as E5, multicast parameters)\n\n";
          core::Table g({"design", "value-flow", "deploy-fraction",
                         "who-captures-the-savings"});
          g.add_row({std::string("IP multicast (as shipped)"), std::string("no"),
                     res.mean(0, "deploy_fraction"),
                     std::string("content providers (not the ISP)")});
          g.add_row({std::string("CDN caches"), std::string("yes"),
                     res.mean(1, "deploy_fraction"), std::string("the deployer")});
          g.print(std::cout);

          std::cout << "\nAnswer to the exercise: multicast failed exactly like QoS —\n"
                       "all mechanism, no value flow, no competitive fear — while the\n"
                       "CDN packaged ~the same transmission savings behind an interface\n"
                       "whose deployer gets paid. Tussle-aware design would have\n"
                       "predicted the winner.\n";
        });
      });
}
