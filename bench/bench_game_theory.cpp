// E9 — Game-theoretic machinery (§II-B).
//
// Reproduces the formal backbone the paper leans on: zero-sum minimax via
// fictitious play (von Neumann), dominance outcomes (Nash), Vickrey
// truthfulness (mechanism design), and bounded-rationality deviations
// (Binmore).
#include <iostream>

#include "core/report.hpp"
#include "game/auction.hpp"
#include "game/canonical.hpp"
#include "game/learners.hpp"
#include "game/solvers.hpp"
#include "harness.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E9", "SII-B perspectives on tussle (game theory)",
       "Zero-sum minimax convergence; PD dominance (the congestion game);\n"
       "Vickrey truth-telling dominance; bounded-rational deviation."},
      [](bench::Harness& h) {
        core::ScenarioSpec conv;
        conv.name = "fictitious-play";
        conv.description = "zero-sum minimax convergence on [[3,-1],[-2,4]]";
        conv.grid.axis("iterations", {100, 1000, 10000, 100000});
        conv.body = [](core::RunContext& ctx) {
          auto g = game::MatrixGame::zero_sum({{3, -1}, {-2, 4}});
          auto s = game::solve_zero_sum(g, static_cast<std::size_t>(ctx.param("iterations")));
          ctx.put("value_estimate", s.value);
          ctx.put("duality_gap", s.gap);
        };
        h.scenario(conv, [](const core::SweepResult& res) {
          std::cout << "Fictitious-play convergence on a mixed zero-sum game "
                       "([[3,-1],[-2,4]], value 1.0)\n\n";
          core::Table t({"iterations", "value-estimate", "duality-gap"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({static_cast<long long>(res.points[p].get("iterations")),
                       res.mean(p, "value_estimate"), res.mean(p, "duality_gap")});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec nash;
        nash.name = "nash-structure";
        nash.description = "pure Nash equilibria of the canonical tussle games";
        nash.body = [](core::RunContext& ctx) {
          auto describe = [](const game::MatrixGame& gm) {
            auto eqs = gm.pure_nash();
            std::string s;
            for (auto [i, j] : eqs) {
              if (!s.empty()) s += " ";
              s += "(" + gm.row_name(i) + "," + gm.col_name(j) + ")";
            }
            return s.empty() ? std::string("none") : s;
          };
          ctx.note(describe(game::congestion_compliance_game()));
          ctx.note(describe(game::standards_coordination_game()));
          ctx.note(describe(game::peering_game()));
          ctx.note(describe(game::matching_pennies()));
          ctx.put("congestion_pure_nash",
                  static_cast<double>(game::congestion_compliance_game().pure_nash().size()));
        };
        h.scenario(nash, [](const core::SweepResult& res) {
          std::cout << "\nCanonical tussle games: pure Nash structure\n\n";
          const auto& notes = res.run(0, 0).notes;
          core::Table t({"game", "pure-nash", "pareto-trap"});
          t.add_row({std::string("congestion compliance (PD)"), notes[0], std::string("yes")});
          t.add_row({std::string("standards coordination"), notes[1], std::string("no")});
          t.add_row({std::string("ISP peering (chicken)"), notes[2], std::string("no")});
          t.add_row({std::string("matching pennies (zero-sum)"), notes[3], std::string("no")});
          t.print(std::cout);
        });

        core::ScenarioSpec auction;
        auction.name = "vickrey";
        auction.description = "expected utility of shading a bid, both mechanisms";
        auction.body = [](core::RunContext& ctx) {
          double vick_honest = 0, vick_shaded = 0, first_honest = 0, first_shaded = 0;
          const int trials = 20000;
          for (int i = 0; i < trials; ++i) {
            const double value = ctx.rng().uniform(0, 100);
            std::vector<double> rivals{ctx.rng().uniform(0, 100), ctx.rng().uniform(0, 100)};
            const double shade = value * 0.8;
            vick_honest += game::vickrey_utility(value, value, rivals);
            vick_shaded += game::vickrey_utility(value, shade, rivals);
            first_honest += game::first_price_utility(value, value, rivals);
            first_shaded += game::first_price_utility(value, shade, rivals);
          }
          ctx.put("vickrey_honest", vick_honest / trials);
          ctx.put("vickrey_shaded", vick_shaded / trials);
          ctx.put("first_price_honest", first_honest / trials);
          ctx.put("first_price_shaded", first_shaded / trials);
        };
        h.scenario(auction, [](const core::SweepResult& res) {
          std::cout << "\nVickrey vs first-price: expected utility of deviating from truth\n\n";
          const double vh = res.mean(0, "vickrey_honest");
          const double vs = res.mean(0, "vickrey_shaded");
          const double fh = res.mean(0, "first_price_honest");
          const double fs = res.mean(0, "first_price_shaded");
          core::Table t({"mechanism", "truthful-bid", "shaded-bid-(80%)", "truth-dominant"});
          t.add_row({std::string("vickrey (2nd price)"), vh, vs,
                     std::string(vh >= vs ? "yes" : "NO")});
          t.add_row({std::string("first price"), fh, fs, std::string(fh >= fs ? "yes" : "NO")});
          t.print(std::cout);
        });

        core::ScenarioSpec learn;
        learn.name = "learning-dynamics";
        learn.description = "repeated congestion game, 20k rounds per learner pair";
        learn.grid.axis("row_learner", {0, 1});  // 0 = regret-matching, 1 = eps-greedy(0.3)
        learn.body = [](core::RunContext& ctx) {
          constexpr std::size_t kRounds = 20000;
          auto pd = game::congestion_compliance_game();
          game::RegretMatching col(game::col_payoff_matrix(pd));

          // Telemetry: one round = one simulated millisecond. Cumulative
          // per-actor welfare and defect rates become time series, sampled
          // on the recorder's aligned tick grid.
          auto* rec = ctx.timeseries();
          std::size_t played = 0, row_defects = 0, col_defects = 0;
          double row_welfare = 0, col_welfare = 0;
          game::RoundObserver observer;
          if (rec != nullptr) {
            auto rate = [&played](std::size_t& n) {
              return played == 0 ? 0.0
                                 : static_cast<double>(n) / static_cast<double>(played);
            };
            rec->probe("row_defect_rate", [&, rate] { return rate(row_defects); });
            rec->probe("col_defect_rate", [&, rate] { return rate(col_defects); });
            rec->probe("row_mean_payoff", [&] {
              return played == 0 ? 0.0 : row_welfare / static_cast<double>(played);
            });
            rec->probe("col_mean_payoff", [&] {
              return played == 0 ? 0.0 : col_welfare / static_cast<double>(played);
            });
            observer = [&](std::size_t t, std::size_t a, std::size_t b, double pr,
                           double pc) {
              ++played;
              row_defects += a == 1 ? 1 : 0;
              col_defects += b == 1 ? 1 : 0;
              row_welfare += pr;
              col_welfare += pc;
              rec->maybe_sample(sim::SimTime::millis(static_cast<std::int64_t>(t) + 1));
            };
          }

          if (ctx.param("row_learner") == 0) {
            game::RegretMatching row(game::row_payoff_matrix(pd));
            if (rec != nullptr) {
              rec->probe("row_avg_regret", [&row] { return row.average_regret(); });
              rec->maybe_sample(sim::SimTime::zero());
            }
            auto out = game::play_repeated(pd, row, col, kRounds, ctx.rng(), observer);
            if (rec != nullptr) rec->finish(sim::SimTime::millis(kRounds));
            ctx.put("row_defect_rate", out.row_empirical[1]);
            ctx.put("col_defect_rate", out.col_empirical[1]);
            ctx.put("row_avg_regret", row.average_regret());
          } else {
            game::EpsilonGreedy row(2, 0.3);
            if (rec != nullptr) rec->maybe_sample(sim::SimTime::zero());
            auto out = game::play_repeated(pd, row, col, kRounds, ctx.rng(), observer);
            if (rec != nullptr) rec->finish(sim::SimTime::millis(kRounds));
            ctx.put("row_defect_rate", out.row_empirical[1]);
            ctx.put("col_defect_rate", out.col_empirical[1]);
            ctx.put("row_avg_regret", -1.0);
          }
        };
        h.scenario(learn, [](const core::SweepResult& res) {
          std::cout << "\nLearning dynamics in the congestion game (20k rounds)\n\n";
          const char* row_names[] = {"regret-matching", "eps-greedy(0.3)"};
          core::Table t({"row-learner", "col-learner", "row-defect-rate", "col-defect-rate",
                         "row-avg-regret"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({std::string(row_names[p]), std::string("regret-matching"),
                       res.mean(p, "row_defect_rate"), res.mean(p, "col_defect_rate"),
                       res.mean(p, "row_avg_regret")});
          }
          t.print(std::cout);
          std::cout << "\n(eps-greedy row shows the bounded-rationality deviation: ~15%\n"
                       "compliance held in place purely by exploration noise.)\n";
        });
      });
}
