// E9 — Game-theoretic machinery (§II-B).
//
// Reproduces the formal backbone the paper leans on: zero-sum minimax via
// fictitious play (von Neumann), dominance outcomes (Nash), Vickrey
// truthfulness (mechanism design), and bounded-rationality deviations
// (Binmore).
#include <iostream>

#include "core/report.hpp"
#include "game/auction.hpp"
#include "game/canonical.hpp"
#include "game/learners.hpp"
#include "game/solvers.hpp"
#include "harness.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E9", "SII-B perspectives on tussle (game theory)",
       "Zero-sum minimax convergence; PD dominance (the congestion game);\n"
       "Vickrey truth-telling dominance; bounded-rational deviation."},
      [](bench::Harness& h) {
  std::cout << "Fictitious-play convergence on a mixed zero-sum game "
               "([[3,-1],[-2,4]], value 1.0)\n\n";
  core::Table conv({"iterations", "value-estimate", "duality-gap"});
  auto g = game::MatrixGame::zero_sum({{3, -1}, {-2, 4}});
  for (std::size_t it : {100u, 1000u, 10000u, 100000u}) {
    auto s = game::solve_zero_sum(g, it);
    conv.add_row({static_cast<long long>(it), s.value, s.gap});
    if (it == 100000u) h.metrics().gauge("fictitious_play.final_gap", s.gap);
  }
  conv.print(std::cout);

  std::cout << "\nCanonical tussle games: pure Nash structure\n\n";
  core::Table nash({"game", "pure-nash", "pareto-trap"});
  auto describe = [](const game::MatrixGame& gm) {
    auto eqs = gm.pure_nash();
    std::string s;
    for (auto [i, j] : eqs) {
      if (!s.empty()) s += " ";
      s += "(" + gm.row_name(i) + "," + gm.col_name(j) + ")";
    }
    return s.empty() ? std::string("none") : s;
  };
  nash.add_row({std::string("congestion compliance (PD)"),
                describe(game::congestion_compliance_game()), std::string("yes")});
  nash.add_row({std::string("standards coordination"),
                describe(game::standards_coordination_game()), std::string("no")});
  nash.add_row({std::string("ISP peering (chicken)"), describe(game::peering_game()),
                std::string("no")});
  nash.add_row({std::string("matching pennies (zero-sum)"),
                describe(game::matching_pennies()), std::string("no")});
  nash.print(std::cout);

  std::cout << "\nVickrey vs first-price: expected utility of deviating from truth\n\n";
  sim::Rng rng(51);
  double vick_honest = 0, vick_shaded = 0, first_honest = 0, first_shaded = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double value = rng.uniform(0, 100);
    std::vector<double> rivals{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double shade = value * 0.8;
    vick_honest += game::vickrey_utility(value, value, rivals);
    vick_shaded += game::vickrey_utility(value, shade, rivals);
    first_honest += game::first_price_utility(value, value, rivals);
    first_shaded += game::first_price_utility(value, shade, rivals);
  }
  core::Table auc({"mechanism", "truthful-bid", "shaded-bid-(80%)", "truth-dominant"});
  auc.add_row({std::string("vickrey (2nd price)"), vick_honest / trials,
               vick_shaded / trials,
               std::string(vick_honest >= vick_shaded ? "yes" : "NO")});
  auc.add_row({std::string("first price"), first_honest / trials, first_shaded / trials,
               std::string(first_honest >= first_shaded ? "yes" : "NO")});
  auc.print(std::cout);

  std::cout << "\nLearning dynamics in the congestion game (20k rounds)\n\n";
  core::Table learn({"row-learner", "col-learner", "row-defect-rate", "col-defect-rate",
                     "row-avg-regret"});
  {
    auto pd = game::congestion_compliance_game();
    game::RegretMatching a(game::row_payoff_matrix(pd));
    game::RegretMatching b(game::col_payoff_matrix(pd));
    sim::Rng r2(52);
    auto out = game::play_repeated(pd, a, b, 20000, r2);
    learn.add_row({std::string("regret-matching"), std::string("regret-matching"),
                   out.row_empirical[1], out.col_empirical[1], a.average_regret()});
    game::EpsilonGreedy e(2, 0.3);
    game::RegretMatching c(game::col_payoff_matrix(pd));
    auto out2 = game::play_repeated(pd, e, c, 20000, r2);
    learn.add_row({std::string("eps-greedy(0.3)"), std::string("regret-matching"),
                   out2.row_empirical[1], out2.col_empirical[1], -1.0});
  }
  learn.print(std::cout);
  std::cout << "\n(eps-greedy row shows the bounded-rationality deviation: ~15%\n"
               "compliance held in place purely by exploration noise.)\n";
      });
}
