// E5 — The QoS deployment post-mortem (§VII).
//
// Paper hypothesis, verbatim: "one can see the failure of QoS deployment
// as a failure first to design any value-transfer mechanism to give the
// providers the possibility of being rewarded for making the investment
// (greed), and second, a failure to couple the design to a mechanism
// whereby the user can exercise choice to select the provider who offered
// the service (competitive fear)." Closed deployment instead yields
// vertical integration and monopoly pricing.
#include <iostream>

#include "core/report.hpp"
#include "econ/investment.hpp"
#include "game/canonical.hpp"
#include "harness.hpp"

using namespace tussle;

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E5", "SVII lessons for designers (QoS post-mortem)",
       "Deployment needs greed (value flow) and is accelerated by fear\n"
       "(user choice); closed QoS deploys for the wrong reason and prices\n"
       "the dependent application at monopoly rates."},
      [](bench::Harness& h) {
  core::Table t({"value-flow", "user-choice", "mode", "deploy-fraction", "open-service",
                 "app-price", "isp-profit"});
  struct Case {
    bool value_flow;
    bool choice;
    bool closed;
  };
  const Case cases[] = {
      {false, false, false},  // the historical failure
      {false, true, false},   // fear alone
      {true, false, false},   // greed alone
      {true, true, false},    // the paper's recipe
      {false, false, true},   // vertical integration instead
  };
  int seed = 1;
  for (const Case& c : cases) {
    econ::InvestmentConfig cfg;
    cfg.value_flow = c.value_flow;
    cfg.user_choice = c.choice;
    cfg.closed_mode = c.closed;
    sim::Rng rng(seed++);
    auto r = econ::run_investment(cfg, rng);
    t.add_row({std::string(c.value_flow ? "yes" : "no"),
               std::string(c.choice ? "yes" : "no"),
               std::string(c.closed ? "closed" : "open"), r.final_deploy_fraction,
               std::string(r.open_service_available ? "yes" : "no"), r.app_price,
               r.mean_isp_profit});
    const std::string scenario = std::string(c.closed ? "closed" : "open") +
                                 (c.value_flow ? ".greed" : ".nogreed") +
                                 (c.choice ? ".fear" : ".nofear");
    h.metrics().gauge(scenario + ".deploy_fraction", r.final_deploy_fraction);
    h.metrics().gauge(scenario + ".app_price", r.app_price);
    h.metrics().gauge(scenario + ".isp_profit", r.mean_isp_profit);
  }
  t.print(std::cout);

  std::cout << "\nOne-shot structure (2-ISP investment game equilibria)\n\n";
  core::Table eq({"scenario", "nash-equilibrium"});
  auto describe = [](const game::MatrixGame& g) {
    auto e = g.pure_nash();
    std::string s;
    for (auto [i, j] : e) {
      if (!s.empty()) s += ", ";
      s += "(" + g.row_name(i) + "," + g.col_name(j) + ")";
    }
    return s.empty() ? std::string("none (mixed only)") : s;
  };
  eq.add_row({std::string("no value flow, no choice"),
              describe(game::qos_investment_game(2, 0, 0))});
  eq.add_row({std::string("value flow only"), describe(game::qos_investment_game(2, 3, 0))});
  eq.add_row({std::string("value flow + choice"),
              describe(game::qos_investment_game(2, 3, 2))});
  eq.print(std::cout);
      });
}
