// E5 — The QoS deployment post-mortem (§VII).
//
// Paper hypothesis, verbatim: "one can see the failure of QoS deployment
// as a failure first to design any value-transfer mechanism to give the
// providers the possibility of being rewarded for making the investment
// (greed), and second, a failure to couple the design to a mechanism
// whereby the user can exercise choice to select the provider who offered
// the service (competitive fear)." Closed deployment instead yields
// vertical integration and monopoly pricing.
#include <iostream>

#include "core/report.hpp"
#include "econ/investment.hpp"
#include "game/canonical.hpp"
#include "harness.hpp"

using namespace tussle;

namespace {

struct Regime {
  const char* name;
  bool value_flow;
  bool choice;
  bool closed;
};

constexpr Regime kRegimes[] = {
    {"historical failure", false, false, false},
    {"fear alone", false, true, false},
    {"greed alone", true, false, false},
    {"greed + fear", true, true, false},
    {"vertical integration", false, false, true},
};

}  // namespace

int main(int argc, char** argv) {
  return bench::run(
      argc, argv,
      {"E5", "SVII lessons for designers (QoS post-mortem)",
       "Deployment needs greed (value flow) and is accelerated by fear\n"
       "(user choice); closed QoS deploys for the wrong reason and prices\n"
       "the dependent application at monopoly rates."},
      [](bench::Harness& h) {
        core::ScenarioSpec deploy;
        deploy.name = "deployment-regimes";
        deploy.description = "QoS investment under each greed/fear/closed regime";
        deploy.grid.axis("regime", {0, 1, 2, 3, 4});
        deploy.body = [](core::RunContext& ctx) {
          const Regime& c = kRegimes[static_cast<std::size_t>(ctx.param("regime"))];
          econ::InvestmentConfig cfg;
          cfg.value_flow = c.value_flow;
          cfg.user_choice = c.choice;
          cfg.closed_mode = c.closed;

          // Telemetry: the adoption curve itself, one period = one sim-ms.
          auto* rec = ctx.timeseries();
          econ::PeriodObserver observer;
          double deploy_now = 0, profit_now = 0;
          if (rec != nullptr) {
            rec->probe("deploy_fraction", [&deploy_now] { return deploy_now; });
            rec->probe("mean_isp_profit", [&profit_now] { return profit_now; });
            rec->maybe_sample(sim::SimTime::zero());
            observer = [&](std::size_t t, double f, double pr) {
              deploy_now = f;
              profit_now = pr;
              rec->maybe_sample(sim::SimTime::millis(static_cast<std::int64_t>(t) + 1));
            };
          }
          auto r = econ::run_investment(cfg, ctx.rng(), observer);
          if (rec != nullptr) {
            rec->finish(sim::SimTime::millis(static_cast<std::int64_t>(cfg.periods)));
          }
          ctx.put("deploy_fraction", r.final_deploy_fraction);
          ctx.put("open_service", r.open_service_available ? 1.0 : 0.0);
          ctx.put("app_price", r.app_price);
          ctx.put("isp_profit", r.mean_isp_profit);
        };
        h.scenario(deploy, [](const core::SweepResult& res) {
          core::Table t({"value-flow", "user-choice", "mode", "deploy-fraction",
                         "open-service", "app-price", "isp-profit"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            const Regime& c = kRegimes[p];
            t.add_row({std::string(c.value_flow ? "yes" : "no"),
                       std::string(c.choice ? "yes" : "no"),
                       std::string(c.closed ? "closed" : "open"),
                       res.mean(p, "deploy_fraction"),
                       std::string(res.mean(p, "open_service") > 0.5 ? "yes" : "no"),
                       res.mean(p, "app_price"), res.mean(p, "isp_profit")});
          }
          t.print(std::cout);
        });

        core::ScenarioSpec eq;
        eq.name = "one-shot-equilibria";
        eq.description = "pure Nash of the 2-ISP investment game, three regimes";
        eq.grid.axis("structure", {0, 1, 2});
        eq.body = [](core::RunContext& ctx) {
          auto describe = [](const game::MatrixGame& g) {
            auto e = g.pure_nash();
            std::string s;
            for (auto [i, j] : e) {
              if (!s.empty()) s += ", ";
              s += "(" + g.row_name(i) + "," + g.col_name(j) + ")";
            }
            return s.empty() ? std::string("none (mixed only)") : s;
          };
          const int structure = static_cast<int>(ctx.param("structure"));
          const double value = structure >= 1 ? 3 : 0;
          const double fear = structure >= 2 ? 2 : 0;
          auto g = game::qos_investment_game(2, value, fear);
          ctx.note(describe(g));
          ctx.put("pure_nash_count", static_cast<double>(g.pure_nash().size()));
        };
        h.scenario(eq, [](const core::SweepResult& res) {
          std::cout << "\nOne-shot structure (2-ISP investment game equilibria)\n\n";
          const char* names[] = {"no value flow, no choice", "value flow only",
                                 "value flow + choice"};
          core::Table t({"scenario", "nash-equilibrium"});
          for (std::size_t p = 0; p < res.points.size(); ++p) {
            t.add_row({std::string(names[p]), res.run(p, 0).notes.at(0)});
          }
          t.print(std::cout);
        });
      });
}
