// Example: routing control and routing *around* control (§V-A-4).
//
// An AS-level story: provider routing (Gao-Rexford path vector) gives a
// multihomed stub exactly one exit; user source routing surfaces both, but
// the second one must be paid for; and when the direct path is filtered, an
// overlay tunnels around the chokepoint on the real packet network.
//
// Declared as one core::ScenarioSpec whose axis is the data-plane
// counter-move of part 3: send direct into the chokepoint, or relay via
// the overlay. Parts 1 and 2 are the same in every run; the narration
// replays their notes from the first run and reads part 3 per point.
#include <iostream>
#include <sstream>

#include "core/tussle.hpp"

using namespace tussle;

int main() {
  std::cout << "Route-around walkthrough\n========================\n";

  core::ScenarioSpec spec;
  spec.name = "route-around";
  spec.description = "provider vs user routing, then direct vs overlay data plane";
  spec.grid.axis("use_overlay", {0, 1});
  spec.body = [](core::RunContext& ctx) {
    // AS topology: stub 7 buys from 4 and 5; 4,5 buy from tier-1 peers 1,2.
    routing::AsGraph g;
    g.add_peering(1, 2);
    g.add_customer_provider(4, 1);
    g.add_customer_provider(5, 2);
    g.add_customer_provider(7, 4);
    g.add_customer_provider(7, 5);
    g.add_customer_provider(6, 1);
    // AS8 buys transit from nobody; it only peers with stub 7.
    g.add_as(8);
    g.add_peering(7, 8);

    // --- 1. What the providers decide for you ----------------------------
    routing::PathVector pv(g);
    auto outcome = pv.compute(/*dest=*/6);
    const auto& chosen = outcome.routes.at(7);
    std::string line = "  AS7 -> AS6 via:";
    for (auto as : chosen.as_path) line += " " + std::to_string(as);
    ctx.note("[1]" + line + "  (converged in " + std::to_string(outcome.rounds) +
             " rounds, one path, no say)");

    // --- 2. What the user could express ----------------------------------
    routing::SourceRouteBuilder builder(g);
    econ::Ledger ledger;
    econ::PaidTransit transit(g, ledger);
    transit.set_transit_price(5, 2.0);
    transit.set_transit_price(2, 1.5);
    for (const auto& path : builder.k_shortest_paths(7, 6, 3)) {
      auto quote = transit.quote(path);
      std::string cand = "  candidate:";
      for (auto as : path) cand += " " + std::to_string(as);
      cand += quote.paid_ases.empty() ? "  — free (valley-free)" : "  — paid";
      ctx.note("[2]" + cand);
    }

    // The peer-only AS8 has NO provider route to 6 at all (7 will not give
    // a peer free transit)...
    const bool pv8 = pv.compute(6).routes.count(8) != 0;
    ctx.note("[2]  provider routing gives AS8 a route to AS6? " +
             std::string(pv8 ? "yes" : "no"));
    // ...but a *paid* source route through 7 works: value must flow.
    transit.set_transit_price(7, 2.0);
    if (auto quote = transit.best_quote(8, 6, 4)) {
      std::string paid = "  paid source route for AS8:";
      for (auto as : quote->path) paid += " " + std::to_string(as);
      std::ostringstream price;
      price << quote->total_price;
      paid += "  (pays " + price.str() + " to";
      for (auto as : quote->paid_ases) paid += " AS" + std::to_string(as);
      paid += ")";
      ctx.note("[2]" + paid);
      transit.settle("user:8", *quote);
    }
    ctx.put("as8_balance", ledger.balance("user:8"));
    ctx.put("as7_earned", ledger.balance("as:7"));

    // --- 3. The packet-level counter-move --------------------------------
    sim::Simulator sim(ctx.rng().next_u64());
    net::Network net(sim);
    auto ids = net::build_star(net, 3, 1, net::LinkSpec{});
    std::vector<net::Address> addrs;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      net::Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);
    // Hub blocks web between leaf 1 and leaf 3.
    net.node(ids[0]).add_filter(net::PacketFilter{
        .name = "chokepoint",
        .disclosed = false,
        .fn = [&](const net::Packet& p) {
          if (p.observable_proto() == net::AppProto::kWeb && p.src == addrs[1] &&
              p.dst == addrs[3]) {
            return net::FilterDecision::drop("blocked");
          }
          return net::FilterDecision::accept();
        }});

    net::Packet pkt;
    pkt.src = addrs[1];
    pkt.dst = addrs[3];
    pkt.proto = net::AppProto::kWeb;
    if (ctx.param("use_overlay") == 0) {
      net.node(ids[1]).originate(std::move(pkt));
      ctx.add_events(sim.run());
    } else {
      routing::Overlay overlay(net,
                               {{ids[1], addrs[1]}, {ids[2], addrs[2]}, {ids[3], addrs[3]}});
      overlay.set_edge_cost(ids[1], ids[2], 1.0);
      overlay.set_edge_cost(ids[2], ids[3], 1.0);
      auto path = overlay.send(ids[1], ids[3], std::move(pkt));
      ctx.add_events(sim.run());
      ctx.put("relay_members", static_cast<double>(path.size() - 2));
    }
    ctx.put("delivered", static_cast<double>(net.counters().delivered.value()));
    ctx.put("filtered", static_cast<double>(net.counters().dropped_filter.value()));
  };

  const auto res = core::run_sweep(spec);
  const auto& notes = res.run(0, 0).notes;

  std::cout << "\n[1] Provider-controlled routing (BGP analogue):\n";
  for (const auto& n : notes) {
    if (n.rfind("[1]", 0) == 0) std::cout << n.substr(3) << "\n";
  }

  std::cout << "\n[2] User-controlled source routing (NIRA-flavoured):\n";
  for (const auto& n : notes) {
    if (n.rfind("[2]", 0) == 0) std::cout << n.substr(3) << "\n";
  }
  std::cout << "  AS8 balance after settlement: " << res.mean(0, "as8_balance")
            << ", AS7 earned: " << res.mean(0, "as7_earned") << "\n";

  std::cout << "\n[3] Overlay vs chokepoint on the data plane:\n";
  std::cout << "  direct: delivered=" << res.mean(0, "delivered")
            << " filtered=" << res.mean(0, "filtered") << "\n";
  std::cout << "  overlay relay via " << res.mean(1, "relay_members")
            << " member(s): delivered=" << res.mean(1, "delivered") << "\n";

  std::cout << "\nThe overlay is 'a tool in the tussle, certainly' — and the\n"
               "payment ledger is the piece whose absence the paper blames for\n"
               "source routing never working.\n";
  return 0;
}
